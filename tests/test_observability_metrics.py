"""Tests of histograms, the OpenMetrics exporter and the JSONL event sink."""

import json
import math

import numpy as np
import pytest

from repro.core.metrics import (
    DEFAULT_ITERATION_BUCKETS,
    Histogram,
    JsonlEventWriter,
    metric_name,
    render_openmetrics,
    write_openmetrics,
)
from repro.core.telemetry import NullTelemetry, Telemetry


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            h.observe(value)
        assert h.counts == [1, 1, 1, 1]  # last slot is the +Inf overflow
        assert h.count == 4
        assert h.min == 0.5 and h.max == 100.0

    def test_quantiles_monotonic_and_clamped(self):
        h = Histogram()
        rng = np.random.default_rng(0)
        values = rng.uniform(0.001, 1.0, size=500)
        for value in values:
            h.observe(value)
        p50, p95, p99 = (h.quantile(q) for q in (0.5, 0.95, 0.99))
        assert h.min <= p50 <= p95 <= p99 <= h.max

    def test_quantile_tracks_distribution(self):
        h = Histogram(bounds=tuple(np.linspace(0.01, 1.0, 100)))
        values = np.linspace(0.0, 1.0, 1000)
        for value in values:
            h.observe(value)
        assert h.quantile(0.5) == pytest.approx(0.5, abs=0.05)
        assert h.quantile(0.95) == pytest.approx(0.95, abs=0.05)

    def test_empty_quantile_is_nan(self):
        assert math.isnan(Histogram().quantile(0.5))
        assert math.isnan(Histogram().quantile(0.0))
        assert math.isnan(Histogram().quantile(1.0))
        assert math.isnan(Histogram(bounds=(1.0,)).quantile(0.99))

    def test_single_bucket_histogram(self):
        h = Histogram(bounds=(1.0,))
        for value in (0.2, 0.4, 0.9):
            h.observe(value)
        h.observe(5.0)  # overflow bucket
        assert h.counts == [3, 1]
        assert h.count == 4
        # Quantiles stay inside the observed range even though the only
        # finite bucket spans [min, 1.0] and the overflow is unbounded.
        assert h.min <= h.quantile(0.5) <= h.max
        assert h.quantile(1.0) == h.max
        # Merge of single-bucket histograms is a plain elementwise sum.
        other = Histogram(bounds=(1.0,))
        other.observe(0.7)
        h.merge(other)
        assert h.counts == [4, 1] and h.count == 5

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram().quantile(1.5)

    def test_merge_equals_union(self):
        rng = np.random.default_rng(1)
        left_values = rng.uniform(0.0001, 10.0, size=200)
        right_values = rng.uniform(0.0001, 10.0, size=300)
        left, right, union = Histogram(), Histogram(), Histogram()
        for v in left_values:
            left.observe(v)
            union.observe(v)
        for v in right_values:
            right.observe(v)
            union.observe(v)
        left.merge(right)
        assert left.counts == union.counts  # exact, not approximate
        assert left.count == union.count
        assert left.total == pytest.approx(union.total)
        assert left.min == union.min and left.max == union.max

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(
            ValueError, match="cannot merge histograms with different bounds"
        ):
            Histogram(bounds=(1.0, 2.0)).merge(Histogram(bounds=(1.0, 3.0)))
        # Same edges, different count: also a clear mismatch, not silence.
        with pytest.raises(
            ValueError, match="cannot merge histograms with different bounds"
        ):
            Histogram(bounds=(1.0, 2.0)).merge(Histogram(bounds=(1.0, 2.0, 3.0)))

    def test_bounds_validation(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram(bounds=())

    def test_dict_round_trip(self):
        h = Histogram(bounds=DEFAULT_ITERATION_BUCKETS)
        for value in (3, 17, 40, 2000):
            h.observe(value)
        payload = json.loads(json.dumps(h.to_dict()))
        restored = Histogram.from_dict(payload)
        assert restored.counts == h.counts
        assert restored.quantile(0.5) == h.quantile(0.5)

    def test_empty_to_dict_is_json_safe(self):
        payload = Histogram().to_dict()
        assert payload["min"] is None and payload["p99"] is None
        json.dumps(payload, allow_nan=False)


class TestTelemetryHistograms:
    def test_observe_creates_and_fills(self):
        tel = Telemetry()
        tel.observe("lat", 0.01)
        tel.observe("lat", 0.02)
        assert tel.histograms["lat"].count == 2

    def test_first_use_picks_bounds(self):
        tel = Telemetry()
        tel.observe("iters", 10, bounds=DEFAULT_ITERATION_BUCKETS)
        tel.observe("iters", 20, bounds=(1.0, 2.0))  # ignored: already created
        assert tel.histograms["iters"].bounds == tuple(
            float(b) for b in DEFAULT_ITERATION_BUCKETS
        )

    def test_null_telemetry_observe_is_noop(self):
        tel = NullTelemetry()
        tel.observe("lat", 1.0)
        assert not tel.histograms

    def test_summary_includes_histogram_table(self):
        tel = Telemetry()
        tel.observe("explore.point_seconds", 0.02)
        text = tel.summary()
        assert "histogram" in text and "p99" in text

    def test_solver_iterations_observed_into_histograms(self):
        from repro.core.telemetry import activate
        from repro.cs.dictionaries import dct_basis
        from repro.cs.reconstruction import Reconstructor

        rng = np.random.default_rng(0)
        phi = rng.normal(size=(16, 32))
        y = rng.normal(size=(4, 16))
        tel = Telemetry()
        with activate(tel):
            Reconstructor(basis=dct_basis(32), method="fista", n_iter=40).recover(phi, y)
        assert tel.histograms["cs.fista.iterations"].count == 1
        assert tel.histograms["cs.fista.solve_seconds"].count == 1


class TestOpenMetrics:
    def test_metric_name_sanitised(self):
        assert metric_name("explore.cache_hits") == "repro_explore_cache_hits"
        assert metric_name("cs.fista.solve-time!", prefix="") == "cs_fista_solve_time"

    def _telemetry(self):
        tel = Telemetry()
        tel.count("explore.cache_hits", 4)
        with tel.span("explore.total"):
            pass
        tel.record("explore.point_seconds", 0.25)
        tel.record("explore.point_seconds", 0.75)
        for value in (0.01, 0.02, 0.5):
            tel.observe("point_latency", value)
        return tel

    def test_render_families_and_terminator(self):
        text = render_openmetrics(self._telemetry())
        assert text.endswith("# EOF\n")
        assert "# TYPE repro_explore_cache_hits counter" in text
        assert "repro_explore_cache_hits_total 4" in text
        assert "# TYPE repro_explore_total_seconds gauge" in text
        assert "repro_explore_point_seconds_count 2" in text
        assert "repro_explore_point_seconds_stddev" in text
        assert "# TYPE repro_point_latency histogram" in text
        assert "repro_point_latency_p99" in text

    def test_histogram_buckets_cumulative(self):
        text = render_openmetrics(self._telemetry())
        bucket_counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_point_latency_bucket")
        ]
        assert bucket_counts == sorted(bucket_counts)
        assert bucket_counts[-1] == 3  # le="+Inf" covers every observation
        assert 'le="+Inf"' in text

    def test_write_openmetrics(self, tmp_path):
        path = write_openmetrics(tmp_path / "metrics.prom", self._telemetry())
        assert path.read_text().endswith("# EOF\n")


class TestJsonlEventWriter:
    def test_events_streamed_as_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tel = Telemetry(max_events=1, event_sink=JsonlEventWriter(path))
        for i in range(3):
            tel.event("tick", i=i)
        # The bounded buffer kept one event; the sink kept all three.
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["i"] for line in lines] == [0, 1, 2]
        assert all(line["kind"] == "tick" for line in lines)

    def test_unencodable_payload_degrades_to_repr(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlEventWriter(path) as sink:
            sink({"kind": "bad", "payload": object()})
        record = json.loads(path.read_text())
        assert record["kind"] == "bad" and "repr" in record

    def test_closed_sink_never_raises(self, tmp_path):
        sink = JsonlEventWriter(tmp_path / "events.jsonl")
        sink.close()
        sink({"kind": "late"})  # swallowed, not raised

    def test_raising_sink_does_not_kill_the_run(self):
        def sink(payload):
            raise RuntimeError("boom")

        tel = Telemetry(event_sink=sink)
        tel.event("tick")  # must not raise
        assert tel.events[0]["kind"] == "tick"
