"""Tests of the raw-waveform frame MLP detector."""

import numpy as np
import pytest

from repro.detection.frame_detector import FrameMlpDetector
from repro.detection.mlp import MlpConfig
from repro.eeg.synthetic import SyntheticEegConfig, generate_record
from repro.util.rng import derive_seed

FS = 173.61


def corpus(n_each=12, seed=0, samples=4 * 384, severity=(1.0, 3.0)):
    config = SyntheticEegConfig(seizure_severity_range=severity)
    records, labels = [], []
    for i in range(n_each):
        rec = generate_record("seizure", config, derive_seed(seed, f"s{i}"), f"s{i}")
        records.append(rec.data[:samples])
        labels.append(1)
        rec = generate_record("background", config, derive_seed(seed, f"b{i}"), f"b{i}")
        records.append(rec.data[:samples])
        labels.append(0)
    return np.stack(records), np.array(labels)


def fast_config():
    return MlpConfig(hidden_sizes=(32,), n_epochs=15, batch_size=128, early_stop_patience=0)


class TestFraming:
    def test_frame_shape(self):
        det = FrameMlpDetector(sample_rate=FS, frame_length=128)
        frames = det._frames(np.zeros((3, 400)))
        assert frames.shape == (3, 3, 128)

    def test_too_short_rejected(self):
        det = FrameMlpDetector(sample_rate=FS, frame_length=512)
        with pytest.raises(ValueError):
            det._frames(np.zeros((2, 100)))

    def test_1d_rejected(self):
        det = FrameMlpDetector(sample_rate=FS)
        with pytest.raises(ValueError):
            det._frames(np.zeros(1000))

    def test_bad_noise_range_rejected(self):
        with pytest.raises(ValueError):
            FrameMlpDetector(sample_rate=FS, augment_noise_range=(1e-6, 1e-7))


class TestTraining:
    @pytest.fixture(scope="class")
    def fitted(self):
        records, labels = corpus(seed=2)
        det = FrameMlpDetector(
            sample_rate=FS,
            mlp_config=fast_config(),
            augment_copies=1,
        )
        return det.fit(records, labels), records, labels

    def test_learns_training_set(self, fitted):
        det, records, labels = fitted
        assert det.accuracy(records, labels) > 0.85

    def test_generalises(self, fitted):
        det, *_ = fitted
        fresh_records, fresh_labels = corpus(n_each=8, seed=77)
        assert det.accuracy(fresh_records, fresh_labels) > 0.7

    def test_probabilities_bounded(self, fitted):
        det, records, _ = fitted
        probs = det.predict_proba(records)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_soft_accuracy_bounded(self, fitted):
        det, records, labels = fitted
        assert 0.0 <= det.soft_accuracy(records, labels) <= 1.0

    def test_sensitivity_specificity_range(self, fitted):
        det, records, labels = fitted
        sens, spec = det.sensitivity_specificity(records, labels)
        assert 0.0 <= sens <= 1.0
        assert 0.0 <= spec <= 1.0

    def test_unfitted_raises(self):
        det = FrameMlpDetector(sample_rate=FS)
        with pytest.raises(RuntimeError):
            det.predict(np.zeros((2, 768)))

    def test_deterministic_given_seed(self):
        records, labels = corpus(n_each=6, seed=5)
        a = FrameMlpDetector(
            sample_rate=FS, mlp_config=fast_config(), augment_copies=1, seed=3
        ).fit(records, labels)
        b = FrameMlpDetector(
            sample_rate=FS, mlp_config=fast_config(), augment_copies=1, seed=3
        ).fit(records, labels)
        np.testing.assert_array_equal(a.predict_proba(records), b.predict_proba(records))
