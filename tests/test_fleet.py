"""Tests of the fleet layer: protocol, lease state machine, clean runs.

The chaos suite (``test_fleet_chaos.py``) proves fault recovery over
real sockets and SIGKILLed processes; this file pins down everything
that must hold *before* chaos means anything -- exact wire round-trips,
the requeue -> split -> quarantine ladder at interactive speed (fake
clock, no sockets), and digest-identical clean fleet runs with
exactly-once evaluator-call accounting.
"""

import io
import json

import pytest

from repro.core.execution import (
    DEFAULT_POLICY,
    ExecutionPolicy,
    evaluator_fingerprint,
    retry_delay_s,
)
from repro.core.explorer import DesignSpaceExplorer
from repro.core.results import Evaluation
from repro.core.telemetry import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    Telemetry,
    TelemetrySnapshot,
)
from repro.fleet import (
    FleetOptions,
    LeaseTable,
    ProtocolError,
    protocol,
    resolve_spec,
)
from repro.power.technology import DesignPoint
from tests.test_parallel_explorer import (
    ToyEvaluator,
    assert_sweeps_identical,
    smoke_grid,
)


def points(n: int, start: int = 0) -> list[tuple[int, DesignPoint]]:
    return [
        (i, DesignPoint(n_bits=6 + (i % 6), lna_noise_rms=2e-6))
        for i in range(start, start + n)
    ]


def rows_for(chunk, value: float = 1.0):
    return [
        (index, Evaluation(point, metrics={"m": value}), 0.01, {"retries": 0, "timeouts": 0})
        for index, point in chunk
    ]


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_table(chunks, **kwargs) -> tuple[LeaseTable, FakeClock]:
    clock = FakeClock()
    kwargs.setdefault("lease_timeout_s", 10.0)
    return LeaseTable(chunks, clock=clock, **kwargs), clock


# --- protocol wire round-trips ------------------------------------------------


class TestProtocol:
    def test_chunk_round_trip(self):
        chunk = points(4)
        decoded = protocol.decode_chunk(protocol.encode_chunk(chunk))
        assert [(i, p.describe()) for i, p in decoded] == [
            (i, p.describe()) for i, p in chunk
        ]

    def test_chunk_digest_tracks_content(self):
        chunk = points(3)
        assert protocol.chunk_digest(chunk) == protocol.chunk_digest(list(chunk))
        assert protocol.chunk_digest(chunk) != protocol.chunk_digest(chunk[:2])
        reindexed = [(i + 1, p) for i, p in chunk]
        assert protocol.chunk_digest(chunk) != protocol.chunk_digest(reindexed)

    def test_rows_round_trip_including_failures(self):
        chunk = points(2)
        rows = rows_for(chunk) + [
            (99, Evaluation(chunk[0][1], metrics={}, error="boom"), 0.0, {}),
        ]
        decoded = protocol.decode_rows(protocol.encode_rows(rows))
        assert decoded[0][0] == chunk[0][0]
        assert decoded[0][1].metrics == {"m": 1.0}
        assert decoded[0][2] == pytest.approx(0.01)
        assert decoded[2][1].error == "boom"

    def test_send_recv_round_trip(self):
        buffer = io.StringIO()
        protocol.send_message(buffer, {"type": "request", "n": 3})
        buffer.seek(0)
        assert protocol.recv_message(buffer) == {"type": "request", "n": 3}
        assert protocol.recv_message(buffer) is None  # EOF

    def test_recv_rejects_junk_and_unexpected_types(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            protocol.recv_message(io.StringIO("not json\n"))
        with pytest.raises(ProtocolError, match="must be an object"):
            protocol.recv_message(io.StringIO('["a", "list"]\n'))
        with pytest.raises(ProtocolError, match="unexpected message type"):
            protocol.recv_message(
                io.StringIO('{"type": "lease"}\n'), expect=("ack",)
            )

    def test_malformed_chunk_and_rows_raise(self):
        with pytest.raises(ProtocolError, match="malformed chunk"):
            protocol.decode_chunk([{"index": 0}])
        with pytest.raises(ProtocolError, match="malformed result rows"):
            protocol.decode_rows([{"index": 0, "elapsed_s": 0.0}])


class TestTelemetryWire:
    def test_snapshot_survives_json_round_trip(self):
        tel = Telemetry()
        tel.count("c", 3)
        tel.record("v", 1.5)
        tel.record("v", 2.5)
        with tel.span("s"):
            pass
        tel.event("e", detail="x")
        snapshot = tel.drain_snapshot("w")
        wire = json.loads(json.dumps(snapshot.to_wire()))
        rebuilt = TelemetrySnapshot.from_wire(wire)
        assert rebuilt.to_wire() == snapshot.to_wire()
        assert rebuilt.counters == snapshot.counters
        assert rebuilt.values["v"].total == pytest.approx(4.0)

    def test_empty_stats_infinities_survive(self):
        """A fresh Stats has min=+inf / max=-inf; JSON has no inf."""
        tel = Telemetry()
        tel.count("only.counter")
        snapshot = tel.drain_snapshot("w")
        wire = json.loads(
            json.dumps(snapshot.to_wire(), allow_nan=False)
        )
        rebuilt = TelemetrySnapshot.from_wire(wire)
        assert rebuilt.counters == {"only.counter": 1}


# --- the lease state machine --------------------------------------------------


class TestLeaseTable:
    def test_grant_complete_done(self):
        chunk = points(3)
        table, _clock = make_table([chunk])
        lease, granted = table.grant("w#1")
        assert granted == chunk
        assert lease.n_points == 3
        fresh, duplicates = table.complete(lease.lease_id, rows_for(chunk))
        assert len(fresh) == 3 and duplicates == 0
        assert table.all_done
        assert table.report.points_completed == 3
        assert table.grant("w#2") is None

    def test_heartbeat_extends_deadline(self):
        table, clock = make_table([points(2)], lease_timeout_s=10.0)
        lease, _ = table.grant("w#1")
        clock.advance(8.0)
        assert table.heartbeat(lease.lease_id)
        clock.advance(8.0)  # 16s since grant, 8s since heartbeat
        assert table.expire() == []
        clock.advance(3.0)
        events = table.expire()
        assert [e["action"] for e in events] == ["requeue"]
        assert not table.heartbeat(lease.lease_id)  # lease is gone

    def test_expiry_ladder_requeue_split_quarantine(self):
        chunk = points(2)
        table, clock = make_table([chunk], lease_timeout_s=1.0, max_requeues=1)

        lease, _ = table.grant("w#1")
        clock.advance(2.0)
        assert [e["action"] for e in table.expire()] == ["requeue"]

        lease, granted = table.grant("w#1")
        assert granted == chunk  # same chunk back
        clock.advance(2.0)
        events = table.expire()
        assert [e["action"] for e in events] == ["split"]
        assert table.report.splits == 1

        # Two single-point chunks, each one expiry away from quarantine.
        quarantined = []
        for _ in range(2):
            lease, granted = table.grant("w#2")
            assert len(granted) == 1
            clock.advance(2.0)
            events = table.expire()
            assert [e["action"] for e in events] == ["quarantine"]
            quarantined.append(events[0]["index"])
        assert sorted(quarantined) == [0, 1]
        assert table.all_done
        assert table.report.points_quarantined == 2
        assert "PoisonChunk" in table.report.quarantined[0]["reason"]
        assert table.report.leases_expired == 4

    def test_late_completion_after_expiry_is_deduplicated(self):
        chunk = points(3)
        table, clock = make_table([chunk], lease_timeout_s=1.0)
        stale, _ = table.grant("w#1")
        clock.advance(2.0)
        table.expire()

        fresh_lease, granted = table.grant("w#2")
        fresh, duplicates = table.complete(fresh_lease.lease_id, rows_for(granted))
        assert len(fresh) == 3 and duplicates == 0

        # The first worker was slow, not dead: its copy arrives late and
        # must merge as pure duplicates -- exactly-once per index.
        late_fresh, late_duplicates = table.complete(stale.lease_id, rows_for(chunk))
        assert late_fresh == [] and late_duplicates == 3
        assert table.report.points_completed == 3
        assert table.report.duplicates_dropped == 3

    def test_partial_overlap_dedups_per_index(self):
        chunk = points(4)
        table, clock = make_table([chunk], lease_timeout_s=1.0)
        stale, _ = table.grant("w#1")
        clock.advance(2.0)
        table.expire()
        # The late copy lands FIRST with half the points...
        fresh, duplicates = table.complete(stale.lease_id, rows_for(chunk[:2]))
        assert len(fresh) == 2 and duplicates == 0
        # ...then the regrant completes everything: only the other half counts.
        lease, granted = table.grant("w#2")
        assert [i for i, _ in granted] == [2, 3]  # done indices filtered out
        fresh, duplicates = table.complete(lease.lease_id, rows_for(granted))
        assert len(fresh) == 2 and duplicates == 0
        assert table.all_done

    def test_unknown_lease_completion_rejected(self):
        table, _clock = make_table([points(1)])
        with pytest.raises(ProtocolError, match="unknown lease"):
            table.complete("lease-999999", [])

    def test_release_worker_requeues_only_their_leases(self):
        table, _clock = make_table([points(2), points(2, start=2)])
        mine, _ = table.grant("w#1")
        theirs, theirs_chunk = table.grant("w#2")
        events = table.release_worker("w#1")
        assert [e["action"] for e in events] == ["requeue"]
        assert mine.lease_id not in table.leases
        assert theirs.lease_id in table.leases
        table.complete(theirs.lease_id, rows_for(theirs_chunk))
        lease, granted = table.grant("w#3")
        assert lease.chunk_id == mine.chunk_id

    def test_reported_failure_requeues(self):
        table, _clock = make_table([points(2)])
        lease, _ = table.grant("w#1")
        events = table.fail(lease.lease_id, "OOM")
        assert [e["action"] for e in events] == ["requeue"]
        assert events[0]["reason"] == "worker failure: OOM"
        assert table.report.worker_failures == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="lease_timeout_s"):
            LeaseTable([points(1)], lease_timeout_s=0.0)
        with pytest.raises(ValueError, match="max_requeues"):
            LeaseTable([points(1)], max_requeues=-1)


# --- retry backoff jitter (satellite) -----------------------------------------


class TestRetryJitter:
    def test_jitter_is_deterministic_and_bounded(self):
        policy = ExecutionPolicy(retries=3, retry_backoff_s=0.5)
        point = DesignPoint(n_bits=8, lna_noise_rms=2e-6)
        delays = [retry_delay_s(policy, point, attempt) for attempt in (1, 2, 3)]
        assert delays == [retry_delay_s(policy, point, a) for a in (1, 2, 3)]
        for attempt, delay in zip((1, 2, 3), delays):
            assert 0.0 <= delay <= 0.5 * 2 ** (attempt - 1)

    def test_jitter_decorrelates_points(self):
        policy = ExecutionPolicy(retries=1, retry_backoff_s=1.0)
        a = DesignPoint(n_bits=8, lna_noise_rms=2e-6)
        b = DesignPoint(n_bits=6, lna_noise_rms=2e-6)
        assert retry_delay_s(policy, a, 1) != retry_delay_s(policy, b, 1)

    def test_zero_backoff_stays_zero(self):
        """The deterministic 0-backoff test path must not start sleeping."""
        policy = ExecutionPolicy(retries=3, retry_backoff_s=0.0)
        point = DesignPoint(n_bits=8, lna_noise_rms=2e-6)
        assert retry_delay_s(policy, point, 1) == 0.0
        assert retry_delay_s(policy, point, 5) == 0.0

    def test_jitter_off_gives_full_ceiling(self):
        policy = ExecutionPolicy(retries=2, retry_backoff_s=0.25, retry_jitter=False)
        point = DesignPoint(n_bits=8, lna_noise_rms=2e-6)
        assert retry_delay_s(policy, point, 1) == 0.25
        assert retry_delay_s(policy, point, 3) == 1.0


# --- evaluator spec resolution ------------------------------------------------


def make_toy_evaluator(master_seed: int = 7):
    """Factory target for the ``callable`` spec kind."""
    return ToyEvaluator(master_seed=master_seed)


class TestResolveSpec:
    def test_callable_spec(self):
        evaluator = resolve_spec(
            {
                "kind": "callable",
                "target": "tests.test_fleet:make_toy_evaluator",
                "args": {"master_seed": 11},
            }
        )
        assert evaluator.fingerprint() == "toy:11"

    def test_bad_specs_raise(self):
        with pytest.raises(ValueError, match="must be a dict"):
            resolve_spec("smoke")
        with pytest.raises(ValueError, match="unknown evaluator spec kind"):
            resolve_spec({"kind": "carrier-pigeon"})
        with pytest.raises(ValueError, match="module:attr"):
            resolve_spec({"kind": "callable", "target": "no-colon"})


# --- clean end-to-end fleet runs ----------------------------------------------


class TestFleetExplorer:
    def test_fleet_matches_serial(self):
        explorer = DesignSpaceExplorer(ToyEvaluator())
        space = smoke_grid()
        serial = explorer.explore(space, name="serial")
        fleet = explorer.explore(
            space,
            name="fleet",
            executor="fleet",
            fleet=FleetOptions(spawn_workers=3),
        )
        assert_sweeps_identical(serial, fleet)

    def test_clean_run_evaluates_each_point_exactly_once(self):
        tel = Telemetry()
        explorer = DesignSpaceExplorer(ToyEvaluator())
        space = smoke_grid()
        result = explorer.explore(
            space,
            executor="fleet",
            fleet=FleetOptions(spawn_workers=3),
            telemetry=tel,
        )
        report = explorer.last_fleet_report
        assert report is not None
        assert report.points_total == space.size == len(result)
        assert report.points_completed == space.size
        assert report.points_quarantined == 0
        assert report.duplicates_dropped == 0
        assert report.requeues == 0
        # Worker telemetry merges home: total evaluator calls over the
        # fleet equal the grid size -- nothing re-evaluated, nothing lost.
        assert tel.counters["fleet.worker.evaluator_calls"] == space.size
        assert sum(w["points"] for w in report.workers.values()) == space.size

    def test_fair_start_spreads_first_leases(self):
        """wait_for_workers guarantees every worker at least one chunk.

        Without the gate a fast worker may drain the whole (cheap)
        queue before its siblings finish connecting -- which is why
        the chaos suite relies on this property to make its fault
        injection deterministic.
        """
        explorer = DesignSpaceExplorer(ToyEvaluator())
        space = smoke_grid()
        explorer.explore(
            space,
            executor="fleet",
            fleet=FleetOptions(spawn_workers=3, wait_for_workers=3),
        )
        report = explorer.last_fleet_report
        assert sorted(report.workers) == ["worker-0", "worker-1", "worker-2"]
        assert all(w["points"] > 0 for w in report.workers.values())
        assert report.points_completed == space.size

    def test_strict_is_rejected(self):
        explorer = DesignSpaceExplorer(ToyEvaluator())
        with pytest.raises(ValueError, match="strict=True is unsupported"):
            explorer.explore(smoke_grid(), executor="fleet", strict=True)

    def test_fleet_options_demand_fleet_executor(self):
        explorer = DesignSpaceExplorer(ToyEvaluator())
        with pytest.raises(ValueError, match="require executor='fleet'"):
            explorer.explore(smoke_grid(), fleet=FleetOptions())

    def test_worker_cache_prefills_second_run(self, tmp_path):
        tel = Telemetry()
        explorer = DesignSpaceExplorer(ToyEvaluator())
        space = smoke_grid()
        options = FleetOptions(spawn_workers=2, worker_cache_dir=str(tmp_path))
        first = explorer.explore(space, executor="fleet", fleet=options)
        second = explorer.explore(
            space, executor="fleet", fleet=options, telemetry=tel
        )
        assert_sweeps_identical(first, second)
        assert tel.counters.get("fleet.worker.evaluator_calls", 0) == 0
        assert tel.counters["fleet.worker.cache_hits"] == space.size

    def test_manifest_carries_fleet_section(self):
        from repro.experiments.runner import build_run_manifest

        tel = Telemetry()
        explorer = DesignSpaceExplorer(ToyEvaluator())
        space = smoke_grid()
        result = explorer.explore(
            space,
            name="fleet-manifest",
            executor="fleet",
            fleet=FleetOptions(spawn_workers=2),
            telemetry=tel,
        )
        manifest = build_run_manifest(
            result, tel, "smoke", executor="fleet", n_workers=2
        )
        assert manifest.schema == MANIFEST_SCHEMA_VERSION == 7
        assert manifest.fleet["points_total"] == space.size
        assert manifest.fleet["points_completed"] == space.size
        assert sorted(manifest.fleet["workers"]) == ["worker-0", "worker-1"]
        rebuilt = RunManifest.from_dict(json.loads(json.dumps(manifest.to_dict())))
        assert rebuilt.fleet == manifest.fleet

    def test_fingerprint_mismatch_refuses_worker(self):
        """A worker on the wrong evaluator must refuse, not poison."""
        from repro.fleet import FleetCoordinator, FleetWorker

        coordinator = FleetCoordinator(
            evaluator_fingerprint(ToyEvaluator(master_seed=1)),
            policy=DEFAULT_POLICY,
        )
        try:
            worker = FleetWorker(
                coordinator.endpoint, ToyEvaluator(master_seed=2), label="wrong"
            )
            with pytest.raises(ProtocolError, match="fingerprint mismatch"):
                worker.run()
        finally:
            coordinator.close()
