"""Tests of the signal sources."""

import numpy as np
import pytest

from repro.blocks.sources import from_array, multitone, sine
from repro.metrics.snr import analyze_sine


class TestSine:
    def test_amplitude_and_length(self):
        signal = sine(frequency=50.0, amplitude=0.5, sample_rate=1000.0, n_samples=1000)
        assert signal.data.size == 1000
        assert signal.peak() == pytest.approx(0.5, rel=1e-3)

    def test_duration_alternative(self):
        signal = sine(frequency=50.0, amplitude=1.0, sample_rate=1000.0, duration=0.5)
        assert signal.data.size == 500

    def test_requires_exactly_one_length_spec(self):
        with pytest.raises(ValueError, match="exactly one"):
            sine(frequency=1.0, amplitude=1.0, sample_rate=10.0)
        with pytest.raises(ValueError, match="exactly one"):
            sine(frequency=1.0, amplitude=1.0, sample_rate=10.0, duration=1.0, n_samples=10)

    def test_coherent_snapping(self):
        signal = sine(frequency=49.7, amplitude=1.0, sample_rate=1000.0, n_samples=1000)
        snapped = signal.annotations["frequency"]
        cycles = snapped * 1000 / 1000.0
        assert cycles == pytest.approx(round(cycles))

    def test_coherent_sine_has_clean_spectrum(self):
        signal = sine(frequency=41.0, amplitude=1.0, sample_rate=1000.0, n_samples=2048)
        analysis = analyze_sine(signal.data)
        assert analysis.sndr_db > 100  # numerically pure tone

    def test_nyquist_rejected(self):
        with pytest.raises(ValueError, match="Nyquist"):
            sine(frequency=500.0, amplitude=1.0, sample_rate=1000.0, n_samples=100)

    def test_dc_offset(self):
        signal = sine(
            frequency=10.0, amplitude=0.1, sample_rate=1000.0, n_samples=1000, dc_offset=2.0
        )
        assert np.mean(signal.data) == pytest.approx(2.0, abs=1e-3)


class TestMultitone:
    def test_contains_requested_tones(self):
        signal = multitone([50.0, 120.0], [1.0, 0.5], 1000.0, 2048)
        spectrum = np.abs(np.fft.rfft(signal.data))
        freqs = np.fft.rfftfreq(2048, 1 / 1000.0)
        for target in signal.annotations["frequencies"]:
            bin_idx = int(round(target * 2048 / 1000.0))
            assert spectrum[bin_idx] > 0.3 * spectrum.max()
            assert abs(freqs[bin_idx] - target) < 0.5

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            multitone([1.0, 2.0], [1.0], 100.0, 256)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            multitone([], [], 100.0, 256)


class TestFromArray:
    def test_wraps_and_annotates(self):
        signal = from_array(np.arange(4), 100.0, record_id="r1")
        assert signal.sample_rate == 100.0
        assert signal.annotations["record_id"] == "r1"
        assert signal.annotations["source"] == "array"
        assert signal.data.dtype == np.float64
