"""EvaluationCache parity between the scalar and batched executors.

The cache key is ``(evaluator fingerprint, point description)`` -- no
executor in sight -- so a sweep warmed by one executor must be served
entirely from cache by the other, with identical results.  These tests
pin that contract in both directions and assert the exact hit/miss
accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.execution import EvaluationCache
from repro.core.explorer import DesignSpaceExplorer, FrontEndEvaluator
from repro.power.technology import DesignPoint

F_SAMPLE = 2.1 * 256.0


@pytest.fixture
def evaluator():
    records = np.random.default_rng(5).normal(0.0, 20e-6, size=(1, 64))
    return FrontEndEvaluator(records, None, F_SAMPLE, seed=13)


@pytest.fixture
def points():
    return [
        DesignPoint(n_bits=n_bits, lna_noise_rms=noise)
        for n_bits in (6, 8)
        for noise in (2e-6, 20e-6)
    ]


def assert_same_results(first, second):
    for expected, actual in zip(first, second):
        assert expected.point.describe() == actual.point.describe()
        assert expected.metrics == actual.metrics


@pytest.mark.parametrize(
    "warm_executor, replay_executor",
    [("serial", "batched"), ("batched", "serial")],
)
def test_cache_warmed_by_one_executor_serves_the_other(
    tmp_path, evaluator, points, warm_executor, replay_executor
):
    explorer = DesignSpaceExplorer(evaluator)

    warm_cache = EvaluationCache(tmp_path)
    warmed = explorer.explore(points, executor=warm_executor, cache=warm_cache)
    assert warm_cache.hits == 0
    assert warm_cache.misses == len(points)

    replay_cache = EvaluationCache(tmp_path)
    replayed = explorer.explore(points, executor=replay_executor, cache=replay_cache)
    assert replay_cache.hits == len(points)
    assert replay_cache.misses == 0
    assert_same_results(warmed, replayed)


def test_partial_warm_batches_only_the_misses(tmp_path, evaluator, points):
    """A half-warm cache: hits come from disk, misses run batched."""
    explorer = DesignSpaceExplorer(evaluator)
    half = points[: len(points) // 2]

    explorer.explore(half, executor="serial", cache=EvaluationCache(tmp_path))

    cache = EvaluationCache(tmp_path)
    full = explorer.explore(points, executor="batched", cache=cache)
    assert cache.hits == len(half)
    assert cache.misses == len(points) - len(half)

    fresh = explorer.explore(points, executor="serial")
    assert_same_results(fresh, full)


def test_cached_batched_results_round_trip_identically(tmp_path, evaluator, points):
    """put/get through JSON preserves batched metrics bit for bit."""
    explorer = DesignSpaceExplorer(evaluator)
    cache = EvaluationCache(tmp_path)
    batched = explorer.explore(points, executor="batched", cache=cache)

    replay = explorer.explore(points, executor="batched", cache=cache)
    assert cache.hits == len(points)
    assert_same_results(batched, replay)
