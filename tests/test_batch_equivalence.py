"""Property-based scalar/batched equivalence suite.

Hypothesis draws random design-point grids and block parameterisations
and asserts the batched engine reproduces the scalar path within 1e-9
relative tolerance per point (in practice the kernels are bit-identical;
the tolerance is the contract, not the observation).  Covers:

* full ``explore()`` sweeps, serial vs batched executor, including
  seeded-noise blocks (LNA noise, comparator noise are active by
  construction);
* direct block kernels (LNA / S&H / SAR) with heterogeneous rows,
  including rows that disable a feature others enable;
* the CS architecture end to end (small ``n_phi`` so reconstruction
  stays cheap);
* fault-wrapped chains, which must *fall back* to the scalar path and
  still produce identical results.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.blocks.lna import LNA
from repro.blocks.sample_hold import SampleHold
from repro.blocks.sar_adc import SarAdc
from repro.core.batch import BatchCompiler, BatchSignal, supports_batching
from repro.core.block import SimulationContext
from repro.core.explorer import DesignSpaceExplorer, FrontEndEvaluator
from repro.core.signal import Signal
from repro.faults.injection import FaultSuite
from repro.faults.models import GainDrift
from repro.power.technology import DesignPoint

F_SAMPLE = 2.1 * 256.0
RTOL = 1e-9

#: Property-test budget: the sweeps under test run real simulations, so
#: a handful of well-shrunk examples beats hundreds of shallow ones.
COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def make_evaluator(n_samples: int = 64) -> FrontEndEvaluator:
    records = np.random.default_rng(11).normal(0.0, 20e-6, size=(1, n_samples))
    return FrontEndEvaluator(records, None, F_SAMPLE, seed=7)


def assert_equivalent(serial, batched) -> None:
    assert len(serial) == len(batched)
    for expected, actual in zip(serial, batched):
        assert expected.point.describe() == actual.point.describe()
        assert expected.error == actual.error
        assert set(expected.metrics) == set(actual.metrics)
        for name, value in expected.metrics.items():
            assert math.isclose(value, actual.metrics[name], rel_tol=RTOL, abs_tol=0.0), (
                f"{expected.point.describe()} {name}: {value} vs {actual.metrics[name]}"
            )


baseline_points = st.lists(
    st.builds(
        DesignPoint,
        n_bits=st.sampled_from([6, 8, 10]),
        lna_noise_rms=st.floats(1e-7, 30e-6, allow_nan=False),
        lna_bw_ratio=st.sampled_from([1.0, 3.0]),
    ),
    min_size=1,
    max_size=6,
)


@settings(max_examples=12, **COMMON)
@given(points=baseline_points)
def test_explore_batched_matches_serial(points):
    """Random baseline grids: both executors agree metric for metric."""
    evaluator = make_evaluator()
    explorer = DesignSpaceExplorer(evaluator)
    serial = explorer.explore(points, executor="serial")
    batched = explorer.explore(points, executor="batched")
    assert_equivalent(serial, batched)


@settings(max_examples=4, **COMMON)
@given(
    cs_m=st.sampled_from([8, 16]),
    lna_noise_rms=st.floats(1e-6, 10e-6, allow_nan=False),
)
def test_explore_cs_architecture_matches_serial(cs_m, lna_noise_rms):
    """CS chains (encoder + reconstruction) agree across executors."""
    evaluator = make_evaluator(n_samples=64)
    points = [
        DesignPoint(
            n_bits=8,
            lna_noise_rms=lna_noise_rms,
            use_cs=True,
            cs_m=cs_m,
            cs_n_phi=32,
        )
    ]
    explorer = DesignSpaceExplorer(evaluator)
    serial = explorer.explore(points, executor="serial")
    batched = explorer.explore(points, executor="batched")
    assert_equivalent(serial, batched)


def run_blocks_both_ways(blocks, signal, seeds):
    """Per-block scalar outputs vs the stacked ``process_batch`` rows."""
    scalar = []
    for block, seed in zip(blocks, seeds):
        ctx = SimulationContext(seed=seed)
        scalar.append(block.process(signal, ctx).data)
    ctxs = [SimulationContext(seed=seed) for seed in seeds]
    batch = BatchSignal.broadcast(signal, len(blocks))
    stacked = blocks[0].process_batch(batch, blocks, ctxs)
    return scalar, [stacked.row(i).data for i in range(len(blocks))]


def assert_rows_match(scalar, batched):
    for i, (expected, actual) in enumerate(zip(scalar, batched)):
        np.testing.assert_allclose(actual, expected, rtol=RTOL, atol=0.0, err_msg=f"row {i}")


@settings(max_examples=25, **COMMON)
@given(
    params=st.lists(
        st.tuples(
            st.floats(1.0, 2000.0),  # gain
            st.floats(0.0, 50e-6),  # noise_rms
            st.one_of(st.none(), st.floats(50.0, 5000.0)),  # bandwidth
            st.floats(0.0, 1e-2),  # hd3_at_fs
            st.one_of(st.none(), st.floats(0.5, 2.0)),  # clip_level
        ),
        min_size=1,
        max_size=5,
    ),
    data=st.data(),
)
def test_lna_kernel_matches_scalar(params, data):
    blocks = [
        LNA(gain=g, noise_rms=n, bandwidth=bw, hd3_at_fs=h, clip_level=c)
        for g, n, bw, h, c in params
    ]
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    signal = Signal(data=rng.normal(0.0, 1e-3, size=48), sample_rate=F_SAMPLE)
    seeds = list(range(100, 100 + len(blocks)))
    scalar, batched = run_blocks_both_ways(blocks, signal, seeds)
    assert_rows_match(scalar, batched)


@settings(max_examples=25, **COMMON)
@given(
    params=st.lists(
        st.tuples(
            st.floats(1e-15, 1e-12),  # capacitance
            st.floats(0.0, 1e-5),  # aperture_jitter
            st.floats(0.0, 10.0),  # droop_rate
            st.booleans(),  # kt noise on/off
        ),
        min_size=1,
        max_size=5,
    ),
    seed=st.integers(0, 2**31),
)
def test_sample_hold_kernel_matches_scalar(params, seed):
    from repro.util.constants import KT_ROOM

    blocks = [
        SampleHold(capacitance=c, aperture_jitter=j, droop_rate=d, kt=KT_ROOM if noisy else 0.0)
        for c, j, d, noisy in params
    ]
    rng = np.random.default_rng(seed)
    signal = Signal(data=rng.normal(0.0, 0.5, size=48), sample_rate=F_SAMPLE)
    seeds = list(range(7, 7 + len(blocks)))
    scalar, batched = run_blocks_both_ways(blocks, signal, seeds)
    assert_rows_match(scalar, batched)


@settings(max_examples=25, **COMMON)
@given(
    n_bits=st.sampled_from([4, 8, 12]),
    params=st.lists(
        st.tuples(
            st.floats(0.0, 5e-3),  # comparator_noise_rms (0 mixes noiseless rows)
            st.floats(0.0, 0.05),  # dac_mismatch_sigma
            st.integers(0, 2**16),  # mismatch_seed
        ),
        min_size=1,
        max_size=5,
    ),
    seed=st.integers(0, 2**31),
)
def test_sar_adc_kernel_matches_scalar(n_bits, params, seed):
    blocks = [
        SarAdc(n_bits=n_bits, comparator_noise_rms=cn, dac_mismatch_sigma=dm, mismatch_seed=ms)
        for cn, dm, ms in params
    ]
    rng = np.random.default_rng(seed)
    signal = Signal(data=rng.uniform(-1.2, 1.2, size=48), sample_rate=F_SAMPLE)
    seeds = list(range(42, 42 + len(blocks)))
    scalar, batched = run_blocks_both_ways(blocks, signal, seeds)
    assert_rows_match(scalar, batched)


class TestFaultFallback:
    """Fault-wrapped chains have no batch kernels: the compiler must send
    every point down the scalar path, and results must match serial."""

    def make_faulty_evaluator(self):
        suite = FaultSuite(entries=(("lna", GainDrift(severity=0.5)),))
        return make_evaluator().with_chain_transform(suite)

    def test_compiler_demotes_fault_wrapped_chains(self):
        evaluator = self.make_faulty_evaluator()
        points = [DesignPoint(n_bits=8, lna_noise_rms=5e-6)]
        batches, fallback = BatchCompiler(evaluator).compile(list(enumerate(points)))
        assert not batches
        assert [entry.index for entry in fallback] == [0]
        assert fallback[0].reason.startswith("no_batch_kernel:")

    @settings(max_examples=6, **COMMON)
    @given(points=baseline_points)
    def test_faulty_sweep_falls_back_and_matches_serial(self, points):
        evaluator = self.make_faulty_evaluator()
        explorer = DesignSpaceExplorer(evaluator)
        serial = explorer.explore(points, executor="serial")
        batched = explorer.explore(points, executor="batched")
        assert_equivalent(serial, batched)

    def test_fallback_counter_reported(self):
        from repro.core.telemetry import Telemetry

        evaluator = self.make_faulty_evaluator()
        tel = Telemetry()
        DesignSpaceExplorer(evaluator).explore(
            [DesignPoint(n_bits=8, lna_noise_rms=5e-6)],
            executor="batched",
            telemetry=tel,
        )
        assert tel.counters["explore.batch_fallback_points"] == 1


def test_evaluator_supports_batch_protocol():
    assert supports_batching(make_evaluator())
