"""Tests of the LNA behavioural model (paper Fig. 3)."""

import numpy as np
import pytest

from repro.blocks.lna import LNA
from repro.blocks.sources import sine
from repro.core.block import SimulationContext
from repro.core.signal import Signal
from repro.metrics.snr import analyze_sine


def run_block(block, signal, seed=0):
    return block.process(signal, SimulationContext(seed=seed))


class TestGain:
    def test_ideal_gain(self):
        lna = LNA(gain=100.0)
        out = run_block(lna, Signal(np.array([1e-3, -2e-3]), 1000.0))
        np.testing.assert_allclose(out.data, [0.1, -0.2])

    def test_gain_annotation_recorded(self):
        lna = LNA(gain=42.0)
        out = run_block(lna, Signal(np.zeros(4), 1000.0))
        assert out.annotations["lna_gain"] == 42.0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            run_block(LNA(), Signal(np.zeros((2, 2)), 1000.0))


class TestNoise:
    def test_output_noise_is_gain_times_input_noise(self):
        lna = LNA(gain=1000.0, noise_rms=5e-6)
        out = run_block(lna, Signal(np.zeros(200_000), 1000.0))
        assert np.std(out.data) == pytest.approx(5e-3, rel=0.02)

    def test_noise_reproducible_per_seed(self):
        lna = LNA(gain=1.0, noise_rms=1e-3)
        sig = Signal(np.zeros(64), 1000.0)
        a = run_block(lna, sig, seed=1).data
        b = run_block(lna, sig, seed=1).data
        np.testing.assert_array_equal(a, b)
        c = run_block(lna, sig, seed=2).data
        assert not np.array_equal(a, c)

    def test_zero_noise_is_deterministic(self):
        lna = LNA(gain=2.0, noise_rms=0.0)
        sig = Signal(np.ones(8), 1000.0)
        np.testing.assert_array_equal(run_block(lna, sig).data, np.full(8, 2.0))


class TestBandwidth:
    def test_in_band_tone_passes(self):
        lna = LNA(gain=1.0, bandwidth=100.0)
        tone = sine(frequency=10.0, amplitude=1.0, sample_rate=1000.0, n_samples=4096)
        out = run_block(lna, tone)
        assert np.std(out.data) == pytest.approx(np.std(tone.data), rel=0.05)

    def test_out_of_band_tone_attenuated(self):
        lna = LNA(gain=1.0, bandwidth=20.0)
        tone = sine(frequency=400.0, amplitude=1.0, sample_rate=1000.0, n_samples=4096)
        out = run_block(lna, tone)
        assert np.std(out.data) < 0.2 * np.std(tone.data)

    def test_bandwidth_above_nyquist_is_noop(self):
        lna = LNA(gain=1.0, bandwidth=1e6)
        tone = sine(frequency=100.0, amplitude=1.0, sample_rate=1000.0, n_samples=1024)
        np.testing.assert_array_equal(run_block(lna, tone).data, tone.data)


class TestNonlinearityAndClipping:
    def test_hd3_matches_spec(self):
        hd3 = 1e-3
        lna = LNA(gain=1.0, hd3_at_fs=hd3, clip_level=1.0)
        tone = sine(frequency=50.0, amplitude=0.99, sample_rate=4096.0, n_samples=4096)
        out = run_block(lna, tone)
        analysis = analyze_sine(out.data, n_harmonics=3)
        measured_hd3 = 10 ** (analysis.thd_db / 20)
        assert measured_hd3 == pytest.approx(hd3, rel=0.2)

    def test_small_signal_distortion_negligible(self):
        lna = LNA(gain=1.0, hd3_at_fs=1e-3, clip_level=1.0)
        tone = sine(frequency=50.0, amplitude=0.05, sample_rate=4096.0, n_samples=4096)
        analysis = analyze_sine(run_block(lna, tone).data, n_harmonics=3)
        assert analysis.thd_db < -80

    def test_clipping_limits_output(self):
        lna = LNA(gain=10.0, clip_level=1.0)
        out = run_block(lna, Signal(np.array([1.0, -1.0, 0.05]), 1000.0))
        np.testing.assert_allclose(out.data, [1.0, -1.0, 0.5])

    def test_no_clip_when_disabled(self):
        lna = LNA(gain=10.0, clip_level=None)
        out = run_block(lna, Signal(np.array([1.0]), 1000.0))
        assert out.data[0] == pytest.approx(10.0)


class TestFromDesign:
    def test_wires_design_parameters(self, baseline_point):
        lna = LNA.from_design(baseline_point)
        assert lna.gain == baseline_point.lna_gain
        assert lna.noise_rms == baseline_point.lna_noise_rms
        assert lna.bandwidth == baseline_point.bw_lna
        assert lna.clip_level == baseline_point.v_fs / 2

    def test_power_reports_lna_row(self, baseline_point):
        from repro.power.models import lna_power

        lna = LNA.from_design(baseline_point)
        assert lna.power(baseline_point) == {"lna": lna_power(baseline_point)}
