"""Tests of FrontEndEvaluator and DesignSpaceExplorer."""

import numpy as np
import pytest

from repro.core.explorer import DesignSpaceExplorer, FrontEndEvaluator
from repro.core.parameters import ParameterSpace
from repro.core.results import Evaluation
from repro.power.technology import DesignPoint

FS = 2.1 * 256.0


def small_corpus(n_records=4, frames=2, seed=0):
    """Tiny smooth corpus: enough for SNR metrics, no detector."""
    rng = np.random.default_rng(seed)
    from scipy import signal as sp

    b, a = sp.butter(4, 20, fs=FS)
    records = np.stack(
        [sp.lfilter(b, a, rng.normal(size=frames * 384)) * 1e-4 for _ in range(n_records)]
    )
    return records


class TestFrontEndEvaluator:
    def test_baseline_metrics_present(self):
        evaluator = FrontEndEvaluator(small_corpus(), None, FS, seed=1)
        evaluation = evaluator.evaluate(DesignPoint(n_bits=8, lna_noise_rms=2e-6))
        assert set(evaluation.metrics) == {"snr_db", "power_w", "power_uw", "area_units"}
        assert evaluation.metrics["snr_db"] > 10
        assert evaluation.breakdown  # per-block power recorded

    def test_cs_point_evaluates(self):
        evaluator = FrontEndEvaluator(small_corpus(), None, FS, seed=1)
        point = DesignPoint(n_bits=8, lna_noise_rms=8e-6, use_cs=True, cs_m=150)
        evaluation = evaluator.evaluate(point)
        assert evaluation.metrics["power_uw"] < 4.0
        assert evaluation.metrics["snr_db"] > 3.0

    def test_accuracy_requires_detector(self):
        evaluator = FrontEndEvaluator(small_corpus(), None, FS, seed=1)
        evaluation = evaluator.evaluate(DesignPoint())
        assert "accuracy" not in evaluation.metrics

    def test_deterministic_per_seed(self):
        records = small_corpus()
        e1 = FrontEndEvaluator(records, None, FS, seed=5).evaluate(DesignPoint())
        e2 = FrontEndEvaluator(records, None, FS, seed=5).evaluate(DesignPoint())
        assert e1.metrics == e2.metrics

    def test_rate_mismatch_rejected(self):
        evaluator = FrontEndEvaluator(small_corpus(), None, 512.0, seed=1)
        with pytest.raises(ValueError, match="resample"):
            evaluator.evaluate(DesignPoint(bw_in=256.0))

    def test_frame_misalignment_rejected(self):
        records = small_corpus()[:, :500]  # not a multiple of 384
        evaluator = FrontEndEvaluator(records, None, FS, seed=1)
        with pytest.raises(ValueError, match="multiple"):
            evaluator.evaluate(DesignPoint(use_cs=True, cs_m=150))

    def test_label_count_checked(self):
        with pytest.raises(ValueError, match="labels"):
            FrontEndEvaluator(small_corpus(4), np.zeros(3, dtype=int), FS)

    def test_records_must_be_2d(self):
        with pytest.raises(ValueError):
            FrontEndEvaluator(np.zeros(100), None, FS)

    def test_unfitted_detector_rejected(self):
        from repro.detection.classifier import SeizureDetector

        with pytest.raises(ValueError, match="fitted"):
            FrontEndEvaluator(
                small_corpus(), np.zeros(4, dtype=int), FS, detector=SeizureDetector(FS)
            )


class TestDesignSpaceExplorer:
    def fake_evaluator(self, point):
        return Evaluation(
            point=point,
            metrics={"power_uw": point.n_bits * 1.0, "accuracy": 0.9},
        )

    def test_explores_parameter_space(self):
        explorer = DesignSpaceExplorer(self.fake_evaluator)
        space = ParameterSpace({"n_bits": [6, 7, 8]})
        result = explorer.explore(space, name="bits")
        assert len(result) == 3
        assert result.values("power_uw") == [6.0, 7.0, 8.0]

    def test_explores_point_iterable(self):
        explorer = DesignSpaceExplorer(self.fake_evaluator)
        result = explorer.explore([DesignPoint(n_bits=6), DesignPoint(n_bits=8)])
        assert len(result) == 2

    def test_progress_callback(self):
        calls = []
        explorer = DesignSpaceExplorer(self.fake_evaluator)
        explorer.explore(
            [DesignPoint(n_bits=6)], progress=lambda i, e: calls.append((i, e))
        )
        assert len(calls) == 1
        assert calls[0][0] == 0

    def test_empty_space_rejected(self):
        explorer = DesignSpaceExplorer(self.fake_evaluator)
        with pytest.raises(ValueError):
            explorer.explore([])

    def test_real_evaluator_sweep(self):
        evaluator = FrontEndEvaluator(small_corpus(), None, FS, seed=1)
        explorer = DesignSpaceExplorer(evaluator)
        space = ParameterSpace({"lna_noise_rms": [2e-6, 20e-6]})
        result = explorer.explore(space)
        # Power must fall and SNR must fall as noise rises.
        assert result[0].metrics["power_uw"] > result[1].metrics["power_uw"]
        assert result[0].metrics["snr_db"] > result[1].metrics["snr_db"]


class TestSampleRateTolerance:
    """Regression: the 2 % tolerance must be symmetric (relative to the
    larger of the two rates), not divided by point.f_sample only."""

    def test_two_percent_below_accepted(self):
        # f_sample = 0.9802 * record rate: |diff| / max(rates) = 1.98 %,
        # but |diff| / f_sample = 2.02 % -- the old asymmetric check
        # (dividing by f_sample only) rejected this point.
        records = small_corpus()
        evaluator = FrontEndEvaluator(records, None, FS, seed=1)
        point = DesignPoint(bw_in=256.0 * 0.9802)
        evaluation = evaluator.evaluate(point)
        assert "snr_db" in evaluation.metrics

    def test_two_percent_above_accepted(self):
        records = small_corpus()
        evaluator = FrontEndEvaluator(records, None, FS, seed=1)
        point = DesignPoint(bw_in=256.0 / 0.9802)
        evaluation = evaluator.evaluate(point)
        assert "snr_db" in evaluation.metrics

    def test_three_percent_rejected_both_sides(self):
        records = small_corpus()
        evaluator = FrontEndEvaluator(records, None, FS, seed=1)
        with pytest.raises(ValueError, match="resample"):
            evaluator.evaluate(DesignPoint(bw_in=256.0 * 0.97))
        with pytest.raises(ValueError, match="resample"):
            evaluator.evaluate(DesignPoint(bw_in=256.0 / 0.97))
