"""Tests of the signal-quality metrics."""

import numpy as np
import pytest

from repro.blocks.sar_adc import ideal_quantize
from repro.blocks.sources import sine
from repro.metrics.quality import correlation, nmse, prd
from repro.metrics.snr import analyze_sine, enob_sine, sndr_sine, snr_vs_reference


class TestSnrVsReference:
    def test_known_snr(self, rng):
        reference = rng.normal(size=100_000)
        noisy = reference + 0.1 * rng.normal(size=100_000)
        # SNR = 20 dB for 10 % noise.
        assert snr_vs_reference(reference, noisy) == pytest.approx(20.0, abs=0.2)

    def test_gain_invariance(self, rng):
        reference = rng.normal(size=10_000)
        noisy = reference + 0.05 * rng.normal(size=10_000)
        direct = snr_vs_reference(reference, noisy)
        scaled = snr_vs_reference(reference, 3.7 * noisy)
        assert scaled == pytest.approx(direct, abs=1e-9)

    def test_perfect_copy_infinite(self, rng):
        reference = rng.normal(size=100)
        assert snr_vs_reference(reference, reference.copy()) == np.inf

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            snr_vs_reference(np.zeros(4), np.zeros(5))

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            snr_vs_reference(np.zeros(4), np.ones(4))

    def test_dead_channel_is_minus_infinity(self):
        # An identically-zero processed stream carries no signal at all;
        # it must rank below any noisy-but-alive channel, never at 0 dB.
        assert snr_vs_reference(np.ones(8), np.zeros(8)) == -np.inf


class TestAnalyzeSine:
    def test_ideal_quantizer_sndr(self):
        tone = sine(frequency=37.0, amplitude=0.99, sample_rate=4096.0, n_samples=16384)
        quantized = ideal_quantize(tone.data, n_bits=10, v_fs=2.0)
        analysis = analyze_sine(quantized)
        # Ideal 10-bit SNDR = 61.96 dB + small margin for loading.
        assert analysis.sndr_db == pytest.approx(61.9, abs=2.0)
        assert analysis.enob == pytest.approx(10.0, abs=0.35)

    def test_fundamental_located(self):
        n = 4096
        tone = sine(frequency=64.0, amplitude=1.0, sample_rate=1024.0, n_samples=n)
        analysis = analyze_sine(tone.data)
        expected_bin = round(tone.annotations["frequency"] * n / 1024.0)
        assert analysis.fundamental_bin == expected_bin

    def test_harmonic_distortion_counted_in_thd(self):
        tone = sine(frequency=37.0, amplitude=1.0, sample_rate=4096.0, n_samples=8192)
        distorted = tone.data + 0.01 * tone.data**3
        analysis = analyze_sine(distorted)
        assert -55 < analysis.thd_db < -35

    def test_snr_excludes_harmonics(self):
        tone = sine(frequency=37.0, amplitude=1.0, sample_rate=4096.0, n_samples=8192)
        distorted = tone.data + 0.01 * np.sign(tone.data) * tone.data**2
        analysis = analyze_sine(distorted)
        assert analysis.snr_db > analysis.sndr_db

    def test_aliased_harmonics_folded(self):
        # Fundamental near Nyquist/2: 3rd harmonic aliases but must still
        # be attributed to distortion, not noise.
        n = 8192
        fs = 1000.0
        tone = sine(frequency=220.0, amplitude=1.0, sample_rate=fs, n_samples=n)
        distorted = tone.data - 0.02 * tone.data**3
        analysis = analyze_sine(distorted, n_harmonics=3)
        assert analysis.thd_db > -60  # visible distortion
        assert analysis.snr_db > analysis.sndr_db + 3

    def test_harmonics_folding_onto_dc_and_nyquist(self):
        # n=64 record, fundamental at bin 16: the 2nd harmonic lands on
        # Nyquist (bin 32) and the 4th folds to DC (bin 0, here carrying
        # the 0.05 offset).  Both must count as distortion.
        n = 64
        k = np.arange(n)
        data = (
            np.sin(2 * np.pi * 16 * k / n)
            + 0.1 * np.cos(2 * np.pi * 32 * k / n)
            + 0.05
        )
        analysis = analyze_sine(data, n_harmonics=4)
        assert analysis.fundamental_bin == 16
        # p_fund = 1024; p_harm = 40.96 (Nyquist) + 10.24 (DC) = 51.2
        # => THD = 10*log10(51.2/1024) = -13.0103 dB.
        assert analysis.thd_db == pytest.approx(-13.0103, abs=1e-3)
        assert analysis.sndr_db == pytest.approx(13.0103, abs=1e-3)

    def test_harmonic_folding_into_dc_guard_band(self):
        # Fundamental at bin 13 with exclude_dc_bins=2: the 5th harmonic
        # folds to bin 65 % 64 = 1, inside the excluded guard band.  Its
        # power must still be attributed to distortion.
        n = 64
        k = np.arange(n)
        data = np.sin(2 * np.pi * 13 * k / n) + 0.1 * np.cos(2 * np.pi * 1 * k / n)
        analysis = analyze_sine(data, n_harmonics=5, exclude_dc_bins=2)
        assert analysis.fundamental_bin == 13
        # p_harm/p_fund = (0.1/1.0)**2 => THD = -20 dB exactly.
        assert analysis.thd_db == pytest.approx(-20.0, abs=1e-6)

    def test_flat_spectrum_rejected(self):
        with pytest.raises(ValueError):
            analyze_sine(np.zeros(256))

    def test_wrappers(self):
        tone = sine(frequency=37.0, amplitude=0.99, sample_rate=4096.0, n_samples=8192)
        quantized = ideal_quantize(tone.data, n_bits=8, v_fs=2.0)
        assert sndr_sine(quantized) == pytest.approx(analyze_sine(quantized).sndr_db)
        assert enob_sine(quantized) == pytest.approx(8.0, abs=0.4)


class TestQualityMetrics:
    def test_nmse_zero_for_identity(self, rng):
        x = rng.normal(size=64)
        assert nmse(x, x.copy()) == 0.0

    def test_nmse_one_for_zero_estimate(self, rng):
        x = rng.normal(size=64)
        assert nmse(x, np.zeros(64)) == pytest.approx(1.0)

    def test_nmse_shape_check(self):
        with pytest.raises(ValueError):
            nmse(np.zeros(4), np.zeros(3))

    def test_prd_scale(self, rng):
        x = rng.normal(size=10_000)
        estimate = x + 0.09 * rng.normal(size=10_000)
        assert prd(x, estimate) == pytest.approx(9.0, rel=0.1)

    def test_prd_without_mean_removal(self, rng):
        x = rng.normal(size=1000) + 10.0
        with_mean = prd(x, x * 0.99, remove_mean=False)
        without = prd(x, x * 0.99, remove_mean=True)
        assert with_mean < without  # DC inflates the denominator

    def test_correlation_bounds(self, rng):
        x = rng.normal(size=1000)
        assert correlation(x, x) == pytest.approx(1.0)
        assert correlation(x, -x) == pytest.approx(-1.0)
        assert abs(correlation(x, rng.normal(size=1000))) < 0.15

    def test_correlation_of_constant_is_zero(self):
        assert correlation(np.ones(16), np.arange(16.0)) == 0.0
