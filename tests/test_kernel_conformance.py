"""Backend-conformance suite: every kernel backend locked to the reference.

Three layers of enforcement:

* the deterministic problem suite in :mod:`repro.testing.conformance`
  (representative + degenerate inputs) runs against every available
  accelerated backend;
* Hypothesis extends it with random shapes, dtypes and degenerate
  values, re-using the same comparison driver;
* the fig7a golden replays end-to-end under each backend, so agreement
  is checked through the real evaluation chain, not just per kernel.

On machines without numba/jax the accelerated legs skip (there is
nothing to conform — dispatch falls back) and the harness itself is
validated against deliberately broken fake backends instead.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    REFERENCE_BACKEND,
    KernelBackend,
    KernelRegistry,
    registry,
)
from repro.kernels import numpy_backend
from repro.testing.conformance import (
    Problem,
    check_backend,
    check_kernel,
    conformant_backends,
    default_problems,
    encoder_problems,
    golden_replay,
    solver_problems,
)

ACCELERATED = conformant_backends()


def accelerated_or_skip():
    if not ACCELERATED:
        pytest.skip("no accelerated kernel backend installed (numba/jax)")
    return ACCELERATED


# --- deterministic suite ----------------------------------------------------


class TestProblemSuite:
    def test_covers_all_dispatched_solvers(self):
        kernels = {p.kernel for p in default_problems()}
        assert kernels == {"fista", "ista", "omp", "encoder_multiply"}

    def test_degenerate_cases_present(self):
        names = {p.name for p in solver_problems()}
        for expected in (
            "fista:zero_measurements",
            "fista:zero_operator",
            "fista:single_atom",
            "fista:non_finite_measurements",
            "omp:zero_measurements",
            "omp:sparsity_exceeds_rows",
        ):
            assert expected in names
        assert "encoder_multiply:noiseless" in {p.name for p in encoder_problems()}

    def test_suite_is_deterministic(self):
        a = solver_problems(seed=7)
        b = solver_problems(seed=7)
        for pa, pb in zip(a, b):
            assert pa.name == pb.name
            for xa, xb in zip(pa.args, pb.args):
                if isinstance(xa, np.ndarray):
                    np.testing.assert_array_equal(xa, xb)

    def test_reference_conforms_to_itself(self):
        assert check_backend(REFERENCE_BACKEND) == []


@pytest.mark.parametrize("backend_name", ACCELERATED or ["<none>"])
class TestAcceleratedBackends:
    def test_deterministic_suite(self, backend_name):
        accelerated_or_skip()
        mismatches = check_backend(backend_name)
        assert mismatches == [], "\n".join(mismatches)

    def test_golden_replay(self, backend_name):
        accelerated_or_skip()
        mismatches = golden_replay(backend_name)
        assert mismatches == [], "\n".join(mismatches)


def test_golden_replay_reference_backend():
    """The golden replays bit-identically through the dispatch layer."""
    assert golden_replay(REFERENCE_BACKEND) == []


# --- Hypothesis: random problems against every available backend ------------

#: Modest bounds keep each case fast; Hypothesis explores the corners.
_seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _check_on_all_backends(problem: Problem) -> None:
    for backend_name in ACCELERATED or [REFERENCE_BACKEND]:
        mismatches = check_kernel(backend_name, problem)
        assert mismatches == [], "\n".join(mismatches)


@settings(max_examples=25, deadline=None)
@given(
    seed=_seeds,
    m=st.integers(1, 24),
    n=st.integers(1, 32),
    batch=st.integers(1, 4),
    lam=st.floats(1e-6, 1.0),
    n_iter=st.integers(1, 80),
    dtype=st.sampled_from([np.float64, np.float32]),
    kernel=st.sampled_from(["fista", "ista"]),
)
def test_lasso_solvers_conform_on_random_problems(
    seed, m, n, batch, lam, n_iter, dtype, kernel
):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(m, n)).astype(dtype)
    y2 = rng.normal(size=(batch, m)).astype(dtype)
    problem = Problem(f"{kernel}:hypothesis", kernel, (a, y2, lam, n_iter, 1e-9))
    _check_on_all_backends(problem)


@settings(max_examples=25, deadline=None)
@given(
    seed=_seeds,
    m=st.integers(1, 24),
    n=st.integers(1, 32),
    sparsity=st.integers(1, 10),
    zero_y=st.booleans(),
)
def test_omp_conforms_on_random_problems(seed, m, n, sparsity, zero_y):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(m, n))
    y = np.zeros(m) if zero_y else rng.normal(size=m)
    _check_on_all_backends(Problem("omp:hypothesis", "omp", (a, y, sparsity, 0.0)))


@settings(max_examples=15, deadline=None)
@given(
    seed=_seeds,
    n=st.integers(2, 32),
    m=st.integers(2, 12),
    n_frames=st.integers(1, 4),
    noisy=st.booleans(),
)
def test_encoder_multiply_conforms_on_random_problems(seed, n, m, n_frames, noisy):
    rng = np.random.default_rng(seed)
    s = min(2, m)
    routes = np.stack(
        [np.sort(rng.choice(m, size=s, replace=False)) for _ in range(n)]
    ).astype(np.int64)
    frames = rng.normal(size=(n_frames, n))
    c_sample = np.full(s, 1e-14)
    c_hold = np.full(m, 8e-14)
    sample_draws = rng.normal(size=(n, n_frames, s)) * 1e-4 if noisy else None
    share_draws = rng.normal(size=(n, n_frames, s)) if noisy else None
    kt = 4.14e-21 if noisy else 0.0
    _check_on_all_backends(
        Problem(
            "encoder_multiply:hypothesis",
            "encoder_multiply",
            (frames, routes, c_sample, c_hold, kt, sample_draws, share_draws),
        )
    )


@settings(max_examples=10, deadline=None)
@given(seed=_seeds, m=st.integers(2, 12), n=st.integers(2, 24))
def test_solvers_conform_with_nonfinite_measurements(seed, m, n):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(m, n))
    y2 = rng.normal(size=(2, m))
    y2[0, 0] = np.nan
    y2[1, -1] = np.inf
    for kernel in ("fista", "ista"):
        _check_on_all_backends(
            Problem(f"{kernel}:nonfinite", kernel, (a, y2, 0.05, 8, 1e-9))
        )


# --- the harness itself must catch broken backends --------------------------


class TestHarnessCatchesBrokenBackends:
    def _registry_with(self, backend: KernelBackend) -> KernelRegistry:
        reg = KernelRegistry()
        reg.register(numpy_backend.make_backend())
        reg.register(backend)
        return reg

    def test_flags_wrong_values_from_exact_backend(self):
        def off_by_eps(a, y2, lam, n_iter, tol):
            z, iters = numpy_backend.fista(a, y2, lam, n_iter, tol)
            return z + 1e-12, iters

        reg = self._registry_with(
            KernelBackend(name="liar", kernels={"fista": off_by_eps}, exact=True)
        )
        problems = [p for p in solver_problems() if p.kernel == "fista"]
        mismatches = check_backend("liar", problems=problems, registry=reg)
        assert any("not bit-identical" in m for m in mismatches)

    def test_flags_tolerance_violations(self):
        def way_off(a, y2, lam, n_iter, tol):
            z, iters = numpy_backend.fista(a, y2, lam, n_iter, tol)
            return z + 1.0, iters

        reg = self._registry_with(
            KernelBackend(name="sloppy", kernels={"fista": way_off}, rtol=1e-6)
        )
        problems = [p for p in solver_problems() if p.kernel == "fista"]
        mismatches = check_backend("sloppy", problems=problems, registry=reg)
        assert any("exceeds rtol" in m for m in mismatches)

    def test_flags_raising_backend_as_failure_not_fallback(self):
        def explodes(a, y2, lam, n_iter, tol):
            raise FloatingPointError("jit miscompiled")

        reg = self._registry_with(
            KernelBackend(name="bomb", kernels={"fista": explodes}, rtol=1e-6)
        )
        problems = [p for p in solver_problems() if p.kernel == "fista"]
        mismatches = check_backend("bomb", problems=problems, registry=reg)
        assert mismatches and all("FloatingPointError" in m for m in mismatches)

    def test_flags_wrong_shapes(self):
        def truncated(a, y, sparsity, tol):
            coeffs, n_sel = numpy_backend.omp(a, y, sparsity, tol)
            return coeffs[:-1], n_sel

        reg = self._registry_with(
            KernelBackend(name="short", kernels={"omp": truncated}, exact=True)
        )
        problems = [p for p in solver_problems() if p.kernel == "omp"]
        mismatches = check_backend("short", problems=problems, registry=reg)
        assert any("shape" in m for m in mismatches)

    def test_unimplemented_kernels_are_not_failures(self):
        reg = self._registry_with(KernelBackend(name="empty", kernels={}, rtol=1e-6))
        assert check_backend("empty", registry=reg) == []

    def test_unavailable_backends_are_not_failures(self):
        reg = self._registry_with(
            KernelBackend(name="ghost", kernels={}, available=False)
        )
        assert check_backend("ghost", registry=reg) == []


# --- fallback dispatch stays correct -----------------------------------------


def test_dispatch_falls_back_when_backend_missing(monkeypatch):
    """Requesting an uninstalled backend degrades to reference numbers."""
    a = np.random.default_rng(0).normal(size=(8, 16))
    y2 = np.random.default_rng(1).normal(size=(2, 8))
    reference, _ = registry.call("fista", a, y2, 0.05, 30, 1e-9)
    ghost = KernelBackend(
        name="ghost-accel", kernels={}, available=False, unavailable_reason="not installed"
    )
    registry.register(ghost)
    try:
        with registry.use_backend("ghost-accel"):
            got, _ = registry.call("fista", a, y2, 0.05, 30, 1e-9)
            usage = registry.usage()["fista"]
            assert usage["backend"] == REFERENCE_BACKEND
            assert usage["requested"] == "ghost-accel"
            assert "not installed" in usage["fallback_reason"]
    finally:
        registry.unregister("ghost-accel")
    np.testing.assert_array_equal(got, reference)
