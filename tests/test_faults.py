"""Tests of the fault-injection subsystem (repro.faults)."""

import pickle

import numpy as np
import pytest

from repro.blocks.chains import build_baseline_chain, build_cs_chain
from repro.core.explorer import DesignSpaceExplorer, FrontEndEvaluator
from repro.core.signal import Signal
from repro.core.simulator import Simulator
from repro.faults import (
    AdcBitFlip,
    AdcStuckBit,
    FaultBlock,
    FaultSuite,
    GainDrift,
    NanGlitch,
    PacketLoss,
    SampleDropout,
    SaturationBurst,
    inject,
)
from repro.faults.models import _forward_fill
from repro.power.technology import DesignPoint
from tests.test_explorer import FS, small_corpus

BASELINE_POINT = DesignPoint(n_bits=8, lna_noise_rms=2e-6)
CS_POINT = DesignPoint(n_bits=8, lna_noise_rms=8e-6, use_cs=True, cs_m=150)

ALL_MODELS = (
    ("lna", SaturationBurst(severity=1.0)),
    ("lna", GainDrift(severity=1.0)),
    ("sample_hold", SampleDropout(severity=1.0)),
    ("adc", AdcBitFlip(severity=1.0)),
    ("adc", AdcStuckBit(severity=1.0)),
    ("transmitter", PacketLoss(severity=1.0)),
    ("transmitter", NanGlitch(severity=1.0)),
)


def sine_stream(n=2304):
    t = np.arange(n) / FS
    rng = np.random.default_rng(3)
    # Near-full-scale at the LNA output (0.9e-3 V * gain 1000 = 0.9 V vs a
    # 1.0 V clip level) so saturation faults have something to bite on.
    data = 0.9e-3 * np.sin(2 * np.pi * 11.0 * t) + rng.normal(0, 2e-6, n)
    return Signal(data, sample_rate=FS)


def run_chain(point, suite=None, chain_seed=1, run_seed=7):
    builder = build_cs_chain if point.use_cs else build_baseline_chain
    chain = builder(point, seed=chain_seed)
    if suite is not None:
        chain = suite(chain, point, chain_seed)
    return Simulator(chain, point, seed=run_seed).run(
        sine_stream(), record_taps=False
    )


class TestSeverityZeroInvariant:
    def test_zero_severity_is_bit_identical_to_clean(self):
        suite = FaultSuite(entries=ALL_MODELS).scaled(0.0)
        clean = run_chain(BASELINE_POINT)
        wrapped = run_chain(BASELINE_POINT, suite)
        np.testing.assert_array_equal(clean.output.data, wrapped.output.data)
        assert clean.power.total == wrapped.power.total

    def test_zero_severity_cs_chain(self):
        suite = FaultSuite(entries=ALL_MODELS).scaled(0.0)
        clean = run_chain(CS_POINT)
        wrapped = run_chain(CS_POINT, suite)
        np.testing.assert_array_equal(clean.output.data, wrapped.output.data)


class TestDeterminism:
    def test_same_seed_same_realisation_bit_identical(self):
        suite = FaultSuite(entries=ALL_MODELS).scaled(0.5)
        a = run_chain(BASELINE_POINT, suite)
        b = run_chain(BASELINE_POINT, suite)
        np.testing.assert_array_equal(a.output.data, b.output.data)

    def test_realisation_changes_fault_pattern(self):
        suite = FaultSuite(entries=ALL_MODELS).scaled(0.5)
        a = run_chain(BASELINE_POINT, suite)
        c = run_chain(BASELINE_POINT, suite.with_realisation(1))
        assert not np.array_equal(a.output.data, c.output.data, equal_nan=True)

    def test_faults_do_not_perturb_victim_noise_streams(self):
        # A fault on the transmitter must leave the LNA/ADC noise draws
        # untouched: outputs differ only where the fault acts.
        suite = FaultSuite(entries=(("transmitter", PacketLoss(severity=0.4)),))
        clean = run_chain(BASELINE_POINT)
        faulty = run_chain(BASELINE_POINT, suite)
        lost = faulty.output.data == 0.0
        assert lost.any()
        # Normalizer rescales by the same LNA gain, so surviving samples
        # are exactly the clean ones.
        np.testing.assert_array_equal(
            clean.output.data[~lost], faulty.output.data[~lost]
        )

    @pytest.mark.parametrize(
        "entry",
        ALL_MODELS,
        ids=[fault.kind for _, fault in ALL_MODELS],
    )
    def test_each_model_is_deterministic_and_active(self, entry):
        suite = FaultSuite(entries=(entry,)).scaled(1.0)
        clean = run_chain(BASELINE_POINT)
        a = run_chain(BASELINE_POINT, suite)
        b = run_chain(BASELINE_POINT, suite)
        np.testing.assert_array_equal(a.output.data, b.output.data)
        assert not np.array_equal(
            clean.output.data, a.output.data, equal_nan=True
        )


class TestModels:
    def test_severity_validated(self):
        with pytest.raises(ValueError, match="severity"):
            SampleDropout(severity=1.5)
        with pytest.raises(ValueError, match="severity"):
            GainDrift(severity=-0.1)

    def test_scaled_clones_preserve_other_fields(self):
        model = SampleDropout(severity=0.2, max_rate=0.5, mode="zero")
        scaled = model.scaled(0.9)
        assert scaled.severity == 0.9
        assert scaled.max_rate == 0.5
        assert scaled.mode == "zero"
        assert model.severity == 0.2  # frozen original untouched

    def test_forward_fill(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        keep = np.array([True, False, False, True])
        np.testing.assert_array_equal(
            _forward_fill(data, keep), [1.0, 1.0, 1.0, 4.0]
        )
        # Dropped leading sample holds the original first value.
        keep = np.array([False, True, True, True])
        np.testing.assert_array_equal(
            _forward_fill(data, keep), [1.0, 2.0, 3.0, 4.0]
        )

    def test_adc_bit_flip_moves_codes_by_powers_of_two(self):
        suite = FaultSuite(
            entries=(("adc", AdcBitFlip(severity=1.0, max_rate=0.2)),)
        )
        point = BASELINE_POINT
        clean = run_chain(point)
        faulty = run_chain(point, suite)
        lsb = point.v_fs / 2.0**point.n_bits
        # Normalizer divides by the LNA gain; undo it to compare codes.
        delta = (faulty.output.data - clean.output.data) * point.lna_gain / lsb
        steps = np.unique(np.abs(np.round(delta[np.nonzero(delta)])))
        assert len(steps) > 0
        assert set(steps.astype(int)) <= {2**k for k in range(point.n_bits)}

    def test_nan_glitch_injects_nan(self):
        suite = FaultSuite(entries=(("transmitter", NanGlitch(severity=1.0)),))
        faulty = run_chain(BASELINE_POINT, suite)
        assert np.isnan(faulty.output.data).any()

    def test_describe_is_stable_and_severity_sensitive(self):
        model = PacketLoss(severity=0.3)
        assert model.describe() == PacketLoss(severity=0.3).describe()
        assert model.describe() != model.scaled(0.7).describe()


class TestInjection:
    def test_inject_skips_missing_blocks(self):
        chain = build_baseline_chain(BASELINE_POINT)
        inject(chain, {"cs_encoder": GainDrift(severity=0.5)})
        assert not any(isinstance(b, FaultBlock) for b in chain.blocks)

    def test_inject_missing_not_ok_raises(self):
        chain = build_baseline_chain(BASELINE_POINT)
        with pytest.raises(KeyError, match="cs_encoder"):
            inject(chain, {"cs_encoder": GainDrift(severity=0.5)}, missing_ok=False)

    def test_wrapper_keeps_name_and_power(self):
        chain = build_baseline_chain(BASELINE_POINT)
        bare_power = chain.block("lna").power(BASELINE_POINT)
        inject(chain, {"lna": GainDrift(severity=0.5)})
        wrapped = chain.block("lna")
        assert isinstance(wrapped, FaultBlock)
        assert wrapped.name == "lna"
        assert wrapped.power(BASELINE_POINT) == bare_power

    def test_nested_wrapping_flattens(self):
        chain = build_baseline_chain(BASELINE_POINT)
        inject(chain, {"lna": GainDrift(severity=0.5)})
        inject(chain, {"lna": SaturationBurst(severity=0.5)})
        wrapped = chain.block("lna")
        assert isinstance(wrapped, FaultBlock)
        assert not isinstance(wrapped.inner, FaultBlock)
        assert [f.kind for f in wrapped.faults] == ["gain_drift", "saturation_burst"]

    def test_rejects_non_fault_entries(self):
        chain = build_baseline_chain(BASELINE_POINT)
        with pytest.raises(TypeError, match="FaultModel"):
            inject(chain, {"lna": "not-a-fault"})

    def test_suite_pickles(self):
        suite = FaultSuite(entries=ALL_MODELS, realisation=3)
        assert pickle.loads(pickle.dumps(suite)) == suite


class TestEvaluatorIntegration:
    def make_evaluator(self, suite=None):
        return FrontEndEvaluator(
            small_corpus(), None, FS, seed=3, chain_transform=suite
        )

    def test_fingerprint_changes_with_transform(self):
        clean = self.make_evaluator()
        suite_a = FaultSuite(entries=ALL_MODELS).scaled(0.5)
        suite_b = suite_a.with_realisation(1)
        fp_clean = clean.fingerprint()
        fp_a = clean.with_chain_transform(suite_a).fingerprint()
        fp_b = clean.with_chain_transform(suite_b).fingerprint()
        assert len({fp_clean, fp_a, fp_b}) == 3

    def test_with_chain_transform_none_matches_original(self):
        evaluator = self.make_evaluator()
        suite = FaultSuite(entries=ALL_MODELS).scaled(0.0)
        faulty = evaluator.with_chain_transform(suite)
        a = evaluator.evaluate(BASELINE_POINT)
        b = faulty.evaluate(BASELINE_POINT)
        assert a.metrics == b.metrics

    def test_sweep_bit_identical_across_executors_with_faults(self):
        suite = FaultSuite(entries=ALL_MODELS).scaled(0.3)
        evaluator = self.make_evaluator(suite)
        explorer = DesignSpaceExplorer(evaluator)
        points = [BASELINE_POINT, CS_POINT]
        serial = explorer.explore(points)
        process = explorer.explore(points, executor="process", n_workers=2)
        threaded = explorer.explore(points, executor="thread", n_workers=2)
        for other in (process, threaded):
            for left, right in zip(serial, other):
                assert left.point.describe() == right.point.describe()
                assert left.metrics == right.metrics
                assert left.error == right.error

    def test_sweep_bit_identical_across_checkpoint_resume_with_faults(
        self, tmp_path
    ):
        suite = FaultSuite(entries=ALL_MODELS).scaled(0.3)
        evaluator = self.make_evaluator(suite)
        explorer = DesignSpaceExplorer(evaluator)
        points = [BASELINE_POINT, CS_POINT]
        reference = explorer.explore(points)
        ckpt = tmp_path / "faulty.jsonl"
        # First pass evaluates only the first point (via a poisoned second
        # evaluation), then the resumed pass completes the sweep.
        partial = explorer.explore([points[0]], checkpoint=str(ckpt))
        assert partial[0].error is None
        resumed = explorer.explore(points, checkpoint=str(ckpt))
        for left, right in zip(reference, resumed):
            assert left.metrics == right.metrics
