"""Tests of feature extraction, the numpy MLP and the seizure detector."""

import numpy as np
import pytest

from repro.detection.classifier import SeizureDetector
from repro.detection.features import (
    FEATURE_NAMES,
    extract_feature_matrix,
    extract_features,
)
from repro.detection.mlp import Mlp, MlpConfig, cross_entropy, softmax
from repro.eeg.synthetic import SyntheticEegConfig, generate_record
from repro.util.rng import make_rng


def records_matrix(kind, n, fs=173.61, samples=2048):
    config = SyntheticEegConfig()
    rows = [
        generate_record(kind, config, seed=i + (0 if kind == "seizure" else 1000), record_id=f"{kind}{i}").data[:samples]
        for i in range(n)
    ]
    return np.stack(rows)


class TestFeatures:
    def test_vector_length_matches_names(self):
        x = make_rng(1).normal(size=2048)
        assert extract_features(x, 173.61).shape == (len(FEATURE_NAMES),)

    def test_relative_band_powers_sum_to_one(self):
        x = make_rng(1).normal(size=4096)
        features = extract_features(x, 173.61)
        n_bands = 5
        assert np.sum(features[:n_bands]) == pytest.approx(1.0, abs=1e-6)

    def test_pure_alpha_tone_lands_in_alpha_band(self):
        fs = 173.61
        t = np.arange(4096) / fs
        x = np.sin(2 * np.pi * 10.0 * t)  # 10 Hz = alpha
        features = extract_features(x, fs)
        alpha_idx = list(FEATURE_NAMES).index("relpow_alpha")
        assert features[alpha_idx] > 0.9

    def test_line_length_tracks_frequency(self):
        fs = 500.0
        t = np.arange(4096) / fs
        slow = extract_features(np.sin(2 * np.pi * 2 * t), fs)
        fast = extract_features(np.sin(2 * np.pi * 50 * t), fs)
        ll_idx = list(FEATURE_NAMES).index("line_length")
        assert fast[ll_idx] > slow[ll_idx]

    def test_kurtosis_of_spiky_signal(self):
        rng = make_rng(2)
        x = rng.normal(size=4096)
        x[::512] += 30.0
        features = extract_features(x, 173.61)
        k_idx = list(FEATURE_NAMES).index("kurtosis")
        assert features[k_idx] > 3.0

    def test_all_features_finite(self):
        for kind in ("background", "artifact", "seizure"):
            mat = records_matrix(kind, 3)
            features = extract_feature_matrix(mat, 173.61)
            assert np.all(np.isfinite(features))

    def test_seizure_separable_from_background(self):
        seizure = extract_feature_matrix(records_matrix("seizure", 10), 173.61)
        background = extract_feature_matrix(records_matrix("background", 10), 173.61)
        power_idx = list(FEATURE_NAMES).index("log_power")
        assert np.mean(seizure[:, power_idx]) > np.mean(background[:, power_idx])

    def test_rejects_short_record(self):
        with pytest.raises(ValueError):
            extract_features(np.zeros(4), 100.0)

    def test_matrix_shape_check(self):
        with pytest.raises(ValueError):
            extract_feature_matrix(np.zeros(100), 100.0)


class TestSoftmaxAndLoss:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(5, 3)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_softmax_stability_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert probs[0, 0] == pytest.approx(1.0)
        assert np.all(np.isfinite(probs))

    def test_cross_entropy_perfect_prediction(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert cross_entropy(probs, np.array([0, 1])) == pytest.approx(0.0, abs=1e-9)

    def test_cross_entropy_penalises_wrong(self):
        good = cross_entropy(np.array([[0.9, 0.1]]), np.array([0]))
        bad = cross_entropy(np.array([[0.1, 0.9]]), np.array([0]))
        assert bad > good


class TestMlp:
    def test_learns_linearly_separable(self, rng):
        x = rng.normal(size=(300, 4))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        mlp = Mlp(n_inputs=4, config=MlpConfig(n_epochs=150, seed=1))
        mlp.fit(x, y)
        assert mlp.accuracy(x, y) > 0.95

    def test_learns_xor(self, rng):
        x = rng.uniform(-1, 1, size=(600, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
        mlp = Mlp(n_inputs=2, config=MlpConfig(hidden_sizes=(16, 16), n_epochs=400, seed=1))
        mlp.fit(x, y)
        assert mlp.accuracy(x, y) > 0.9

    def test_deterministic_training(self, rng):
        x = rng.normal(size=(100, 3))
        y = (x[:, 0] > 0).astype(int)
        a = Mlp(n_inputs=3, config=MlpConfig(n_epochs=30, seed=5)).fit(x, y)
        b = Mlp(n_inputs=3, config=MlpConfig(n_epochs=30, seed=5)).fit(x, y)
        np.testing.assert_array_equal(a.predict_proba(x), b.predict_proba(x))

    def test_predict_shapes(self, rng):
        mlp = Mlp(n_inputs=3)
        x = rng.normal(size=(7, 3))
        assert mlp.predict_proba(x).shape == (7, 2)
        assert mlp.predict(x).shape == (7,)

    def test_history_recorded(self, rng):
        x = rng.normal(size=(64, 3))
        y = (x[:, 0] > 0).astype(int)
        mlp = Mlp(n_inputs=3, config=MlpConfig(n_epochs=10, early_stop_patience=0, seed=1))
        mlp.fit(x, y)
        assert len(mlp.history) == 10

    def test_early_stopping_can_shorten(self, rng):
        x = rng.normal(size=(400, 3))
        y = (x[:, 0] > 0).astype(int)
        mlp = Mlp(
            n_inputs=3,
            config=MlpConfig(n_epochs=500, early_stop_patience=5, seed=1),
        )
        mlp.fit(x, y)
        assert len(mlp.history) < 500

    def test_bad_shapes_rejected(self, rng):
        mlp = Mlp(n_inputs=3)
        with pytest.raises(ValueError):
            mlp.fit(rng.normal(size=(10, 3)), np.zeros(9, dtype=int))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MlpConfig(hidden_sizes=())
        with pytest.raises(ValueError):
            MlpConfig(learning_rate=0.0)


class TestSeizureDetector:
    @pytest.fixture(scope="class")
    def trained(self):
        fs = 173.61
        seizure = records_matrix("seizure", 25)
        background = records_matrix("background", 20)
        artifact = records_matrix("artifact", 5)
        x = np.vstack([seizure, background, artifact])
        y = np.array([1] * 25 + [0] * 25)
        detector = SeizureDetector(sample_rate=fs, mlp_config=MlpConfig(n_epochs=200, seed=2))
        return detector.fit_arrays(x, y), x, y

    def test_high_training_accuracy(self, trained):
        detector, x, y = trained
        assert detector.accuracy(x, y) > 0.9

    def test_generalises_to_fresh_records(self, trained):
        detector, _, _ = trained
        fresh_seizure = records_matrix("seizure", 8)
        fresh_background = records_matrix("background", 8)
        # Fresh records need distinct seeds from the fixture's.
        x = np.vstack([fresh_seizure, fresh_background]) * 1.0
        y = np.array([1] * 8 + [0] * 8)
        assert detector.accuracy(x, y) > 0.8

    def test_noise_degrades_accuracy_monotone_trend(self, trained):
        detector, x, y = trained
        rng = make_rng(4)
        accuracies = []
        for noise in (0.0, 50e-6, 500e-6):
            noisy = x + rng.normal(0, noise, x.shape) if noise else x
            accuracies.append(detector.accuracy(noisy, y))
        assert accuracies[0] >= accuracies[-1]

    def test_probabilities_in_unit_interval(self, trained):
        detector, x, _ = trained
        probs = detector.predict_proba(x)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_confusion_matrix_sums(self, trained):
        detector, x, y = trained
        matrix = detector.confusion(x, y)
        assert matrix.sum() == len(y)

    def test_sensitivity_specificity_bounds(self, trained):
        detector, x, y = trained
        sens, spec = detector.sensitivity_specificity(x, y)
        assert 0.0 <= sens <= 1.0
        assert 0.0 <= spec <= 1.0

    def test_unfitted_raises(self):
        detector = SeizureDetector(sample_rate=100.0)
        with pytest.raises(RuntimeError):
            detector.predict(np.zeros((2, 256)))

    def test_rate_mismatch_rejected(self):
        from repro.eeg.dataset import EegDataset, EegRecord

        detector = SeizureDetector(sample_rate=512.0)
        ds = EegDataset([EegRecord(np.zeros(256), 100.0, 0, "x")])
        with pytest.raises(ValueError, match="resample"):
            detector.fit(ds)
