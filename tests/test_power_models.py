"""Tests of the Table II power models.

Each model is checked against a hand-evaluated value of its closed form at
the Table III operating point, plus the scaling laws the paper's analysis
relies on (noise bound ~ 1/vn^2, transmitter ~ rate * bits, compression
shrinking the ADC/TX terms, etc.).
"""

import math

import numpy as np
import pytest

from repro.power.models import (
    BLOCK_ORDER,
    PowerReport,
    SAR_LOGIC_ACTIVITY,
    chain_power,
    comparator_power,
    cs_encoder_logic_power,
    dac_power,
    leakage_power,
    lna_current_bounds,
    lna_power,
    sample_hold_power,
    sar_logic_power,
    transmitter_power,
)
from repro.power.technology import DesignPoint
from repro.util.constants import MICRO


class TestLnaPower:
    def test_noise_bound_hand_value(self, baseline_point):
        tech = baseline_point.technology
        expected_current = (
            (tech.nef / baseline_point.lna_noise_rms) ** 2
            * 2 * math.pi * 4 * tech.kt * baseline_point.bw_lna * tech.v_t
        )
        bounds = lna_current_bounds(baseline_point)
        assert bounds["noise"] == pytest.approx(expected_current)

    def test_noise_bound_dominates_at_low_noise(self, baseline_point):
        bounds = lna_current_bounds(baseline_point)
        assert bounds["noise"] > bounds["gbw"]
        assert bounds["noise"] > bounds["slew"]

    def test_power_is_vdd_times_max_bound(self, baseline_point):
        bounds = lna_current_bounds(baseline_point)
        assert lna_power(baseline_point) == pytest.approx(
            baseline_point.v_dd * max(bounds.values())
        )

    def test_inverse_square_noise_scaling(self, baseline_point):
        # In the noise-limited regime, halving vn quadruples the power.
        p1 = lna_power(baseline_point)
        p2 = lna_power(baseline_point.with_(lna_noise_rms=baseline_point.lna_noise_rms / 2))
        assert p2 == pytest.approx(4 * p1)

    def test_gbw_bound_with_huge_load(self, baseline_point):
        bounds = lna_current_bounds(baseline_point, c_load=1e-9)
        assert max(bounds.values()) in (bounds["gbw"], bounds["slew"])

    def test_rejects_nonpositive_load(self, baseline_point):
        with pytest.raises(ValueError):
            lna_power(baseline_point, c_load=0.0)

    def test_microwatt_scale_at_table3_point(self, baseline_point):
        assert 1e-7 < lna_power(baseline_point) < 1e-4


class TestSampleHoldPower:
    def test_hand_value(self, baseline_point):
        tech = baseline_point.technology
        c_s = 12 * tech.kt * 4.0**8 / 4.0
        expected = 2.0 * baseline_point.f_clk * c_s
        assert sample_hold_power(baseline_point) == pytest.approx(expected)

    def test_grows_4x_per_bit(self, baseline_point):
        p8 = sample_hold_power(baseline_point)
        p9 = sample_hold_power(baseline_point.with_(n_bits=9))
        # 4x from 2^(2N) and 10/9 from the clock.
        assert p9 / p8 == pytest.approx(4 * 10 / 9)

    def test_cs_uses_compressed_clock(self, cs_point):
        full_rate = sample_hold_power(cs_point.with_(use_cs=False))
        assert sample_hold_power(cs_point) == pytest.approx(
            full_rate * 150 / 384
        )


class TestComparatorPower:
    def test_hand_value(self, baseline_point):
        n = 8
        f_s = baseline_point.f_sample
        decisions = (n + 1) * f_s - f_s
        v_eff = 2.0 / 20.0
        expected = 2 * n * math.log(2) * decisions * 1e-15 * 2.0 * v_eff
        assert comparator_power(baseline_point) == pytest.approx(expected)

    def test_scales_with_load(self, baseline_point):
        assert comparator_power(baseline_point, c_load=2e-15) == pytest.approx(
            2 * comparator_power(baseline_point, c_load=1e-15)
        )

    def test_compression_reduces_decisions(self, cs_point):
        assert comparator_power(cs_point) < comparator_power(cs_point.with_(use_cs=False))


class TestSarLogicPower:
    def test_hand_value(self, baseline_point):
        n = 8
        toggles = n * baseline_point.f_sample
        expected = SAR_LOGIC_ACTIVITY * (2 * n + 1) * 1e-15 * 4.0 * toggles
        assert sar_logic_power(baseline_point) == pytest.approx(expected)

    def test_monotone_in_bits(self, baseline_point):
        assert sar_logic_power(baseline_point.with_(n_bits=10)) > sar_logic_power(
            baseline_point.with_(n_bits=6)
        )


class TestDacPower:
    def test_positive_at_midscale(self, baseline_point):
        assert dac_power(baseline_point) > 0

    def test_signal_dependence_reduces_power(self, baseline_point):
        # The -Vin^2/2 term: a large swing reduces switching energy.
        quiet = dac_power(baseline_point, vin=0.0)
        loud = dac_power(baseline_point, vin=np.full(128, 1.0))
        assert loud < quiet

    def test_accepts_waveform_average(self, baseline_point):
        wave = np.sin(np.linspace(0, 20 * np.pi, 1000))
        assert 0 < dac_power(baseline_point, vin=wave) < dac_power(baseline_point, vin=0.0)

    def test_never_negative(self, baseline_point):
        assert dac_power(baseline_point.with_(n_bits=1), vin=np.full(4, 2.0)) >= 0.0

    def test_bracket_hand_value(self, baseline_point):
        n = 8
        tech = baseline_point.technology
        c_u = tech.dac_unit_cap(n)
        bracket = (5 / 6 - 0.5**n - (1 / 3) * 0.25**n) * 4.0
        expected = 2.0**n * baseline_point.f_clk * c_u / (n + 1) * bracket
        assert dac_power(baseline_point, vin=0.0) == pytest.approx(expected)


class TestTransmitterPower:
    def test_baseline_hand_value(self, baseline_point):
        # fclk/(N+1) * N * E_bit = fs * N * E_bit = 537.6 * 8 * 1 nJ.
        assert transmitter_power(baseline_point) == pytest.approx(
            537.6 * 8 * 1e-9, rel=1e-6
        )

    def test_dominates_baseline_budget(self, baseline_point):
        report = chain_power(baseline_point.with_(lna_noise_rms=20e-6))
        assert report.dominant_block() == "transmitter"

    def test_compression_scales_linearly(self, cs_point):
        assert transmitter_power(cs_point) == pytest.approx(
            transmitter_power(cs_point.with_(use_cs=False)) * 150 / 384
        )

    def test_fewer_bits_fewer_joules(self, baseline_point):
        assert transmitter_power(baseline_point.with_(n_bits=6)) == pytest.approx(
            transmitter_power(baseline_point) * 6 / 8
        )


class TestCsEncoderPower:
    def test_zero_for_baseline(self, baseline_point):
        assert cs_encoder_logic_power(baseline_point) == 0.0

    def test_hand_value(self, cs_point):
        depth = math.ceil(math.log2(384)) + 1  # 10
        expected = 1.0 * depth * 384 * 8 * 1e-15 * 4.0 * cs_point.f_clk
        assert cs_encoder_logic_power(cs_point) == pytest.approx(expected)

    def test_independent_of_m(self, cs_point):
        assert cs_encoder_logic_power(cs_point) == pytest.approx(
            cs_encoder_logic_power(cs_point.with_(cs_m=75))
        )

    def test_submicrowatt_at_table3(self, cs_point):
        assert cs_encoder_logic_power(cs_point) < 1e-6


class TestLeakagePower:
    def test_counts_cs_switches(self, baseline_point, cs_point):
        assert leakage_power(cs_point) > leakage_power(baseline_point)

    def test_orders_of_magnitude_below_dynamic(self, cs_point):
        assert leakage_power(cs_point) < 0.01 * chain_power(cs_point).total


class TestChainPower:
    def test_baseline_blocks_present(self, baseline_point):
        report = chain_power(baseline_point)
        assert set(report.blocks) == {
            "lna",
            "sample_hold",
            "comparator",
            "sar_logic",
            "dac",
            "transmitter",
            "leakage",
        }

    def test_cs_adds_encoder_block(self, cs_point):
        assert "cs_encoder" in chain_power(cs_point).blocks

    def test_paper_scale_baseline(self, baseline_point):
        # ~8-9 uW at 2 uV / 8 bit (paper's optimal baseline: 8.8 uW).
        assert chain_power(baseline_point).total / MICRO == pytest.approx(8.8, rel=0.15)

    def test_paper_scale_cs(self):
        point = DesignPoint(n_bits=8, lna_noise_rms=8e-6, use_cs=True, cs_m=75)
        # ~1.5-3 uW (paper's optimal CS point: 2.44 uW).
        assert chain_power(point).total / MICRO == pytest.approx(2.44, rel=0.5)

    def test_cs_cheaper_than_baseline_at_matched_quality_corner(self, cs_point):
        baseline = DesignPoint(n_bits=8, lna_noise_rms=2e-6)
        assert chain_power(cs_point).total < 0.5 * chain_power(baseline).total


class TestPowerReport:
    def test_total_is_sum(self):
        report = PowerReport({"a": 1e-6, "b": 2e-6})
        assert report.total == pytest.approx(3e-6)
        assert report.total_uw == pytest.approx(3.0)

    def test_fractions_sum_to_one(self, baseline_point):
        report = chain_power(baseline_point)
        assert sum(report.fractions().values()) == pytest.approx(1.0)

    def test_fraction_of_missing_block_is_zero(self):
        assert PowerReport({"a": 1.0}).fraction("zz") == 0.0

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            PowerReport({"a": -1.0})

    def test_ordered_blocks_canonical_first(self):
        report = PowerReport({"zzz": 1.0, "lna": 1.0, "transmitter": 1.0})
        ordered = report.ordered_blocks()
        assert ordered.index("lna") < ordered.index("transmitter") < ordered.index("zzz")
        assert ordered[0] == BLOCK_ORDER[0]

    def test_scaled(self):
        report = PowerReport({"a": 2.0}).scaled(0.25)
        assert report.blocks["a"] == pytest.approx(0.5)

    def test_merged(self):
        merged = PowerReport({"a": 1.0}).merged(PowerReport({"a": 1.0, "b": 2.0}))
        assert merged.blocks == {"a": 2.0, "b": 2.0}

    def test_as_table_lists_total(self, baseline_point):
        table = chain_power(baseline_point).as_table()
        assert "total" in table
        assert "lna" in table
