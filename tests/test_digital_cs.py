"""Tests of the digital MAC CS encoder variant (the Chen [2] comparator)."""

import numpy as np
import pytest

from repro.blocks.chains import build_chain, build_cs_chain, build_digital_cs_chain
from repro.blocks.cs_frontend import DigitalCsEncoderBlock
from repro.blocks.sources import from_array
from repro.core.block import SimulationContext
from repro.core.signal import Signal
from repro.core.simulator import Simulator
from repro.cs.matrices import srbm_balanced
from repro.metrics.snr import snr_vs_reference
from repro.power.models import chain_power, digital_cs_encoder_power
from repro.power.technology import DesignPoint


@pytest.fixture
def digital_point():
    return DesignPoint(
        n_bits=8, lna_noise_rms=8e-6, use_cs=True, cs_architecture="digital", cs_m=150
    )


class TestDesignPoint:
    def test_architecture_validated(self):
        with pytest.raises(ValueError, match="cs_architecture"):
            DesignPoint(use_cs=True, cs_architecture="quantum")

    def test_adc_runs_full_rate(self, digital_point):
        assert digital_point.adc_conversion_rate == pytest.approx(digital_point.f_sample)

    def test_analog_adc_runs_compressed(self, cs_point):
        assert cs_point.adc_conversion_rate == pytest.approx(
            cs_point.f_sample * 150 / 384
        )

    def test_tx_rate_compressed_for_both(self, digital_point, cs_point):
        assert digital_point.output_sample_rate == pytest.approx(
            cs_point.output_sample_rate
        )

    def test_lna_load_is_sh_cap(self, digital_point):
        assert digital_point.lna_load_capacitance == digital_point.sampling_capacitance


class TestPowerModel:
    def test_zero_for_analog_and_baseline(self, cs_point, baseline_point):
        assert digital_cs_encoder_power(cs_point) == 0.0
        assert digital_cs_encoder_power(baseline_point) == 0.0

    def test_positive_for_digital(self, digital_point):
        assert digital_cs_encoder_power(digital_point) > 0.0

    def test_digital_costs_more_than_analog(self, digital_point):
        analog = digital_point.with_(cs_architecture="analog")
        assert chain_power(digital_point).total > chain_power(analog).total

    def test_both_cheaper_than_baseline(self, digital_point):
        baseline = DesignPoint(n_bits=8, lna_noise_rms=8e-6)
        assert chain_power(digital_point).total < chain_power(baseline).total

    def test_tx_power_identical_across_encoders(self, digital_point):
        analog = digital_point.with_(cs_architecture="analog")
        assert chain_power(digital_point).blocks["transmitter"] == pytest.approx(
            chain_power(analog).blocks["transmitter"]
        )

    def test_adc_side_scales_with_compression_ratio(self, digital_point):
        analog = digital_point.with_(cs_architecture="analog")
        ratio = 384 / 150
        dig, ana = chain_power(digital_point).blocks, chain_power(analog).blocks
        assert dig["sample_hold"] / ana["sample_hold"] == pytest.approx(ratio)


class TestBlock:
    def test_exact_binary_measurement(self, rng):
        mat = srbm_balanced(16, 64, 2, seed=1)
        block = DigitalCsEncoderBlock(mat)
        x = rng.normal(size=2 * 64)
        out = block.process(Signal(x, 512.0), SimulationContext())
        expected = x.reshape(2, 64) @ mat.phi.T
        np.testing.assert_allclose(out.data, expected, atol=1e-12)

    def test_annotations_match_analog_contract(self, rng):
        mat = srbm_balanced(16, 64, 2, seed=1)
        block = DigitalCsEncoderBlock(mat)
        out = block.process(Signal(rng.normal(size=64), 512.0), SimulationContext())
        np.testing.assert_array_equal(out.annotations["phi_effective"], mat.phi)
        assert out.domain == "compressed"

    def test_power_row(self, digital_point):
        mat = srbm_balanced(150, 384, 2, seed=1)
        rows = DigitalCsEncoderBlock(mat).power(digital_point)
        assert rows["cs_encoder"] > 0


class TestChain:
    def test_block_order(self, digital_point):
        chain = build_digital_cs_chain(digital_point, seed=1)
        assert chain.block_names() == [
            "lna",
            "sample_hold",
            "adc",
            "cs_encoder",
            "transmitter",
            "reconstruction",
            "normalizer",
        ]

    def test_dispatch(self, digital_point, cs_point, baseline_point):
        assert build_chain(digital_point).name == "cs-digital"
        assert build_chain(cs_point).name == "cs"
        assert build_chain(baseline_point).name == "baseline"

    def test_analog_builder_rejects_digital_point(self, digital_point):
        with pytest.raises(ValueError, match="digital"):
            build_cs_chain(digital_point)

    def test_digital_builder_rejects_analog_point(self, cs_point):
        with pytest.raises(ValueError):
            build_digital_cs_chain(cs_point)

    def test_end_to_end_roundtrip(self, digital_point, rng):
        from scipy import signal as sp

        b, a = sp.butter(4, 15, fs=digital_point.f_sample)
        x = sp.lfilter(b, a, rng.normal(size=4 * 384)) * 2e-4
        chain = build_digital_cs_chain(digital_point, seed=1)
        result = Simulator(chain, digital_point, seed=2).run(
            from_array(x, digital_point.f_sample)
        )
        assert result.output.data.shape == x.shape
        assert snr_vs_reference(x, result.output.data) > 8.0

    def test_transmits_compressed_bits(self, digital_point):
        chain = build_digital_cs_chain(digital_point, seed=1)
        Simulator(chain, digital_point, seed=2).run(
            from_array(np.zeros(4 * 384), digital_point.f_sample)
        )
        assert chain.block("transmitter").transmitted_bits == 4 * 150 * 8
