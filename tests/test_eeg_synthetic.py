"""Tests of the synthetic Bonn-like EEG generator."""

import numpy as np
import pytest

from repro.eeg.dataset import NON_SEIZURE, SEIZURE
from repro.eeg.synthetic import (
    BONN_DURATION,
    BONN_SAMPLE_RATE,
    SyntheticEegConfig,
    colored_noise,
    generate_background,
    generate_record,
    make_bonn_like_dataset,
)
from repro.util.rng import make_rng


class TestColoredNoise:
    def test_unit_variance(self):
        noise = colored_noise(100_000, 1.7, make_rng(1))
        assert np.std(noise) == pytest.approx(1.0, rel=0.01)

    def test_spectral_slope(self):
        noise = colored_noise(2**16, 2.0, make_rng(2))
        spectrum = np.abs(np.fft.rfft(noise)) ** 2
        freqs = np.fft.rfftfreq(2**16)
        lo = spectrum[(freqs > 0.001) & (freqs < 0.01)].mean()
        hi = spectrum[(freqs > 0.1) & (freqs < 0.4)].mean()
        # 1/f^2 noise: two decades of frequency -> ~4 decades of power.
        assert lo / hi > 300

    def test_deterministic(self):
        a = colored_noise(256, 1.0, make_rng(3))
        b = colored_noise(256, 1.0, make_rng(3))
        np.testing.assert_array_equal(a, b)


class TestBackground:
    def test_amplitude_scale(self):
        config = SyntheticEegConfig()
        signal = generate_background(config, make_rng(1))
        assert np.std(signal) == pytest.approx(config.background_rms, rel=0.01)

    def test_zero_mean(self):
        signal = generate_background(SyntheticEegConfig(), make_rng(1))
        assert abs(np.mean(signal)) < 1e-9

    def test_length_matches_bonn(self):
        config = SyntheticEegConfig()
        assert config.n_samples == int(round(BONN_SAMPLE_RATE * BONN_DURATION))
        assert generate_background(config, make_rng(1)).size == config.n_samples

    def test_low_frequency_dominated(self):
        signal = generate_background(SyntheticEegConfig(), make_rng(4))
        spectrum = np.abs(np.fft.rfft(signal)) ** 2
        freqs = np.fft.rfftfreq(signal.size, 1 / BONN_SAMPLE_RATE)
        low = spectrum[(freqs >= 0.5) & (freqs < 30)].sum()
        high = spectrum[freqs >= 45].sum()
        assert low > 10 * high


class TestGenerateRecord:
    def test_kinds_and_labels(self):
        config = SyntheticEegConfig()
        assert generate_record("background", config, 1, "b").label == NON_SEIZURE
        assert generate_record("artifact", config, 2, "a").label == NON_SEIZURE
        assert generate_record("seizure", config, 3, "s").label == SEIZURE

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            generate_record("nap", SyntheticEegConfig(), 1, "x")

    def test_seizure_meta_recorded(self):
        record = generate_record("seizure", SyntheticEegConfig(), 3, "s")
        assert "severity" in record.meta
        assert "frequency" in record.meta
        lo, hi = SyntheticEegConfig().seizure_frequency_range
        assert lo <= record.meta["frequency"] <= hi

    def test_seizure_has_more_energy_than_background(self):
        config = SyntheticEegConfig()
        seizure = generate_record("seizure", config, 3, "s")
        background = generate_record("background", config, 3, "b")
        assert np.std(seizure.data) > np.std(background.data)

    def test_seizure_spectral_peak_in_discharge_band(self):
        config = SyntheticEegConfig()
        record = generate_record("seizure", config, 5, "s")
        spectrum = np.abs(np.fft.rfft(record.data)) ** 2
        freqs = np.fft.rfftfreq(record.data.size, 1 / config.sample_rate)
        peak = freqs[1:][np.argmax(spectrum[1:])]
        assert peak <= 10.0  # discharge fundamental or its low harmonics

    def test_deterministic_per_seed(self):
        config = SyntheticEegConfig()
        a = generate_record("seizure", config, 9, "s")
        b = generate_record("seizure", config, 9, "s")
        np.testing.assert_array_equal(a.data, b.data)


class TestDataset:
    def test_bonn_layout(self):
        ds = make_bonn_like_dataset(n_records=50, seed=1)
        assert len(ds) == 50
        assert ds.sample_rate == BONN_SAMPLE_RATE
        assert ds.seizure_fraction() == pytest.approx(0.2)

    def test_custom_fraction(self):
        ds = make_bonn_like_dataset(n_records=40, seizure_fraction=0.5, seed=1)
        assert ds.labels().sum() == 20

    def test_deterministic(self):
        a = make_bonn_like_dataset(n_records=10, seed=7)
        b = make_bonn_like_dataset(n_records=10, seed=7)
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.data, rb.data)
            assert ra.label == rb.label

    def test_seed_changes_content(self):
        a = make_bonn_like_dataset(n_records=10, seed=7)
        b = make_bonn_like_dataset(n_records=10, seed=8)
        assert any(not np.array_equal(ra.data, rb.data) for ra, rb in zip(a, b))

    def test_contains_artifact_records(self):
        ds = make_bonn_like_dataset(n_records=100, seed=1)
        kinds = {record.meta["kind"] for record in ds}
        assert kinds == {"background", "artifact", "seizure"}

    def test_microvolt_amplitudes(self):
        ds = make_bonn_like_dataset(n_records=20, seed=1)
        for record in ds:
            rms = np.std(record.data)
            assert 1e-6 < rms < 1e-3  # EEG lives in the uV range


class TestConfigValidation:
    def test_rejects_bad_severity(self):
        with pytest.raises(ValueError):
            SyntheticEegConfig(seizure_severity_range=(0.0, 2.0))
        with pytest.raises(ValueError):
            SyntheticEegConfig(seizure_severity_range=(2.0, 1.0))

    def test_rejects_bad_frequency_band(self):
        with pytest.raises(ValueError):
            SyntheticEegConfig(seizure_frequency_range=(100.0, 90.0))

    def test_rejects_bad_artifact_probability(self):
        with pytest.raises(ValueError):
            SyntheticEegConfig(artifact_probability=1.5)
