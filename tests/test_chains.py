"""Tests of the pre-wired baseline and CS chains."""

import numpy as np
import pytest

from repro.blocks.chains import (
    build_baseline_chain,
    build_chain,
    build_cs_chain,
    encoder_attenuation,
)
from repro.blocks.sources import from_array, sine
from repro.core.simulator import Simulator
from repro.cs.matrices import srbm_balanced
from repro.metrics.snr import snr_vs_reference
from repro.power.technology import DesignPoint


class TestBuilders:
    def test_baseline_block_order(self, baseline_point):
        chain = build_baseline_chain(baseline_point)
        assert chain.block_names() == [
            "lna",
            "sample_hold",
            "adc",
            "transmitter",
            "normalizer",
        ]

    def test_cs_block_order(self, cs_point):
        chain = build_cs_chain(cs_point)
        assert chain.block_names() == [
            "lna",
            "cs_encoder",
            "adc",
            "transmitter",
            "reconstruction",
            "normalizer",
        ]

    def test_build_chain_dispatch(self, baseline_point, cs_point):
        assert build_chain(baseline_point).name == "baseline"
        assert build_chain(cs_point).name == "cs"

    def test_wrong_architecture_rejected(self, baseline_point, cs_point):
        with pytest.raises(ValueError):
            build_baseline_chain(cs_point)
        with pytest.raises(ValueError):
            build_cs_chain(baseline_point)

    def test_matrix_dimension_check(self, cs_point):
        wrong = srbm_balanced(64, 384, 2, seed=1)
        with pytest.raises(ValueError, match="matrix"):
            build_cs_chain(cs_point, matrix=wrong)

    def test_gain_compensation_applied(self, cs_point):
        chain = build_cs_chain(cs_point, seed=1)
        lna = chain.block("lna")
        assert lna.gain > cs_point.lna_gain  # encoder attenuates -> boost

    def test_gain_compensation_optional(self, cs_point):
        chain = build_cs_chain(cs_point, seed=1, compensate_attenuation=False)
        assert chain.block("lna").gain == cs_point.lna_gain

    def test_attenuation_value_sane(self, cs_point):
        chain = build_cs_chain(cs_point, seed=1)
        att = encoder_attenuation(chain.block("cs_encoder").phi_effective)
        assert 0.05 < att < 1.0


class TestEndToEnd:
    def test_baseline_roundtrip_quality(self, baseline_point):
        tone = sine(
            frequency=40.0,
            amplitude=0.9 * baseline_point.v_fs / 2 / baseline_point.lna_gain,
            sample_rate=baseline_point.f_sample,
            n_samples=4096,
        )
        result = Simulator(build_baseline_chain(baseline_point, seed=1), baseline_point, seed=2).run(tone)
        assert snr_vs_reference(tone.data, result.output.data) > 35.0

    def test_baseline_power_matches_chain_model(self, baseline_point):
        from repro.power.models import chain_power

        tone = sine(
            frequency=40.0,
            amplitude=1e-4,
            sample_rate=baseline_point.f_sample,
            n_samples=1024,
        )
        result = Simulator(build_baseline_chain(baseline_point, seed=1), baseline_point, seed=2).run(tone)
        # The simulator's collected power agrees with the closed-form chain
        # model (same Table II equations, DAC evaluated at mid-scale).
        assert result.power.total == pytest.approx(chain_power(baseline_point).total, rel=0.01)

    def test_cs_roundtrip_on_compressible_signal(self, cs_point, rng):
        # Smooth (lowpass) signal, 4 frames.
        from scipy import signal as sp

        b, a = sp.butter(4, 15, fs=cs_point.f_sample)
        x = sp.lfilter(b, a, rng.normal(size=4 * 384)) * 2e-4
        result = Simulator(build_cs_chain(cs_point, seed=1), cs_point, seed=2).run(
            from_array(x, cs_point.f_sample)
        )
        assert result.output.data.shape == x.shape
        assert snr_vs_reference(x, result.output.data) > 8.0

    def test_cs_transmits_fewer_bits(self, cs_point):
        chain = build_cs_chain(cs_point, seed=1)
        stream = from_array(np.zeros(4 * 384), cs_point.f_sample)
        Simulator(chain, cs_point, seed=2).run(stream)
        tx = chain.block("transmitter")
        assert tx.transmitted_bits == 4 * cs_point.cs_m * cs_point.n_bits

    def test_deterministic_end_to_end(self, cs_point, rng):
        x = rng.normal(size=2 * 384) * 1e-4
        sim = Simulator(build_cs_chain(cs_point, seed=3), cs_point, seed=4)
        first = sim.run(from_array(x, cs_point.f_sample)).output.data
        second = sim.run(from_array(x, cs_point.f_sample)).output.data
        np.testing.assert_array_equal(first, second)

    def test_cs_power_below_matched_baseline(self, cs_point):
        baseline = DesignPoint(n_bits=8, lna_noise_rms=2e-6)
        stream = from_array(np.zeros(384), cs_point.f_sample)
        p_cs = Simulator(build_cs_chain(cs_point, seed=1), cs_point, seed=2).run(stream).power.total
        p_base = (
            Simulator(build_baseline_chain(baseline, seed=1), baseline, seed=2)
            .run(from_array(np.zeros(384), baseline.f_sample))
            .power.total
        )
        assert p_cs < 0.5 * p_base
