"""Shared fixtures for the EffiCSense test suite."""

import numpy as np
import pytest

from repro.power.technology import DesignPoint, Technology


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def baseline_point():
    """The reference baseline design point used across tests."""
    return DesignPoint(n_bits=8, lna_noise_rms=2e-6)


@pytest.fixture
def cs_point():
    """The reference CS design point used across tests."""
    return DesignPoint(n_bits=8, lna_noise_rms=8e-6, use_cs=True, cs_m=150)


@pytest.fixture
def ideal_technology():
    """A technology with every stochastic non-ideality disabled."""
    return Technology(unit_cap_mismatch_sigma=0.0, i_leak=1e-30)
