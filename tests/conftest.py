"""Shared fixtures for the EffiCSense test suite."""

import numpy as np
import pytest

from repro.power.technology import DesignPoint, Technology


@pytest.fixture(autouse=True)
def _flight_dir(tmp_path, monkeypatch):
    """Point crash flight-recorder dumps at the test's tmp dir.

    The recorder is always on by design; without this, timeout/crash
    tests would litter ``.repro-flight/`` in the working directory.
    The per-process dump budget is also reset so an early test cannot
    exhaust it for a later one.
    """
    from repro.core import flight

    monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path / "flight"))
    flight.get_recorder().dumps = 0


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def baseline_point():
    """The reference baseline design point used across tests."""
    return DesignPoint(n_bits=8, lna_noise_rms=2e-6)


@pytest.fixture
def cs_point():
    """The reference CS design point used across tests."""
    return DesignPoint(n_bits=8, lna_noise_rms=8e-6, use_cs=True, cs_m=150)


@pytest.fixture
def ideal_technology():
    """A technology with every stochastic non-ideality disabled."""
    return Technology(unit_cap_mismatch_sigma=0.0, i_leak=1e-30)
