"""Tests of the argument-validation helpers."""

import numpy as np
import pytest

from repro.util import validation


class TestScalarChecks:
    def test_check_positive_accepts(self):
        assert validation.check_positive("x", 1.5) == 1.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            validation.check_positive("x", 0)

    def test_check_positive_rejects_negative(self):
        with pytest.raises(ValueError):
            validation.check_positive("x", -1)

    def test_check_non_negative_accepts_zero(self):
        assert validation.check_non_negative("x", 0) == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            validation.check_non_negative("x", -0.001)

    def test_check_fraction_bounds(self):
        assert validation.check_fraction("f", 0.0) == 0.0
        assert validation.check_fraction("f", 1.0) == 1.0
        with pytest.raises(ValueError):
            validation.check_fraction("f", 1.01)
        with pytest.raises(ValueError):
            validation.check_fraction("f", -0.01)

    def test_check_positive_int_accepts(self):
        assert validation.check_positive_int("n", 3) == 3

    def test_check_positive_int_rejects_fractional(self):
        with pytest.raises(ValueError):
            validation.check_positive_int("n", 2.5)

    def test_check_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            validation.check_positive_int("n", 0)

    def test_check_in(self):
        assert validation.check_in("mode", "a", ["a", "b"]) == "a"
        with pytest.raises(ValueError):
            validation.check_in("mode", "c", ["a", "b"])

    def test_check_range(self):
        assert validation.check_range("v", 5, 0, 10) == 5.0
        with pytest.raises(ValueError):
            validation.check_range("v", 11, 0, 10)


class TestArrayChecks:
    def test_as_1d_array_from_list(self):
        arr = validation.as_1d_array("x", [1, 2, 3])
        assert arr.dtype == np.float64
        assert arr.shape == (3,)

    def test_as_1d_array_scalar_promoted(self):
        assert validation.as_1d_array("x", 5.0).shape == (1,)

    def test_as_1d_array_rejects_2d(self):
        with pytest.raises(ValueError):
            validation.as_1d_array("x", np.zeros((2, 2)))

    def test_check_finite_accepts(self):
        arr = np.array([1.0, -2.0])
        assert validation.check_finite("x", arr) is arr

    def test_check_finite_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            validation.check_finite("x", np.array([1.0, np.nan]))

    def test_check_finite_rejects_inf(self):
        with pytest.raises(ValueError):
            validation.check_finite("x", np.array([np.inf]))
