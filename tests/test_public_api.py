"""Public-API surface tests: every advertised name imports and works.

Guards the `__all__` contracts of the top-level packages (the names the
README and docs reference) against refactoring drift.
"""

import importlib

import pytest

PACKAGES = {
    "repro": ["DesignPoint", "GPDK045", "Technology", "__version__"],
    "repro.core": [
        "Block",
        "Signal",
        "Simulator",
        "SystemModel",
        "SystemGraph",
        "ParameterSpace",
        "CompositeSpace",
        "DesignSpaceExplorer",
        "FrontEndEvaluator",
        "ExplorationResult",
        "Objective",
        "pareto_front",
        "best_feasible",
        "save_result",
        "load_result",
        "accuracy_power_goal",
        "snr_power_goal",
        "area_constrained_goal",
    ],
    "repro.blocks": [
        "LNA",
        "SampleHold",
        "SarAdc",
        "Transmitter",
        "Chopper",
        "CsEncoderBlock",
        "DigitalCsEncoderBlock",
        "CsReconstructionBlock",
        "build_baseline_chain",
        "build_cs_chain",
        "build_digital_cs_chain",
        "build_chain",
        "sine",
        "multitone",
        "from_array",
    ],
    "repro.power": [
        "DesignPoint",
        "Technology",
        "GPDK045",
        "PowerReport",
        "chain_power",
        "chain_area",
        "lna_power",
        "transmitter_power",
        "cs_encoder_logic_power",
        "digital_cs_encoder_power",
        "noise_budget",
        "required_noise_floor",
    ],
    "repro.cs": [
        "SensingMatrix",
        "srbm",
        "srbm_balanced",
        "gaussian",
        "bernoulli",
        "ChargeSharingEncoder",
        "ChargeSharingConfig",
        "effective_matrix",
        "dct_basis",
        "wavelet_basis",
        "Reconstructor",
        "omp",
        "ista",
        "fista",
        "iht",
        "mutual_coherence",
    ],
    "repro.eeg": [
        "EegDataset",
        "EegRecord",
        "make_bonn_like_dataset",
        "resample_dataset",
        "SyntheticEegConfig",
    ],
    "repro.detection": [
        "SpectralCombDetector",
        "SeizureDetector",
        "FrameMlpDetector",
        "Mlp",
        "extract_features",
    ],
    "repro.metrics": ["snr_vs_reference", "analyze_sine", "sndr_sine", "nmse", "prd"],
    "repro.experiments": [
        "make_harness",
        "run_search_space",
        "run_fig4",
        "analyze_fig7",
        "analyze_fig8",
        "analyze_fig9",
        "analyze_fig10",
        "paper_search_space",
        "render_table1",
        "render_table2",
        "render_table3",
    ],
}


@pytest.mark.parametrize("package", sorted(PACKAGES))
def test_package_exports(package):
    module = importlib.import_module(package)
    for name in PACKAGES[package]:
        assert hasattr(module, name), f"{package} is missing {name}"


@pytest.mark.parametrize("package", sorted(PACKAGES))
def test_all_entries_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package}.__all__ lists missing {name}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_readme_quickstart_runs():
    """The README's quickstart snippet must stay executable verbatim."""
    from repro.blocks import build_baseline_chain, sine
    from repro.core import Simulator
    from repro.metrics import analyze_sine
    from repro.power import DesignPoint

    point = DesignPoint(n_bits=8, lna_noise_rms=2e-6)
    chain = build_baseline_chain(point)
    tone = sine(
        frequency=40.0, amplitude=0.9e-3, sample_rate=point.f_sample, n_samples=2048
    )
    result = Simulator(chain, point, seed=1).run(tone)
    analysis = analyze_sine(result.tap("adc").data)
    assert analysis.sndr_db > 30
    assert 7.0 < result.power.total_uw < 10.0
