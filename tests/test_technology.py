"""Tests of Table III technology constants and DesignPoint derivations."""

import math

import pytest

from repro.power.technology import GPDK045, DesignPoint, Technology
from repro.util.constants import FEMTO, MICRO


class TestTechnologyDefaults:
    def test_table3_values(self):
        tech = GPDK045
        assert tech.c_logic == pytest.approx(1e-15)
        assert tech.gm_over_id == pytest.approx(20.0)
        assert tech.cu_min == pytest.approx(1e-15)
        assert tech.i_leak == pytest.approx(1e-12)
        assert tech.e_bit == pytest.approx(1e-9)
        assert tech.v_t == pytest.approx(25.27e-3)

    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ValueError):
            Technology(c_logic=0.0)
        with pytest.raises(ValueError):
            Technology(e_bit=-1e-9)

    def test_rejects_bad_mismatch_sigma(self):
        with pytest.raises(ValueError):
            Technology(unit_cap_mismatch_sigma=1.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            GPDK045.c_logic = 2e-15  # type: ignore[misc]


class TestTechnologySizing:
    def test_cap_area_scales_with_capacitance(self):
        tech = GPDK045
        assert tech.cap_area_um2(2e-15) == pytest.approx(2 * tech.cap_area_um2(1e-15))

    def test_mismatch_improves_with_size(self):
        tech = GPDK045
        assert tech.cap_mismatch_sigma(4e-15) == pytest.approx(
            tech.cap_mismatch_sigma(1e-15) / 2.0
        )

    def test_mismatch_clamped_below_unit(self):
        tech = GPDK045
        assert tech.cap_mismatch_sigma(0.1e-15) == tech.unit_cap_mismatch_sigma

    def test_ktc_noise_value(self):
        tech = GPDK045
        # The classic reference point: sqrt(kT/1pF) ~ 64 uV at 300 K, so a
        # 1 fF capacitor sits ~2 mV (sqrt(1000) times higher).
        assert tech.kt_c_noise_rms(1e-12) == pytest.approx(64e-6, rel=0.05)
        assert tech.kt_c_noise_rms(1e-15) == pytest.approx(2.03e-3, rel=0.05)

    def test_sampling_cap_quantization_rule(self):
        tech = GPDK045
        cap = tech.sampling_cap_for_quantization(8, 2.0)
        # kT/C noise power equals quantization noise power by construction.
        assert tech.kt / cap == pytest.approx(2.0**2 / (12 * 4.0**8))

    def test_sampling_cap_grows_4x_per_bit(self):
        tech = GPDK045
        assert tech.sampling_cap_for_quantization(9, 2.0) == pytest.approx(
            4 * tech.sampling_cap_for_quantization(8, 2.0)
        )

    def test_dac_unit_cap_at_least_minimum(self):
        assert GPDK045.dac_unit_cap(6) >= GPDK045.cu_min

    def test_dac_unit_cap_grows_with_resolution(self):
        assert GPDK045.dac_unit_cap(10) >= GPDK045.dac_unit_cap(6)

    def test_dac_unit_cap_ideal_matching(self):
        tech = Technology(unit_cap_mismatch_sigma=0.0)
        assert tech.dac_unit_cap(12) == tech.cu_min

    def test_hold_cap_for_noise(self):
        tech = GPDK045
        cap = tech.hold_cap_for_noise(10e-6)
        assert tech.kt_c_noise_rms(cap) <= 10e-6 * (1 + 1e-12)

    def test_hold_cap_never_below_minimum(self):
        assert GPDK045.hold_cap_for_noise(1.0) == GPDK045.cu_min


class TestDesignPointClocking:
    def test_f_sample_rule(self, baseline_point):
        assert baseline_point.f_sample == pytest.approx(2.1 * 256)

    def test_f_clk_rule(self, baseline_point):
        assert baseline_point.f_clk == pytest.approx(9 * 2.1 * 256)

    def test_bw_lna_rule(self, baseline_point):
        assert baseline_point.bw_lna == pytest.approx(3 * 256)

    def test_noise_density(self, baseline_point):
        expected = baseline_point.lna_noise_rms / math.sqrt(768.0)
        assert baseline_point.lna_noise_density == pytest.approx(expected)

    def test_baseline_output_rate_is_sample_rate(self, baseline_point):
        assert baseline_point.output_sample_rate == baseline_point.f_sample
        assert baseline_point.compression_ratio == 1.0

    def test_cs_output_rate_compressed(self, cs_point):
        assert cs_point.compression_ratio == pytest.approx(384 / 150)
        assert cs_point.output_sample_rate == pytest.approx(
            cs_point.f_sample * 150 / 384
        )

    def test_bit_rate(self, cs_point):
        assert cs_point.bit_rate == pytest.approx(cs_point.output_sample_rate * 8)


class TestDesignPointValidation:
    def test_rejects_m_not_less_than_nphi(self):
        with pytest.raises(ValueError, match="cs_m"):
            DesignPoint(use_cs=True, cs_m=384, cs_n_phi=384)

    def test_rejects_sparsity_above_m(self):
        with pytest.raises(ValueError, match="cs_sparsity"):
            DesignPoint(use_cs=True, cs_m=4, cs_sparsity=5)

    def test_cs_fields_ignored_when_cs_disabled(self):
        # A baseline point may carry nonsense CS fields without error.
        point = DesignPoint(use_cs=False, cs_m=10_000)
        assert not point.use_cs

    def test_rejects_nonpositive_noise(self):
        with pytest.raises(ValueError):
            DesignPoint(lna_noise_rms=0.0)

    def test_with_creates_modified_copy(self, baseline_point):
        other = baseline_point.with_(n_bits=6)
        assert other.n_bits == 6
        assert baseline_point.n_bits == 8

    def test_describe_mentions_architecture(self, baseline_point, cs_point):
        assert "baseline" in baseline_point.describe()
        assert "CS(M=150/384" in cs_point.describe()


class TestDesignPointCapacitors:
    def test_sampling_cap_at_least_cu_min(self, baseline_point):
        assert baseline_point.sampling_capacitance >= baseline_point.technology.cu_min

    def test_cs_hold_cap_meets_matching_target(self, cs_point):
        tech = cs_point.technology
        sigma = tech.cap_mismatch_sigma(cs_point.cs_hold_capacitance)
        assert sigma <= cs_point.cs_weight_mismatch_sigma * (1 + 1e-9)

    def test_cs_sample_cap_ratio(self, cs_point):
        expected = max(
            cs_point.technology.cu_min,
            cs_point.cs_hold_capacitance / cs_point.cs_cap_ratio,
        )
        assert cs_point.cs_sample_capacitance == pytest.approx(expected)

    def test_lna_load_selects_architecture(self, baseline_point, cs_point):
        assert baseline_point.lna_load_capacitance == baseline_point.sampling_capacitance
        # Paper Section III: the CS front-end's LNA load is C_hold.
        assert cs_point.lna_load_capacitance == cs_point.cs_hold_capacitance

    def test_hold_cap_units_order_of_magnitude(self, cs_point):
        # With sigma_u = 1 % and a 0.25 % weight target the hold capacitor
        # must aggregate (1 % / 0.25 %)^2 = 16 unit cells.
        assert cs_point.cs_hold_capacitance == pytest.approx(16 * FEMTO, rel=0.01)

    def test_noise_parameter_microvolt_scale(self, cs_point):
        assert 0.1 * MICRO < cs_point.lna_noise_rms < 100 * MICRO
