"""Tests of the Block abstraction, SystemModel chains, SystemGraph DAGs and
the Simulator."""

import numpy as np
import pytest

from repro.core.block import Block, FunctionBlock, PassthroughBlock, SimulationContext
from repro.core.signal import Signal
from repro.core.simulator import SimulationResult, Simulator
from repro.core.system import SystemGraph, SystemModel
from repro.power.technology import DesignPoint


class AddConstant(Block):
    """Test block: adds a constant; reports a fixed power."""

    def __init__(self, constant, name="add", watts=1e-6):
        super().__init__(name)
        self.constant = constant
        self.watts = watts

    def process(self, signal, ctx):
        return signal.replaced(data=signal.data + self.constant)

    def power(self, point):
        return {self.name: self.watts}


class NoisyBlock(Block):
    """Test block drawing from the context RNG."""

    def process(self, signal, ctx):
        rng = ctx.rng(self.name)
        return signal.replaced(data=signal.data + rng.normal(size=signal.data.shape))


def make_signal(n=16):
    return Signal(np.zeros(n), sample_rate=100.0)


class TestBlockBasics:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            PassthroughBlock("")

    def test_default_power_empty(self):
        assert PassthroughBlock("p").power(DesignPoint()) == {}

    def test_function_block_wraps_callable(self):
        block = FunctionBlock("abs", np.abs)
        ctx = SimulationContext()
        out = block.process(Signal(np.array([-1.0, 2.0]), 1.0), ctx)
        np.testing.assert_array_equal(out.data, [1.0, 2.0])

    def test_passthrough_identity(self):
        block = PassthroughBlock("tap")
        signal = make_signal()
        assert block.process(signal, SimulationContext()) is signal

    def test_repr_contains_name(self):
        assert "tap" in repr(PassthroughBlock("tap"))


class TestSystemModelComposition:
    def test_append_and_names(self):
        system = SystemModel([AddConstant(1, "a")]).append(AddConstant(2, "b"))
        assert system.block_names() == ["a", "b"]

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already present"):
            SystemModel([AddConstant(1, "a"), AddConstant(2, "a")])

    def test_insert_after(self):
        system = SystemModel([AddConstant(1, "a"), AddConstant(2, "c")])
        system.insert_after("a", AddConstant(3, "b"))
        assert system.block_names() == ["a", "b", "c"]

    def test_insert_before(self):
        system = SystemModel([AddConstant(1, "b")])
        system.insert_before("b", AddConstant(0, "a"))
        assert system.block_names() == ["a", "b"]

    def test_replace_keeps_position(self):
        system = SystemModel([AddConstant(1, "a"), AddConstant(2, "b")])
        system.replace("a", AddConstant(9, "a2"))
        assert system.block_names() == ["a2", "b"]

    def test_replace_same_name_allowed(self):
        system = SystemModel([AddConstant(1, "a")])
        system.replace("a", AddConstant(5, "a"))
        assert system.block("a").constant == 5

    def test_remove(self):
        system = SystemModel([AddConstant(1, "a"), AddConstant(2, "b")]).remove("a")
        assert system.block_names() == ["b"]

    def test_missing_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            SystemModel([AddConstant(1, "a")]).block("zz")

    def test_contains_and_len(self):
        system = SystemModel([AddConstant(1, "a")])
        assert "a" in system
        assert "b" not in system
        assert len(system) == 1


class TestSystemModelExecution:
    def test_chain_applies_in_order(self):
        system = SystemModel([AddConstant(1, "a"), FunctionBlock("double", lambda d: d * 2)])
        out = system.run(make_signal(4), SimulationContext())
        np.testing.assert_array_equal(out.data, np.full(4, 2.0))

    def test_taps_recorded(self):
        ctx = SimulationContext()
        system = SystemModel([AddConstant(1, "a"), AddConstant(2, "b")])
        system.run(make_signal(4), ctx)
        assert set(ctx.taps) == {"input", "a", "b"}
        np.testing.assert_array_equal(ctx.taps["a"].data, np.ones(4))

    def test_taps_disabled(self):
        ctx = SimulationContext()
        SystemModel([AddConstant(1, "a")]).run(make_signal(4), ctx, record_taps=False)
        assert ctx.taps == {}

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError, match="no blocks"):
            SystemModel().run(make_signal(), SimulationContext())


class TestSimulator:
    def test_runs_and_collects_power(self):
        system = SystemModel([AddConstant(1, "a", watts=2e-6), AddConstant(2, "b", watts=3e-6)])
        result = Simulator(system, DesignPoint(), seed=0).run(make_signal(4))
        assert isinstance(result, SimulationResult)
        assert result.total_power == pytest.approx(5e-6)
        np.testing.assert_array_equal(result.output.data, np.full(4, 3.0))

    def test_power_entries_with_same_key_sum(self):
        system = SystemModel(
            [AddConstant(1, "x", watts=2e-6), AddConstant(1, "y", watts=3e-6)]
        )
        # Rename both reports to the same block key.
        system.block("x").name = "x"
        result = Simulator(system, DesignPoint(), seed=0).run(make_signal(4))
        assert result.power.total == pytest.approx(5e-6)

    def test_reproducible_noise(self):
        system = SystemModel([NoisyBlock("noise")])
        sim = Simulator(system, DesignPoint(), seed=3)
        first = sim.run(make_signal(32)).output.data
        second = sim.run(make_signal(32)).output.data
        np.testing.assert_array_equal(first, second)

    def test_seed_changes_noise(self):
        system = SystemModel([NoisyBlock("noise")])
        a = Simulator(system, DesignPoint(), seed=3).run(make_signal(32)).output.data
        b = Simulator(system, DesignPoint(), seed=4).run(make_signal(32)).output.data
        assert not np.array_equal(a, b)

    def test_tap_accessor_and_error(self):
        system = SystemModel([AddConstant(1, "a")])
        result = Simulator(system, DesignPoint(), seed=0).run(make_signal(4))
        assert result.tap("a") is result.taps["a"]
        with pytest.raises(KeyError, match="available"):
            result.tap("zz")

    def test_design_point_reaches_context(self):
        captured = {}

        class Probe(Block):
            def process(self, signal, ctx):
                captured["point"] = ctx.design_point
                return signal

        point = DesignPoint(n_bits=7)
        Simulator(SystemModel([Probe("probe")]), point, seed=0).run(make_signal(2))
        assert captured["point"].n_bits == 7


class TestSystemGraph:
    def test_linear_graph_matches_chain(self):
        graph = SystemGraph()
        graph.add(AddConstant(1, "a")).add(AddConstant(2, "b")).connect("a", "b")
        ctx = SimulationContext()
        outputs = graph.run({"a": make_signal(4)}, ctx)
        assert list(outputs) == ["b"]
        np.testing.assert_array_equal(outputs["b"].data, np.full(4, 3.0))

    def test_fanout_two_sinks(self):
        graph = SystemGraph()
        graph.add(AddConstant(1, "src")).add(AddConstant(10, "s1")).add(AddConstant(20, "s2"))
        graph.connect("src", "s1").connect("src", "s2")
        outputs = graph.run({"src": make_signal(2)}, SimulationContext())
        assert set(outputs) == {"s1", "s2"}
        np.testing.assert_array_equal(outputs["s1"].data, np.full(2, 11.0))
        np.testing.assert_array_equal(outputs["s2"].data, np.full(2, 21.0))

    def test_multi_input_slots_ordered(self):
        class Subtract(Block):
            def process(self, signals, ctx):
                first, second = signals
                return first.replaced(data=first.data - second.data)

        graph = SystemGraph()
        graph.add(AddConstant(5, "a")).add(AddConstant(2, "b")).add(Subtract("diff"))
        graph.connect("a", "diff", slot=0).connect("b", "diff", slot=1)
        outputs = graph.run(
            {"a": make_signal(2), "b": make_signal(2)}, SimulationContext()
        )
        np.testing.assert_array_equal(outputs["diff"].data, np.full(2, 3.0))

    def test_cycle_rejected(self):
        graph = SystemGraph()
        graph.add(AddConstant(1, "a")).add(AddConstant(2, "b"))
        graph.connect("a", "b")
        with pytest.raises(ValueError, match="cycle"):
            graph.connect("b", "a")

    def test_missing_input_rejected(self):
        graph = SystemGraph()
        graph.add(AddConstant(1, "a"))
        with pytest.raises(ValueError, match="no input"):
            graph.run({}, SimulationContext())

    def test_unknown_node_rejected(self):
        graph = SystemGraph()
        graph.add(AddConstant(1, "a"))
        with pytest.raises(KeyError):
            graph.connect("a", "zzz")

    def test_duplicate_add_rejected(self):
        graph = SystemGraph()
        graph.add(AddConstant(1, "a"))
        with pytest.raises(ValueError):
            graph.add(AddConstant(2, "a"))
