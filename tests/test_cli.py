"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.scale == "smoke"
        assert args.min_accuracy == 0.9

    def test_sweep_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--scale", "galactic"])

    def test_budget_flags(self):
        args = build_parser().parse_args(["budget", "--bits", "6", "--cs", "--m", "75"])
        assert args.bits == 6
        assert args.cs
        assert args.m == 75


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "EffiCSense" in out
        assert "transmitter" in out
        assert "BW_LNA" in out

    def test_budget_baseline(self, capsys):
        assert main(["budget", "--bits", "8", "--noise-uv", "2"]) == 0
        out = capsys.readouterr().out
        assert "quantization" in out
        assert "predicted SNR" in out
        assert "estimated power" in out

    def test_budget_cs(self, capsys):
        assert main(["budget", "--cs", "--m", "75", "--noise-uv", "8"]) == 0
        out = capsys.readouterr().out
        assert "CS(M=75/384" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "SNDR" in out
        assert "Fig. 4" in out

    def test_sweep_and_report_roundtrip(self, tmp_path, capsys):
        sweep_path = tmp_path / "sweep.json"
        csv_path = tmp_path / "sweep.csv"
        assert (
            main(
                [
                    "sweep",
                    "--scale",
                    "smoke",
                    "--save",
                    str(sweep_path),
                    "--csv",
                    str(csv_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "accuracy front" in out
        assert "Pareto" in out
        assert sweep_path.exists()
        assert csv_path.exists()
        payload = json.loads(sweep_path.read_text())
        assert payload["evaluations"]

        assert main(["report", str(sweep_path), "--min-accuracy", "0.9"]) == 0
        report_out = capsys.readouterr().out
        assert "Fig. 7" in report_out
        assert "Fig. 10" in report_out


class TestProfiledSweep:
    def test_profile_writes_manifest_and_summary(self, tmp_path, capsys):
        from repro.core.telemetry import MANIFEST_SCHEMA_VERSION, RunManifest, get_active

        manifest_path = tmp_path / "run.manifest.json"
        assert (
            main(
                [
                    "sweep",
                    "--scale", "smoke",
                    "--profile",
                    "--no-progress",
                    "--no-cache",
                    "--manifest", str(manifest_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wrote run manifest" in out
        assert "telemetry summary" in out

        manifest = RunManifest.load(manifest_path)
        assert manifest.schema == MANIFEST_SCHEMA_VERSION
        assert manifest.scale == "smoke"
        assert manifest.grid_size == 18
        assert manifest.sweep["evaluated"] == 18
        assert manifest.block_time_s, "per-block time breakdown missing"
        assert manifest.block_power_w, "per-block power breakdown missing"
        assert manifest.sweep["point_seconds"]["count"] == 18
        assert manifest.eta_history

        # The CLI deactivates its telemetry sink after the command.
        assert not get_active().enabled


class TestAdaptiveSweep:
    def test_adaptive_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--adaptive", "--rungs", "4", "--keep-frac", "0.25"]
        )
        assert args.adaptive
        assert args.rungs == 4
        assert args.keep_frac == 0.25

    def test_adaptive_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert not args.adaptive
        assert args.rungs == 3
        assert args.keep_frac == pytest.approx(1 / 3)

    def test_adaptive_sweep_writes_ledger_into_manifest(self, tmp_path, capsys):
        from repro.core.telemetry import MANIFEST_SCHEMA_VERSION, RunManifest

        manifest_path = tmp_path / "run.manifest.json"
        assert (
            main(
                [
                    "sweep",
                    "--scale", "smoke",
                    "--adaptive",
                    "--rungs", "2",
                    "--no-cache",
                    "--manifest", str(manifest_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "adaptive exploration (successive halving)" in out
        assert "full-fidelity evaluations" in out
        assert "Pareto" in out

        manifest = RunManifest.load(manifest_path)
        assert manifest.schema == MANIFEST_SCHEMA_VERSION
        assert manifest.command == "sweep --adaptive"
        ledger = manifest.adaptive
        assert ledger["grid_size"] == 18
        assert len(ledger["rungs"]) == 2
        assert ledger["rungs"][-1]["name"] == "full"
        assert 0 < ledger["full_fidelity_evaluations"] <= 18
        assert ledger["reduction"] >= 1.0

    def test_observability_flags_parse_on_every_command(self):
        for argv in (
            ["tables", "--profile"],
            ["fig4", "--log-level", "debug"],
            ["sweep", "--no-progress"],
            ["budget", "--profile"],
            ["bench", "--trace", "t.json"],
        ):
            args = build_parser().parse_args(argv)
            assert hasattr(args, "profile")
            assert hasattr(args, "log_level")
            assert hasattr(args, "no_progress")
            assert hasattr(args, "trace")
            assert hasattr(args, "metrics_out")
            assert hasattr(args, "events_out")

    def test_trace_metrics_and_events_artifacts(self, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.json"
        metrics_path = tmp_path / "metrics.prom"
        events_path = tmp_path / "events.jsonl"
        manifest_path = tmp_path / "run.manifest.json"
        assert (
            main(
                [
                    "sweep",
                    "--scale", "smoke",
                    "--no-progress",
                    "--no-cache",
                    "--trace", str(trace_path),
                    "--metrics-out", str(metrics_path),
                    "--events-out", str(events_path),
                    "--manifest", str(manifest_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wrote trace" in out and "wrote metrics" in out

        from tests.test_tracing import validate_chrome_trace

        events = validate_chrome_trace(json.loads(trace_path.read_text()))
        names = {e["name"] for e in events if e["ph"] == "X"}
        # The full hierarchy: sweep -> point -> block -> solver spans.
        assert {"explore.total", "explore.point"} <= names
        assert any(name.startswith("block.") for name in names)
        assert any(name.startswith("cs.recover.") for name in names)

        metrics = metrics_path.read_text()
        assert metrics.endswith("# EOF\n")
        assert "repro_explore_point_seconds" in metrics

        streamed = [json.loads(line) for line in events_path.read_text().splitlines()]
        assert any(e["kind"] == "explore.progress" for e in streamed)

        from repro.core.telemetry import RunManifest

        manifest = RunManifest.load(manifest_path)
        assert manifest.trace["events"] > 0
        assert manifest.histograms["explore.point_seconds"]["count"] == 18
        assert manifest.sweep["events_dropped"] == 0
        assert manifest.sweep["max_events"] > 0

    def test_parallel_profiled_sweep_reports_worker_lanes(self, tmp_path):
        from repro.core.telemetry import RunManifest

        trace_path = tmp_path / "run.trace.json"
        manifest_path = tmp_path / "run.manifest.json"
        assert (
            main(
                [
                    "sweep",
                    "--scale", "smoke",
                    "--no-progress",
                    "--no-cache",
                    "--workers", "2",
                    "--executor", "process",
                    "--trace", str(trace_path),
                    "--manifest", str(manifest_path),
                ]
            )
            == 0
        )
        from tests.test_tracing import validate_chrome_trace

        validate_chrome_trace(json.loads(trace_path.read_text()))
        manifest = RunManifest.load(manifest_path)
        assert manifest.workers, "expected per-worker counters in the manifest"
        assert all(label.startswith("worker-") for label in manifest.workers)
        lanes = manifest.trace["lanes"].values()
        assert "driver" in lanes
        assert any(label.startswith("worker-") for label in lanes)


class TestSweepParallelFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workers is None
        assert args.executor is None
        assert args.checkpoint is None
        assert args.cache_dir == ".repro-cache"
        assert not args.no_cache

    def test_parallel_flags_parse(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--workers", "4",
                "--executor", "process",
                "--checkpoint", "sweep.ckpt.jsonl",
                "--no-cache",
            ]
        )
        assert args.workers == 4
        assert args.executor == "process"
        assert args.checkpoint == "sweep.ckpt.jsonl"
        assert args.no_cache

    def test_unknown_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--executor", "gpu"])


class TestStoreCli:
    def _seed_store(self, tmp_path):
        from repro.core.results import Evaluation, ExplorationResult
        from repro.power.technology import DesignPoint
        from repro.store import ResultStore

        store = ResultStore(tmp_path / "store")
        evaluations = [
            Evaluation(DesignPoint(n_bits=b), {"power_uw": float(b)}) for b in (6, 7)
        ]
        store.put_sweep("demo", "fp-v1", ExplorationResult(evaluations, name="demo"))
        return store

    def test_ls_lists_sweeps(self, tmp_path, capsys):
        store = self._seed_store(tmp_path)
        assert main(["store", "ls", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert " 2 " in out

    def test_ls_empty_store(self, tmp_path, capsys):
        assert main(["store", "ls", "--store", str(tmp_path / "empty")]) == 0
        assert "no sweeps" in capsys.readouterr().out

    def test_get_prints_manifest_json(self, tmp_path, capsys):
        store = self._seed_store(tmp_path)
        assert main(["store", "get", "demo", "--store", str(store.root)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "demo"
        assert len(payload["entries"]) == 2

    def test_get_missing_sweep_exits_nonzero(self, tmp_path, capsys):
        store = self._seed_store(tmp_path)
        assert main(["store", "get", "nope", "--store", str(store.root)]) == 2
        assert "nope" in capsys.readouterr().err

    def test_gc_reports_removed_blobs(self, tmp_path, capsys):
        from repro.core.results import Evaluation
        from repro.power.technology import DesignPoint

        store = self._seed_store(tmp_path)
        orphan = Evaluation(DesignPoint(n_bits=12), {"power_uw": 12.0})
        store.put_evaluation("fp-v1", orphan.point, orphan)
        assert main(["store", "gc", "--store", str(store.root)]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_serve_flags_parse(self):
        args = build_parser().parse_args(["serve", "--port", "9000"])
        assert args.port == 9000
        assert args.host == "127.0.0.1"
        assert args.store == ".repro-store"


class TestFleetCli:
    def test_sweep_fleet_flags_parse(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--fleet",
                "--fleet-host",
                "0.0.0.0",
                "--fleet-port",
                "9000",
                "--fleet-spawn",
                "0",
                "--fleet-lease-timeout",
                "5",
            ]
        )
        assert args.fleet
        assert args.fleet_host == "0.0.0.0"
        assert args.fleet_port == 9000
        assert args.fleet_spawn == 0
        assert args.fleet_lease_timeout == 5.0

    def test_executor_accepts_fleet(self):
        args = build_parser().parse_args(["sweep", "--executor", "fleet"])
        assert args.executor == "fleet"

    def test_worker_flags_parse(self):
        args = build_parser().parse_args(
            ["worker", "--connect", "coord:8731", "--label", "w0", "--no-cache"]
        )
        assert args.connect == "coord:8731"
        assert args.label == "w0"
        assert args.no_cache

    def test_worker_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_worker_rejects_malformed_endpoint(self, capsys):
        assert main(["worker", "--connect", "nocolon"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err
        assert main(["worker", "--connect", "host:notaport"]) == 2

    def test_fleet_conflicts_with_other_executor(self, capsys):
        assert main(["sweep", "--fleet", "--executor", "process"]) == 2
        assert "--fleet conflicts" in capsys.readouterr().err

    def test_fleet_conflicts_with_adaptive(self, capsys):
        assert main(["sweep", "--fleet", "--adaptive"]) == 2
        assert "--adaptive" in capsys.readouterr().err


class TestTraceMergeCli:
    @staticmethod
    def _trace(path, label, pid, at_s):
        from repro.core.tracing import Tracer, chrome_trace

        tracer = Tracer(label=label)
        tracer.finish(tracer.start("work"))
        payload = chrome_trace(tracer.snapshot())
        for event in payload["traceEvents"]:
            event["pid"] = pid
            if event["ph"] == "X":
                event["ts"] = at_s * 1e6
        path.write_text(json.dumps(payload))
        return payload

    def test_merge_round_trip(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        self._trace(a, "coordinator", pid=100, at_s=1.0)
        self._trace(b, "worker-1", pid=100, at_s=2.0)  # colliding pid
        out = tmp_path / "merged" / "trace.json"
        assert main(["trace", "merge", str(a), str(b), "-o", str(out)]) == 0
        merged = json.loads(out.read_text())
        lanes = {
            e["args"]["name"] for e in merged["traceEvents"] if e["ph"] == "M"
        }
        assert lanes == {"coordinator", "worker-1"}
        # The pid collision was resolved, not silently squashed.
        pids = {e["pid"] for e in merged["traceEvents"]}
        assert len(pids) == 2
        summary = capsys.readouterr().out
        assert "2 lane(s)" in summary and str(out) in summary

    def test_merge_align_anchors_traces(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        self._trace(a, "coordinator", pid=1, at_s=10.0)
        self._trace(b, "worker-1", pid=2, at_s=9000.0)  # skewed clock
        out = tmp_path / "merged.json"
        assert main(
            ["trace", "merge", str(a), str(b), "-o", str(out), "--align"]
        ) == 0
        merged = json.loads(out.read_text())
        spans = [e for e in merged["traceEvents"] if e["ph"] == "X"]
        earliest = {e["pid"]: e["ts"] for e in spans}
        assert len(set(earliest.values())) == 1  # both anchored together

    def test_missing_input_is_an_error(self, tmp_path, capsys):
        out = tmp_path / "merged.json"
        code = main(["trace", "merge", str(tmp_path / "nope.json"), "-o", str(out)])
        assert code == 2
        assert "nope.json" in capsys.readouterr().err
        assert not out.exists()

    def test_non_trace_input_is_an_error(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"hello": "world"}))
        code = main(["trace", "merge", str(bogus), "-o", str(tmp_path / "m.json")])
        assert code == 2
        assert "trace" in capsys.readouterr().err.lower()
