"""Tests of the sweep-as-a-service HTTP API (:mod:`repro.serve`).

The HTTP tests run a real asyncio server on an ephemeral loopback port
(:class:`~repro.serve.ServerThread`) and drive it with stdlib
``http.client``/``urllib`` -- the same wire path production clients use.
A cheap closed-form evaluator keeps each sweep sub-millisecond while
counting its invocations, so the served-from-store assertions can prove
the evaluator was *not* called.
"""

import http.client
import json
import threading
import time

import pytest

from repro.core.results import Evaluation
from repro.core.telemetry import Telemetry
from repro.power.technology import DesignPoint
from repro.serve import (
    DEFAULT_PAGE_LIMIT,
    ServerThread,
    SubmissionError,
    SweepService,
    default_resolver,
    if_none_match_hits,
)
from repro.store import ResultStore


class CountingEvaluator:
    """Closed-form evaluator: power = n_bits, snr = 50 - n_bits."""

    def __init__(self, fail_bits=()):
        self.calls = 0
        self.fail_bits = set(fail_bits)
        self.gate = threading.Event()
        self.gate.set()

    def fingerprint(self):
        return "counting-v1"

    def evaluate(self, point):
        self.gate.wait(timeout=10)
        self.calls += 1
        if point.n_bits in self.fail_bits:
            raise ValueError(f"injected failure at {point.n_bits} bits")
        return Evaluation(
            point=point,
            metrics={"power_uw": float(point.n_bits), "snr_db": 50.0 - point.n_bits},
            breakdown={"adc": float(point.n_bits)},
        )

    __call__ = evaluate


@pytest.fixture
def service(tmp_path):
    """A SweepService over a fresh store with the counting evaluator."""
    evaluator = CountingEvaluator()
    points = [DesignPoint(n_bits=b) for b in (6, 7, 8, 9)]

    def resolver(payload):
        if not isinstance(payload, dict):
            raise SubmissionError("body must be an object")
        name = payload.get("name", "demo")
        if payload.get("explode"):
            raise SubmissionError("injected submission error")
        return name, evaluator, list(points), {}

    svc = SweepService(
        ResultStore(tmp_path / "store"), resolver=resolver, telemetry=Telemetry()
    )
    svc.evaluator = evaluator  # test handle
    svc.points = points
    return svc


def wait_done(service, name, timeout=10.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        job = service.jobs.get(name)
        if job is not None and job.status != "running":
            return job
        time.sleep(0.01)
    raise AssertionError(f"sweep {name} did not settle within {timeout}s")


class Client:
    """Tiny keep-alive HTTP client over one connection."""

    def __init__(self, server: ServerThread):
        self.conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)

    def request(self, method, path, body=None, headers=None):
        payload = json.dumps(body).encode() if body is not None else None
        self.conn.request(method, path, body=payload, headers=headers or {})
        response = self.conn.getresponse()
        raw = response.read()
        data = json.loads(raw) if raw else None
        return response, data

    def close(self):
        self.conn.close()


@pytest.fixture
def server(service):
    with ServerThread(service) as srv:
        yield srv


@pytest.fixture
def client(server):
    c = Client(server)
    yield c
    c.close()


class TestServiceSubmission:
    def test_submit_runs_and_stores(self, service):
        job, accepted = service.submit({"name": "run1"})
        assert accepted
        job = wait_done(service, "run1")
        assert job.status == "done"
        assert job.digest
        assert not job.from_store
        assert len(service.store.load_result("run1")) == 4

    def test_resubmit_served_from_store_without_evaluator(self, service):
        service.submit({"name": "run1"})
        wait_done(service, "run1")
        calls_before = service.evaluator.calls
        job, accepted = service.submit({"name": "run1"})
        assert accepted
        assert job.status == "done"
        assert job.from_store
        assert service.evaluator.calls == calls_before
        assert service.telemetry.counters.get("serve.store_hits") == 1

    def test_duplicate_running_submission_not_raced(self, service):
        service.evaluator.gate.clear()  # hold the first sweep mid-flight
        try:
            _, first_accepted = service.submit({"name": "slow"})
            job, accepted = service.submit({"name": "slow"})
            assert first_accepted and not accepted
            assert job.status == "running"
        finally:
            service.evaluator.gate.set()
        wait_done(service, "slow")

    def test_failed_sweep_settles_as_failed(self, tmp_path):
        def resolver(payload):
            return "bad", BrokenEvaluator(), [DesignPoint(n_bits=6)], {}

        class BrokenEvaluator:
            def fingerprint(self):
                return "broken-v1"

            def evaluate(self, point):
                raise RuntimeError("evaluator exploded")

            __call__ = evaluate

        svc = SweepService(
            ResultStore(tmp_path / "s"), resolver=resolver, telemetry=Telemetry()
        )
        job, _ = svc.submit({})
        job = wait_done(svc, "bad")
        # Non-strict explore records the failure as a failed evaluation;
        # the sweep itself still completes and is stored with n_failures.
        assert job.status == "done"
        manifest = svc.store.get_sweep("bad")
        assert manifest.n_failures == 1

    def test_invalid_name_rejected(self, service):
        with pytest.raises(ValueError):
            service.submit({"name": "../escape"})


class TestDefaultResolver:
    def test_unknown_scale_rejected(self):
        with pytest.raises(SubmissionError, match="scale"):
            default_resolver({"scale": "bogus"})

    def test_non_object_rejected(self):
        with pytest.raises(SubmissionError, match="object"):
            default_resolver([1, 2])

    def test_bad_workers_rejected(self):
        with pytest.raises(SubmissionError, match="workers"):
            default_resolver({"scale": "smoke", "workers": 0})

    def test_bad_executor_rejected(self):
        with pytest.raises(SubmissionError, match="executor"):
            default_resolver({"scale": "smoke", "executor": "quantum"})

    def test_smoke_scale_resolves(self):
        name, evaluator, points, kwargs = default_resolver({"scale": "smoke"})
        assert name == "fig7-smoke"
        assert callable(evaluator)
        assert len(points) > 0
        assert kwargs["executor"] == "serial"


class TestIfNoneMatch:
    def test_exact_match(self):
        assert if_none_match_hits('"abc"', '"abc"')

    def test_weak_prefix(self):
        assert if_none_match_hits('W/"abc"', '"abc"')

    def test_list(self):
        assert if_none_match_hits('"x", "abc" , "y"', '"abc"')

    def test_wildcard(self):
        assert if_none_match_hits("*", '"anything"')

    def test_miss(self):
        assert not if_none_match_hits('"other"', '"abc"')
        assert not if_none_match_hits(None, '"abc"')


class TestHttpEndToEnd:
    """The acceptance path: submit over HTTP -> stream progress -> query
    Pareto -> revalidate with If-None-Match -> resubmit from store."""

    def test_healthz(self, client):
        response, data = client.request("GET", "/healthz")
        assert response.status == 200
        assert data["ok"] is True
        assert data["draining"] is False
        assert data["uptime_s"] >= 0
        assert set(data["sweeps"]) == {"running", "done", "failed"}
        assert set(data["store"]) == {"sweeps", "cached_evaluations"}

    def test_full_cycle(self, server, service):
        client = Client(server)
        # 1. Submit.
        response, data = client.request("POST", "/v1/sweeps", body={"name": "e2e"})
        assert response.status in (200, 202)
        assert data["name"] == "e2e"

        # 2. Stream progress from the JSONL event sink until completion.
        stream = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        stream.request("GET", "/v1/sweeps/e2e/events")
        streamed = stream.getresponse()
        assert streamed.status == 200
        assert streamed.headers["Content-Type"] == "application/x-ndjson"
        lines = [json.loads(l) for l in streamed.read().decode().splitlines()]
        stream.close()
        kinds = [line["kind"] for line in lines]
        assert kinds.count("explore.progress") == 4
        assert kinds[-1] == "serve.stream_end"
        assert lines[-1]["status"] == "done"

        # 3. Query the Pareto front; capture the ETag.
        response, front = client.request("GET", "/v1/sweeps/e2e/pareto")
        assert response.status == 200
        etag = response.headers["ETag"]
        assert front["total"] == 1  # n_bits=6 minimises power AND maximises snr
        assert front["front"][0]["power_uw"] == 6.0
        assert front["front"][0]["breakdown"] == {"adc": 6.0}

        # 4. Conditional revalidation: 304, no body, no evaluator call.
        calls_before = service.evaluator.calls
        response, data = client.request(
            "GET", "/v1/sweeps/e2e/pareto", headers={"If-None-Match": etag}
        )
        assert response.status == 304
        assert data is None
        assert response.headers["ETag"] == etag
        assert service.evaluator.calls == calls_before
        assert service.telemetry.counters.get("serve.not_modified") == 1

        # 5. Resubmit: served entirely from the store, still no evaluator.
        response, data = client.request("POST", "/v1/sweeps", body={"name": "e2e"})
        assert response.status == 200
        assert data["from_store"] is True
        assert service.evaluator.calls == calls_before
        assert service.telemetry.counters.get("serve.store_hits") == 1
        # The exploration telemetry merged into the service: exactly one
        # sweep ran, exactly 4 evaluator misses, ever.
        assert service.telemetry.counters.get("explore.cache_misses") == 4
        client.close()

    def test_manifest_view_and_listing(self, client, service):
        client.request("POST", "/v1/sweeps", body={"name": "m1"})
        wait_done(service, "m1")
        response, data = client.request("GET", "/v1/sweeps/m1")
        assert response.status == 200
        assert data["status"] == "done"
        assert data["n_evaluations"] == 4
        assert response.headers["ETag"] == f'"{data["digest"]}"'
        response, listing = client.request("GET", "/v1/sweeps")
        assert "m1" in listing["sweeps"]

    def test_evaluations_pagination(self, client, service):
        client.request("POST", "/v1/sweeps", body={"name": "p1"})
        wait_done(service, "p1")
        response, data = client.request(
            "GET", "/v1/sweeps/p1/evaluations?offset=1&limit=2"
        )
        assert response.status == 200
        assert data["total"] == 4
        assert data["offset"] == 1 and data["limit"] == 2
        assert len(data["evaluations"]) == 2
        assert data["evaluations"][0]["metrics"]["power_uw"] == 7.0
        # Out-of-range offset: valid request, empty page.
        _, tail = client.request("GET", "/v1/sweeps/p1/evaluations?offset=99")
        assert tail["evaluations"] == []
        # Default limit applies when unspecified.
        _, default = client.request("GET", "/v1/sweeps/p1/evaluations")
        assert default["limit"] == DEFAULT_PAGE_LIMIT

    def test_breakdown_view(self, client, service):
        client.request("POST", "/v1/sweeps", body={"name": "b1"})
        wait_done(service, "b1")
        response, data = client.request("GET", "/v1/sweeps/b1/breakdown")
        assert response.status == 200
        assert data["breakdown"][0]["breakdown"] == {"adc": 6.0}
        assert data["breakdown"][0]["power_uw"] == 6.0

    def test_pareto_custom_objectives(self, client, service):
        client.request("POST", "/v1/sweeps", body={"name": "obj"})
        wait_done(service, "obj")
        # Maximising power alone: the 9-bit point wins.
        _, data = client.request(
            "GET", "/v1/sweeps/obj/pareto?maximize=power_uw&minimize="
        )
        assert data["objectives"] == [{"metric": "power_uw", "maximize": True}]
        assert data["front"][0]["power_uw"] == 9.0


class TestHttpErrors:
    def test_unknown_sweep_404(self, client):
        response, data = client.request("GET", "/v1/sweeps/nope")
        assert response.status == 404
        assert "nope" in data["error"]

    def test_unknown_route_404(self, client):
        response, _ = client.request("GET", "/v2/bogus")
        assert response.status == 404

    def test_unknown_view_404(self, client, service):
        client.request("POST", "/v1/sweeps", body={"name": "v1ok"})
        wait_done(service, "v1ok")
        response, _ = client.request("GET", "/v1/sweeps/v1ok/bogusview")
        assert response.status == 404

    def test_method_not_allowed_405(self, client):
        response, _ = client.request("PUT", "/v1/sweeps")
        assert response.status == 405
        response, _ = client.request("POST", "/healthz")
        assert response.status == 405

    def test_malformed_json_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("POST", "/v1/sweeps", body=b"{not json")
        response = conn.getresponse()
        assert response.status == 400
        assert "JSON" in json.loads(response.read())["error"]
        conn.close()

    def test_submission_error_400(self, client):
        response, data = client.request(
            "POST", "/v1/sweeps", body={"explode": True}
        )
        assert response.status == 400
        assert "injected submission error" in data["error"]

    def test_invalid_sweep_name_400(self, client):
        response, data = client.request("POST", "/v1/sweeps", body={"name": "a/b"})
        # Path traversal in a name cannot reach the filesystem layer.
        assert response.status == 400

    @pytest.mark.parametrize(
        "query", ["offset=-1", "limit=0", "limit=99999", "offset=abc", "limit=1.5"]
    )
    def test_pagination_bounds_400(self, client, service, query):
        client.request("POST", "/v1/sweeps", body={"name": "pag"})
        wait_done(service, "pag")
        response, data = client.request("GET", f"/v1/sweeps/pag/evaluations?{query}")
        assert response.status == 400
        assert "error" in data

    def test_events_of_unknown_sweep_404(self, client):
        response, data = client.request("GET", "/v1/sweeps/ghost/events")
        assert response.status == 404

    def test_malformed_request_line_400(self, server):
        import socket

        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(b"GARBAGE\r\n\r\n")
            raw = sock.recv(4096)
        assert b"400" in raw.split(b"\r\n", 1)[0]

    def test_errors_counted(self, client, service):
        client.request("GET", "/v1/sweeps/nope")
        assert service.telemetry.counters.get("serve.requests", 0) >= 1


class TestLiveProgressStreaming:
    def test_stream_follows_a_running_sweep(self, server, service):
        """Open the event stream while the sweep is gated mid-flight: the
        stream must stay open, then deliver the remaining progress events
        and the terminal line once the sweep resumes."""
        service.evaluator.gate.clear()
        client = Client(server)
        client.request("POST", "/v1/sweeps", body={"name": "live"})

        received = []

        def consume():
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
            conn.request("GET", "/v1/sweeps/live/events")
            response = conn.getresponse()
            for raw in response:
                line = raw.strip()
                if line:
                    received.append(json.loads(line))
            conn.close()

        consumer = threading.Thread(target=consume)
        consumer.start()
        time.sleep(0.2)  # stream is tailing a still-running sweep
        assert consumer.is_alive()
        service.evaluator.gate.set()
        consumer.join(timeout=30)
        assert not consumer.is_alive()
        kinds = [line["kind"] for line in received]
        assert kinds.count("explore.progress") == 4
        assert kinds[-1] == "serve.stream_end"
        client.close()


class TestGracefulShutdown:
    def test_draining_service_refuses_submissions(self, service):
        from repro.serve import ServiceDraining

        assert not service.draining
        service.begin_drain()
        assert service.draining
        with pytest.raises(ServiceDraining):
            service.submit({"name": "late"})

    def test_drain_waits_for_running_sweep(self, service):
        service.evaluator.gate.clear()  # hold the sweep mid-flight
        service.submit({"name": "slow"})
        assert service.drain(timeout_s=0.2) == ["slow"]  # still running

        service.evaluator.gate.set()
        assert service.drain(timeout_s=10.0) == []
        assert service.jobs["slow"].status == "done"

    def test_drain_with_nothing_running_returns_immediately(self, service):
        start = time.time()
        assert service.drain(timeout_s=30.0) == []
        assert time.time() - start < 5.0

    def test_http_503_and_healthz_while_draining(self, service, client):
        response, data = client.request("GET", "/healthz")
        assert response.status == 200 and data["draining"] is False

        service.begin_drain()
        response, data = client.request("GET", "/healthz")
        assert response.status == 200 and data["draining"] is True

        response, data = client.request("POST", "/v1/sweeps", body={"name": "x"})
        assert response.status == 503
        assert "draining" in data["error"]

        # Readers are unaffected while draining.
        response, _data = client.request("GET", "/v1/sweeps")
        assert response.status == 200

    def test_drain_is_idempotent(self, service):
        service.begin_drain()
        before = service.telemetry.counters.get("serve.drain")
        service.begin_drain()
        assert service.telemetry.counters.get("serve.drain") == before == 1


class TestMetricsEndpoint:
    def fetch_metrics(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        body = response.read().decode()
        conn.close()
        return response, body

    def test_openmetrics_exposition(self, server, service):
        client = Client(server)
        client.request("POST", "/v1/sweeps", body={"name": "met"})
        wait_done(service, "met")
        client.request("GET", "/healthz")
        client.close()
        response, body = self.fetch_metrics(server)
        assert response.status == 200
        assert response.headers["Content-Type"].startswith(
            "application/openmetrics-text"
        )
        assert body.endswith("# EOF\n")
        # A counter family from the request path...
        assert "# TYPE repro_serve_requests counter" in body
        assert "repro_serve_requests_total" in body
        # ...and a per-route latency histogram family with cumulative
        # buckets ending in the +Inf catch-all.
        assert "# TYPE repro_serve_request_seconds_healthz histogram" in body
        healthz_buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in body.splitlines()
            if line.startswith("repro_serve_request_seconds_healthz_bucket")
        ]
        assert healthz_buckets == sorted(healthz_buckets)
        assert healthz_buckets[-1] >= 1
        assert 'le="+Inf"' in body

    def test_route_labels_are_bounded(self, server):
        client = Client(server)
        # Arbitrary sweep names must not mint new metric families.
        client.request("GET", "/v1/sweeps/alpha/pareto")
        client.request("GET", "/v1/sweeps/beta/pareto")
        client.request("GET", "/v2/whatever")
        client.close()
        _, body = self.fetch_metrics(server)
        assert "repro_serve_request_seconds_sweep_pareto_count 2" in body
        assert "alpha" not in body and "beta" not in body
        assert "repro_serve_request_seconds_other_count" in body

    def test_response_size_histogram(self, server):
        client = Client(server)
        client.request("GET", "/v1/sweeps")
        client.close()
        _, body = self.fetch_metrics(server)
        assert "# TYPE repro_serve_response_bytes_sweeps_list histogram" in body


class TestTraceEndpoint:
    def test_trace_artifact_served(self, client, service):
        client.request("POST", "/v1/sweeps", body={"name": "tr1"})
        wait_done(service, "tr1")
        response, trace = client.request("GET", "/v1/sweeps/tr1/trace")
        assert response.status == 200
        assert trace["displayTimeUnit"] == "ms"
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert "explore.total" in names
        # The artifact survives on disk alongside the event log.
        assert service.trace_path("tr1").exists()

    def test_trace_of_unknown_sweep_404(self, client):
        response, data = client.request("GET", "/v1/sweeps/ghost/trace")
        assert response.status == 404

    def test_trace_of_store_served_sweep_404(self, client, service):
        """A store hit never ran an explore here, so there is no trace
        artifact -- the endpoint must say so rather than serve a stale
        file or crash."""
        client.request("POST", "/v1/sweeps", body={"name": "tr2"})
        wait_done(service, "tr2")
        service.trace_path("tr2").unlink()  # simulate artifact loss
        response, data = client.request("GET", "/v1/sweeps/tr2/trace")
        assert response.status == 404
        assert "trace" in data["error"]
