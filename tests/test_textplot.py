"""Tests of the ASCII chart utility."""

import numpy as np
import pytest

from repro.core.results import Evaluation
from repro.power.technology import DesignPoint
from repro.util.textplot import Series, TextChart, pareto_chart, scatter


class TestSeries:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="points"):
            Series("a", np.array([1.0]), np.array([1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Series("a", np.array([]), np.array([]))


class TestTextChart:
    def test_render_contains_glyphs_and_legend(self):
        chart = TextChart(width=32, height=8)
        chart.add("up", [0, 1, 2], [0, 1, 2]).add("down", [0, 1, 2], [2, 1, 0])
        out = chart.render()
        assert "o up" in out
        assert "x down" in out
        assert "o" in out.splitlines()[0] or any("o" in l for l in out.splitlines())

    def test_axis_ticks_present(self):
        chart = TextChart(width=32, height=8, x_label="power", y_label="snr")
        chart.add("s", [1.0, 10.0], [5.0, 50.0])
        out = chart.render()
        assert "10" in out
        assert "50" in out
        assert "power" in out
        assert "snr" in out

    def test_monotone_series_renders_monotone(self):
        chart = TextChart(width=20, height=6)
        chart.add("s", [0, 1, 2, 3], [0, 1, 2, 3])
        rows = [line.split("|", 1)[1] for line in chart.render().splitlines() if "|" in line]
        # Top row holds the largest-y point (rightmost column), bottom the
        # smallest (leftmost column).
        assert rows[0].rstrip().endswith("o")
        assert rows[-1].lstrip().startswith("o")

    def test_degenerate_ranges_handled(self):
        chart = TextChart(width=20, height=6)
        chart.add("flat", [1, 2, 3], [5, 5, 5])
        assert "flat" in chart.render()

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError, match="no series"):
            TextChart().render()

    def test_tiny_dimensions_rejected(self):
        with pytest.raises(ValueError):
            TextChart(width=4, height=2)

    def test_title_shown(self):
        chart = TextChart(width=20, height=6, title="Fig. 7")
        chart.add("s", [0, 1], [0, 1])
        assert "Fig. 7" in chart.render()

    def test_deterministic(self):
        def build():
            return TextChart(width=24, height=6).add("s", [0, 1, 2], [1, 4, 2]).render()

        assert build() == build()


class TestHelpers:
    def test_scatter_wrapper(self):
        out = scatter({"a": ([0, 1], [0, 1])}, x_label="p", y_label="q")
        assert "a" in out
        assert "p" in out

    def test_pareto_chart_from_evaluations(self):
        front = [
            Evaluation(DesignPoint(), {"power_uw": 1.0, "accuracy": 0.9}),
            Evaluation(DesignPoint(use_cs=True), {"power_uw": 2.0, "accuracy": 0.99}),
        ]
        out = pareto_chart({"baseline": front}, title="fig7b")
        assert "fig7b" in out
        assert "power_uw" in out

    def test_pareto_chart_rejects_empty(self):
        with pytest.raises(ValueError):
            pareto_chart({"empty": []})
