"""Tests of the Signal container."""

import numpy as np
import pytest

from repro.core.signal import DOMAINS, Signal


class TestConstruction:
    def test_coerces_to_float64(self):
        signal = Signal(data=[1, 2, 3], sample_rate=100.0)
        assert signal.data.dtype == np.float64

    def test_rejects_bad_domain(self):
        with pytest.raises(ValueError, match="domain"):
            Signal(data=np.zeros(4), sample_rate=100.0, domain="quantum")

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Signal(data=np.zeros(4), sample_rate=0.0)

    def test_all_domains_accepted(self):
        for domain in DOMAINS:
            assert Signal(np.zeros(2), 1.0, domain=domain).domain == domain


class TestProperties:
    def test_n_samples_counts_all_elements(self):
        assert Signal(np.zeros((3, 4)), 1.0).n_samples == 12

    def test_duration(self):
        assert Signal(np.zeros(100), 50.0).duration == pytest.approx(2.0)

    def test_rms(self):
        signal = Signal(np.array([3.0, -3.0, 3.0, -3.0]), 1.0)
        assert signal.rms() == pytest.approx(3.0)

    def test_peak(self):
        assert Signal(np.array([1.0, -5.0, 2.0]), 1.0).peak() == 5.0

    def test_time_axis(self):
        t = Signal(np.zeros(4), 2.0).time_axis()
        np.testing.assert_allclose(t, [0.0, 0.5, 1.0, 1.5])

    def test_time_axis_rejects_2d(self):
        with pytest.raises(ValueError):
            Signal(np.zeros((2, 2)), 1.0).time_axis()


class TestReplaced:
    def test_merges_annotations(self):
        base = Signal(np.zeros(4), 1.0, annotations={"a": 1})
        out = base.replaced(b=2)
        assert out.annotations == {"a": 1, "b": 2}

    def test_overwrites_annotation(self):
        base = Signal(np.zeros(4), 1.0, annotations={"a": 1})
        assert base.replaced(a=3).annotations["a"] == 3

    def test_keeps_fields_by_default(self):
        base = Signal(np.zeros(4), 5.0, domain="digital")
        out = base.replaced(data=np.ones(4))
        assert out.sample_rate == 5.0
        assert out.domain == "digital"

    def test_does_not_mutate_original(self):
        base = Signal(np.zeros(4), 1.0, annotations={"a": 1})
        base.replaced(data=np.ones(4), a=9)
        assert base.annotations == {"a": 1}
        assert np.all(base.data == 0)

    def test_changes_rate_and_domain(self):
        base = Signal(np.zeros(4), 1.0)
        out = base.replaced(sample_rate=2.0, domain="compressed")
        assert out.sample_rate == 2.0
        assert out.domain == "compressed"
