"""Tests of sweep persistence (JSON round-trips)."""

import json

import pytest

from repro.core.results import Evaluation, ExplorationResult
from repro.core.serialization import (
    design_point_from_dict,
    design_point_to_dict,
    evaluation_from_dict,
    evaluation_to_dict,
    load_result,
    save_result,
)
from repro.power.technology import DesignPoint, Technology


class TestDesignPointRoundTrip:
    def test_default_point(self):
        point = DesignPoint()
        assert design_point_from_dict(design_point_to_dict(point)) == point

    def test_cs_point_with_custom_fields(self):
        point = DesignPoint(
            n_bits=7,
            lna_noise_rms=3.3e-6,
            use_cs=True,
            cs_architecture="digital",
            cs_m=99,
            cs_n_phi=384,
            cs_cap_ratio=12.5,
        )
        assert design_point_from_dict(design_point_to_dict(point)) == point

    def test_custom_technology_round_trips(self):
        tech = Technology(nef=3.5, e_bit=2e-9, unit_cap_mismatch_sigma=0.02)
        point = DesignPoint(technology=tech)
        restored = design_point_from_dict(design_point_to_dict(point))
        assert restored.technology == tech

    def test_derived_properties_preserved(self):
        point = DesignPoint(bw_in=128.0, sampling_ratio=2.5)
        restored = design_point_from_dict(design_point_to_dict(point))
        assert restored.f_sample == point.f_sample
        assert restored.f_clk == point.f_clk


class TestEvaluationRoundTrip:
    def test_full_round_trip(self):
        evaluation = Evaluation(
            point=DesignPoint(use_cs=True, cs_m=150),
            metrics={"power_uw": 2.5, "accuracy": 0.99},
            breakdown={"lna": 1e-6, "transmitter": 1.5e-6},
        )
        restored = evaluation_from_dict(evaluation_to_dict(evaluation))
        assert restored.point == evaluation.point
        assert restored.metrics == evaluation.metrics
        assert restored.breakdown == evaluation.breakdown

    def test_missing_breakdown_tolerated(self):
        payload = evaluation_to_dict(
            Evaluation(point=DesignPoint(), metrics={"power_uw": 1.0})
        )
        del payload["breakdown"]
        assert evaluation_from_dict(payload).breakdown == {}


class TestResultFiles:
    def make_result(self):
        return ExplorationResult(
            [
                Evaluation(DesignPoint(), {"power_uw": 8.3, "accuracy": 0.99}),
                Evaluation(
                    DesignPoint(use_cs=True, cs_m=150),
                    {"power_uw": 2.5, "accuracy": 0.994},
                ),
            ],
            name="fig7-test",
        )

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "sweep.json"
        original = self.make_result()
        save_result(original, path)
        restored = load_result(path)
        assert restored.name == "fig7-test"
        assert len(restored) == 2
        assert restored[1].point.use_cs
        assert restored[1].metrics["accuracy"] == pytest.approx(0.994)

    def test_restored_result_supports_analysis(self, tmp_path):
        from repro.experiments.fig7 import analyze_fig7

        path = tmp_path / "sweep.json"
        save_result(self.make_result(), path)
        fig7 = analyze_fig7(load_result(path), min_accuracy=0.98)
        assert fig7.power_saving == pytest.approx(8.3 / 2.5)

    def test_version_check(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_result(self.make_result(), path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_result(path)

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_result(self.make_result(), path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert len(payload["evaluations"]) == 2

    def test_crash_mid_save_keeps_previous_file(self, tmp_path, monkeypatch):
        """Regression: ``save_result`` used to ``write_text`` in place, so
        a crash mid-write truncated an hours-long sweep to garbage.  With
        the atomic-replace discipline the previous file survives intact."""
        import os

        path = tmp_path / "sweep.json"
        save_result(self.make_result(), path)
        before = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("simulated kill -9 mid-rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated kill"):
            save_result(self.make_result(), path)
        monkeypatch.undo()
        assert path.read_text() == before
        restored = load_result(path)  # previous file still parseable
        assert len(restored) == 2
        assert list(tmp_path.glob("*.tmp")) == []


class TestFailedEvaluationRoundTrip:
    def test_error_field_round_trips(self):
        from repro.core.serialization import evaluation_from_dict, evaluation_to_dict

        failed = Evaluation(
            point=DesignPoint(n_bits=6), metrics={}, error="RuntimeError: boom"
        )
        clone = evaluation_from_dict(evaluation_to_dict(failed))
        assert clone.error == "RuntimeError: boom"
        assert not clone.ok

    def test_ok_evaluation_has_no_error_key(self):
        from repro.core.serialization import evaluation_to_dict

        payload = evaluation_to_dict(Evaluation(point=DesignPoint(), metrics={"a": 1.0}))
        assert "error" not in payload
