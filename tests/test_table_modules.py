"""Additional unit tests for the table experiment modules."""

import pytest

from repro.experiments.table2 import PowerModelRow, power_model_rows
from repro.experiments.table3 import design_rows, technology_rows
from repro.power.technology import DesignPoint, Technology
from repro.util.constants import MICRO


class TestPowerModelRow:
    def test_uw_conversion(self):
        row = PowerModelRow(block="x", formula="f", reference="r", power_w=2e-6)
        assert row.power_uw == pytest.approx(2.0)

    def test_rows_carry_formula_and_reference(self):
        rows = power_model_rows(DesignPoint())
        for row in rows:
            assert row.formula
            assert row.reference

    def test_cs_row_follows_paper_table_order(self):
        # Paper Table II lists "CS Encoder Logic" after the transmitter.
        rows = power_model_rows(DesignPoint(use_cs=True, cs_m=150))
        names = [row.block for row in rows]
        assert names.index("transmitter") < names.index("cs_encoder")
        assert names[-1] == "leakage"

    def test_total_matches_chain_power(self):
        from repro.power.models import chain_power

        point = DesignPoint(n_bits=8, lna_noise_rms=4e-6)
        total_rows = sum(row.power_w for row in power_model_rows(point))
        assert total_rows == pytest.approx(chain_power(point).total, rel=1e-9)


class TestTable3Rows:
    def test_technology_rows_reflect_instance(self):
        tech = Technology(nef=3.3)
        rows = {symbol: value for symbol, _, value, _ in technology_rows(tech)}
        assert rows["NEF"] == pytest.approx(3.3)
        assert rows["C_logic"] == pytest.approx(1e-15)

    def test_design_rows_reflect_point(self):
        point = DesignPoint(bw_in=128.0)
        rows = {symbol: value for symbol, _, value, _ in design_rows(point)}
        assert rows["BW_in"] == pytest.approx(128.0)
        assert rows["f_sample"] == pytest.approx(2.1 * 128.0)

    def test_row_units_present(self):
        for _, _, _, unit in technology_rows():
            assert unit
        for _, _, _, unit in design_rows():
            assert unit


class TestOperatingPointSanity:
    def test_reference_points_are_the_papers_optima_scale(self):
        from repro.experiments.table2 import reference_operating_points
        from repro.power.models import chain_power

        points = reference_operating_points()
        assert chain_power(points["baseline"]).total / MICRO == pytest.approx(8.8, rel=0.25)
        assert chain_power(points["cs"]).total / MICRO == pytest.approx(2.44, rel=0.4)
