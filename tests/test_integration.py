"""End-to-end integration tests across module boundaries.

These run the whole pipeline at miniature scale: synthetic corpus ->
front-end simulation -> detection -> exploration -> figure analyses.
"""

import numpy as np
import pytest

from repro.core.explorer import DesignSpaceExplorer
from repro.core.goal import accuracy_power_goal, snr_power_goal
from repro.core.parameters import ParameterSpace
from repro.experiments.fig7 import analyze_fig7
from repro.experiments.runner import make_harness
from repro.power.technology import DesignPoint
from repro.util.constants import MICRO


@pytest.fixture(scope="module")
def harness():
    return make_harness("smoke")


class TestHarnessIntegrity:
    def test_records_are_whole_frames(self, harness):
        assert harness.records.shape[1] % 384 == 0

    def test_detector_accurate_on_clean_eval_set(self, harness):
        assert harness.detector.accuracy(harness.records, harness.labels) > 0.85

    def test_labels_cover_both_classes(self, harness):
        labels = set(harness.labels.tolist())
        assert labels == {0, 1}


class TestEndToEndEvaluation:
    def test_baseline_point_full_metrics(self, harness):
        evaluation = harness.evaluator.evaluate(DesignPoint(n_bits=8, lna_noise_rms=2e-6))
        for metric in ("snr_db", "power_uw", "area_units", "accuracy", "accuracy_hard"):
            assert metric in evaluation.metrics
        assert evaluation.metrics["accuracy"] > 0.8
        assert 5.0 < evaluation.metrics["power_uw"] < 15.0

    def test_cs_point_full_metrics(self, harness):
        point = DesignPoint(n_bits=8, lna_noise_rms=8e-6, use_cs=True, cs_m=150)
        evaluation = harness.evaluator.evaluate(point)
        assert evaluation.metrics["power_uw"] < 4.0
        assert evaluation.metrics["accuracy"] > 0.8
        assert "cs_encoder" in evaluation.breakdown

    def test_noise_tradeoff_monotone(self, harness):
        quiet = harness.evaluator.evaluate(DesignPoint(lna_noise_rms=2e-6))
        loud = harness.evaluator.evaluate(DesignPoint(lna_noise_rms=20e-6))
        assert quiet.metrics["snr_db"] > loud.metrics["snr_db"]
        assert quiet.metrics["power_uw"] > loud.metrics["power_uw"]
        assert quiet.metrics["accuracy"] >= loud.metrics["accuracy"] - 1e-6

    def test_averaging_effect(self, harness):
        """The paper's key insight: at the SAME noise floor, the CS chain's
        detection accuracy is at least the baseline's (reconstruction
        denoises), despite its lower waveform SNR."""
        noise = 8e-6
        baseline = harness.evaluator.evaluate(DesignPoint(n_bits=8, lna_noise_rms=noise))
        cs = harness.evaluator.evaluate(
            DesignPoint(n_bits=8, lna_noise_rms=noise, use_cs=True, cs_m=150)
        )
        assert cs.metrics["accuracy"] >= baseline.metrics["accuracy"] - 0.01
        assert cs.metrics["snr_db"] <= baseline.metrics["snr_db"] + 3.0

    def test_deterministic_evaluation(self, harness):
        point = DesignPoint(n_bits=8, lna_noise_rms=4e-6)
        a = harness.evaluator.evaluate(point)
        b = harness.evaluator.evaluate(point)
        assert a.metrics == b.metrics


class TestMiniExploration:
    def test_explore_and_analyze(self, harness):
        space = ParameterSpace(
            {"use_cs": [False], "lna_noise_rms": [2e-6, 20e-6], "n_bits": [8]}
        ) | ParameterSpace(
            {"use_cs": [True], "lna_noise_rms": [8e-6], "n_bits": [8], "cs_m": [150]}
        )
        result = DesignSpaceExplorer(harness.evaluator).explore(space, name="mini")
        assert len(result) == 3

        fig7 = analyze_fig7(result, min_accuracy=0.5)
        assert fig7.optimal_baseline is not None
        assert fig7.optimal_cs is not None
        # CS point must be the cheaper optimum under this loose constraint.
        assert fig7.optimal_cs.metric("power_uw") < fig7.optimal_baseline.metric("power_uw")

    def test_goal_objects_compose_with_results(self, harness):
        space = ParameterSpace({"lna_noise_rms": [2e-6, 20e-6]})
        result = DesignSpaceExplorer(harness.evaluator).explore(space)
        snr_front = result.pareto(snr_power_goal().objectives)
        assert 1 <= len(snr_front) <= 2
        goal = accuracy_power_goal(0.5)
        best = result.best(constraint=goal.constraint)
        assert best is not None


class TestPowerConsistency:
    def test_simulated_tx_power_matches_model(self, harness):
        """Cross-check: the transmitter block's *measured* bit count implies
        the same power the Table II model predicts."""
        from repro.blocks.chains import build_baseline_chain
        from repro.core import Signal, Simulator
        from repro.power.models import transmitter_power

        point = DesignPoint(n_bits=8, lna_noise_rms=8e-6)
        chain = build_baseline_chain(point, seed=0)
        stream = Signal(harness.records[0], sample_rate=harness.sample_rate)
        Simulator(chain, point, seed=0).run(stream, record_taps=False)
        tx = chain.block("transmitter")
        measured = tx.average_power(stream.duration)
        assert measured == pytest.approx(transmitter_power(point), rel=0.02)

    def test_cs_tx_power_measured_compression(self, harness):
        from repro.blocks.chains import build_cs_chain
        from repro.core import Signal, Simulator

        point = DesignPoint(n_bits=8, lna_noise_rms=8e-6, use_cs=True, cs_m=150)
        chain = build_cs_chain(point, seed=0)
        stream = Signal(harness.records[0], sample_rate=harness.sample_rate)
        Simulator(chain, point, seed=0).run(stream, record_taps=False)
        tx = chain.block("transmitter")
        expected_bits = (harness.records.shape[1] // 384) * 150 * 8
        assert tx.transmitted_bits == expected_bits
