"""Tests of the CS front-end blocks (framer, encoder block, reconstruction)."""

import numpy as np
import pytest

from repro.blocks.cs_frontend import (
    CsEncoderBlock,
    CsReconstructionBlock,
    FramerBlock,
    frame_stream,
)
from repro.core.block import SimulationContext
from repro.core.signal import Signal
from repro.cs.dictionaries import dct_basis
from repro.cs.matrices import srbm_balanced
from repro.cs.reconstruction import Reconstructor


def ctx(seed=0):
    return SimulationContext(seed=seed)


class TestFrameStream:
    def test_exact_frames(self):
        frames = frame_stream(np.arange(12), 4)
        assert frames.shape == (3, 4)
        np.testing.assert_array_equal(frames[1], [4, 5, 6, 7])

    def test_remainder_dropped(self):
        frames = frame_stream(np.arange(10), 4)
        assert frames.shape == (2, 4)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="shorter"):
            frame_stream(np.arange(3), 4)

    def test_framer_block(self):
        block = FramerBlock(frame_length=8)
        out = block.process(Signal(np.arange(24, dtype=float), 100.0), ctx())
        assert out.data.shape == (3, 8)
        assert out.annotations["frame_length"] == 8


class TestCsEncoderBlock:
    def make_block(self, cs_point, seed=1):
        mat = srbm_balanced(cs_point.cs_m, cs_point.cs_n_phi, cs_point.cs_sparsity, seed=7)
        return CsEncoderBlock.from_design(cs_point, mat, seed=seed), mat

    def test_output_shape_and_domain(self, cs_point):
        block, mat = self.make_block(cs_point)
        stream = Signal(np.zeros(2 * 384), cs_point.f_sample)
        out = block.process(stream, ctx())
        assert out.data.shape == (2, 150)
        assert out.domain == "compressed"

    def test_compressed_rate_annotation(self, cs_point):
        block, _ = self.make_block(cs_point)
        stream = Signal(np.zeros(384), cs_point.f_sample)
        out = block.process(stream, ctx())
        assert out.sample_rate == pytest.approx(cs_point.output_sample_rate)
        assert out.annotations["input_sample_rate"] == cs_point.f_sample

    def test_phi_effective_annotation_attached(self, cs_point):
        block, _ = self.make_block(cs_point)
        out = block.process(Signal(np.zeros(384), cs_point.f_sample), ctx())
        phi_eff = out.annotations["phi_effective"]
        assert phi_eff.shape == (150, 384)
        np.testing.assert_array_equal(phi_eff, block.phi_effective)

    def test_reset_replays_noise(self, cs_point, rng):
        block, _ = self.make_block(cs_point)
        stream = Signal(rng.normal(size=384), cs_point.f_sample)
        first = block.process(stream, ctx()).data
        block.reset()
        second = block.process(stream, ctx()).data
        np.testing.assert_array_equal(first, second)

    def test_power_rows(self, cs_point):
        block, _ = self.make_block(cs_point)
        rows = block.power(cs_point)
        assert set(rows) == {"cs_encoder", "leakage"}
        assert rows["cs_encoder"] > 0


class TestCsReconstructionBlock:
    def test_roundtrip_sparse_signal(self):
        n, m = 128, 64
        psi = dct_basis(n)
        alpha = np.zeros(n)
        alpha[[3, 11]] = [1.0, -0.6]
        x = np.tile(psi @ alpha, 2)  # two identical frames
        mat = srbm_balanced(m, n, 2, seed=5)

        from repro.cs.charge_sharing import ChargeSharingConfig

        block = CsEncoderBlock(
            mat, ChargeSharingConfig(c_sample=2e-15, c_hold=16e-15, kt=0.0), seed=1
        )
        encoded = block.process(Signal(x, 512.0), ctx())
        recon = CsReconstructionBlock(
            Reconstructor(basis=psi, method="fista", lam_rel=0.002, n_iter=500)
        )
        out = recon.process(encoded, ctx())
        assert out.data.shape == (2 * n,)
        assert out.sample_rate == pytest.approx(512.0)
        nmse = np.sum((x - out.data) ** 2) / np.sum(x**2)
        assert nmse < 1e-3

    def test_requires_2d_measurements(self):
        recon = CsReconstructionBlock(Reconstructor())
        with pytest.raises(ValueError, match="frames"):
            recon.process(Signal(np.zeros(8), 100.0), ctx())

    def test_requires_phi_annotation(self):
        recon = CsReconstructionBlock(Reconstructor())
        with pytest.raises(ValueError, match="phi_effective"):
            recon.process(Signal(np.zeros((2, 8)), 100.0), ctx())

    def test_marks_output_digital(self):
        n, m = 64, 32
        mat = srbm_balanced(m, n, 2, seed=5)
        from repro.cs.charge_sharing import ChargeSharingConfig

        enc = CsEncoderBlock(
            mat, ChargeSharingConfig(c_sample=2e-15, c_hold=16e-15, kt=0.0), seed=1
        )
        encoded = enc.process(Signal(np.random.default_rng(0).normal(size=n), 512.0), ctx())
        out = CsReconstructionBlock(Reconstructor(n_iter=10)).process(encoded, ctx())
        assert out.domain == "digital"
