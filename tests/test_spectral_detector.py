"""Tests of the spectral-comb detector (the experiments' accuracy oracle)."""

import numpy as np
import pytest

from repro.detection.spectral import SpectralCombDetector, logistic_fit, logistic_predict
from repro.eeg.synthetic import SyntheticEegConfig, generate_record
from repro.util.rng import derive_seed

FS = 173.61


def corpus(n_seizure=20, n_background=20, config=None, seed=0, samples=3072):
    config = config or SyntheticEegConfig()
    records, labels = [], []
    for i in range(n_seizure):
        rec = generate_record("seizure", config, derive_seed(seed, f"s{i}"), f"s{i}")
        records.append(rec.data[:samples])
        labels.append(1)
    for i in range(n_background):
        kind = "artifact" if i % 3 == 0 else "background"
        rec = generate_record(kind, config, derive_seed(seed, f"b{i}"), f"b{i}")
        records.append(rec.data[:samples])
        labels.append(0)
    return np.stack(records), np.array(labels)


class TestLogistic:
    def test_separable_data_fits(self, rng):
        x = np.vstack([rng.normal(-2, 0.5, (50, 2)), rng.normal(2, 0.5, (50, 2))])
        y = np.array([0] * 50 + [1] * 50)
        w = logistic_fit(x, y)
        probs = logistic_predict(w, x)
        assert np.mean((probs > 0.5) == y) > 0.95

    def test_probabilities_bounded(self, rng):
        x = rng.normal(size=(20, 3)) * 100
        w = logistic_fit(x, (x[:, 0] > 0).astype(int))
        probs = logistic_predict(w, x)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_deterministic(self, rng):
        x = rng.normal(size=(40, 2))
        y = (x[:, 0] > 0).astype(int)
        np.testing.assert_array_equal(logistic_fit(x, y), logistic_fit(x, y))


class TestFeatures:
    def test_feature_shape(self):
        det = SpectralCombDetector(sample_rate=FS)
        records, _ = corpus(3, 3)
        assert det.features(records).shape == (6, 3)

    def test_seizure_gamma_contrast_higher(self):
        det = SpectralCombDetector(sample_rate=FS)
        config = SyntheticEegConfig(seizure_severity_range=(0.5, 1.0))
        records, labels = corpus(10, 10, config=config)
        features = det.features(records)
        gamma = features[:, 1]
        assert np.mean(gamma[labels == 1]) > np.mean(gamma[labels == 0])

    def test_comb_ratio_higher_for_strong_spike_wave(self):
        det = SpectralCombDetector(sample_rate=FS)
        config = SyntheticEegConfig(
            seizure_severity_range=(2.0, 3.0), gamma_weight=0.0, spike_weight=1.0
        )
        records, labels = corpus(8, 8, config=config)
        comb = det.features(records)[:, 0]
        assert np.mean(comb[labels == 1]) > np.mean(comb[labels == 0])

    def test_rejects_1d(self):
        det = SpectralCombDetector(sample_rate=FS)
        with pytest.raises(ValueError):
            det.features(np.zeros(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            SpectralCombDetector(sample_rate=FS, band=(50.0, 10.0))
        with pytest.raises(ValueError):
            SpectralCombDetector(sample_rate=FS, f0_grid=())
        with pytest.raises(ValueError):
            SpectralCombDetector(sample_rate=FS, reference_band=(100.0, 90.0))


class TestDetection:
    @pytest.fixture(scope="class")
    def fitted(self):
        records, labels = corpus(25, 25, seed=1)
        det = SpectralCombDetector(sample_rate=FS).fit(records, labels)
        return det, records, labels

    def test_high_clean_accuracy(self, fitted):
        det, records, labels = fitted
        assert det.accuracy(records, labels) > 0.9

    def test_generalisation(self, fitted):
        det, *_ = fitted
        fresh_records, fresh_labels = corpus(10, 10, seed=99)
        assert det.accuracy(fresh_records, fresh_labels) > 0.8

    def test_soft_accuracy_tracks_hard(self, fitted):
        det, records, labels = fitted
        assert abs(det.soft_accuracy(records, labels) - det.accuracy(records, labels)) < 0.1

    def test_noise_degrades_monotonically(self, fitted):
        det, _, _ = fitted
        fresh_records, fresh_labels = corpus(15, 15, seed=7)
        rng = np.random.default_rng(3)
        noisy_levels = [0.0, 8e-6, 25e-6]
        accuracies = [
            det.soft_accuracy(
                fresh_records + rng.normal(0, level, fresh_records.shape)
                if level
                else fresh_records,
                fresh_labels,
            )
            for level in noisy_levels
        ]
        assert accuracies[0] >= accuracies[1] >= accuracies[2] - 0.02
        assert accuracies[0] > accuracies[2]

    def test_probabilities_in_unit_interval(self, fitted):
        det, records, _ = fitted
        probs = det.predict_proba(records)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_sensitivity_specificity(self, fitted):
        det, records, labels = fitted
        sens, spec = det.sensitivity_specificity(records, labels)
        assert 0.5 < sens <= 1.0
        assert 0.5 < spec <= 1.0

    def test_unfitted_raises(self):
        det = SpectralCombDetector(sample_rate=FS)
        with pytest.raises(RuntimeError):
            det.predict_proba(np.zeros((2, 1024)))

    def test_deterministic_oracle(self):
        """Same data, same calibration: the oracle has no training noise."""
        records, labels = corpus(10, 10, seed=4)
        a = SpectralCombDetector(sample_rate=FS).fit(records, labels)
        b = SpectralCombDetector(sample_rate=FS).fit(records, labels)
        np.testing.assert_array_equal(a.predict_proba(records), b.predict_proba(records))
