"""Durability of the execution layer's shared on-disk state under abuse.

Two pieces of machinery let independent processes share one directory
safely -- the :class:`~repro.core.execution.EvaluationCache` (atomic
entry writes, corrupt-entry quarantine) and the
:class:`~repro.core.execution.SweepCheckpoint` writer lock (``flock``
sidecar, kernel-released on SIGKILL).  These tests attack both the way
real fleets do: torn writes, garbage bytes, key collisions, concurrent
writers racing for the lock, and a lock holder that dies without
releasing.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

from repro.core.execution import (
    CheckpointLockedError,
    EvaluationCache,
    SweepCheckpoint,
)
from repro.core.results import Evaluation
from repro.core.telemetry import Telemetry, activate
from repro.power.technology import DesignPoint

FINGERPRINT = "contention-test:1"


def _point(bits: int = 8) -> DesignPoint:
    return DesignPoint(n_bits=bits, lna_noise_rms=2e-6, use_cs=False)


def _evaluation(bits: int = 8) -> Evaluation:
    return Evaluation(_point(bits), metrics={"power_uw": float(bits)})


# --- cache corrupt-entry quarantine ------------------------------------------


class TestCacheQuarantine:
    def test_garbage_entry_is_quarantined_once(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        point = _point()
        cache.put(FINGERPRINT, point, _evaluation())
        entry = cache._path(FINGERPRINT, point)
        entry.write_text("{ not json")

        assert cache.get(FINGERPRINT, point) is None
        assert cache.corrupt == 1
        assert not entry.exists()
        quarantined = Path(str(entry) + ".corrupt")
        assert quarantined.read_text() == "{ not json"

        # The miss is now a plain miss: no re-parse, no re-quarantine.
        assert cache.get(FINGERPRINT, point) is None
        assert cache.corrupt == 1
        assert cache.misses == 2

    def test_torn_write_is_quarantined(self, tmp_path):
        """A truncated (killed-mid-write) entry reads as a miss, not a crash."""
        cache = EvaluationCache(tmp_path)
        point = _point()
        cache.put(FINGERPRINT, point, _evaluation())
        entry = cache._path(FINGERPRINT, point)
        entry.write_text(entry.read_text()[: len(entry.read_text()) // 2])

        assert cache.get(FINGERPRINT, point) is None
        assert cache.corrupt == 1

    def test_key_collision_is_quarantined(self, tmp_path):
        """Valid JSON describing a *different* point must not be served."""
        cache = EvaluationCache(tmp_path)
        point = _point(bits=8)
        cache.put(FINGERPRINT, _point(bits=6), _evaluation(bits=6))
        foreign = cache._path(FINGERPRINT, _point(bits=6))
        # Graft the bits=6 entry under the bits=8 key.
        os.replace(foreign, cache._path(FINGERPRINT, point))

        assert cache.get(FINGERPRINT, point) is None
        assert cache.corrupt == 1

    def test_quarantine_counts_into_active_telemetry(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        point = _point()
        cache.put(FINGERPRINT, point, _evaluation())
        cache._path(FINGERPRINT, point).write_text("garbage")
        tel = Telemetry()
        with activate(tel):
            cache.get(FINGERPRINT, point)
        assert tel.counters["cache.corrupt"] == 1

    def test_quarantined_entry_can_be_rewritten(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        point = _point()
        cache.put(FINGERPRINT, point, _evaluation())
        cache._path(FINGERPRINT, point).write_text("garbage")
        assert cache.get(FINGERPRINT, point) is None

        cache.put(FINGERPRINT, point, _evaluation())
        restored = cache.get(FINGERPRINT, point)
        assert restored is not None
        assert restored.metrics == {"power_uw": 8.0}


# --- checkpoint writer-lock contention ---------------------------------------


def _race_for_lock(path, barrier, results, slot):
    """Child-process body: race to acquire, hold briefly, append, release."""
    checkpoint = SweepCheckpoint(path)
    barrier.wait()
    try:
        checkpoint.acquire()
    except CheckpointLockedError:
        results[slot] = "locked"
        return
    try:
        # Hold long enough that every loser has attempted and failed.
        time.sleep(0.5)
        checkpoint.append(slot, Evaluation(_point(), metrics={"slot": float(slot)}))
        results[slot] = "won"
    finally:
        checkpoint.close()


def _hold_lock_forever(path, acquired):
    checkpoint = SweepCheckpoint(path)
    checkpoint.acquire()
    acquired.set()
    time.sleep(120)  # killed long before this expires


class TestCheckpointContention:
    def test_second_writer_in_process_is_refused(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        first = SweepCheckpoint(path)
        first.acquire()
        second = SweepCheckpoint(path)
        with pytest.raises(CheckpointLockedError):
            second.acquire()
        first.release()
        second.acquire()  # released lock is immediately acquirable
        second.release()

    def test_concurrent_processes_one_winner(self, tmp_path):
        """N processes race one checkpoint: exactly one writer, N-1 refused."""
        path = tmp_path / "sweep.jsonl"
        ctx = multiprocessing.get_context("fork")
        n = 4
        barrier = ctx.Barrier(n)
        results = ctx.Manager().dict()
        processes = [
            ctx.Process(target=_race_for_lock, args=(path, barrier, results, slot))
            for slot in range(n)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=30)
        outcomes = sorted(results.values())
        assert outcomes == ["locked"] * (n - 1) + ["won"]

        # The winner's append landed and is loadable; no torn JSONL.
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        assert len(lines) == 1
        # And the lock is gone: a fresh writer acquires instantly.
        fresh = SweepCheckpoint(path)
        fresh.acquire()
        fresh.release()

    def test_sigkilled_holder_leaves_no_stale_lock(self, tmp_path):
        """flock dies with the process: SIGKILL must not wedge the checkpoint."""
        path = tmp_path / "sweep.jsonl"
        ctx = multiprocessing.get_context("fork")
        acquired = ctx.Event()
        holder = ctx.Process(target=_hold_lock_forever, args=(path, acquired))
        holder.start()
        assert acquired.wait(timeout=10)

        checkpoint = SweepCheckpoint(path)
        with pytest.raises(CheckpointLockedError):
            checkpoint.acquire()

        os.kill(holder.pid, signal.SIGKILL)
        holder.join(timeout=10)
        # The kernel released the flock with the process; only the inert
        # sidecar file remains and is safely re-lockable.
        checkpoint.acquire()
        checkpoint.append(0, _evaluation())
        checkpoint.close()
        assert checkpoint.load() == {0: _evaluation()}

    def test_torn_trailing_line_is_skipped_on_load(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        checkpoint = SweepCheckpoint(path)
        checkpoint.append(0, _evaluation(bits=6))
        checkpoint.append(1, _evaluation(bits=8))
        checkpoint.close()
        with open(path, "a") as handle:
            handle.write('{"index": 2, "point": "torn')  # killed mid-write

        restored = SweepCheckpoint(path).load()
        assert sorted(restored) == [0, 1]
        assert restored[1].metrics == {"power_uw": 8.0}
