"""Tests of hierarchical tracing and cross-process telemetry shipping."""

import json
from dataclasses import dataclass

import pytest

from repro.core.explorer import DesignSpaceExplorer
from repro.core.results import Evaluation
from repro.core.telemetry import Telemetry, get_active
from repro.core.tracing import (
    TRACE_SNAPSHOT_VERSION,
    Tracer,
    chrome_trace,
    write_chrome_trace,
)

from tests.test_parallel_explorer import ToyEvaluator, smoke_grid


def validate_chrome_trace(payload: dict) -> list[dict]:
    """Structural validation of Chrome-trace JSON; returns the events."""
    assert isinstance(payload, dict)
    events = payload["traceEvents"]
    assert isinstance(events, list) and events
    for event in events:
        assert event["ph"] in {"X", "i", "M"}
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "M":
            assert event["name"] == "process_name"
            assert event["args"]["name"]
        else:
            assert isinstance(event["name"], str) and event["name"]
            assert isinstance(event["ts"], float)
            assert isinstance(event["args"]["span_id"], str)
            if event["ph"] == "X":
                assert event["dur"] > 0
            else:
                assert event["s"] == "t"
    json.dumps(payload)  # must be serialisable as-is
    return events


def spans_by_name(events: list[dict]) -> dict[str, list[dict]]:
    grouped: dict[str, list[dict]] = {}
    for event in events:
        if event["ph"] == "X":
            grouped.setdefault(event["name"], []).append(event)
    return grouped


@dataclass(frozen=True)
class TallyEvaluator:
    """Picklable evaluator counting its calls into the ambient telemetry."""

    def fingerprint(self) -> str:
        return "tally"

    def __call__(self, point) -> Evaluation:
        get_active().count("tally.evals")
        return ToyEvaluator()(point)


class TestTracer:
    def test_same_thread_nesting_sets_parent(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        inner = tracer.start("inner")
        tracer.finish(inner)
        tracer.finish(outer)
        events = {e["name"]: e for e in tracer.snapshot()["events"]}
        assert events["inner"]["parent"] == events["outer"]["id"]
        assert events["outer"]["parent"] is None

    def test_instant_parented_to_open_span(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.instant("mark", detail=1)
        tracer.finish(outer)
        events = {e["name"]: e for e in tracer.snapshot()["events"]}
        assert events["mark"]["ph"] == "i"
        assert events["mark"]["parent"] == events["outer"]["id"]
        assert events["mark"]["args"] == {"detail": 1}

    def test_out_of_order_finish_tolerated(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        inner = tracer.start("inner")
        tracer.finish(outer)  # inner escapes its frame
        tracer.finish(inner)
        assert tracer.n_events == 2

    def test_bounded_with_drop_counting(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.instant("tick", i=i)
        assert tracer.n_events == 2
        assert tracer.dropped == 3

    def test_snapshot_drain_resets(self):
        tracer = Tracer()
        tracer.instant("one")
        first = tracer.snapshot(drain=True)
        assert len(first["events"]) == 1
        assert tracer.n_events == 0

    def test_absorb_files_worker_lane(self):
        driver = Tracer(label="driver")
        worker = Tracer(label="worker-999")
        worker.pid = 999  # simulate another process
        worker._lanes = {999: "worker-999"}
        worker.instant("w")
        driver.absorb(worker.snapshot())
        assert driver.lanes() == {driver.pid: "driver", 999: "worker-999"}
        assert driver.n_events == 1

    def test_absorb_rejects_unknown_version(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="version"):
            tracer.absorb({"version": TRACE_SNAPSHOT_VERSION + 1, "events": []})

    def test_absorb_respects_bound(self):
        driver = Tracer(max_events=1)
        other = Tracer()
        other.instant("a")
        other.instant("b")
        driver.absorb(other.snapshot())
        assert driver.n_events == 1
        assert driver.dropped == 1

    def test_summary_digest(self):
        tracer = Tracer(label="driver")
        tracer.instant("x")
        digest = tracer.summary()
        assert digest["events"] == 1
        assert digest["dropped"] == 0
        assert digest["lanes"] == {str(tracer.pid): "driver"}


class TestTelemetrySpanTracing:
    def test_spans_emit_trace_events_with_hierarchy(self):
        tel = Telemetry(tracer=Tracer())
        with tel.span("explore.total"):
            with tel.span("explore.point", index=3):
                pass
        events = validate_chrome_trace(chrome_trace(tel.tracer.snapshot()))
        named = spans_by_name(events)
        point = named["explore.point"][0]
        total = named["explore.total"][0]
        assert point["args"]["parent_id"] == total["args"]["span_id"]
        assert point["args"]["index"] == 3

    def test_instants_require_tracer(self):
        tel = Telemetry()
        tel.instant("cache.hit", index=0)  # no tracer: silent no-op
        tel = Telemetry(tracer=Tracer())
        tel.instant("cache.hit", index=0)
        assert tel.tracer.n_events == 1


class TestSweepTracing:
    def test_serial_sweep_emits_valid_hierarchical_trace(self, tmp_path):
        tel = Telemetry(tracer=Tracer())
        space = smoke_grid()
        DesignSpaceExplorer(ToyEvaluator()).explore(
            space, executor="serial", telemetry=tel
        )
        path = write_chrome_trace(tmp_path / "run.trace.json", tel.tracer)
        events = validate_chrome_trace(json.loads(path.read_text()))
        named = spans_by_name(events)
        assert len(named["explore.total"]) == 1
        assert len(named["explore.point"]) == space.size
        total_id = named["explore.total"][0]["args"]["span_id"]
        assert all(
            e["args"]["parent_id"] == total_id for e in named["explore.point"]
        )

    def test_process_sweep_traces_per_worker_lanes(self, tmp_path):
        tel = Telemetry(tracer=Tracer())
        space = smoke_grid()
        DesignSpaceExplorer(ToyEvaluator()).explore(
            space, executor="process", n_workers=2, telemetry=tel
        )
        lanes = tel.tracer.lanes()
        worker_lanes = [label for label in lanes.values() if label.startswith("worker-")]
        assert worker_lanes, f"expected worker lanes, got {lanes}"
        assert "driver" in lanes.values()

        path = write_chrome_trace(tmp_path / "run.trace.json", tel.tracer)
        events = validate_chrome_trace(json.loads(path.read_text()))
        named = spans_by_name(events)
        # Every point span was recorded in some worker process's lane.
        assert len(named["explore.point"]) == space.size
        driver_pid = tel.tracer.pid
        assert all(e["pid"] != driver_pid for e in named["explore.point"])
        assert named["explore.shard"], "worker chunks should emit shard spans"
        # Lane metadata names every worker process.
        metadata = {
            e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert set(metadata) == set(lanes)

    def test_cache_hits_and_restores_marked_as_instants(self, tmp_path):
        space = smoke_grid()
        explorer = DesignSpaceExplorer(ToyEvaluator())
        explorer.explore(space, cache=tmp_path / "cache")
        tel = Telemetry(tracer=Tracer())
        explorer.explore(space, cache=tmp_path / "cache", telemetry=tel)
        events = validate_chrome_trace(chrome_trace(tel.tracer.snapshot()))
        hits = [e for e in events if e["ph"] == "i" and e["name"] == "cache.hit"]
        assert len(hits) == space.size

        ckpt = tmp_path / "sweep.jsonl"
        explorer.explore(space, checkpoint=ckpt)
        tel = Telemetry(tracer=Tracer())
        explorer.explore(space, checkpoint=ckpt, telemetry=tel)
        events = validate_chrome_trace(chrome_trace(tel.tracer.snapshot()))
        restores = [
            e for e in events if e["ph"] == "i" and e["name"] == "checkpoint.restored"
        ]
        assert len(restores) == space.size


class TestCrossProcessCounters:
    def test_driver_counters_equal_sum_of_worker_snapshots(self):
        tel = Telemetry()
        space = smoke_grid()
        DesignSpaceExplorer(TallyEvaluator()).explore(
            space, executor="process", n_workers=2, telemetry=tel
        )
        assert tel.counters["tally.evals"] == space.size
        per_worker = [
            digest["counters"].get("tally.evals", 0)
            for digest in tel.workers.values()
        ]
        assert sum(per_worker) == space.size
        assert all(label.startswith("worker-") for label in tel.workers)
        # Worker-side point spans merged into the driver's span stats.
        assert tel.spans["explore.point"].count == space.size

    def test_crash_isolation_path_keeps_worker_accounting(self):
        # The single-point isolation pool also ships snapshots home.
        from tests.test_parallel_explorer import FailingEvaluator

        tel = Telemetry()
        space = smoke_grid()
        result = DesignSpaceExplorer(FailingEvaluator(bad_bits=6)).explore(
            space, executor="process", n_workers=2, telemetry=tel
        )
        assert len(result) == space.size
        assert tel.spans["explore.point"].count == space.size
