"""Tests of hierarchical tracing and cross-process telemetry shipping."""

import json
from dataclasses import dataclass

import pytest

from repro.core.explorer import DesignSpaceExplorer
from repro.core.results import Evaluation
from repro.core.telemetry import Telemetry, get_active
from repro.core.tracing import (
    TRACE_SNAPSHOT_VERSION,
    Tracer,
    chrome_trace,
    merge_chrome_traces,
    write_chrome_trace,
)

from tests.test_parallel_explorer import ToyEvaluator, smoke_grid


def validate_chrome_trace(payload: dict) -> list[dict]:
    """Structural validation of Chrome-trace JSON; returns the events."""
    assert isinstance(payload, dict)
    events = payload["traceEvents"]
    assert isinstance(events, list) and events
    for event in events:
        assert event["ph"] in {"X", "i", "M", "C"}
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "M":
            assert event["name"] == "process_name"
            assert event["args"]["name"]
        elif event["ph"] == "C":
            assert isinstance(event["name"], str) and event["name"]
            assert isinstance(event["ts"], float)
            assert event["args"]  # raw counter series, no span bookkeeping
            assert all(isinstance(v, float) for v in event["args"].values())
        else:
            assert isinstance(event["name"], str) and event["name"]
            assert isinstance(event["ts"], float)
            assert isinstance(event["args"]["span_id"], str)
            if event["ph"] == "X":
                assert event["dur"] > 0
            else:
                assert event["s"] == "t"
    json.dumps(payload)  # must be serialisable as-is
    return events


def spans_by_name(events: list[dict]) -> dict[str, list[dict]]:
    grouped: dict[str, list[dict]] = {}
    for event in events:
        if event["ph"] == "X":
            grouped.setdefault(event["name"], []).append(event)
    return grouped


@dataclass(frozen=True)
class TallyEvaluator:
    """Picklable evaluator counting its calls into the ambient telemetry."""

    def fingerprint(self) -> str:
        return "tally"

    def __call__(self, point) -> Evaluation:
        get_active().count("tally.evals")
        return ToyEvaluator()(point)


class TestTracer:
    def test_same_thread_nesting_sets_parent(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        inner = tracer.start("inner")
        tracer.finish(inner)
        tracer.finish(outer)
        events = {e["name"]: e for e in tracer.snapshot()["events"]}
        assert events["inner"]["parent"] == events["outer"]["id"]
        assert events["outer"]["parent"] is None

    def test_instant_parented_to_open_span(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.instant("mark", detail=1)
        tracer.finish(outer)
        events = {e["name"]: e for e in tracer.snapshot()["events"]}
        assert events["mark"]["ph"] == "i"
        assert events["mark"]["parent"] == events["outer"]["id"]
        assert events["mark"]["args"] == {"detail": 1}

    def test_out_of_order_finish_tolerated(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        inner = tracer.start("inner")
        tracer.finish(outer)  # inner escapes its frame
        tracer.finish(inner)
        assert tracer.n_events == 2

    def test_bounded_with_drop_counting(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.instant("tick", i=i)
        assert tracer.n_events == 2
        assert tracer.dropped == 3

    def test_snapshot_drain_resets(self):
        tracer = Tracer()
        tracer.instant("one")
        first = tracer.snapshot(drain=True)
        assert len(first["events"]) == 1
        assert tracer.n_events == 0

    def test_absorb_files_worker_lane(self):
        driver = Tracer(label="driver")
        worker = Tracer(label="worker-999")
        worker.pid = 999  # simulate another process
        worker._lanes = {999: "worker-999"}
        worker.instant("w")
        driver.absorb(worker.snapshot())
        assert driver.lanes() == {driver.pid: "driver", 999: "worker-999"}
        assert driver.n_events == 1

    def test_absorb_rejects_unknown_version(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="version"):
            tracer.absorb({"version": TRACE_SNAPSHOT_VERSION + 1, "events": []})

    def test_absorb_respects_bound(self):
        driver = Tracer(max_events=1)
        other = Tracer()
        other.instant("a")
        other.instant("b")
        driver.absorb(other.snapshot())
        assert driver.n_events == 1
        assert driver.dropped == 1

    def test_summary_digest(self):
        tracer = Tracer(label="driver")
        tracer.instant("x")
        digest = tracer.summary()
        assert digest["events"] == 1
        assert digest["dropped"] == 0
        assert digest["lanes"] == {str(tracer.pid): "driver"}


class TestTelemetrySpanTracing:
    def test_spans_emit_trace_events_with_hierarchy(self):
        tel = Telemetry(tracer=Tracer())
        with tel.span("explore.total"):
            with tel.span("explore.point", index=3):
                pass
        events = validate_chrome_trace(chrome_trace(tel.tracer.snapshot()))
        named = spans_by_name(events)
        point = named["explore.point"][0]
        total = named["explore.total"][0]
        assert point["args"]["parent_id"] == total["args"]["span_id"]
        assert point["args"]["index"] == 3

    def test_instants_require_tracer(self):
        tel = Telemetry()
        tel.instant("cache.hit", index=0)  # no tracer: silent no-op
        tel = Telemetry(tracer=Tracer())
        tel.instant("cache.hit", index=0)
        assert tel.tracer.n_events == 1


class TestSweepTracing:
    def test_serial_sweep_emits_valid_hierarchical_trace(self, tmp_path):
        tel = Telemetry(tracer=Tracer())
        space = smoke_grid()
        DesignSpaceExplorer(ToyEvaluator()).explore(
            space, executor="serial", telemetry=tel
        )
        path = write_chrome_trace(tmp_path / "run.trace.json", tel.tracer)
        events = validate_chrome_trace(json.loads(path.read_text()))
        named = spans_by_name(events)
        assert len(named["explore.total"]) == 1
        assert len(named["explore.point"]) == space.size
        total_id = named["explore.total"][0]["args"]["span_id"]
        assert all(
            e["args"]["parent_id"] == total_id for e in named["explore.point"]
        )

    def test_process_sweep_traces_per_worker_lanes(self, tmp_path):
        tel = Telemetry(tracer=Tracer())
        space = smoke_grid()
        DesignSpaceExplorer(ToyEvaluator()).explore(
            space, executor="process", n_workers=2, telemetry=tel
        )
        lanes = tel.tracer.lanes()
        worker_lanes = [label for label in lanes.values() if label.startswith("worker-")]
        assert worker_lanes, f"expected worker lanes, got {lanes}"
        assert "driver" in lanes.values()

        path = write_chrome_trace(tmp_path / "run.trace.json", tel.tracer)
        events = validate_chrome_trace(json.loads(path.read_text()))
        named = spans_by_name(events)
        # Every point span was recorded in some worker process's lane.
        assert len(named["explore.point"]) == space.size
        driver_pid = tel.tracer.pid
        assert all(e["pid"] != driver_pid for e in named["explore.point"])
        assert named["explore.shard"], "worker chunks should emit shard spans"
        # Lane metadata names every worker process.
        metadata = {
            e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert set(metadata) == set(lanes)

    def test_cache_hits_and_restores_marked_as_instants(self, tmp_path):
        space = smoke_grid()
        explorer = DesignSpaceExplorer(ToyEvaluator())
        explorer.explore(space, cache=tmp_path / "cache")
        tel = Telemetry(tracer=Tracer())
        explorer.explore(space, cache=tmp_path / "cache", telemetry=tel)
        events = validate_chrome_trace(chrome_trace(tel.tracer.snapshot()))
        hits = [e for e in events if e["ph"] == "i" and e["name"] == "cache.hit"]
        assert len(hits) == space.size

        ckpt = tmp_path / "sweep.jsonl"
        explorer.explore(space, checkpoint=ckpt)
        tel = Telemetry(tracer=Tracer())
        explorer.explore(space, checkpoint=ckpt, telemetry=tel)
        events = validate_chrome_trace(chrome_trace(tel.tracer.snapshot()))
        restores = [
            e for e in events if e["ph"] == "i" and e["name"] == "checkpoint.restored"
        ]
        assert len(restores) == space.size


class TestCrossProcessCounters:
    def test_driver_counters_equal_sum_of_worker_snapshots(self):
        tel = Telemetry()
        space = smoke_grid()
        DesignSpaceExplorer(TallyEvaluator()).explore(
            space, executor="process", n_workers=2, telemetry=tel
        )
        assert tel.counters["tally.evals"] == space.size
        per_worker = [
            digest["counters"].get("tally.evals", 0)
            for digest in tel.workers.values()
        ]
        assert sum(per_worker) == space.size
        assert all(label.startswith("worker-") for label in tel.workers)
        # Worker-side point spans merged into the driver's span stats.
        assert tel.spans["explore.point"].count == space.size

    def test_crash_isolation_path_keeps_worker_accounting(self):
        # The single-point isolation pool also ships snapshots home.
        from tests.test_parallel_explorer import FailingEvaluator

        tel = Telemetry()
        space = smoke_grid()
        result = DesignSpaceExplorer(FailingEvaluator(bad_bits=6)).explore(
            space, executor="process", n_workers=2, telemetry=tel
        )
        assert len(result) == space.size
        assert tel.spans["explore.point"].count == space.size


class TestClockAlignment:
    def test_absorb_applies_snapshot_offset(self):
        driver = Tracer(label="driver")
        worker = Tracer(label="worker-7")
        worker.pid = 7
        worker._lanes = {7: "worker-7"}
        worker.clock_offset_s = 2.5  # measured by the fleet handshake
        worker.instant("w")
        original_t = worker.snapshot()["events"][0]["t"]
        driver.absorb(worker.snapshot())
        absorbed = [e for e in driver.snapshot()["events"] if e["name"] == "w"]
        assert absorbed[0]["t"] == pytest.approx(original_t + 2.5)
        assert driver.summary()["clock_offsets"] == {"worker-7": 2.5}

    def test_explicit_offset_wins_over_snapshot(self):
        driver = Tracer()
        worker = Tracer(label="w")
        worker.clock_offset_s = 100.0
        worker.instant("w")
        snap = worker.snapshot()
        before = snap["events"][0]["t"]
        driver.absorb(snap, clock_offset_s=-1.0)
        (event,) = [e for e in driver.snapshot()["events"] if e["name"] == "w"]
        assert event["t"] == pytest.approx(before - 1.0)

    def test_json_round_trip_normalises_lane_keys(self):
        # The fleet wire JSON-encodes snapshots, which stringifies the
        # int pid keys of the lane table; absorb must re-int them.
        driver = Tracer(label="driver")
        worker = Tracer(label="worker-1")
        worker.pid = 4242
        worker._lanes = {4242: "worker-1"}
        worker.instant("w")
        wire = json.loads(json.dumps(worker.snapshot()))
        driver.absorb(wire)
        assert driver.lanes()[4242] == "worker-1"
        assert all(isinstance(pid, int) for pid in driver.lanes())


class TestCounterEvents:
    def test_counter_records_c_event(self):
        tracer = Tracer()
        tracer.counter("resources.rss_mb", value=123.0)
        (event,) = tracer.snapshot()["events"]
        assert event["ph"] == "C"
        assert event["args"] == {"value": 123.0}
        assert event["parent"] is None

    def test_chrome_export_keeps_counter_args_raw(self):
        tracer = Tracer()
        tracer.counter("resources.threads", value=4)
        exported = chrome_trace(tracer.snapshot())
        counters = [e for e in exported["traceEvents"] if e["ph"] == "C"]
        assert counters[0]["args"] == {"value": 4.0}
        assert "span_id" not in counters[0]["args"]
        assert "dur" not in counters[0]
        validate_chrome_trace(exported)


class TestDropAccounting:
    def test_one_time_drop_warning(self, caplog):
        tracer = Tracer(label="tiny", max_events=1)
        with caplog.at_level("WARNING", logger="repro.tracing"):
            tracer.instant("kept")
            tracer.instant("dropped-1")
            tracer.instant("dropped-2")
        warnings = [r for r in caplog.records if "max_events" in r.getMessage()]
        assert len(warnings) == 1  # loud once, not once per event
        assert tracer.dropped == 2

    def test_dropped_by_lane_in_summary(self):
        driver = Tracer(label="driver")
        worker = Tracer(label="worker-3", max_events=1)
        worker.instant("kept")
        worker.instant("lost")
        driver.absorb(worker.snapshot())
        summary = driver.summary()
        assert summary["dropped_by_lane"] == {"worker-3": 1}
        assert summary["dropped"] == 1

    def test_drain_clears_local_drop_count(self):
        tracer = Tracer(label="w", max_events=1)
        tracer.instant("kept")
        tracer.instant("lost")
        snap = tracer.snapshot(drain=True)
        assert snap["dropped"] == 1
        assert tracer.snapshot()["dropped"] == 0


class TestMergeChromeTraces:
    def _trace_for(self, label: str, pid: int, at_s: float) -> dict:
        tracer = Tracer(label=label)
        tracer.pid = pid
        tracer._lanes = {pid: label}
        token = tracer.start("work")
        tracer.finish(token)
        payload = chrome_trace(tracer.snapshot())
        for event in payload["traceEvents"]:
            if event["ph"] != "M":
                event["ts"] = at_s * 1e6  # pin for deterministic arithmetic
        return payload

    def test_merge_preserves_distinct_lanes(self):
        a = self._trace_for("host-a", 100, at_s=0.0)
        b = self._trace_for("host-b", 200, at_s=0.0)
        merged = merge_chrome_traces([a, b])
        names = {
            e["pid"]: e["args"]["name"]
            for e in merged["traceEvents"]
            if e["ph"] == "M"
        }
        assert names == {100: "host-a", 200: "host-b"}
        validate_chrome_trace(merged)

    def test_colliding_pids_remapped(self):
        a = self._trace_for("host-a", 100, at_s=0.0)
        b = self._trace_for("host-b", 100, at_s=0.0)  # same pid, other host
        merged = merge_chrome_traces([a, b])
        lanes = {
            e["pid"]: e["args"]["name"]
            for e in merged["traceEvents"]
            if e["ph"] == "M"
        }
        assert len(lanes) == 2 and set(lanes.values()) == {"host-a", "host-b"}
        remapped = [pid for pid, name in lanes.items() if name == "host-b"]
        assert remapped != [100]
        # The remapped file's events moved with its metadata.
        xs = [e for e in merged["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in xs} == set(lanes)

    def test_offsets_shift_timestamps(self):
        a = self._trace_for("a", 1, at_s=10.0)
        b = self._trace_for("b", 2, at_s=10.0)
        merged = merge_chrome_traces([a, b], offsets_s=[0.0, 3.0])
        by_pid = {
            e["pid"]: e["ts"] for e in merged["traceEvents"] if e["ph"] == "X"
        }
        assert by_pid[2] - by_pid[1] == pytest.approx(3.0 * 1e6)

    def test_align_anchors_to_first_trace(self):
        a = self._trace_for("a", 1, at_s=100.0)
        b = self._trace_for("b", 2, at_s=900.0)  # captured on a skewed clock
        merged = merge_chrome_traces([a, b], align=True)
        stamps = [e["ts"] for e in merged["traceEvents"] if e["ph"] == "X"]
        assert max(stamps) - min(stamps) < 10e6  # lanes now overlap

    def test_offsets_and_align_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            merge_chrome_traces([], offsets_s=[], align=True)
        with pytest.raises(ValueError, match="offsets"):
            merge_chrome_traces([{"traceEvents": []}], offsets_s=[0.0, 1.0])

    def test_rejects_non_traces(self):
        with pytest.raises(ValueError, match="traceEvents"):
            merge_chrome_traces([{"nope": 1}])
