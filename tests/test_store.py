"""Tests of the content-addressed result store (:mod:`repro.store`)."""

import json
import threading

import pytest

from repro.core.execution import EvaluationCache, evaluation_key, point_digest
from repro.core.results import Evaluation, ExplorationResult
from repro.power.technology import DesignPoint
from repro.store import ResultStore, StoreError, SweepManifest, check_sweep_name

FP = "evaluator-fingerprint-v1"


def make_eval(bits: int, *, error: str | None = None) -> Evaluation:
    point = DesignPoint(n_bits=bits)
    if error is not None:
        return Evaluation(point=point, metrics={}, error=error)
    return Evaluation(
        point=point,
        metrics={"power_uw": float(bits), "snr_db": 50.0 - bits},
        breakdown={"adc": float(bits) / 2, "lna": float(bits) / 2},
    )


def make_result(bits=(6, 7, 8), errors=(), name="demo") -> ExplorationResult:
    evaluations = [make_eval(b) for b in bits]
    evaluations += [make_eval(b, error="RuntimeError: boom") for b in errors]
    return ExplorationResult(evaluations, name=name)


class TestSweepNames:
    def test_valid_names_pass(self):
        for name in ("fig7-smoke", "a", "Sweep.2026_08", "0x1"):
            assert check_sweep_name(name) == name

    @pytest.mark.parametrize(
        "name", ["", "../escape", "a/b", ".hidden", "-dash", "x" * 101, "sp ace"]
    )
    def test_invalid_names_rejected(self, name):
        with pytest.raises(ValueError, match="invalid sweep name"):
            check_sweep_name(name)


class TestContentAddressing:
    def test_evaluation_key_matches_cache_path(self, tmp_path):
        """The store's blob key IS the evaluation cache's filename stem --
        the invariant that lets the blob dir double as a live cache."""
        cache = EvaluationCache(tmp_path)
        point = DesignPoint(n_bits=7)
        assert cache._path(FP, point).stem == evaluation_key(FP, point)

    def test_point_digest_depends_on_description(self):
        assert point_digest(DesignPoint(n_bits=6)) != point_digest(DesignPoint(n_bits=7))
        assert point_digest(DesignPoint(n_bits=6)) == point_digest(DesignPoint(n_bits=6))

    def test_store_blobs_are_cache_hits(self, tmp_path):
        """An evaluation stored via put_sweep must be a cache hit for the
        same fingerprint + point through the store's cache view."""
        store = ResultStore(tmp_path)
        store.put_sweep("demo", FP, make_result())
        cached = store.cache.get(FP, DesignPoint(n_bits=6))
        assert cached is not None
        assert cached.metrics["power_uw"] == 6.0


class TestSweepRoundTrip:
    def test_put_then_load(self, tmp_path):
        store = ResultStore(tmp_path)
        manifest = store.put_sweep("demo", FP, make_result())
        assert manifest.n_evaluations == 3
        assert manifest.n_failures == 0
        loaded = store.load_result("demo")
        assert len(loaded) == 3
        assert loaded.name == "demo"
        assert [e.metrics["power_uw"] for e in loaded] == [6.0, 7.0, 8.0]
        assert loaded[0].breakdown == {"adc": 3.0, "lna": 3.0}

    def test_failures_inlined_and_round_trip(self, tmp_path):
        """Failed evaluations are never blobbed (the cache's
        never-cache-failures rule) but must still round-trip."""
        store = ResultStore(tmp_path)
        manifest = store.put_sweep("demo", FP, make_result(bits=(6,), errors=(10,)))
        assert manifest.n_failures == 1
        assert manifest.keys == [evaluation_key(FP, DesignPoint(n_bits=6)), None]
        loaded = store.load_result("demo")
        assert loaded[1].error == "RuntimeError: boom"
        assert not loaded[1].ok
        # No blob was written for the failure.
        assert len(list(store.evaluations_dir.glob("*.json"))) == 1

    def test_missing_sweep_raises_with_known_names(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_sweep("exists", FP, make_result())
        with pytest.raises(StoreError, match="exists"):
            store.load_result("nope")

    def test_missing_blob_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_sweep("demo", FP, make_result(bits=(6,)))
        for blob in store.evaluations_dir.glob("*.json"):
            blob.unlink()
        with pytest.raises(StoreError, match="missing evaluation blob"):
            store.load_result("demo")

    def test_invalid_name_rejected_on_put(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="invalid sweep name"):
            store.put_sweep("../traversal", FP, make_result())


class TestDigestStability:
    def test_same_content_same_digest(self, tmp_path):
        """Identical content re-stored (even under another name, at
        another time) produces an identical digest -- the ETag contract."""
        store = ResultStore(tmp_path)
        first = store.put_sweep("one", FP, make_result())
        second = store.put_sweep("two", FP, make_result())
        assert first.digest == second.digest

    def test_different_content_different_digest(self, tmp_path):
        store = ResultStore(tmp_path)
        a = store.put_sweep("a", FP, make_result(bits=(6, 7)))
        b = store.put_sweep("b", FP, make_result(bits=(6, 8)))
        c = store.put_sweep("c", "other-fingerprint", make_result(bits=(6, 7)))
        assert len({a.digest, b.digest, c.digest}) == 3

    def test_digest_survives_manifest_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        stored = store.put_sweep("demo", FP, make_result())
        reloaded = store.get_sweep("demo")
        assert reloaded.digest == stored.digest
        assert reloaded.digest == SweepManifest.compute_digest(
            reloaded.fingerprint, reloaded.entries
        )


class TestIndex:
    def test_index_lists_sweeps(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_sweep("a", FP, make_result(bits=(6,)))
        store.put_sweep("b", FP, make_result(bits=(6, 7)))
        index = store.index()
        assert set(index["sweeps"]) == {"a", "b"}
        assert index["sweeps"]["b"]["n_evaluations"] == 2

    def test_index_rebuilt_when_deleted(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_sweep("a", FP, make_result())
        store.index_path.unlink()
        assert "a" in store.index()["sweeps"]

    def test_index_recovers_from_corruption(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_sweep("a", FP, make_result())
        store.index_path.write_text("{not json")
        assert "a" in store.index()["sweeps"]

    def test_torn_foreign_manifest_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_sweep("good", FP, make_result())
        (store.sweeps_dir / "torn.json").write_text("{trunc")
        index = store._rebuild_index()
        assert set(index["sweeps"]) == {"good"}

    def test_delete_sweep_updates_index(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_sweep("a", FP, make_result())
        assert store.delete_sweep("a")
        assert store.index()["sweeps"] == {}
        assert not store.delete_sweep("a")


class TestConcurrency:
    def test_concurrent_put_sweep_atomicity(self, tmp_path):
        """Many threads storing distinct sweeps through one store root:
        every manifest, blob and the final index must be complete."""
        store = ResultStore(tmp_path)
        n_threads = 8
        failures = []

        def worker(tag):
            try:
                store.put_sweep(f"sweep-{tag}", FP, make_result(bits=(6, 7, 8)))
            except Exception as error:  # pragma: no cover - the assertion
                failures.append(error)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        assert len(store.sweep_names()) == n_threads
        index = store.index()
        assert len(index["sweeps"]) == n_threads
        for name in store.sweep_names():
            assert len(store.load_result(name)) == 3
        # Every artefact on disk is complete JSON, never torn.
        for path in list(store.sweeps_dir.glob("*.json")) + [store.index_path]:
            json.loads(path.read_text())


class TestGc:
    def test_gc_removes_unreferenced_blobs_only(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_sweep("keep", FP, make_result(bits=(6,)))
        # An orphan blob: cached evaluation never attached to a named sweep.
        store.put_evaluation(FP, DesignPoint(n_bits=12), make_eval(12))
        assert len(list(store.evaluations_dir.glob("*.json"))) == 2
        removed = store.gc()
        assert removed == [evaluation_key(FP, DesignPoint(n_bits=12))]
        assert len(list(store.evaluations_dir.glob("*.json"))) == 1
        assert len(store.load_result("keep")) == 1

    def test_gc_on_clean_store_is_noop(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_sweep("a", FP, make_result())
        assert store.gc() == []

    def test_put_evaluation_skips_failures(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put_evaluation(FP, DesignPoint(n_bits=6), make_eval(6, error="x"))
        assert key is None
        assert list(store.evaluations_dir.glob("*.json")) == []


class TestManifestFormat:
    def test_version_check(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_sweep("demo", FP, make_result())
        path = store.sweeps_dir / "demo.json"
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="version"):
            store.get_sweep("demo")

    def test_get_missing_sweep_returns_none(self, tmp_path):
        assert ResultStore(tmp_path).get_sweep("nope") is None
