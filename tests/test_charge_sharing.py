"""Tests of the passive charge-sharing encoder (paper Eq. 1)."""

import numpy as np
import pytest

from repro.cs.charge_sharing import (
    ChargeSharingConfig,
    ChargeSharingEncoder,
    EncoderPerturbation,
    effective_matrix,
    encoder_from_design,
)
from repro.cs.matrices import gaussian, srbm_balanced


def ideal_config(ratio: float = 8.0) -> ChargeSharingConfig:
    return ChargeSharingConfig(c_sample=2e-15, c_hold=ratio * 2e-15, kt=0.0)


class TestConfig:
    def test_share_gain_and_retention(self):
        cfg = ChargeSharingConfig(c_sample=1e-15, c_hold=1e-15, kt=0.0)
        assert cfg.share_gain == pytest.approx(0.5)
        assert cfg.retention == pytest.approx(0.5)

    def test_gain_plus_retention_is_one(self):
        cfg = ideal_config(7.3)
        assert cfg.share_gain + cfg.retention == pytest.approx(1.0)

    def test_noise_rms_formulae(self):
        cfg = ChargeSharingConfig(c_sample=1e-14, c_hold=3e-14)
        assert cfg.share_noise_rms == pytest.approx(np.sqrt(cfg.kt / 4e-14))
        assert cfg.sample_noise_rms == pytest.approx(np.sqrt(cfg.kt / 1e-14))

    def test_zero_kt_disables_noise(self):
        cfg = ideal_config()
        assert cfg.share_noise_rms == 0.0
        assert cfg.sample_noise_rms == 0.0

    def test_rejects_nonpositive_caps(self):
        with pytest.raises(ValueError):
            ChargeSharingConfig(c_sample=0.0, c_hold=1e-15)


class TestEquationOne:
    """The paper's Eq. (1) verified explicitly against the simulation."""

    def test_single_row_weighted_sum(self):
        # One hold capacitor accumulating every sample: V = sum Vj a b^(N-j).
        phi = np.zeros((1, 6))
        phi[0, :] = 1.0
        # Force a single-row route by building the matrix by hand.
        from repro.cs.matrices import SensingMatrix

        mat = SensingMatrix(phi=phi, kind="srbm", sparsity=1, seed=None)
        cfg = ChargeSharingConfig(c_sample=1e-15, c_hold=1e-15, kt=0.0)
        enc = ChargeSharingEncoder(mat, cfg, seed=0)
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        expected = sum(x[j] * 0.5 * 0.5 ** (5 - j) for j in range(6))
        assert enc.encode(x)[0] == pytest.approx(expected)

    def test_effective_matrix_weights(self):
        mat = srbm_balanced(4, 16, 1, seed=2)
        weights = effective_matrix(mat, share_gain=0.2, retention=0.8)
        # Each nonzero is a * b^(later ones in the row).
        for i in range(4):
            cols = np.flatnonzero(mat.phi[i])
            for rank, j in enumerate(cols):
                later = len(cols) - 1 - rank
                assert weights[i, j] == pytest.approx(0.2 * 0.8**later)

    def test_effective_matrix_zeros_stay_zero(self):
        mat = srbm_balanced(8, 32, 2, seed=2)
        weights = effective_matrix(mat, 0.1, 0.9)
        assert np.all((weights != 0) == (mat.phi != 0))

    def test_last_sample_has_largest_weight(self):
        mat = srbm_balanced(8, 32, 2, seed=2)
        weights = effective_matrix(mat, 0.1, 0.9)
        for i in range(8):
            cols = np.flatnonzero(mat.phi[i])
            magnitudes = np.abs(weights[i, cols])
            assert np.all(np.diff(magnitudes) >= -1e-15)  # ascending in time


class TestEncoderSimulation:
    def test_noiseless_matches_effective_matrix(self, rng):
        mat = srbm_balanced(16, 64, 2, seed=3)
        enc = ChargeSharingEncoder(mat, ideal_config(), seed=1)
        x = rng.normal(size=64)
        np.testing.assert_allclose(enc.encode(x), enc.phi_effective @ x, atol=1e-14)

    def test_batch_matches_loop(self, rng):
        mat = srbm_balanced(8, 32, 2, seed=3)
        enc = ChargeSharingEncoder(mat, ideal_config(), seed=1)
        frames = rng.normal(size=(5, 32))
        batch = enc.encode(frames)
        singles = np.stack([enc.encode(frame) for frame in frames])
        np.testing.assert_allclose(batch, singles, atol=1e-14)

    def test_output_shape_single_and_batch(self, rng):
        mat = srbm_balanced(8, 32, 2, seed=3)
        enc = ChargeSharingEncoder(mat, ideal_config(), seed=1)
        assert enc.encode(np.zeros(32)).shape == (8,)
        assert enc.encode(np.zeros((3, 32))).shape == (3, 8)

    def test_rejects_wrong_frame_length(self):
        mat = srbm_balanced(8, 32, 2, seed=3)
        enc = ChargeSharingEncoder(mat, ideal_config(), seed=1)
        with pytest.raises(ValueError, match="N_phi"):
            enc.encode(np.zeros(33))

    def test_requires_srbm_matrix(self):
        with pytest.raises(ValueError, match="s-SRBM"):
            ChargeSharingEncoder(gaussian(8, 32, seed=1), ideal_config(), seed=1)

    def test_mismatch_matches_phi_true(self, rng):
        mat = srbm_balanced(8, 32, 2, seed=3)
        cfg = ChargeSharingConfig(
            c_sample=2e-15,
            c_hold=16e-15,
            kt=0.0,
            mismatch_sigma_sample=0.02,
            mismatch_sigma_hold=0.02,
        )
        enc = ChargeSharingEncoder(mat, cfg, seed=7)
        x = rng.normal(size=32)
        np.testing.assert_allclose(enc.encode(x), enc.phi_true() @ x, atol=1e-14)

    def test_mismatch_moves_matrix_but_stays_close(self):
        mat = srbm_balanced(8, 32, 2, seed=3)
        cfg = ChargeSharingConfig(
            c_sample=2e-15,
            c_hold=16e-15,
            kt=0.0,
            mismatch_sigma_sample=0.01,
            mismatch_sigma_hold=0.01,
        )
        enc = ChargeSharingEncoder(mat, cfg, seed=7)
        nominal = enc.phi_effective
        true = enc.phi_true()
        assert not np.allclose(nominal, true)
        rel = np.linalg.norm(true - nominal) / np.linalg.norm(nominal)
        assert rel < 0.1

    def test_noise_present_when_kt_enabled(self, rng):
        mat = srbm_balanced(8, 32, 2, seed=3)
        cfg = ChargeSharingConfig(c_sample=2e-15, c_hold=16e-15)
        enc = ChargeSharingEncoder(mat, cfg, seed=7)
        x = rng.normal(size=32)
        noisy = enc.encode(x)
        assert not np.allclose(noisy, enc.phi_effective @ x, atol=1e-9)

    def test_reset_noise_replays_identically(self, rng):
        mat = srbm_balanced(8, 32, 2, seed=3)
        cfg = ChargeSharingConfig(c_sample=2e-15, c_hold=16e-15)
        enc = ChargeSharingEncoder(mat, cfg, seed=7)
        x = rng.normal(size=32)
        first = enc.encode(x)
        enc.reset_noise()
        second = enc.encode(x)
        np.testing.assert_array_equal(first, second)

    def test_leakage_droop_reduces_magnitude(self):
        mat = srbm_balanced(4, 16, 2, seed=3)
        quiet = ChargeSharingEncoder(mat, ideal_config(), seed=1)
        leaky_cfg = ChargeSharingConfig(
            c_sample=2e-15, c_hold=16e-15, kt=0.0, i_leak=1e-16, f_sample=537.6
        )
        leaky = ChargeSharingEncoder(mat, leaky_cfg, seed=1)
        x = np.ones(16)
        assert np.all(np.abs(leaky.encode(x)) <= np.abs(quiet.encode(x)) + 1e-15)


class TestPerturbation:
    def test_none_is_zero(self):
        pert = EncoderPerturbation.none(2, 8)
        assert np.all(pert.sample_errors == 0)
        assert np.all(pert.hold_errors == 0)

    def test_draw_shapes(self, rng):
        pert = EncoderPerturbation.draw(2, 8, 0.01, 0.02, rng)
        assert pert.sample_errors.shape == (2,)
        assert pert.hold_errors.shape == (8,)

    def test_zero_sigma_draws_zero(self, rng):
        pert = EncoderPerturbation.draw(2, 8, 0.0, 0.0, rng)
        assert np.all(pert.sample_errors == 0)


class TestEncoderFromDesign:
    def test_wires_capacitances(self, cs_point):
        mat = srbm_balanced(cs_point.cs_m, cs_point.cs_n_phi, 2, seed=1)
        enc = encoder_from_design(cs_point, mat, seed=1)
        assert enc.config.c_hold == pytest.approx(cs_point.cs_hold_capacitance)
        assert enc.config.c_sample == pytest.approx(cs_point.cs_sample_capacitance)

    def test_droop_disabled_by_default(self, cs_point):
        mat = srbm_balanced(cs_point.cs_m, cs_point.cs_n_phi, 2, seed=1)
        assert encoder_from_design(cs_point, mat).config.i_leak == 0.0

    def test_droop_opt_in(self, cs_point):
        mat = srbm_balanced(cs_point.cs_m, cs_point.cs_n_phi, 2, seed=1)
        enc = encoder_from_design(cs_point, mat, include_droop=True)
        assert enc.config.i_leak == cs_point.technology.i_leak
