"""Tests of the deterministic RNG management."""

import numpy as np
import pytest

from repro.util.rng import (
    DEFAULT_SEED,
    SeedSequenceRegistry,
    derive_seed,
    make_rng,
    spawn_rng,
)


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).normal(size=16)
        b = make_rng(42).normal(size=16)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_different_streams(self):
        a = make_rng(1).normal(size=16)
        b = make_rng(2).normal(size=16)
        assert not np.array_equal(a, b)

    def test_none_uses_default_seed(self):
        a = make_rng(None).normal(size=8)
        b = make_rng(DEFAULT_SEED).normal(size=8)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(5)
        assert make_rng(gen) is gen


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "lna") == derive_seed(7, "lna")

    def test_tag_sensitivity(self):
        assert derive_seed(7, "lna") != derive_seed(7, "adc")

    def test_parent_sensitivity(self):
        assert derive_seed(7, "lna") != derive_seed(8, "lna")

    def test_result_is_nonnegative_64bit(self):
        seed = derive_seed(123456, "block")
        assert 0 <= seed < 2**64

    def test_spawn_rng_matches_derive(self):
        a = spawn_rng(3, "x").normal(size=4)
        b = np.random.default_rng(derive_seed(3, "x")).normal(size=4)
        np.testing.assert_array_equal(a, b)


class TestSeedSequenceRegistry:
    def test_same_name_restarts_stream(self):
        reg = SeedSequenceRegistry(11)
        first = reg.rng("lna").normal(size=8)
        second = reg.rng("lna").normal(size=8)
        np.testing.assert_array_equal(first, second)

    def test_different_names_independent(self):
        reg = SeedSequenceRegistry(11)
        assert not np.array_equal(reg.rng("a").normal(size=8), reg.rng("b").normal(size=8))

    def test_issued_records_names(self):
        reg = SeedSequenceRegistry(11)
        reg.rng("lna")
        reg.rng("adc")
        assert set(reg.issued()) == {"lna", "adc"}

    def test_child_registries_differ_from_parent(self):
        parent = SeedSequenceRegistry(11)
        child = parent.child("point-1")
        assert parent.rng("lna").normal() != pytest.approx(child.rng("lna").normal())

    def test_child_reproducible(self):
        a = SeedSequenceRegistry(11).child("p").rng("x").normal(size=4)
        b = SeedSequenceRegistry(11).child("p").rng("x").normal(size=4)
        np.testing.assert_array_equal(a, b)

    def test_distinct_children_independent(self):
        parent = SeedSequenceRegistry(11)
        a = parent.child("p1").rng("x").normal(size=4)
        b = parent.child("p2").rng("x").normal(size=4)
        assert not np.array_equal(a, b)
