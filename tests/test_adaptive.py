"""Tests of the adaptive multi-fidelity explorer and its Pareto foundations.

Covers the successive-halving engine (rung accounting, survivor
selection, checkpoint resume after an interrupt), the fidelity-schedule
derivation of low-cost evaluators, and the NaN/inf hardening of the
Pareto helpers the search steers by -- including Hypothesis suites
asserting (a) adaptive == exhaustive fronts on closed-form evaluators
and (b) no non-finite point ever survives onto a front.
"""

import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import (
    AdaptiveExplorationResult,
    FidelityRung,
    FidelitySchedule,
    MIN_SOLVER_ITERATIONS,
    PromotionLedger,
    RungReport,
    ScaledSolverFactory,
    derive_low_fidelity,
    select_survivors,
)
from repro.core.explorer import DesignSpaceExplorer, FrontEndEvaluator
from repro.core.pareto import (
    Objective,
    best_feasible,
    dominates,
    epsilon_nondominated,
    pareto_front,
)
from repro.core.results import Evaluation
from repro.power.technology import DesignPoint

OBJ = (Objective("power", maximize=False), Objective("quality", maximize=True))


def make_points(n):
    """Distinct design points (distinct describe()) to hang metrics on."""
    return [DesignPoint(lna_noise_rms=(i + 1) * 1e-6) for i in range(n)]


def table_evaluator(points, rows):
    """Closed-form evaluator: point identity -> fixed metric dict."""
    table = {id(p): {"power": power, "quality": quality} for p, (power, quality) in zip(points, rows)}
    return lambda point: Evaluation(point=point, metrics=dict(table[id(point)]))


def front_values(evaluations, objectives=OBJ):
    return sorted(
        (e.metrics["power"], e.metrics["quality"])
        for e in pareto_front([e for e in evaluations if e.ok], objectives)
    )


finite_rows = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    min_size=1,
    max_size=50,
)

# Metric values including the pathological ones: NaN, +/-inf, and huge
# magnitudes, alongside ordinary finite floats.
wild_value = st.one_of(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.just(float("nan")),
    st.just(float("inf")),
    st.just(float("-inf")),
)
wild_rows = st.lists(st.tuples(wild_value, wild_value), min_size=1, max_size=40)


class TestFidelityRungAndSchedule:
    def test_rung_validation(self):
        with pytest.raises(ValueError, match="corpus_fraction"):
            FidelityRung("bad", corpus_fraction=0.0)
        with pytest.raises(ValueError, match="solver_scale"):
            FidelityRung("bad", solver_scale=1.5)

    def test_full_rung_properties(self):
        rung = FidelityRung("full")
        assert rung.is_full
        assert rung.cost_fraction == 1.0

    def test_schedule_requires_full_final_rung(self):
        with pytest.raises(ValueError, match="full fidelity"):
            FidelitySchedule([FidelityRung("lo", corpus_fraction=0.5)])

    def test_schedule_requires_nondecreasing_cost(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            FidelitySchedule(
                [
                    FidelityRung("a", corpus_fraction=0.5),
                    FidelityRung("b", corpus_fraction=0.25),
                    FidelityRung("full"),
                ]
            )

    def test_schedule_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one rung"):
            FidelitySchedule([])

    def test_geometric_shape(self):
        schedule = FidelitySchedule.geometric(4, reduction=4.0)
        assert len(schedule) == 4
        assert schedule.rungs[-1].is_full
        costs = [r.cost_fraction for r in schedule.rungs]
        assert costs == sorted(costs)
        # 4**-3 would be 1/64; the default min_corpus_fraction floors it.
        assert schedule.rungs[0].corpus_fraction == pytest.approx(0.05)
        deeper = FidelitySchedule.geometric(3, reduction=2.0)
        assert deeper.rungs[0].corpus_fraction == pytest.approx(0.25)

    def test_geometric_single_rung_degenerates_to_exhaustive(self):
        schedule = FidelitySchedule.geometric(1)
        assert len(schedule) == 1
        assert schedule.rungs[0].is_full

    def test_geometric_validation(self):
        with pytest.raises(ValueError, match="n_rungs"):
            FidelitySchedule.geometric(0)
        with pytest.raises(ValueError, match="reduction"):
            FidelitySchedule.geometric(3, reduction=1.0)

    def test_full_rung_returns_original_evaluator(self):
        sentinel = object()
        schedule = FidelitySchedule([FidelityRung("full")])
        assert schedule.evaluator_for(sentinel, schedule.rungs[0]) is sentinel

    def test_custom_derive_hook(self):
        derived = object()
        schedule = FidelitySchedule(
            [FidelityRung("lo", corpus_fraction=0.5), FidelityRung("full")],
            derive=lambda evaluator, rung: derived,
        )
        assert schedule.evaluator_for(object(), schedule.rungs[0]) is derived

    def test_non_frontend_evaluators_pass_through_unchanged(self):
        evaluator = lambda p: None  # noqa: E731 - any callable
        rung = FidelityRung("lo", corpus_fraction=0.25)
        assert derive_low_fidelity(evaluator, rung) is evaluator


class TestDeriveLowFidelity:
    def make_evaluator(self, n_records=8, n_samples=128):
        rng = np.random.default_rng(0)
        records = rng.normal(0.0, 20e-6, size=(n_records, n_samples))
        return FrontEndEvaluator(records, None, 2.1 * 256, seed=3)

    def test_slices_corpus_rows(self):
        evaluator = self.make_evaluator()
        derived = derive_low_fidelity(evaluator, FidelityRung("lo", corpus_fraction=0.25))
        assert derived.records.shape == (2, 128)
        np.testing.assert_array_equal(derived.records, evaluator.records[:2])

    def test_labels_follow_the_slice(self):
        rng = np.random.default_rng(0)
        records = rng.normal(0.0, 20e-6, size=(8, 128))
        labels = np.arange(8) % 2
        evaluator = FrontEndEvaluator(records, labels, 2.1 * 256, seed=3)
        # No detector, so accuracy is skipped -- but labels must stay
        # consistent with the sliced corpus for evaluators that carry one.
        derived = derive_low_fidelity(evaluator, FidelityRung("lo", corpus_fraction=0.5))
        assert derived.labels.size == derived.records.shape[0] == 4

    def test_keeps_at_least_one_record(self):
        evaluator = self.make_evaluator(n_records=3)
        derived = derive_low_fidelity(evaluator, FidelityRung("lo", corpus_fraction=0.01))
        assert derived.records.shape[0] == 1

    def test_fingerprints_distinct_per_rung_and_from_full(self):
        evaluator = self.make_evaluator()
        rungs = [
            FidelityRung("a", corpus_fraction=0.25, solver_scale=0.25),
            FidelityRung("b", corpus_fraction=0.5, solver_scale=0.5),
        ]
        prints = {derive_low_fidelity(evaluator, rung).fingerprint() for rung in rungs}
        prints.add(evaluator.fingerprint())
        assert len(prints) == 3

    def test_solver_scale_wraps_factory(self):
        evaluator = self.make_evaluator()
        derived = derive_low_fidelity(
            evaluator, FidelityRung("lo", corpus_fraction=1.0, solver_scale=0.1)
        )
        reconstructor = derived.reconstructor_factory(DesignPoint(use_cs=True, cs_m=32, cs_n_phi=64))
        assert reconstructor.n_iter == max(MIN_SOLVER_ITERATIONS, 30)

    def test_scaled_solver_floor(self):
        factory = ScaledSolverFactory(
            derive_low_fidelity(
                self.make_evaluator(), FidelityRung("lo", solver_scale=0.9)
            ).reconstructor_factory,
            0.001,
        )
        point = DesignPoint(use_cs=True, cs_m=32, cs_n_phi=64)
        assert factory(point).n_iter == MIN_SOLVER_ITERATIONS

    def test_derived_evaluator_is_picklable(self):
        evaluator = self.make_evaluator()
        derived = derive_low_fidelity(
            evaluator, FidelityRung("lo", corpus_fraction=0.5, solver_scale=0.5)
        )
        clone = pickle.loads(pickle.dumps(derived))
        assert clone.records.shape == derived.records.shape
        assert clone.fingerprint() == derived.fingerprint()


class TestSelectSurvivors:
    def entries(self, rows):
        points = make_points(len(rows))
        return [
            (i, Evaluation(point=p, metrics={"power": power, "quality": quality}))
            for i, (p, (power, quality)) in enumerate(zip(points, rows))
        ]

    def test_front_always_survives(self):
        entries = self.entries([(1, 0.9), (2, 0.95), (3, 0.5), (4, 0.4)])
        kept = select_survivors(entries, OBJ, keep_frac=0.01)
        assert set(kept) >= {0, 1}

    def test_keep_frac_floor_peels_layers(self):
        # One dominating point; the floor forces dominated layers in.
        entries = self.entries([(1, 0.9), (2, 0.8), (3, 0.7), (4, 0.6)])
        assert select_survivors(entries, OBJ, keep_frac=0.01) == [0]
        assert select_survivors(entries, OBJ, keep_frac=0.75) == [0, 1, 2]

    def test_group_by_keeps_per_group_fronts(self):
        entries = self.entries([(1, 0.9), (10, 0.5), (12, 0.4)])
        # Ungrouped: (10, 0.5) and (12, 0.4) are dominated by (1, 0.9).
        assert select_survivors(entries, OBJ, keep_frac=0.01) == [0]
        # Grouped (say, by architecture): each group keeps its own front.
        kept = select_survivors(
            entries, OBJ, keep_frac=0.01, group_by=lambda e: e.metrics["power"] > 5
        )
        assert kept == [0, 1]

    def test_non_finite_points_never_promoted(self):
        entries = self.entries(
            [(1, 0.9), (float("nan"), 0.95), (2, float("inf")), (3, 0.5)]
        )
        kept = select_survivors(entries, OBJ, keep_frac=1.0)
        assert kept == [0, 3]

    def test_epsilon_band_widens_selection(self):
        entries = self.entries([(1.0, 0.9), (1.05, 0.895), (5.0, 0.2)])
        assert select_survivors(entries, OBJ, keep_frac=0.01) == [0]
        kept = select_survivors(
            entries, OBJ, keep_frac=0.01, epsilon={"power": 0.1, "quality": 0.01}
        )
        assert kept == [0, 1]

    def test_keep_frac_validation(self):
        with pytest.raises(ValueError, match="keep_frac"):
            select_survivors(self.entries([(1, 0.5)]), OBJ, keep_frac=0.0)


class TestPromotionLedger:
    def report(self, **overrides):
        base = dict(
            rung=0,
            name="rung0",
            corpus_fraction=0.25,
            solver_scale=0.5,
            proposed=100,
            failures=2,
            kept=20,
            promoted=20,
            wall_s=1.5,
        )
        base.update(overrides)
        return RungReport(**base)

    def test_full_fidelity_accounting(self):
        ledger = PromotionLedger(grid_size=100, keep_frac=0.2)
        ledger.rungs.append(self.report())
        ledger.rungs.append(
            self.report(rung=1, name="full", corpus_fraction=1.0, solver_scale=1.0, proposed=10)
        )
        assert ledger.full_fidelity_evaluations == 10
        assert ledger.low_fidelity_evaluations == 100
        assert ledger.reduction == pytest.approx(10.0)
        assert not ledger.interrupted

    def test_reduction_none_before_final_rung(self):
        ledger = PromotionLedger(grid_size=100, keep_frac=0.2)
        ledger.rungs.append(self.report(interrupted=True))
        assert ledger.reduction is None
        assert ledger.interrupted

    def test_to_dict_and_summary(self):
        ledger = PromotionLedger(grid_size=50, keep_frac=0.3)
        ledger.rungs.append(
            self.report(corpus_fraction=1.0, solver_scale=1.0, name="full", proposed=5)
        )
        payload = ledger.to_dict()
        assert payload["grid_size"] == 50
        assert payload["full_fidelity_evaluations"] == 5
        assert payload["reduction"] == pytest.approx(10.0)
        assert payload["rungs"][0]["name"] == "full"
        text = ledger.summary()
        assert "full-fidelity evaluations: 5 of 50" in text
        assert "10.0x" in text


class TestAdaptiveExploration:
    def test_matches_exhaustive_front_basic(self):
        rows = [(float(i % 7 + 1), float((i * 13) % 10) / 10) for i in range(40)]
        points = make_points(len(rows))
        evaluator = table_evaluator(points, rows)
        explorer = DesignSpaceExplorer(evaluator)
        exhaustive = explorer.explore(points)
        result = explorer.explore_adaptive(
            points, objectives=OBJ, rungs=3, keep_frac=0.2, executor="serial"
        )
        assert isinstance(result, AdaptiveExplorationResult)
        assert front_values(list(result)) == front_values(list(exhaustive))

    @settings(max_examples=30, deadline=None)
    @given(finite_rows, st.integers(min_value=1, max_value=4))
    def test_adaptive_equals_exhaustive_on_closed_form(self, rows, rungs):
        """Under identity fidelity derivation the adaptive front is exact.

        Non-domination is monotone under subsets, so every exhaustive-
        front point survives every rung, and dominated stowaways are
        eliminated in the final full-fidelity wave.
        """
        points = make_points(len(rows))
        evaluator = table_evaluator(points, rows)
        explorer = DesignSpaceExplorer(evaluator)
        exhaustive = explorer.explore(points)
        result = explorer.explore_adaptive(
            points, objectives=OBJ, rungs=rungs, keep_frac=0.25, executor="serial"
        )
        assert front_values(list(result)) == front_values(list(exhaustive))
        ledger = result.ledger
        assert ledger.grid_size == len(points)
        assert len(ledger.rungs) == rungs
        assert ledger.full_fidelity_evaluations <= len(points)
        assert ledger.rungs[0].proposed == len(points)
        for earlier, later in zip(ledger.rungs, ledger.rungs[1:]):
            assert later.proposed == earlier.promoted

    def test_accepts_goal_and_defaults(self):
        from repro.core.goal import Goal

        rows = [(1.0, 0.9), (2.0, 0.5)]
        points = make_points(2)
        evaluator = table_evaluator(points, rows)
        goal = Goal(name="g", objectives=OBJ)
        result = DesignSpaceExplorer(evaluator).explore_adaptive(
            points, objectives=goal, rungs=2, executor="serial"
        )
        assert len(result.pareto(OBJ)) == 1

    def test_raises_when_no_feasible_survivors(self):
        points = make_points(4)
        evaluator = table_evaluator(points, [(float("nan"), float("nan"))] * 4)
        with pytest.raises(ValueError, match="no feasible survivors"):
            DesignSpaceExplorer(evaluator).explore_adaptive(
                points, objectives=OBJ, rungs=2, executor="serial"
            )

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError, match="no points"):
            DesignSpaceExplorer(lambda p: None).explore_adaptive(
                [], objectives=OBJ, executor="serial"
            )

    def test_single_rung_is_exhaustive(self):
        rows = [(1.0, 0.5), (2.0, 0.9), (3.0, 0.1)]
        points = make_points(3)
        evaluator = table_evaluator(points, rows)
        result = DesignSpaceExplorer(evaluator).explore_adaptive(
            points, objectives=OBJ, rungs=1, executor="serial"
        )
        assert len(result) == 3
        assert result.ledger.full_fidelity_evaluations == 3
        assert result.ledger.reduction == pytest.approx(1.0)

    def test_telemetry_counters_emitted(self):
        from repro.core.telemetry import Telemetry

        telemetry = Telemetry()
        rows = [(float(i + 1), 0.5) for i in range(10)]
        points = make_points(10)
        evaluator = table_evaluator(points, rows)
        DesignSpaceExplorer(evaluator).explore_adaptive(
            points, objectives=OBJ, rungs=2, executor="serial", telemetry=telemetry
        )
        counters = telemetry.snapshot()["counters"]
        assert counters["adaptive.runs"] == 1
        assert counters["adaptive.rungs"] == 2
        assert counters["adaptive.full_fidelity_points"] >= 1
        assert counters["adaptive.low_fidelity_points"] == 10
        timers = telemetry.timers()
        assert "adaptive.total" in timers
        assert "adaptive.rung" in timers


class InterruptingEvaluator:
    """Closed-form evaluator raising KeyboardInterrupt after N calls."""

    def __init__(self, rows, points, interrupt_after=None):
        self.table = {
            p.describe(): {"power": power, "quality": quality}
            for p, (power, quality) in zip(points, rows)
        }
        self.interrupt_after = interrupt_after
        self.calls = 0

    def __call__(self, point):
        if self.interrupt_after is not None and self.calls >= self.interrupt_after:
            raise KeyboardInterrupt
        self.calls += 1
        return Evaluation(point=point, metrics=dict(self.table[point.describe()]))


class TestCheckpointResume:
    def test_interrupted_adaptive_run_resumes_from_checkpoint(self, tmp_path):
        rows = [(float(i % 5 + 1), float((i * 7) % 10) / 10) for i in range(20)]
        points = make_points(len(rows))
        checkpoint = tmp_path / "adaptive.jsonl"

        interrupted = DesignSpaceExplorer(
            InterruptingEvaluator(rows, points, interrupt_after=8)
        ).explore_adaptive(
            points,
            objectives=OBJ,
            rungs=2,
            keep_frac=0.25,
            executor="serial",
            checkpoint=checkpoint,
        )
        assert interrupted.ledger.interrupted
        assert interrupted.ledger.rungs[-1].interrupted
        assert any(
            e.error is not None and e.error.startswith("Interrupted")
            for e in interrupted
        )
        assert (tmp_path / "adaptive.rung0.jsonl").exists()

        resumed_evaluator = InterruptingEvaluator(rows, points)
        result = DesignSpaceExplorer(resumed_evaluator).explore_adaptive(
            points,
            objectives=OBJ,
            rungs=2,
            keep_frac=0.25,
            executor="serial",
            checkpoint=checkpoint,
        )
        assert not result.ledger.interrupted
        # The 8 points completed before the interrupt were restored from
        # the rung-0 checkpoint, not re-evaluated.
        assert resumed_evaluator.calls < 20 + result.ledger.full_fidelity_evaluations

        reference = DesignSpaceExplorer(
            InterruptingEvaluator(rows, points)
        ).explore_adaptive(
            points, objectives=OBJ, rungs=2, keep_frac=0.25, executor="serial"
        )
        assert front_values(list(result)) == front_values(list(reference))


class TestParetoNonFiniteFuzz:
    def evals(self, rows):
        return [
            Evaluation(point=p, metrics={"power": power, "quality": quality})
            for p, (power, quality) in zip(make_points(len(rows)), rows)
        ]

    @settings(max_examples=60, deadline=None)
    @given(wild_rows)
    def test_front_never_contains_non_finite_point(self, rows):
        front = pareto_front(self.evals(rows), OBJ)
        for evaluation in front:
            assert math.isfinite(evaluation.metrics["power"])
            assert math.isfinite(evaluation.metrics["quality"])

    @settings(max_examples=60, deadline=None)
    @given(wild_rows)
    def test_epsilon_band_never_contains_non_finite_point(self, rows):
        band = epsilon_nondominated(
            self.evals(rows), OBJ, {"power": 0.5, "quality": 0.05}
        )
        for evaluation in band:
            assert math.isfinite(evaluation.metrics["power"])
            assert math.isfinite(evaluation.metrics["quality"])

    @settings(max_examples=60, deadline=None)
    @given(wild_rows)
    def test_zero_epsilon_equals_exact_front(self, rows):
        evals = self.evals(rows)
        assert epsilon_nondominated(evals, OBJ, {}) == pareto_front(evals, OBJ)

    @settings(max_examples=60, deadline=None)
    @given(wild_rows)
    def test_band_is_superset_of_front(self, rows):
        evals = self.evals(rows)
        band = {id(e) for e in epsilon_nondominated(evals, OBJ, {"power": 1.0})}
        assert band >= {id(e) for e in pareto_front(evals, OBJ)}

    @settings(max_examples=60, deadline=None)
    @given(wild_rows)
    def test_scalar_dominates_matches_vectorised_filter(self, rows):
        """Brute force via dominates() == the vectorised filter, NaN included."""
        evals = self.evals(rows)
        brute = [
            candidate
            for candidate in evals
            if all(math.isfinite(v) for v in candidate.metrics.values())
            and not any(
                dominates(other.metrics, candidate.metrics, OBJ)
                for other in evals
                if other is not candidate
            )
        ]
        assert sorted(map(id, brute)) == sorted(map(id, pareto_front(evals, OBJ)))

    @settings(max_examples=60, deadline=None)
    @given(wild_rows)
    def test_best_feasible_is_order_independent(self, rows):
        evals = self.evals(rows)
        forward = best_feasible(evals, "power")
        backward = best_feasible(list(reversed(evals)), "power")
        if forward is None:
            assert backward is None
        else:
            assert not math.isnan(forward.metrics["power"])
            assert forward.metrics["power"] == backward.metrics["power"]

    @settings(max_examples=30, deadline=None)
    @given(wild_rows, st.integers(min_value=1, max_value=3))
    def test_adaptive_result_front_never_non_finite(self, rows, rungs):
        points = make_points(len(rows))
        evaluator = table_evaluator(points, rows)
        if not any(
            math.isfinite(p) and math.isfinite(q) for p, q in rows
        ):
            return  # all-infeasible grids raise (tested elsewhere)
        result = DesignSpaceExplorer(evaluator).explore_adaptive(
            points, objectives=OBJ, rungs=rungs, keep_frac=0.5, executor="serial"
        )
        for evaluation in result.pareto(OBJ):
            assert math.isfinite(evaluation.metrics["power"])
            assert math.isfinite(evaluation.metrics["quality"])


class TestDominatesNonFinite:
    def test_nan_point_never_dominates(self):
        nan = {"power": float("nan"), "quality": 0.9}
        good = {"power": 5.0, "quality": 0.1}
        assert not dominates(nan, good, OBJ)

    def test_finite_point_dominates_nan_point(self):
        nan = {"power": float("nan"), "quality": 0.9}
        good = {"power": 5.0, "quality": 0.1}
        assert dominates(good, nan, OBJ)

    def test_two_non_finite_points_tie(self):
        a = {"power": float("nan"), "quality": 0.9}
        b = {"power": 1.0, "quality": float("inf")}
        assert not dominates(a, b, OBJ)
        assert not dominates(b, a, OBJ)

    def test_inf_treated_like_nan(self):
        inf = {"power": float("-inf"), "quality": 0.9}
        good = {"power": 5.0, "quality": 0.1}
        assert dominates(good, inf, OBJ)
        assert not dominates(inf, good, OBJ)


class TestEpsilonValidation:
    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError, match="finite and >= 0"):
            epsilon_nondominated(
                [Evaluation(point=DesignPoint(), metrics={"power": 1.0, "quality": 0.5})],
                OBJ,
                {"power": -1.0},
            )

    def test_nan_epsilon_rejected(self):
        with pytest.raises(ValueError, match="finite and >= 0"):
            epsilon_nondominated([], OBJ, {"power": float("nan")})

    def test_requires_objectives(self):
        with pytest.raises(ValueError, match="objective"):
            epsilon_nondominated([], (), {})


@pytest.mark.slow
class TestAdaptiveFig7aBench:
    def test_registered_and_meets_reduction_claim(self):
        """The ROADMAP claim, end to end: the registered bench recovers the
        exhaustive fig7a-style fronts exactly at >= 10x fewer full-fidelity
        evaluations (bench_adaptive_fig7a raises on either violation)."""
        from repro.bench import ADAPTIVE_MIN_REDUCTION, BENCHMARKS, bench_adaptive_fig7a

        assert "adaptive_fig7a" in BENCHMARKS
        record = bench_adaptive_fig7a(reps=1)
        assert record.name == "adaptive_fig7a"
        assert record.meta["reduction"] >= ADAPTIVE_MIN_REDUCTION
        assert record.meta["full_fidelity_evaluations"] * ADAPTIVE_MIN_REDUCTION <= record.meta["grid_size"]
        assert record.meta["front_points"] > 0
        assert record.wall_s > 0
