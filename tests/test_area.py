"""Tests of the capacitor-area model (Fig. 9 metric)."""

import pytest

from repro.power.area import AreaReport, chain_area
from repro.power.technology import DesignPoint, Technology


class TestAreaReport:
    def make_report(self):
        return AreaReport(
            dac_capacitance=256e-15,
            sample_capacitance=1e-15,
            cs_capacitance=0.0,
            cu_min=1e-15,
            cap_density=1.025e-15,
        )

    def test_total_and_units(self):
        report = self.make_report()
        assert report.total_capacitance == pytest.approx(257e-15)
        assert report.units == pytest.approx(257.0)

    def test_area_um2(self):
        report = self.make_report()
        assert report.area_um2 == pytest.approx(257e-15 / 1.025e-15)

    def test_breakdown_and_table(self):
        report = self.make_report()
        breakdown = report.breakdown_units()
        assert breakdown["dac"] == pytest.approx(256.0)
        assert "total" in report.as_table()


class TestChainArea:
    def test_baseline_is_dac_plus_sample(self, baseline_point):
        report = chain_area(baseline_point)
        assert report.cs_capacitance == 0.0
        tech = baseline_point.technology
        expected_dac = 2.0**8 * tech.dac_unit_cap(8)
        assert report.dac_capacitance == pytest.approx(expected_dac)
        assert report.sample_capacitance == pytest.approx(
            baseline_point.sampling_capacitance
        )

    def test_cs_adds_hold_bank(self, cs_point):
        report = chain_area(cs_point)
        expected = (
            2 * cs_point.cs_sample_capacitance + 150 * cs_point.cs_hold_capacitance
        )
        assert report.cs_capacitance == pytest.approx(expected)
        assert report.sample_capacitance == 0.0  # encoder replaces the S&H cap

    def test_cs_area_grows_with_m(self, cs_point):
        small = chain_area(cs_point.with_(cs_m=75))
        large = chain_area(cs_point.with_(cs_m=192))
        assert large.units > small.units

    def test_resolution_grows_dac_array(self):
        low = chain_area(DesignPoint(n_bits=6))
        high = chain_area(DesignPoint(n_bits=8))
        assert high.units > low.units

    def test_cs_significantly_larger_than_baseline(self, baseline_point, cs_point):
        # The paper's Fig. 9 reading.
        assert chain_area(cs_point).units > 3 * chain_area(baseline_point).units

    def test_ideal_matching_shrinks_dac(self, baseline_point):
        ideal_tech = Technology(unit_cap_mismatch_sigma=0.0)
        ideal = chain_area(baseline_point.with_(technology=ideal_tech))
        assert ideal.dac_capacitance <= chain_area(baseline_point).dac_capacitance
