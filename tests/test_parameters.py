"""Tests of ParameterSpace / CompositeSpace."""

import pytest

from repro.core.parameters import CompositeSpace, ParameterSpace
from repro.power.technology import DesignPoint


class TestParameterSpace:
    def test_size_is_product(self):
        space = ParameterSpace({"n_bits": [6, 7, 8], "lna_noise_rms": [1e-6, 2e-6]})
        assert space.size == 6

    def test_grid_yields_design_points(self):
        space = ParameterSpace({"n_bits": [6, 8]})
        points = list(space.grid())
        assert [p.n_bits for p in points] == [6, 8]
        assert all(isinstance(p, DesignPoint) for p in points)

    def test_grid_respects_base(self):
        base = DesignPoint(lna_noise_rms=9e-6)
        space = ParameterSpace({"n_bits": [6]})
        point = next(space.grid(base))
        assert point.lna_noise_rms == 9e-6
        assert point.n_bits == 6

    def test_invalid_combinations_skipped(self):
        # cs_m >= cs_n_phi is invalid for CS points and must be skipped.
        space = ParameterSpace({"use_cs": [True], "cs_m": [75, 384]})
        points = list(space.grid(DesignPoint(cs_n_phi=384)))
        assert [p.cs_m for p in points] == [75]

    def test_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="sweepable"):
            ParameterSpace({"flux_capacitance": [1]})

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError):
            ParameterSpace({"n_bits": []})

    def test_rejects_empty_space(self):
        with pytest.raises(ValueError):
            ParameterSpace({})

    def test_axes_returns_copy(self):
        space = ParameterSpace({"n_bits": [6]})
        space.axes["n_bits"].append(99)
        assert space.axes["n_bits"] == [6]

    def test_random_subset(self):
        space = ParameterSpace({"n_bits": [6, 7, 8], "lna_noise_rms": [1e-6, 2e-6, 4e-6]})
        picks = space.random(4, seed=1)
        assert len(picks) == 4
        assert len({p.describe() for p in picks}) == 4

    def test_random_returns_all_when_n_large(self):
        space = ParameterSpace({"n_bits": [6, 7]})
        assert len(space.random(100, seed=1)) == 2

    def test_random_deterministic(self):
        space = ParameterSpace({"n_bits": [6, 7, 8], "lna_noise_rms": [1e-6, 2e-6, 4e-6]})
        a = [p.describe() for p in space.random(3, seed=2)]
        b = [p.describe() for p in space.random(3, seed=2)]
        assert a == b

    def test_repr_mentions_size(self):
        assert "6 points" in repr(
            ParameterSpace({"n_bits": [6, 7, 8], "lna_noise_rms": [1e-6, 2e-6]})
        )


class TestCompositeSpace:
    def test_union_chains_grids(self):
        baseline = ParameterSpace({"use_cs": [False], "n_bits": [6, 8]})
        cs = ParameterSpace({"use_cs": [True], "n_bits": [8], "cs_m": [75, 150]})
        union = baseline | cs
        points = list(union.grid())
        assert len(points) == 4
        assert sum(p.use_cs for p in points) == 2

    def test_size(self):
        a = ParameterSpace({"n_bits": [6, 7]})
        b = ParameterSpace({"n_bits": [8]})
        assert (a | b).size == 3

    def test_nested_union(self):
        a = ParameterSpace({"n_bits": [6]})
        b = ParameterSpace({"n_bits": [7]})
        c = ParameterSpace({"n_bits": [8]})
        union = (a | b) | c
        assert union.size == 3
        assert len(union.spaces) == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CompositeSpace([])
