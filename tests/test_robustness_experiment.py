"""Tests of Monte-Carlo yield analysis (repro.faults.montecarlo + CLI exp)."""

import pytest

from repro.core.explorer import FrontEndEvaluator
from repro.core.telemetry import RunManifest, Telemetry
from repro.faults import (
    FaultSuite,
    GainDrift,
    MonteCarloYield,
    PacketLoss,
    SampleDropout,
    YieldResult,
)
from repro.power.technology import DesignPoint
from tests.test_explorer import FS, small_corpus

SUITE = FaultSuite(
    entries=(
        ("lna", GainDrift(severity=1.0)),
        ("sample_hold", SampleDropout(severity=1.0)),
        ("transmitter", PacketLoss(severity=1.0)),
    )
)
POINTS = {
    "baseline": DesignPoint(n_bits=8, lna_noise_rms=2e-6),
    "cs": DesignPoint(n_bits=8, lna_noise_rms=8e-6, use_cs=True, cs_m=150),
}


def make_runner(**overrides):
    evaluator = FrontEndEvaluator(small_corpus(), None, FS, seed=3)
    kwargs = dict(
        evaluators={name: evaluator for name in POINTS},
        points=POINTS,
        suite=SUITE,
        severities=(0.25, 1.0),
        n_realisations=2,
        metric="snr_db",
        max_degradation=6.0,
    )
    kwargs.update(overrides)
    return MonteCarloYield(**kwargs)


@pytest.fixture(scope="module")
def result():
    return make_runner().run()


class TestMonteCarloYield:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_runner(severities=())
        with pytest.raises(ValueError):
            make_runner(severities=(0.5, 2.0))
        with pytest.raises(ValueError):
            make_runner(n_realisations=0)

    def test_row_count_and_clean_references(self, result):
        assert len(result.rows) == len(POINTS) * 2 * 2
        assert set(result.clean) == set(POINTS)
        for value in result.clean.values():
            assert value == pytest.approx(value)  # finite

    def test_deterministic_across_runs(self, result):
        again = make_runner().run()
        assert again.summary() == result.summary()

    def test_yield_curve_shape(self, result):
        for chain in POINTS:
            curve = result.yield_curve(chain)
            assert [sev for sev, _ in curve] == [0.25, 1.0]
            for _, y in curve:
                assert 0.0 <= y <= 1.0

    def test_degradation_grows_with_severity(self, result):
        # Mean degradation at full severity should not be below the
        # low-severity mean for either chain (among finite realisations).
        for chain in POINTS:
            low = result.degradation_stats(chain, 0.25)
            high = result.degradation_stats(chain, 1.0)
            if low["n"] and high["n"]:
                assert high["mean"] >= low["mean"] - 1e-9

    def test_as_table_mentions_every_chain_and_severity(self, result):
        table = result.as_table()
        for chain in POINTS:
            assert chain in table
        assert "0.25" in table and "1.00" in table

    def test_summary_is_json_ready(self, result):
        import json

        payload = json.loads(json.dumps(result.summary()))
        assert payload["metric"] == "snr_db"
        assert set(payload["yield_curves"]) == set(POINTS)

    def test_telemetry_counters(self):
        tel = Telemetry()
        make_runner().run(telemetry=tel)
        # Faulted evaluations only; the per-chain clean references are
        # accounted separately.
        assert tel.counters["robustness.evaluations"] == len(POINTS) * 2 * 2
        assert tel.counters["faults.applied"] > 0


class TestRobustnessExperiment:
    @pytest.fixture(scope="class")
    def smoke(self):
        from repro.experiments.robustness import run_robustness

        return run_robustness(
            scale="smoke", severities=(0.5,), n_realisations=1
        )

    def test_smoke_run_covers_both_chains(self, smoke):
        assert isinstance(smoke, YieldResult)
        assert sorted(smoke.chains()) == ["baseline", "cs"]
        assert smoke.metric == "accuracy"

    def test_render_contains_verdicts(self, smoke):
        from repro.experiments.robustness import render_robustness

        text = render_robustness(smoke)
        assert "baseline" in text and "cs" in text
        assert "yield" in text.lower()

    def test_manifest_round_trip(self, smoke):
        from repro.experiments.robustness import build_robustness_manifest

        tel = Telemetry()
        tel.count("faults.applied", 3)
        manifest = build_robustness_manifest(smoke, telemetry=tel, scale="smoke")
        assert manifest.robustness["counters"]["faults_applied"] == 3
        import json

        # Simulate a disk round trip (tuples become JSON lists).
        restored = RunManifest.from_dict(json.loads(json.dumps(manifest.to_dict())))
        assert restored.robustness["yield_curves"] == {
            chain: [list(pair) for pair in smoke.yield_curve(chain)]
            for chain in smoke.chains()
        }
