"""Cheap real-data tests of the figure-analysis modules.

The benchmarks run these at full sweep size; here the analyses are
exercised on a miniature real sweep (smoke harness, 6 points) so their
logic is covered inside the fast test suite too.
"""

import pytest

from repro.core.explorer import DesignSpaceExplorer
from repro.core.parameters import ParameterSpace
from repro.experiments.fig7 import analyze_fig7
from repro.experiments.fig8 import analyze_fig8
from repro.experiments.fig9 import analyze_fig9
from repro.experiments.fig10 import analyze_fig10
from repro.experiments.runner import make_harness


@pytest.fixture(scope="module")
def mini_sweep():
    harness = make_harness("smoke")
    space = ParameterSpace(
        {"use_cs": [False], "lna_noise_rms": [2e-6, 20e-6], "n_bits": [6, 8]}
    ) | ParameterSpace(
        {
            "use_cs": [True],
            "lna_noise_rms": [8e-6],
            "n_bits": [8],
            "cs_m": [75, 150],
        }
    )
    return DesignSpaceExplorer(harness.evaluator).explore(space, name="mini")


class TestFig7OnRealData:
    def test_fronts_nonempty(self, mini_sweep):
        result = analyze_fig7(mini_sweep, min_accuracy=0.5)
        assert result.accuracy_front_baseline
        assert result.accuracy_front_cs
        assert result.snr_front_baseline
        assert result.snr_front_cs

    def test_cs_cheapest_point_cheaper_than_baseline(self, mini_sweep):
        result = analyze_fig7(mini_sweep, min_accuracy=0.5)
        min_cs = min(e.metric("power_uw") for e in result.cs)
        min_base = min(e.metric("power_uw") for e in result.baseline)
        assert min_cs < min_base

    def test_power_saving_positive(self, mini_sweep):
        result = analyze_fig7(mini_sweep, min_accuracy=0.5)
        assert result.power_saving is not None
        assert result.power_saving > 1.0


class TestFig8OnRealData:
    def test_breakdown_extracted(self, mini_sweep):
        result = analyze_fig8(mini_sweep, min_accuracy=0.5)
        assert result.delta_uw("transmitter") < 0
        assert result.delta_uw("cs_encoder") > 0
        assert "total" in result.savings_table()


class TestFig9OnRealData:
    def test_cs_area_larger(self, mini_sweep):
        result = analyze_fig9(mini_sweep)
        assert result.area_ratio() > 2.0

    def test_render(self, mini_sweep):
        text = analyze_fig9(mini_sweep).render()
        assert "baseline" in text
        assert "cs" in text


class TestFig10OnRealData:
    def test_caps_partition_architectures(self, mini_sweep):
        result = analyze_fig10(mini_sweep, area_caps=(500.0, 5000.0))
        assert not result.fronts[0].contains_cs()
        assert result.fronts[1].contains_cs()

    def test_min_power_drops_with_relaxed_cap(self, mini_sweep):
        result = analyze_fig10(mini_sweep, area_caps=(500.0, 5000.0))
        assert result.fronts[1].min_power_uw < result.fronts[0].min_power_uw
