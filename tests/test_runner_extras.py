"""Extra coverage of the experiment runner and harness plumbing."""

import numpy as np
import pytest

from repro.experiments.runner import (
    F_SAMPLE,
    SCALES,
    ExperimentScale,
    _shrink,
    make_harness,
    run_search_space,
)
from repro.cs.dictionaries import dct_basis


class TestShrink:
    def test_keeps_requested_fraction(self, rng):
        records = rng.normal(size=(2, 2 * 384))
        psi = dct_basis(384)
        out = _shrink(records, 0.1, psi)
        frames = out.reshape(2, -1, 384) @ psi
        k = int(0.1 * 384)
        for record in frames.reshape(-1, 384):
            # Threshold above float64 matmul round-off (~1e-13 absolute).
            floor = 1e-9 * np.max(np.abs(record))
            assert np.count_nonzero(np.abs(record) > floor) <= k + 1

    def test_preserves_energy_mostly(self, rng):
        # Compressible content survives shrinkage nearly intact.
        t = np.arange(2 * 384) / F_SAMPLE
        records = np.sin(2 * np.pi * 10 * t)[None, :]
        out = _shrink(records, 0.1, dct_basis(384))
        assert np.linalg.norm(out) > 0.95 * np.linalg.norm(records)


class TestScalesConsistency:
    @pytest.mark.parametrize("name", sorted(SCALES))
    def test_samples_are_whole_frames(self, name):
        scale = SCALES[name]
        assert scale.samples_per_record == scale.frames_per_record * 384

    @pytest.mark.parametrize("name", sorted(SCALES))
    def test_record_fits_source_duration(self, name):
        # Truncated records must fit inside the 23.6 s source records
        # after resampling to f_sample.
        scale = SCALES[name]
        available = int(23.6 * 173.61 * F_SAMPLE / 173.61)
        assert scale.samples_per_record <= available

    def test_scales_strictly_ordered_in_size(self):
        smoke, small, paper = SCALES["smoke"], SCALES["small"], SCALES["paper"]
        assert smoke.n_eval_records < small.n_eval_records < paper.n_eval_records
        assert smoke.samples_per_record < small.samples_per_record <= paper.samples_per_record

    def test_custom_scale_dataclass(self):
        scale = ExperimentScale(
            name="tiny",
            n_eval_records=4,
            n_train_records=4,
            frames_per_record=2,
            noise_values_uv=(5.0,),
            n_bits_values=(8,),
            cs_m_values=(150,),
            fista_iters=20,
        )
        assert scale.samples_per_record == 768


class TestSweepCaching:
    def test_sweep_cached_per_scale(self):
        first = run_search_space("smoke")
        second = run_search_space("smoke")
        assert first is second

    def test_harness_and_sweep_consistent(self):
        harness = make_harness("smoke")
        sweep = run_search_space("smoke")
        # Sweep point count = baseline grid + CS grid of the smoke scale.
        scale = harness.scale
        expected = len(scale.noise_values_uv) * len(scale.n_bits_values) * (
            1 + len(scale.cs_m_values)
        )
        assert len(sweep) == expected
