"""Golden-regression suite: headline numbers locked to tests/goldens/.

Each test recomputes one golden fresh and compares it to the stored JSON
under the tolerance recorded *in the stored file*.  A failure means a
code change moved a paper-facing number -- either fix the regression or,
if the change is intentional, regenerate with
``python -m repro.testing.refresh_goldens`` and commit the JSON diff.

The Fig. 7a golden is replayed on both the serial and the batched
executor, so it doubles as an end-to-end equivalence lock between the
scalar and vectorised engines.
"""

import json

import pytest

from repro.testing.goldens import (
    GOLDEN_NAMES,
    compare_to_golden,
    compute_golden,
    default_goldens_dir,
    load_golden,
    write_golden,
)


def assert_matches_golden(name: str, **kwargs) -> None:
    golden = load_golden(name)
    fresh = compute_golden(name, **kwargs)
    mismatches = compare_to_golden(golden, fresh)
    assert not mismatches, (
        f"golden {name!r} drifted ({len(mismatches)} mismatch(es)); if "
        "intentional, run `python -m repro.testing.refresh_goldens`:\n"
        + "\n".join(mismatches)
    )


def test_all_goldens_are_committed():
    for name in GOLDEN_NAMES:
        golden = load_golden(name)
        assert golden["name"] == name
        assert "payload" in golden and "tolerance" in golden


def test_table1_matches_golden():
    assert_matches_golden("table1")


def test_table2_matches_golden():
    assert_matches_golden("table2")


@pytest.mark.parametrize("executor", ["serial", "batched"])
def test_fig7a_matches_golden(executor):
    assert_matches_golden("fig7a", executor=executor)


class TestGoldenMachinery:
    def test_roundtrip(self, tmp_path):
        golden = compute_golden("table2")
        path = write_golden(golden, tmp_path)
        assert path == tmp_path / "table2.json"
        assert load_golden("table2", tmp_path) == json.loads(path.read_text())

    def test_missing_golden_names_refresh_command(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="refresh_goldens"):
            load_golden("table2", tmp_path)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="no golden"):
            compute_golden("figure-99")

    def test_compare_detects_numeric_drift(self):
        golden = {
            "name": "demo",
            "tolerance": {"rtol": 1e-9},
            "payload": {"total_w": 1.0, "label": "x"},
        }
        ok = {"payload": {"total_w": 1.0 + 1e-12, "label": "x"}}
        assert compare_to_golden(golden, ok) == []
        drifted = {"payload": {"total_w": 1.001, "label": "x"}}
        assert any("total_w" in m for m in compare_to_golden(golden, drifted))

    def test_compare_detects_structural_drift(self):
        golden = {
            "name": "demo",
            "tolerance": {"rtol": 0.0},
            "payload": {"rows": [1.0, 2.0], "label": "x"},
        }
        assert any(
            "length" in m
            for m in compare_to_golden(golden, {"payload": {"rows": [1.0], "label": "x"}})
        )
        assert any(
            "label" in m
            for m in compare_to_golden(golden, {"payload": {"rows": [1.0, 2.0], "label": "y"}})
        )

    def test_exact_tolerance_rejects_any_float_change(self):
        golden = {"name": "demo", "tolerance": {"rtol": 0.0}, "payload": {"v": 1.0}}
        assert compare_to_golden(golden, {"payload": {"v": 1.0}}) == []
        assert compare_to_golden(golden, {"payload": {"v": 1.0 + 1e-15}})

    def test_refresh_cli_writes_requested_subset(self, tmp_path):
        from repro.testing.refresh_goldens import main

        assert main(["--only", "table1", "table2", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "table1.json").exists()
        assert (tmp_path / "table2.json").exists()
        assert not (tmp_path / "fig7a.json").exists()
        # The freshly written table goldens match the committed ones.
        for name in ("table1", "table2"):
            committed = load_golden(name, default_goldens_dir())
            assert load_golden(name, tmp_path) == committed
