"""Shared-memory corpus transport: handles, lifetime, end-to-end parity."""

import pickle

import numpy as np
import pytest

from repro.core.explorer import DesignSpaceExplorer, FrontEndEvaluator
from repro.core.shm import SharedArray, SharedArrayPool, shm_enabled
from repro.core.telemetry import Telemetry
from repro.power.technology import DesignPoint

F_SAMPLE = 2.1 * 256.0


def small_corpus(n_records=2, frames=1):
    rng = np.random.default_rng(9)
    return rng.normal(0.0, 20e-6, size=(n_records, frames * 384))


class TestSharedArray:
    def test_pickle_roundtrip_is_a_handle(self):
        data = np.random.default_rng(0).normal(size=(64, 32))
        shared = SharedArray.create(data)
        try:
            blob = pickle.dumps(shared)
            assert len(blob) < 512  # (name, shape, dtype), not the bytes
            restored = pickle.loads(blob)
            np.testing.assert_array_equal(restored.array, data)
        finally:
            shared.close(unlink=True)

    def test_view_is_read_only(self):
        shared = SharedArray.create(np.zeros(8))
        try:
            handle = pickle.loads(pickle.dumps(shared))
            view = handle.array
            with pytest.raises(ValueError):
                view[0] = 1.0
        finally:
            shared.close(unlink=True)

    def test_view_survives_dropped_handle(self):
        # Regression: the attached segment must outlive the transient
        # unpickled handle — numpy's buffer reference does not keep the
        # mmap alive, so dropping the handle used to unmap the pages
        # under the view (segfault).
        data = np.random.default_rng(1).normal(size=(128, 64))
        shared = SharedArray.create(data)
        try:
            view = pickle.loads(pickle.dumps(shared)).array
            import gc

            gc.collect()
            np.testing.assert_array_equal(view, data)
        finally:
            shared.close(unlink=True)

    def test_non_contiguous_input_is_published_contiguously(self):
        data = np.arange(64, dtype=np.float64).reshape(8, 8)[:, ::2]
        shared = SharedArray.create(data)
        try:
            np.testing.assert_array_equal(shared.array, data)
        finally:
            shared.close(unlink=True)


class TestSharedArrayPool:
    def test_context_manager_unlinks_segments(self):
        with SharedArrayPool() as pool:
            handle = pool.share(np.ones(16))
            name = handle.name
            assert len(pool) == 1 and pool.nbytes == 16 * 8
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_shm_enabled_env_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert shm_enabled()
        monkeypatch.setenv("REPRO_SHM", "0")
        assert not shm_enabled()
        monkeypatch.setenv("REPRO_SHM", "off")
        assert not shm_enabled()
        monkeypatch.setenv("REPRO_SHM", "1")
        assert shm_enabled()


class TestEvaluatorTransport:
    def test_armed_pickle_carries_handle_not_corpus(self):
        records = small_corpus(8, 4)
        evaluator = FrontEndEvaluator(records, None, F_SAMPLE, seed=3)
        with SharedArrayPool() as pool:
            armed = evaluator.shared_transport(pool)
            blob = pickle.dumps(armed)
            assert len(blob) < records.nbytes / 10
            restored = pickle.loads(blob)
            np.testing.assert_array_equal(restored.records, records)

    def test_armed_evaluator_unchanged_in_process(self):
        records = small_corpus()
        evaluator = FrontEndEvaluator(records, None, F_SAMPLE, seed=3)
        with SharedArrayPool() as pool:
            armed = evaluator.shared_transport(pool)
            assert armed.records is evaluator.records
            point = DesignPoint(n_bits=8, lna_noise_rms=2e-6)
            assert (
                armed.evaluate(point).metrics == evaluator.evaluate(point).metrics
            )

    def test_roundtripped_evaluator_evaluates_identically(self):
        records = small_corpus()
        evaluator = FrontEndEvaluator(records, None, F_SAMPLE, seed=3)
        point = DesignPoint(n_bits=8, lna_noise_rms=2e-6)
        reference = evaluator.evaluate(point)
        with SharedArrayPool() as pool:
            armed = evaluator.shared_transport(pool)
            restored = pickle.loads(pickle.dumps(armed))
            assert restored.evaluate(point).metrics == reference.metrics

    def test_plain_pickle_still_works_unarmed(self):
        # Evaluators that never went through shared_transport keep the
        # ordinary bytes-in-pickle transport (fork pools, checkpoints).
        records = small_corpus()
        evaluator = FrontEndEvaluator(records, None, F_SAMPLE, seed=3)
        restored = pickle.loads(pickle.dumps(evaluator))
        np.testing.assert_array_equal(restored.records, records)


class TestProcessSweepParity:
    def _space(self):
        return [
            DesignPoint(n_bits=8, lna_noise_rms=2e-6),
            DesignPoint(n_bits=10, lna_noise_rms=4e-6),
        ]

    def test_process_sweep_with_shm_matches_serial(self):
        records = small_corpus()
        serial = DesignSpaceExplorer(
            FrontEndEvaluator(records, None, F_SAMPLE, seed=3)
        ).explore(self._space())
        tel = Telemetry()
        shm = DesignSpaceExplorer(
            FrontEndEvaluator(records, None, F_SAMPLE, seed=3)
        ).explore(self._space(), executor="process", n_workers=2, telemetry=tel)
        for a, b in zip(serial.evaluations, shm.evaluations):
            assert a.metrics == b.metrics
        assert tel.counters.get("shm.segments", 0) >= 1
        assert tel.counters.get("shm.bytes", 0) == records.nbytes

    def test_process_sweep_with_shm_disabled_matches_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        records = small_corpus()
        serial = DesignSpaceExplorer(
            FrontEndEvaluator(records, None, F_SAMPLE, seed=3)
        ).explore(self._space())
        tel = Telemetry()
        plain = DesignSpaceExplorer(
            FrontEndEvaluator(records, None, F_SAMPLE, seed=3)
        ).explore(self._space(), executor="process", n_workers=2, telemetry=tel)
        for a, b in zip(serial.evaluations, plain.evaluations):
            assert a.metrics == b.metrics
        assert tel.counters.get("shm.segments", 0) == 0

    def test_driver_evaluator_restored_after_sweep(self):
        records = small_corpus()
        evaluator = FrontEndEvaluator(records, None, F_SAMPLE, seed=3)
        explorer = DesignSpaceExplorer(evaluator)
        explorer.explore(self._space(), executor="process", n_workers=2)
        # The armed clone is transport-only state: the driver's evaluator
        # is put back once the pool is done.
        assert explorer.evaluator is evaluator
        assert not hasattr(explorer.evaluator, "_shm_records")
