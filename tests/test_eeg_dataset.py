"""Tests of the EEG record/dataset containers."""

import numpy as np
import pytest

from repro.eeg.dataset import NON_SEIZURE, SEIZURE, EegDataset, EegRecord


def make_record(label=NON_SEIZURE, n=256, rate=100.0, rid="r0"):
    return EegRecord(
        data=np.random.default_rng(hash(rid) % 2**32).normal(size=n),
        sample_rate=rate,
        label=label,
        record_id=rid,
    )


def make_dataset(n_records=10, seizure_every=5):
    records = [
        make_record(
            label=SEIZURE if i % seizure_every == 0 else NON_SEIZURE, rid=f"r{i}"
        )
        for i in range(n_records)
    ]
    return EegDataset(records)


class TestEegRecord:
    def test_duration(self):
        assert make_record(n=200, rate=100.0).duration == pytest.approx(2.0)

    def test_is_seizure(self):
        assert make_record(label=SEIZURE).is_seizure
        assert not make_record(label=NON_SEIZURE).is_seizure

    def test_rejects_bad_label(self):
        with pytest.raises(ValueError):
            make_record(label=2)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            EegRecord(np.zeros((2, 2)), 100.0, 0, "x")


class TestEegDataset:
    def test_len_iter_getitem(self):
        ds = make_dataset(10)
        assert len(ds) == 10
        assert ds[0].record_id == "r0"
        assert len(list(ds)) == 10

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EegDataset([])

    def test_rejects_mixed_rates(self):
        with pytest.raises(ValueError, match="mixed"):
            EegDataset([make_record(rate=100.0), make_record(rate=200.0, rid="r1")])

    def test_labels_and_fraction(self):
        ds = make_dataset(10, seizure_every=5)
        labels = ds.labels()
        assert labels.sum() == 2
        assert ds.seizure_fraction() == pytest.approx(0.2)

    def test_subset_preserves_order(self):
        ds = make_dataset(10)
        sub = ds.subset([3, 7])
        assert [r.record_id for r in sub] == ["r3", "r7"]

    def test_split_is_stratified(self):
        ds = make_dataset(20, seizure_every=4)  # 5 seizures
        train, test = ds.split(0.6, seed=1)
        assert len(train) + len(test) == 20
        assert train.labels().sum() == 3
        assert test.labels().sum() == 2

    def test_split_deterministic(self):
        ds = make_dataset(20)
        a_train, _ = ds.split(0.5, seed=3)
        b_train, _ = ds.split(0.5, seed=3)
        assert [r.record_id for r in a_train] == [r.record_id for r in b_train]

    def test_split_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            make_dataset().split(1.0)

    def test_stacked_shape(self):
        ds = make_dataset(5)
        assert ds.stacked().shape == (5, 256)

    def test_stacked_truncation(self):
        ds = make_dataset(5)
        assert ds.stacked(100).shape == (5, 100)

    def test_stacked_rejects_too_long(self):
        with pytest.raises(ValueError):
            make_dataset(5).stacked(1000)
