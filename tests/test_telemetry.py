"""Tests of the telemetry subsystem and its sweep/simulator integration."""

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.explorer import DesignSpaceExplorer
from repro.core.parameters import ParameterSpace
from repro.core.results import Evaluation
from repro.core.telemetry import (
    MANIFEST_SCHEMA_VERSION,
    NULL,
    NullTelemetry,
    RunManifest,
    Stats,
    Telemetry,
    activate,
    get_active,
    set_active,
)
from repro.metrics.snr import snr_vs_reference
from repro.power.technology import DesignPoint
from repro.util.rng import derive_seed

from tests.test_parallel_explorer import FailingEvaluator, ToyEvaluator, smoke_grid

EXECUTORS = ["serial", "thread", "process"]


class TestStats:
    def test_aggregates(self):
        stats = Stats()
        for value in (1.0, 3.0, 2.0):
            stats.add(value)
        assert stats.count == 3
        assert stats.total == 6.0
        assert stats.mean == 2.0
        assert stats.min == 1.0
        assert stats.max == 3.0

    def test_empty_to_dict_is_json_safe(self):
        payload = Stats().to_dict()
        assert payload["mean"] is None and payload["min"] is None
        json.dumps(payload)  # no infinities leak into JSON


class TestTelemetry:
    def test_counters_accumulate(self):
        tel = Telemetry()
        tel.count("hits")
        tel.count("hits", 2)
        assert tel.counters["hits"] == 3

    def test_span_records_wall_time(self):
        tel = Telemetry()
        with tel.span("region"):
            pass
        assert tel.spans["region"].count == 1
        assert tel.spans["region"].total >= 0.0

    def test_record_values(self):
        tel = Telemetry()
        tel.record("latency", 0.5)
        tel.record("latency", 1.5)
        assert tel.values["latency"].mean == 1.0

    def test_events_bounded(self):
        tel = Telemetry(max_events=2)
        for i in range(5):
            tel.event("tick", i=i)
        assert len(tel.events) == 2
        assert tel.counters["telemetry.events_dropped"] == 3

    def test_summary_lists_everything(self):
        tel = Telemetry()
        tel.count("explore.cache_hits", 4)
        with tel.span("explore.total"):
            pass
        tel.record("point_seconds", 0.25)
        text = tel.summary()
        assert "explore.cache_hits" in text
        assert "explore.total" in text
        assert "point_seconds" in text

    def test_empty_summary(self):
        assert "nothing recorded" in Telemetry().summary()

    def test_timers_prefix_stripping(self):
        tel = Telemetry()
        with tel.span("block.lna"):
            pass
        with tel.span("explore.total"):
            pass
        assert set(tel.timers("block.")) == {"lna"}

    def test_snapshot_round_trips_through_json(self):
        tel = Telemetry()
        tel.count("c")
        tel.record("v", 1.0)
        with tel.span("s"):
            pass
        tel.event("e", detail="x")
        restored = json.loads(json.dumps(tel.snapshot()))
        assert restored["counters"]["c"] == 1
        assert restored["events"][0]["kind"] == "e"

    def test_thread_safety_under_concurrent_recording(self):
        from concurrent.futures import ThreadPoolExecutor

        tel = Telemetry()

        def hammer(_):
            for _ in range(500):
                tel.count("n")
                tel.record("v", 1.0)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(hammer, range(4)))
        assert tel.counters["n"] == 2000
        assert tel.values["v"].count == 2000


class TestNullTelemetry:
    def test_disabled_hooks_record_nothing(self):
        tel = NullTelemetry()
        tel.count("c")
        tel.record("v", 1.0)
        with tel.span("s"):
            pass
        tel.event("e")
        assert not tel.counters and not tel.values and not tel.spans and not tel.events
        assert tel.enabled is False

    def test_null_span_is_shared(self):
        tel = NullTelemetry()
        assert tel.span("a") is tel.span("b")


class TestAmbient:
    def test_default_is_null(self):
        assert get_active() is NULL

    def test_activate_scopes_and_restores(self):
        tel = Telemetry()
        with activate(tel) as active:
            assert active is tel
            assert get_active() is tel
        assert get_active() is NULL

    def test_set_active_none_means_null(self):
        previous = set_active(None)
        try:
            assert get_active() is NULL
        finally:
            set_active(previous)


class TestExplorerTelemetry:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_per_point_latency_and_progress(self, executor):
        tel = Telemetry()
        explorer = DesignSpaceExplorer(ToyEvaluator())
        space = smoke_grid()
        result = explorer.explore(space, executor=executor, n_workers=2, telemetry=tel)
        assert len(result) == space.size
        assert tel.values["explore.point_seconds"].count == space.size
        progress = [e for e in tel.events if e["kind"] == "explore.progress"]
        assert len(progress) == space.size
        # Events follow completion order, but `done` is cumulative.
        assert [e["done"] for e in progress] == list(range(1, space.size + 1))
        assert all(e["total"] == space.size for e in progress)
        assert all(e["eta_s"] is None or e["eta_s"] >= 0.0 for e in progress)

    def test_cache_hits_and_misses_counted(self, tmp_path):
        space = smoke_grid()
        explorer = DesignSpaceExplorer(ToyEvaluator())
        explorer.explore(space, cache=tmp_path / "cache")

        tel = Telemetry()
        explorer.explore(space, cache=tmp_path / "cache", telemetry=tel)
        assert tel.counters["explore.cache_hits"] == space.size
        assert "explore.cache_misses" not in tel.counters

        tel_miss = Telemetry()
        explorer.explore(space, cache=tmp_path / "fresh", telemetry=tel_miss)
        assert tel_miss.counters["explore.cache_misses"] == space.size

    def test_checkpoint_restores_counted(self, tmp_path):
        space = smoke_grid()
        ckpt = tmp_path / "sweep.jsonl"
        explorer = DesignSpaceExplorer(ToyEvaluator())
        explorer.explore(space, checkpoint=ckpt)
        tel = Telemetry()
        explorer.explore(space, checkpoint=ckpt, telemetry=tel)
        assert tel.counters["explore.checkpoint_restored"] == space.size

    def test_failures_counted(self):
        tel = Telemetry()
        explorer = DesignSpaceExplorer(FailingEvaluator(bad_bits=6))
        result = explorer.explore(smoke_grid(), telemetry=tel)
        assert tel.counters["explore.failures"] == len(result.failures()) > 0

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_results_identical_with_and_without_telemetry(self, executor):
        space = smoke_grid()
        explorer = DesignSpaceExplorer(ToyEvaluator())
        bare = explorer.explore(space, executor=executor, n_workers=2)
        observed = explorer.explore(
            space, executor=executor, n_workers=2, telemetry=Telemetry()
        )
        for left, right in zip(bare, observed):
            assert left.point.describe() == right.point.describe()
            assert left.metrics == right.metrics


class TestSimulatorTelemetry:
    def _run(self, with_telemetry: bool):
        from repro.blocks.chains import build_baseline_chain
        from repro.blocks.sources import sine
        from repro.core.simulator import Simulator

        point = DesignPoint(n_bits=8, lna_noise_rms=2e-6)
        chain = build_baseline_chain(point, seed=3)
        tone = sine(
            frequency=40.0,
            amplitude=0.9e-3,
            sample_rate=point.f_sample,
            n_samples=1536,
        )
        simulator = Simulator(chain, point, seed=1)
        if not with_telemetry:
            return simulator.run(tone), None
        tel = Telemetry()
        with activate(tel):
            return simulator.run(tone), tel

    def test_per_block_spans_and_throughput(self):
        _, tel = self._run(with_telemetry=True)
        assert tel.timers("block."), "expected per-block spans under active telemetry"
        assert tel.counters["simulate.runs"] == 1
        assert tel.counters["simulate.samples"] == 1536
        assert tel.values["simulate.samples_per_s"].count == 1

    def test_profiled_output_bit_identical(self):
        bare, _ = self._run(with_telemetry=False)
        observed, _ = self._run(with_telemetry=True)
        np.testing.assert_array_equal(bare.output.data, observed.output.data)


class TestReconstructionTelemetry:
    def test_solver_iterations_and_time_recorded(self):
        from repro.cs.dictionaries import dct_basis
        from repro.cs.reconstruction import Reconstructor

        rng = np.random.default_rng(0)
        phi = rng.normal(size=(16, 32))
        y = rng.normal(size=(4, 16))
        tel = Telemetry()
        with activate(tel):
            Reconstructor(basis=dct_basis(32), method="fista", n_iter=40).recover(phi, y)
        assert tel.counters["cs.fista.solves"] == 1
        assert tel.counters["cs.fista.frames"] == 4
        assert 1 <= tel.values["cs.fista.iterations"].max <= 40
        assert tel.values["cs.fista.solve_seconds"].count == 1
        assert "cs.recover.fista" in tel.spans


class TestRunManifest:
    def _sample(self):
        return RunManifest(
            command="sweep",
            created_unix=1754400000.0,
            seed=2022,
            scale="smoke",
            grid_size=18,
            executor="serial",
            n_workers=None,
            phases={"explore.total": 3.5},
            block_time_s={"lna": 0.1, "reconstruction": 2.9},
            block_power_w={"lna": 4e-8},
            sweep={"evaluated": 18, "failures": 0, "cache_hits": 0},
            eta_history=[{"kind": "explore.progress", "done": 18, "total": 18}],
            environment=RunManifest.describe_environment(),
        )

    def test_round_trip_exact(self, tmp_path):
        manifest = self._sample()
        path = manifest.save(tmp_path / "m.json")
        assert RunManifest.load(path) == manifest

    def test_schema_version_stamped(self, tmp_path):
        path = self._sample().save(tmp_path / "m.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == MANIFEST_SCHEMA_VERSION

    def test_wrong_schema_rejected(self):
        payload = self._sample().to_dict()
        payload["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            RunManifest.from_dict(payload)

    def test_unknown_keys_rejected(self):
        payload = self._sample().to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            RunManifest.from_dict(payload)

    def test_payload_is_plain_json(self, tmp_path):
        text = self._sample().save(tmp_path / "m.json").read_text()
        assert "Infinity" not in text and "NaN" not in text

    def test_build_run_manifest_from_toy_sweep(self):
        from repro.experiments.runner import build_run_manifest

        tel = Telemetry()
        explorer = DesignSpaceExplorer(ToyEvaluator())
        space = smoke_grid()
        sweep = explorer.explore(space, telemetry=tel)
        manifest = build_run_manifest(
            sweep, tel, "smoke", executor="serial", n_workers=None
        )
        assert manifest.scale == "smoke"
        assert manifest.grid_size == space.size
        assert manifest.sweep["evaluated"] == space.size
        assert manifest.sweep["failures"] == 0
        assert manifest.eta_history[-1]["done"] == space.size
        # Toy evaluations leave no block.* spans, so the manifest builder
        # re-profiles one representative point with the real harness and
        # the time breakdown is filled in even for this toy sweep.
        assert manifest.block_time_s
        RunManifest.from_dict(json.loads(json.dumps(manifest.to_dict())))


@dataclass(frozen=True)
class DeadChannelEvaluator:
    """Picklable evaluator producing an identically-zero processed stream."""

    n_samples: int = 64

    def __call__(self, point) -> Evaluation:
        reference = np.ones(self.n_samples)
        processed = np.zeros(self.n_samples)
        return Evaluation(
            point=point,
            metrics={
                "snr_db": snr_vs_reference(reference, processed),
                "power_uw": float(derive_seed(0, point.describe()) % 100),
            },
        )


class TestDeadChannelAcrossExecutors:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_dead_channel_is_minus_inf_under_every_executor(self, executor):
        explorer = DesignSpaceExplorer(DeadChannelEvaluator())
        space = ParameterSpace({"n_bits": [6, 7, 8]})
        result = explorer.explore(space, executor=executor, n_workers=2)
        assert [e.metrics["snr_db"] for e in result] == [-np.inf] * 3
