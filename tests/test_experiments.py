"""Tests of the experiment modules (tables, fig4, harness plumbing).

The heavy Fig. 7-10 sweeps are exercised by the benchmarks; here we test
the analysis logic on synthetic sweeps and the cheap experiments for real.
"""

import numpy as np
import pytest

from repro.core.results import Evaluation, ExplorationResult
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig7 import analyze_fig7, max_quality, quality_at_power, render_front
from repro.experiments.fig8 import analyze_fig8
from repro.experiments.fig9 import analyze_fig9
from repro.experiments.fig10 import analyze_fig10
from repro.experiments.runner import SCALES, active_scale, augment_training_set, make_harness
from repro.experiments.table1 import TABLE1_COLUMNS, render_table1, verify_capability_evidence
from repro.experiments.table2 import power_model_rows, reference_operating_points, render_table2
from repro.experiments.table3 import paper_search_space, render_table3, space_summary
from repro.power.technology import DesignPoint


def fake_sweep():
    """A hand-built sweep with the paper's qualitative structure."""
    rows = [
        # (use_cs, power, snr, accuracy, area)
        (False, 20.0, 25.0, 0.99, 470, {"lna": 16e-6, "transmitter": 4.3e-6}),
        (False, 8.0, 24.0, 0.985, 470, {"lna": 4e-6, "transmitter": 4.3e-6}),
        (False, 5.0, 20.0, 0.97, 470, {"lna": 0.7e-6, "transmitter": 4.3e-6}),
        (False, 4.5, 15.0, 0.94, 470, {"lna": 0.2e-6, "transmitter": 4.3e-6}),
        (True, 6.0, 16.0, 1.0, 2900, {"lna": 3e-6, "transmitter": 1.7e-6, "cs_encoder": 0.6e-6}),
        (True, 2.5, 14.0, 0.99, 2900, {"lna": 0.2e-6, "transmitter": 1.7e-6, "cs_encoder": 0.6e-6}),
        (True, 1.5, 8.0, 0.95, 1700, {"lna": 0.05e-6, "transmitter": 0.85e-6, "cs_encoder": 0.6e-6}),
    ]
    evals = []
    for use_cs, power, snr, acc, area, breakdown in rows:
        point = DesignPoint(use_cs=use_cs, cs_m=150) if use_cs else DesignPoint()
        evals.append(
            Evaluation(
                point=point,
                metrics={
                    "power_uw": power,
                    "snr_db": snr,
                    "accuracy": acc,
                    "area_units": area,
                },
                breakdown=breakdown,
            )
        )
    return ExplorationResult(evals, name="fake")


class TestTable1:
    def test_three_columns(self):
        assert len(TABLE1_COLUMNS) == 3
        assert TABLE1_COLUMNS[-1].name == "EffiCSense"

    def test_efficsense_is_the_only_full_column(self):
        full = [
            p
            for p in TABLE1_COLUMNS
            if p.mixed_signal_modeling and p.power_modeling and not p.application_specific
        ]
        assert [p.name for p in full] == ["EffiCSense"]

    def test_render_contains_rows(self):
        text = render_table1()
        for row in ("Mixed-Signal Modeling", "Power Modeling", "Application Specific"):
            assert row in text

    def test_capability_evidence_importable(self):
        results = verify_capability_evidence()
        assert results
        assert all(results.values())


class TestTable2:
    def test_rows_for_both_architectures(self):
        points = reference_operating_points()
        baseline_rows = power_model_rows(points["baseline"])
        cs_rows = power_model_rows(points["cs"])
        assert {r.block for r in baseline_rows} >= {"lna", "transmitter", "dac"}
        assert "cs_encoder" in {r.block for r in cs_rows}
        assert "cs_encoder" not in {r.block for r in baseline_rows}

    def test_all_rows_nonnegative(self):
        for point in reference_operating_points().values():
            assert all(r.power_w >= 0 for r in power_model_rows(point))

    def test_render_contains_totals(self):
        assert "total" in render_table2()

    def test_paper_structure_tx_and_lna_dominate_baseline(self):
        rows = {r.block: r.power_w for r in power_model_rows(reference_operating_points()["baseline"])}
        total = sum(rows.values())
        assert (rows["transmitter"] + rows["lna"]) / total > 0.9


class TestTable3:
    def test_search_space_counts(self):
        summary = space_summary()
        # 8 noise x 3 bits = 24 baseline; x3 M values = 72 CS.
        assert summary["baseline_points"] == 24
        assert summary["cs_points"] == 72
        assert summary["total_points"] == 96

    def test_space_contains_both_architectures(self):
        points = list(paper_search_space().grid())
        assert any(p.use_cs for p in points)
        assert any(not p.use_cs for p in points)

    def test_custom_sweep_values(self):
        space = paper_search_space(noise_values_uv=(5.0,), n_bits_values=(8,), cs_m_values=(75,))
        points = list(space.grid())
        assert len(points) == 2  # one baseline + one CS

    def test_render_mentions_table_rows(self):
        text = render_table3()
        for symbol in ("C_logic", "E_bit", "BW_LNA", "f_clk"):
            assert symbol in text


class TestFig4:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig4(noise_values_uv=(1.0, 4.0, 12.0, 20.0), n_samples=4096)

    def test_sndr_monotone_decreasing(self, rows):
        sndrs = [row.sndr_db for row in rows]
        assert all(a >= b - 0.5 for a, b in zip(sndrs, sndrs[1:]))
        assert sndrs[0] > sndrs[-1] + 5

    def test_power_decreasing_then_flat(self, rows):
        powers = [row.power_uw for row in rows]
        assert powers[0] > 3 * powers[-1]

    def test_dominance_shifts_from_lna_to_tx(self, rows):
        assert rows[0].dominant_block() == "lna"
        assert rows[-1].dominant_block() == "transmitter"

    def test_breakdown_sums_to_total(self, rows):
        for row in rows:
            assert sum(row.breakdown_uw.values()) == pytest.approx(row.power_uw, rel=1e-6)


class TestFig7Analysis:
    def test_optimal_points(self):
        result = analyze_fig7(fake_sweep())
        assert result.optimal_baseline.metric("power_uw") == 8.0
        assert result.optimal_cs.metric("power_uw") == 2.5
        assert result.power_saving == pytest.approx(3.2)

    def test_fronts_sorted_by_power(self):
        result = analyze_fig7(fake_sweep())
        for front in (result.accuracy_front_baseline, result.accuracy_front_cs):
            powers = [e.metric("power_uw") for e in front]
            assert powers == sorted(powers)

    def test_summary_text(self):
        text = analyze_fig7(fake_sweep()).summary()
        assert "baseline" in text
        assert "power saving" in text

    def test_render_front(self):
        result = analyze_fig7(fake_sweep())
        text = render_front(result.accuracy_front_cs, "accuracy")
        assert "power" in text

    def test_quality_helpers(self):
        result = analyze_fig7(fake_sweep())
        assert max_quality(result.snr_front_baseline, "snr_db") == 25.0
        assert quality_at_power(result.cs.evaluations, "accuracy", 3.0) == 0.99
        assert quality_at_power(result.cs.evaluations, "accuracy", 0.1) is None


class TestFig8Analysis:
    def test_savings_structure(self):
        result = analyze_fig8(fake_sweep())
        # TX and LNA savings, encoder increase -- the paper's reading.
        assert result.delta_uw("transmitter") < 0
        assert result.delta_uw("lna") < 0
        assert result.delta_uw("cs_encoder") > 0

    def test_savings_table_renders(self):
        text = analyze_fig8(fake_sweep()).savings_table()
        assert "cs_encoder" in text
        assert "total" in text

    def test_infeasible_raises(self):
        sweep = ExplorationResult(
            [Evaluation(DesignPoint(), {"power_uw": 1.0, "accuracy": 0.5, "area_units": 1})]
        )
        with pytest.raises(ValueError, match="feasible"):
            analyze_fig8(sweep)


class TestFig9Analysis:
    def test_cs_larger_area(self):
        result = analyze_fig9(fake_sweep())
        assert result.area_ratio() > 3.0
        assert result.median_area("cs") > result.median_area("baseline")

    def test_scatter_pairs(self):
        result = analyze_fig9(fake_sweep())
        assert len(result.scatter("baseline")) == 4
        assert len(result.scatter("cs")) == 3

    def test_single_architecture_rejected(self):
        sweep = ExplorationResult(
            [Evaluation(DesignPoint(), {"power_uw": 1.0, "accuracy": 0.9, "area_units": 1})]
        )
        with pytest.raises(ValueError):
            analyze_fig9(sweep)


class TestFig10Analysis:
    def test_tight_cap_excludes_cs(self):
        result = analyze_fig10(fake_sweep(), area_caps=(500.0, 5000.0))
        assert not result.fronts[0].contains_cs()
        assert result.fronts[1].contains_cs()

    def test_max_accuracy_non_decreasing_with_cap(self):
        result = analyze_fig10(fake_sweep(), area_caps=(500.0, 2000.0, 5000.0))
        accuracies = [a for a in result.max_accuracies() if a is not None]
        assert all(a <= b + 1e-12 for a, b in zip(accuracies, accuracies[1:]))

    def test_render(self):
        assert "area cap" in analyze_fig10(fake_sweep()).render()

    def test_requires_caps(self):
        with pytest.raises(ValueError):
            analyze_fig10(fake_sweep(), area_caps=())


class TestRunner:
    def test_scales_defined(self):
        assert set(SCALES) == {"smoke", "small", "paper"}
        assert SCALES["paper"].n_eval_records == 500
        assert SCALES["paper"].frames_per_record == 33

    def test_active_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert active_scale().name == "small"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            active_scale()

    def test_augmentation_multiplies_records(self, rng):
        records = rng.normal(size=(4, 2 * 384))
        labels = np.array([0, 1, 0, 1])
        augmented, aug_labels = augment_training_set(records, labels, seed=1)
        assert augmented.shape[0] == 4 * 4
        assert aug_labels.shape[0] == 4 * 4
        np.testing.assert_array_equal(augmented[:4], records)

    def test_smoke_harness_builds_and_caches(self):
        h1 = make_harness("smoke")
        h2 = make_harness("smoke")
        assert h1 is h2  # lru cache
        assert h1.records.shape == (
            SCALES["smoke"].n_eval_records,
            SCALES["smoke"].samples_per_record,
        )
        assert h1.detector.is_fitted

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            make_harness("enormous")
