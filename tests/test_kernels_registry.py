"""Unit tests for the kernel backend registry (selection, dispatch, ledger)."""

import numpy as np
import pytest

from repro.core.telemetry import Telemetry, set_active
from repro.kernels import (
    ENV_VAR,
    KERNEL_NAMES,
    REFERENCE_BACKEND,
    KernelBackend,
    KernelRegistry,
    UnknownBackendError,
    build_default_registry,
)
from repro.kernels import numpy_backend


def make_registry(*extra: KernelBackend) -> KernelRegistry:
    reg = KernelRegistry()
    reg.register(numpy_backend.make_backend())
    for backend in extra:
        reg.register(backend)
    return reg


def doubling_backend(name: str = "double", *, exact: bool = False) -> KernelBackend:
    """A fake backend whose fista visibly differs from the reference."""

    def fista(a, y2, lam, n_iter, tol):
        z, iters = numpy_backend.fista(a, y2, lam, n_iter, tol)
        return z * 2.0, iters

    return KernelBackend(name=name, kernels={"fista": fista}, exact=exact, rtol=1e-6)


class TestSelection:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        reg = make_registry()
        assert reg.requested() == REFERENCE_BACKEND
        assert reg.active("fista") == REFERENCE_BACKEND

    def test_env_var_selects(self, monkeypatch):
        reg = make_registry(doubling_backend())
        monkeypatch.setenv(ENV_VAR, "double")
        assert reg.requested() == "double"
        assert reg.active("fista") == "double"
        # Kernels the backend does not provide fall back per call.
        assert reg.active("omp") == REFERENCE_BACKEND

    def test_select_overrides_env(self, monkeypatch):
        reg = make_registry(doubling_backend())
        monkeypatch.setenv(ENV_VAR, "double")
        reg.select(REFERENCE_BACKEND)
        assert reg.requested() == REFERENCE_BACKEND
        reg.select(None)  # back to env
        assert reg.requested() == "double"

    def test_select_unknown_raises(self):
        reg = make_registry()
        with pytest.raises(UnknownBackendError, match="unknown kernel backend"):
            reg.select("cuda")

    def test_unknown_env_name_degrades_to_reference(self, monkeypatch):
        # Env vars are user input: a typo must not crash every worker.
        reg = make_registry()
        monkeypatch.setenv(ENV_VAR, "tpyo")
        assert reg.active("fista") == REFERENCE_BACKEND
        a = np.eye(3)
        z, _ = reg.call("fista", a, np.ones((1, 3)), 0.01, 10, 1e-9)
        assert z.shape == (1, 3)
        usage = reg.usage()["fista"]
        assert usage["fallback_calls"] == 1
        assert "tpyo" in usage["fallback_reason"]

    def test_use_backend_restores(self):
        reg = make_registry(doubling_backend())
        with reg.use_backend("double"):
            assert reg.requested() == "double"
        assert reg.requested() == REFERENCE_BACKEND

    def test_unavailable_backend_falls_back(self):
        missing = KernelBackend(
            name="ghost",
            kernels={},
            available=False,
            unavailable_reason="ghost is not installed",
        )
        reg = make_registry(missing)
        reg.select("ghost")
        assert reg.active("fista") == REFERENCE_BACKEND
        assert reg.active_is_exact()  # effectively the reference

    def test_unregister_reference_rejected(self):
        reg = make_registry()
        with pytest.raises(ValueError, match="reference backend"):
            reg.unregister(REFERENCE_BACKEND)


class TestDispatch:
    def test_call_routes_to_selected_backend(self):
        reg = make_registry(doubling_backend())
        a = np.eye(4)
        y2 = np.ones((1, 4))
        ref, _ = reg.call("fista", a, y2, 0.01, 50, 1e-9)
        with reg.use_backend("double"):
            doubled, _ = reg.call("fista", a, y2, 0.01, 50, 1e-9)
        np.testing.assert_allclose(doubled, ref * 2.0)

    def test_backend_error_demotes_and_falls_back(self):
        calls = {"n": 0}

        def broken(a, y2, lam, n_iter, tol):
            calls["n"] += 1
            raise RuntimeError("jit exploded")

        reg = make_registry(
            KernelBackend(name="broken", kernels={"fista": broken}, rtol=1e-6)
        )
        reg.select("broken")
        a = np.eye(3)
        y2 = np.ones((1, 3))
        z1, _ = reg.call("fista", a, y2, 0.01, 10, 1e-9)
        assert "jit exploded" in reg.usage()["fista"]["fallback_reason"]
        z2, _ = reg.call("fista", a, y2, 0.01, 10, 1e-9)
        assert np.all(np.isfinite(z1)) and np.array_equal(z1, z2)
        # Demoted after the first failure: the broken impl is not retried.
        assert calls["n"] == 1
        usage = reg.usage()["fista"]
        assert usage["backend"] == REFERENCE_BACKEND
        assert usage["errors"] == 1
        assert usage["fallback_calls"] == 2
        assert "demoted" in usage["fallback_reason"]

    def test_reregistering_clears_demotion(self):
        def broken(a, y2, lam, n_iter, tol):
            raise RuntimeError("boom")

        reg = make_registry(
            KernelBackend(name="flaky", kernels={"fista": broken}, rtol=1e-6)
        )
        reg.select("flaky")
        reg.call("fista", np.eye(2), np.ones((1, 2)), 0.01, 5, 1e-9)
        assert reg.active("fista") == REFERENCE_BACKEND
        reg.register(doubling_backend("flaky"))  # fixed build
        assert reg.active("fista") == "flaky"

    def test_telemetry_counters(self):
        tel = Telemetry()
        set_active(tel)
        try:
            def broken(a, y2, lam, n_iter, tol):
                raise RuntimeError("boom")

            reg = make_registry(
                KernelBackend(name="bad", kernels={"fista": broken}, rtol=1e-6)
            )
            reg.select("bad")
            reg.call("fista", np.eye(2), np.ones((1, 2)), 0.01, 5, 1e-9)
            counters = tel.snapshot()["counters"]
            assert counters["kernels.fista.numpy"] == 1
            assert counters["kernels.fallback"] == 1
            assert counters["kernels.backend_error"] == 1
        finally:
            set_active(None)


class TestLedgerAndManifest:
    def test_manifest_section_shape(self):
        reg = make_registry(doubling_backend())
        reg.call("fista", np.eye(2), np.ones((1, 2)), 0.01, 5, 1e-9)
        section = reg.manifest_section()
        assert section["requested"] == REFERENCE_BACKEND
        assert section["exact"] is True
        assert set(section["backends"]) == {REFERENCE_BACKEND, "double"}
        ref = section["backends"][REFERENCE_BACKEND]
        assert ref["exact"] is True
        assert set(ref["kernels"]) >= set(KERNEL_NAMES)
        assert section["usage"]["fista"]["calls"] == 1

    def test_manifest_records_fallback(self):
        reg = make_registry(doubling_backend())
        reg.select("double")
        reg.call("omp", np.eye(3), np.ones(3), 1, 0.0)
        usage = reg.manifest_section()["usage"]["omp"]
        assert usage["requested"] == "double"
        assert usage["backend"] == REFERENCE_BACKEND
        assert usage["fallback_calls"] == 1
        assert "does not implement" in usage["fallback_reason"]

    def test_reset_usage(self):
        reg = make_registry()
        reg.call("fista", np.eye(2), np.ones((1, 2)), 0.01, 5, 1e-9)
        assert reg.usage()
        reg.reset_usage()
        assert reg.usage() == {}


class TestCacheTag:
    def test_reference_and_exact_backends_share_keys(self):
        exact = doubling_backend("mirror", exact=True)
        reg = make_registry(exact)
        assert reg.cache_tag() == ""
        with reg.use_backend("mirror"):
            assert reg.cache_tag() == ""

    def test_tolerance_backend_qualifies_keys(self):
        reg = make_registry(doubling_backend())
        with reg.use_backend("double"):
            assert reg.cache_tag() == "kernels:double"
        assert reg.cache_tag() == ""


class TestDefaultRegistry:
    def test_builtin_backends_registered(self):
        reg = build_default_registry()
        names = [b.name for b in reg.backends()]
        assert names[0] == REFERENCE_BACKEND
        assert "numba" in names and "jax" in names

    def test_reference_covers_all_kernels(self):
        reg = build_default_registry()
        reference = reg.backend(REFERENCE_BACKEND)
        assert set(reference.kernels) == set(KERNEL_NAMES)
        assert reference.exact
