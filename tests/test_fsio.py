"""Tests of the durable file I/O primitives (atomic replace, locking)."""

import json
import os
import threading

import pytest

from repro.util.fsio import FileLock, atomic_write_json, atomic_write_text


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        returned = atomic_write_text(path, "hello")
        assert returned == path
        assert path.read_text() == "hello"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(path, "x")
        assert path.read_text() == "x"

    def test_crash_during_replace_keeps_previous_file(self, tmp_path, monkeypatch):
        """A crash between temp write and rename must leave the old file
        intact and parseable, and must not leak the temp file."""
        path = tmp_path / "out.json"
        atomic_write_text(path, json.dumps({"v": 1}))

        def exploding_replace(src, dst):
            raise OSError("simulated crash mid-rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(path, json.dumps({"v": 2}))
        monkeypatch.undo()
        assert json.loads(path.read_text()) == {"v": 1}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_crash_during_write_keeps_previous_file(self, tmp_path, monkeypatch):
        path = tmp_path / "out.json"
        atomic_write_text(path, json.dumps({"v": 1}))

        def exploding_fsync(fd):
            raise OSError("simulated full disk")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="full disk"):
            atomic_write_text(path, json.dumps({"v": 2}), fsync=True)
        monkeypatch.undo()
        assert json.loads(path.read_text()) == {"v": 1}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_fsync_path_still_writes(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "durable", fsync=True)
        assert path.read_text() == "durable"


class TestAtomicWriteJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"a": [1, 2], "b": "x"})
        assert json.loads(path.read_text()) == {"a": [1, 2], "b": "x"}

    def test_trailing_newline(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {})
        assert path.read_text().endswith("\n")


class TestFileLock:
    def test_context_manager_acquires_and_releases(self, tmp_path):
        target = tmp_path / "ledger.json"
        with FileLock(target):
            assert (tmp_path / "ledger.json.lock").exists()
        # Lock file is deliberately left behind (no ghost-inode race).
        assert (tmp_path / "ledger.json.lock").exists()

    def test_reentrant_within_one_instance(self, tmp_path):
        lock = FileLock(tmp_path / "t")
        with lock:
            with lock:
                pass

    def test_serialises_concurrent_read_modify_write(self, tmp_path):
        """N threads, each on its own FileLock instance, increment a
        counter file; without mutual exclusion updates are lost."""
        target = tmp_path / "counter.json"
        target.write_text("0")
        n_threads, n_iters = 8, 25

        def worker():
            for _ in range(n_iters):
                with FileLock(target):
                    value = int(target.read_text())
                    atomic_write_text(target, str(value + 1))

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert int(target.read_text()) == n_threads * n_iters
