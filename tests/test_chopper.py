"""Tests of the chopper-stabilisation block."""

import numpy as np
import pytest

from repro.blocks.chopper import Chopper
from repro.blocks.sources import sine
from repro.core.block import SimulationContext
from repro.core.signal import Signal


def run_block(block, signal, seed=0):
    return block.process(signal, SimulationContext(seed=seed))


class TestChopper:
    def test_residual_noise_scale(self):
        chopper = Chopper(flicker_rms=20e-6, suppression=20.0)
        out = run_block(chopper, Signal(np.zeros(100_000), 1000.0))
        assert np.std(out.data) == pytest.approx(1e-6, rel=0.05)

    def test_suppression_one_injects_full_flicker(self):
        chopper = Chopper(flicker_rms=20e-6, suppression=1.0)
        out = run_block(chopper, Signal(np.zeros(100_000), 1000.0))
        assert np.std(out.data) == pytest.approx(20e-6, rel=0.05)

    def test_noise_is_pink(self):
        chopper = Chopper(flicker_rms=1e-3, suppression=1.0)
        out = run_block(chopper, Signal(np.zeros(2**16), 1000.0))
        spectrum = np.abs(np.fft.rfft(out.data)) ** 2
        freqs = np.fft.rfftfreq(2**16, 1 / 1000.0)
        low = spectrum[(freqs > 1) & (freqs < 5)].mean()
        high = spectrum[(freqs > 200) & (freqs < 400)].mean()
        assert low > 10 * high

    def test_signal_passes_through(self):
        chopper = Chopper(flicker_rms=1e-9, suppression=20.0)
        tone = sine(frequency=50.0, amplitude=1.0, sample_rate=1000.0, n_samples=2048)
        out = run_block(chopper, tone)
        np.testing.assert_allclose(out.data, tone.data, atol=1e-6)

    def test_deterministic_per_seed(self):
        chopper = Chopper(flicker_rms=1e-3)
        sig = Signal(np.zeros(256), 1000.0)
        a = run_block(chopper, sig, seed=1).data
        b = run_block(chopper, sig, seed=1).data
        np.testing.assert_array_equal(a, b)

    def test_power_model(self, baseline_point):
        chopper = Chopper(flicker_rms=1e-6, chop_ratio=8)
        power = chopper.power(baseline_point)["chopper"]
        expected = 4 * 1e-15 * 4.0 * 8 * baseline_point.f_sample
        assert power == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            Chopper(flicker_rms=0.0)
        with pytest.raises(ValueError):
            Chopper(flicker_rms=1e-6, suppression=0.5)
        with pytest.raises(ValueError):
            Chopper(flicker_rms=1e-6, chop_ratio=0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            run_block(Chopper(flicker_rms=1e-6), Signal(np.zeros((2, 2)), 100.0))

    def test_in_chain_improves_flicker_limited_sndr(self, baseline_point):
        from repro.blocks.chains import build_baseline_chain
        from repro.core.simulator import Simulator
        from repro.metrics.snr import sndr_sine

        flicker = 8e-6
        tone = sine(
            frequency=40.0,
            amplitude=0.9 * baseline_point.v_fs / 2 / baseline_point.lna_gain,
            sample_rate=baseline_point.f_sample,
            n_samples=8192,
        )
        unchopped = build_baseline_chain(baseline_point, seed=1)
        unchopped.insert_before("lna", Chopper(flicker, suppression=1.0, name="raw"))
        chopped = build_baseline_chain(baseline_point, seed=1)
        chopped.insert_before("lna", Chopper(flicker, suppression=20.0))
        sndr_raw = sndr_sine(
            Simulator(unchopped, baseline_point, seed=3).run(tone).tap("adc").data
        )
        sndr_chopped = sndr_sine(
            Simulator(chopped, baseline_point, seed=3).run(tone).tap("adc").data
        )
        assert sndr_chopped > sndr_raw + 3.0
