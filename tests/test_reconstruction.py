"""Tests of the sparse reconstruction solvers (OMP, ISTA, FISTA)."""

import numpy as np
import pytest

from repro.cs.dictionaries import dct_basis
from repro.cs.matrices import gaussian, srbm_balanced
from repro.cs.reconstruction import (
    Reconstructor,
    fista,
    ista,
    least_squares_on_support,
    omp,
)


def sparse_problem(m=32, n=128, k=5, seed=0, noise=0.0):
    """A standard K-sparse recovery instance."""
    rng = np.random.default_rng(seed)
    a = gaussian(m, n, seed=seed).phi
    x = np.zeros(n)
    support = rng.choice(n, size=k, replace=False)
    x[support] = rng.normal(size=k) + np.sign(rng.normal(size=k))
    y = a @ x
    if noise > 0:
        y = y + rng.normal(0, noise, size=m)
    return a, x, y, support


class TestLeastSquaresOnSupport:
    def test_exact_on_true_support(self):
        a, x, y, support = sparse_problem()
        x_hat = least_squares_on_support(a, y, np.sort(support))
        np.testing.assert_allclose(x_hat, x, atol=1e-10)

    def test_empty_support_returns_zero(self):
        a, _, y, _ = sparse_problem()
        assert np.all(least_squares_on_support(a, y, np.array([], dtype=int)) == 0)


class TestOmp:
    def test_exact_recovery_noiseless(self):
        a, x, y, _ = sparse_problem(k=5)
        x_hat = omp(a, y, sparsity=5)
        np.testing.assert_allclose(x_hat, x, atol=1e-8)

    def test_recovers_support(self):
        a, x, y, support = sparse_problem(k=4, seed=3)
        x_hat = omp(a, y, sparsity=4)
        assert set(np.flatnonzero(x_hat)) == set(support)

    def test_early_exit_on_tolerance(self):
        a, x, y, _ = sparse_problem(k=3, seed=1)
        x_hat = omp(a, y, sparsity=30, tol=1e-10)
        assert np.count_nonzero(x_hat) <= 5

    def test_zero_measurement_returns_zero(self):
        a, *_ = sparse_problem()
        assert np.all(omp(a, np.zeros(a.shape[0]), sparsity=3) == 0)

    def test_sparsity_capped_at_m(self):
        a, _, y, _ = sparse_problem(m=16, n=64, k=3, seed=2)
        x_hat = omp(a, y, sparsity=10_000)
        assert np.count_nonzero(x_hat) <= 16

    def test_robust_to_moderate_noise(self):
        a, x, y, _ = sparse_problem(k=4, seed=5, noise=0.01)
        x_hat = omp(a, y, sparsity=4)
        nmse = np.sum((x - x_hat) ** 2) / np.sum(x**2)
        assert nmse < 0.05

    def test_shape_validation(self):
        a, *_ = sparse_problem()
        with pytest.raises(ValueError):
            omp(a, np.zeros(7), sparsity=3)


class TestIsta:
    def test_converges_to_sparse_solution(self):
        a, x, y, _ = sparse_problem(k=4, seed=2)
        # tol=0 disables the update-size early exit: ISTA's O(1/k) steps
        # shrink below any tolerance long before reaching the optimum.
        z = ista(a, y, lam=3e-3, n_iter=5000, tol=0.0)
        nmse = np.sum((x - z) ** 2) / np.sum(x**2)
        assert nmse < 0.02

    def test_large_lambda_gives_zero(self):
        a, _, y, _ = sparse_problem()
        lam = 10 * np.max(np.abs(a.T @ y))
        assert np.all(ista(a, y, lam=lam, n_iter=50) == 0)

    def test_batched_matches_single(self):
        a, _, y, _ = sparse_problem(seed=4)
        single = ista(a, y, lam=1e-3, n_iter=200)
        batched = ista(a, np.stack([y, y]), lam=1e-3, n_iter=200)
        np.testing.assert_allclose(batched[0], single, atol=1e-12)
        np.testing.assert_allclose(batched[1], single, atol=1e-12)


class TestFista:
    def test_exact_recovery_small_lambda(self):
        a, x, y, _ = sparse_problem(k=4, seed=2)
        z = fista(a, y, lam=1e-4, n_iter=2000)
        nmse = np.sum((x - z) ** 2) / np.sum(x**2)
        assert nmse < 1e-3

    def test_faster_than_ista(self):
        """FISTA must reach a better objective than ISTA at equal budget."""
        a, _, y, _ = sparse_problem(k=6, seed=7)
        lam = 1e-3

        def objective(z):
            return 0.5 * np.sum((y - a @ z) ** 2) + lam * np.sum(np.abs(z))

        budget = 60
        z_ista = ista(a, y, lam=lam, n_iter=budget, tol=0.0)
        z_fista = fista(a, y, lam=lam, n_iter=budget, tol=0.0)
        assert objective(z_fista) <= objective(z_ista) + 1e-12

    def test_batch_consistency(self, rng):
        a, _, _, _ = sparse_problem(seed=9)
        ys = rng.normal(size=(6, a.shape[0]))
        batched = fista(a, ys, lam=1e-3, n_iter=150)
        for i in range(6):
            single = fista(a, ys[i], lam=1e-3, n_iter=150)
            np.testing.assert_allclose(batched[i], single, atol=1e-10)

    def test_output_rank_matches_input(self):
        a, _, y, _ = sparse_problem()
        assert fista(a, y, lam=1e-3, n_iter=10).ndim == 1
        assert fista(a, np.stack([y]), lam=1e-3, n_iter=10).ndim == 2

    def test_debias_refits_support(self):
        a, x, y, _ = sparse_problem(k=4, seed=2)
        biased = fista(a, y, lam=5e-3, n_iter=600)
        debiased = fista(a, y, lam=5e-3, n_iter=600, debias=True)
        err_biased = np.sum((x - biased) ** 2)
        err_debiased = np.sum((x - debiased) ** 2)
        assert err_debiased <= err_biased * 1.01

    def test_rejects_wrong_length(self):
        a, *_ = sparse_problem()
        with pytest.raises(ValueError):
            fista(a, np.zeros(a.shape[0] + 1), lam=1e-3)

    def test_rejects_bad_lambda(self):
        a, _, y, _ = sparse_problem()
        with pytest.raises(ValueError):
            fista(a, y, lam=0.0)


class TestReconstructor:
    def test_recovers_dct_sparse_signal(self):
        n = 128
        psi = dct_basis(n)
        alpha = np.zeros(n)
        alpha[[2, 9, 30]] = [1.0, -0.7, 0.4]
        x = psi @ alpha
        mat = srbm_balanced(48, n, 2, seed=3)
        from repro.cs.charge_sharing import ChargeSharingConfig, ChargeSharingEncoder

        enc = ChargeSharingEncoder(
            mat, ChargeSharingConfig(c_sample=2e-15, c_hold=16e-15, kt=0.0), seed=1
        )
        y = enc.encode(x)
        rec = Reconstructor(basis=psi, method="fista", lam_rel=0.002, n_iter=600)
        x_hat = rec.recover(enc.phi_effective, y)
        nmse = np.sum((x - x_hat) ** 2) / np.sum(x**2)
        assert nmse < 1e-3

    def test_omp_method(self):
        n = 128
        psi = dct_basis(n)
        alpha = np.zeros(n)
        alpha[[4, 17]] = [1.0, 0.5]
        x = psi @ alpha
        mat = srbm_balanced(48, n, 2, seed=3)
        rec = Reconstructor(basis=psi, method="omp", sparsity=4)
        x_hat = rec.recover(mat.phi, mat.phi @ x)
        nmse = np.sum((x - x_hat) ** 2) / np.sum(x**2)
        assert nmse < 1e-6

    def test_identity_basis_when_none(self):
        a, x, y, _ = sparse_problem(k=3, seed=11)
        rec = Reconstructor(basis=None, method="fista", lam_rel=0.001, n_iter=800)
        x_hat = rec.recover(a, y)
        assert np.sum((x - x_hat) ** 2) / np.sum(x**2) < 0.01

    def test_batch_shape(self):
        a, _, y, _ = sparse_problem()
        rec = Reconstructor(basis=None, n_iter=20)
        out = rec.recover(a, np.stack([y, y, y]))
        assert out.shape == (3, a.shape[1])

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            Reconstructor(method="lars")


class TestIht:
    def test_exact_recovery(self):
        # IHT needs a stronger RIP than OMP/FISTA: use a comfortable
        # measurement count (m = n/2) where projected gradient is reliable.
        a, x, y, support = sparse_problem(m=64, k=4, seed=2)
        from repro.cs.reconstruction import iht

        z = iht(a, y, sparsity=4, n_iter=500)
        nmse = np.sum((x - z) ** 2) / np.sum(x**2)
        assert nmse < 1e-4
        assert set(np.flatnonzero(z)) == set(support)

    def test_output_exactly_k_sparse(self):
        from repro.cs.reconstruction import iht

        a, _, y, _ = sparse_problem(k=6, seed=3)
        z = iht(a, y, sparsity=6, n_iter=100)
        assert np.count_nonzero(z) <= 6

    def test_batched_matches_single(self, rng):
        from repro.cs.reconstruction import iht

        a, _, _, _ = sparse_problem(seed=4)
        ys = rng.normal(size=(4, a.shape[0]))
        batched = iht(a, ys, sparsity=5, n_iter=100)
        for i in range(4):
            np.testing.assert_allclose(
                batched[i], iht(a, ys[i], sparsity=5, n_iter=100), atol=1e-12
            )

    def test_rejects_oversparse(self):
        from repro.cs.reconstruction import iht

        a, _, y, _ = sparse_problem()
        with pytest.raises(ValueError):
            iht(a, y, sparsity=10_000)

    def test_reconstructor_iht_method(self):
        from repro.cs.reconstruction import Reconstructor

        a, x, y, _ = sparse_problem(m=64, k=3, seed=8)
        rec = Reconstructor(basis=None, method="iht", sparsity=3, n_iter=300)
        x_hat = rec.recover(a, y)
        assert np.sum((x - x_hat) ** 2) / np.sum(x**2) < 1e-3


class TestEffectiveDictionaryCache:
    """Regression: the A = Phi_eff @ Psi cache must key on content, not
    id() -- identity does not survive pickling into pool workers."""

    def problem(self):
        rng = np.random.default_rng(3)
        phi = rng.normal(size=(16, 32))
        basis = np.linalg.qr(rng.normal(size=(32, 32)))[0]
        y = rng.normal(size=(4, 16))
        return phi, basis, y

    def test_equal_content_hits_cache(self):
        phi, basis, y = self.problem()
        recon = Reconstructor(basis=basis, method="fista", n_iter=20)
        first = recon.recover(phi, y)
        cached_a = next(iter(recon._cache.values()))
        second = recon.recover(phi.copy(), y)  # different object, same bytes
        assert next(iter(recon._cache.values())) is cached_a  # no recompute
        np.testing.assert_array_equal(first, second)

    def test_changed_content_recomputed(self):
        phi, basis, y = self.problem()
        recon = Reconstructor(basis=basis, method="fista", n_iter=20)
        recon.recover(phi, y)
        key_before = next(iter(recon._cache))
        recon.recover(phi * 2.0, y)
        assert next(iter(recon._cache)) != key_before

    def test_cache_survives_pickling(self):
        import pickle

        phi, basis, y = self.problem()
        recon = Reconstructor(basis=basis, method="fista", n_iter=20)
        expected = recon.recover(phi, y)
        clone = pickle.loads(pickle.dumps(recon))
        np.testing.assert_array_equal(clone.recover(phi, y), expected)
        # The unpickled copy's cache still matches by content.
        assert next(iter(clone._cache)) == next(iter(recon._cache))

    def test_non_contiguous_phi_handled(self):
        phi, basis, y = self.problem()
        recon = Reconstructor(basis=basis, method="fista", n_iter=20)
        strided = np.asfortranarray(phi)
        np.testing.assert_allclose(
            recon.recover(strided, y), recon.recover(phi, y)
        )
