"""Property and stress tests of telemetry merging and Welford statistics."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.telemetry import Stats, Telemetry

SETTINGS = {"max_examples": 25, "deadline": None}

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


@st.composite
def snapshots(draw):
    """A random TelemetrySnapshot built through the real recording hooks."""
    tel = Telemetry()
    for name in draw(st.lists(st.sampled_from("abc"), max_size=5)):
        tel.count(name, draw(st.integers(-5, 5)))
    for name in ("v1", "v2"):
        for value in draw(st.lists(finite, max_size=15)):
            tel.record(name, value)
    for value in draw(
        st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=10)
    ):
        tel.observe("h", value)
    for i in range(draw(st.integers(0, 3))):
        tel.event("e", i=i)
    return tel.to_snapshot()


def merged(snaps) -> Telemetry:
    tel = Telemetry()
    for snap in snaps:
        tel.merge(snap)
    return tel


def assert_same_aggregates(left: Telemetry, right: Telemetry) -> None:
    assert left.counters == right.counters
    assert set(left.values) == set(right.values)
    for name in left.values:
        a, b = left.values[name], right.values[name]
        assert a.count == b.count
        assert a.total == pytest.approx(b.total)
        assert a.min == b.min and a.max == b.max
        assert a.m2 == pytest.approx(b.m2, rel=1e-9, abs=1e-6)
    assert set(left.histograms) == set(right.histograms)
    for name in left.histograms:
        assert left.histograms[name].counts == right.histograms[name].counts
    assert len(left.events) == len(right.events)


class TestMergeLaws:
    @settings(**SETTINGS)
    @given(first=snapshots(), second=snapshots())
    def test_merge_commutative(self, first, second):
        assert_same_aggregates(merged([first, second]), merged([second, first]))

    @settings(**SETTINGS)
    @given(first=snapshots(), second=snapshots(), third=snapshots())
    def test_merge_associative(self, first, second, third):
        left = Telemetry()
        left.merge(merged([first, second]).to_snapshot())
        left.merge(third)
        right = Telemetry()
        right.merge(first)
        right.merge(merged([second, third]).to_snapshot())
        assert_same_aggregates(left, right)

    @settings(**SETTINGS)
    @given(snapshot=snapshots())
    def test_merge_into_empty_is_identity(self, snapshot):
        tel = merged([snapshot])
        assert tel.counters == snapshot.counters
        for name, stats in snapshot.values.items():
            assert tel.values[name].count == stats.count
            assert tel.values[name].total == stats.total


class TestDrainDiscipline:
    def test_drained_deltas_sum_to_the_full_stream(self):
        worker = Telemetry()
        driver = Telemetry()
        values = np.random.default_rng(0).normal(size=30)
        for chunk in np.split(values, 3):  # three chunk-sized deltas
            for value in chunk:
                worker.count("n")
                worker.record("v", value)
            driver.merge(worker.drain_snapshot(label="worker-1"))
        assert driver.counters["n"] == 30
        assert driver.values["v"].count == 30
        assert driver.values["v"].total == pytest.approx(values.sum())
        assert driver.values["v"].stddev == pytest.approx(values.std(ddof=1))
        # Per-worker attribution saw every merge and the full counter sum.
        assert driver.workers["worker-1"]["merges"] == 3
        assert driver.workers["worker-1"]["counters"]["n"] == 30
        # The worker is empty after draining: nothing double-counts.
        assert not worker.counters and not worker.values

    def test_merge_respects_event_bound(self):
        worker = Telemetry()
        for i in range(10):
            worker.event("tick", i=i)
        driver = Telemetry(max_events=4)
        driver.merge(worker.to_snapshot())
        assert len(driver.events) == 4
        assert driver.counters["telemetry.events_dropped"] == 6
        assert "WARNING" in driver.summary()
        assert "max_events=4" in driver.summary()


class TestConcurrentMerging:
    def test_no_lost_increments_under_thread_hammer(self):
        source = Telemetry()
        source.count("n", 1)
        source.record("v", 2.0)
        snapshot = source.to_snapshot()
        driver = Telemetry()

        def hammer():
            for _ in range(50):
                driver.merge(snapshot)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert driver.counters["n"] == 400
        assert driver.values["v"].count == 400
        assert driver.values["v"].total == pytest.approx(800.0)

    def test_concurrent_recording_and_merging(self):
        driver = Telemetry()
        source = Telemetry()
        source.count("merged.n")
        snapshot = source.to_snapshot()

        def record():
            for _ in range(200):
                driver.count("direct.n")
                driver.record("v", 1.0)

        def merge():
            for _ in range(200):
                driver.merge(snapshot)

        threads = [threading.Thread(target=fn) for fn in (record, merge, record, merge)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert driver.counters["direct.n"] == 400
        assert driver.counters["merged.n"] == 400
        assert driver.values["v"].count == 400


class TestWelford:
    def test_stddev_matches_numpy(self):
        values = np.random.default_rng(3).normal(5.0, 2.0, size=1000)
        stats = Stats()
        for value in values:
            stats.add(value)
        assert stats.mean == pytest.approx(values.mean())
        assert stats.stddev == pytest.approx(values.std(ddof=1))

    def test_small_counts_are_nan_and_json_safe(self):
        import json
        import math

        stats = Stats()
        stats.add(1.0)
        assert math.isnan(stats.stddev)
        payload = stats.to_dict()
        assert payload["stddev"] is None
        json.dumps(payload, allow_nan=False)

    def test_split_merge_matches_whole_stream(self):
        values = np.random.default_rng(4).normal(size=101)
        whole = Stats()
        for value in values:
            whole.add(value)
        left, right = Stats(), Stats()
        for value in values[:40]:
            left.add(value)
        for value in values[40:]:
            right.add(value)
        left.merge(right)
        assert left.count == whole.count
        assert left.total == pytest.approx(whole.total)
        assert left.stddev == pytest.approx(whole.stddev)

    def test_merge_with_empty_sides(self):
        stats = Stats()
        stats.add(2.0)
        stats.merge(Stats())  # empty right side: unchanged
        assert stats.count == 1
        empty = Stats()
        empty.merge(stats)  # empty left side: adopts
        assert empty.count == 1 and empty.total == 2.0

    def test_summary_shows_stddev_column(self):
        tel = Telemetry()
        tel.record("v", 1.0)
        tel.record("v", 3.0)
        assert "stddev" in tel.summary()
