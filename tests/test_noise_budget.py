"""Tests of the analytical noise budget, cross-checked against simulation."""

import numpy as np
import pytest

from repro.blocks.chains import build_baseline_chain
from repro.blocks.sources import sine
from repro.core.simulator import Simulator
from repro.metrics.snr import snr_vs_reference
from repro.power.noise_budget import NoiseBudget, noise_budget, required_noise_floor
from repro.power.technology import DesignPoint


class TestNoiseBudget:
    def test_total_is_rss(self):
        budget = NoiseBudget(3e-6, 4e-6, 0.0, 0.0)
        assert budget.total == pytest.approx(5e-6)

    def test_fractions_sum_to_one(self, baseline_point):
        budget = noise_budget(baseline_point)
        assert sum(budget.fractions().values()) == pytest.approx(1.0)

    def test_dominant_is_lna_at_low_resolution_gain(self):
        point = DesignPoint(n_bits=8, lna_noise_rms=10e-6)
        assert noise_budget(point).dominant() == "lna"

    def test_quantization_dominates_at_low_bits_low_noise(self):
        point = DesignPoint(n_bits=6, lna_noise_rms=1e-6)
        assert noise_budget(point).dominant() == "quantization"

    def test_quantization_value(self, baseline_point):
        budget = noise_budget(baseline_point)
        lsb = 2.0 / 256
        assert budget.quantization_noise == pytest.approx(lsb / np.sqrt(12) / 1000)

    def test_snr_prediction_formula(self):
        budget = NoiseBudget(5e-6, 0.0, 0.0, 0.0)
        assert budget.snr_db(50e-6) == pytest.approx(20.0)

    def test_snr_rejects_bad_signal(self, baseline_point):
        with pytest.raises(ValueError):
            noise_budget(baseline_point).snr_db(0.0)

    def test_table_renders(self, baseline_point):
        text = noise_budget(baseline_point).as_table()
        assert "quantization" in text
        assert "total" in text

    def test_cs_uses_hold_cap(self, cs_point):
        budget = noise_budget(cs_point)
        expected = cs_point.technology.kt_c_noise_rms(
            cs_point.cs_hold_capacitance
        ) / cs_point.lna_gain
        assert budget.ktc_noise == pytest.approx(expected)


class TestAnalyticVsSimulated:
    """The analytical budget must predict the simulated chain's SNR."""

    @pytest.mark.parametrize("noise_uv", [2.0, 8.0, 20.0])
    def test_baseline_snr_matches_simulation(self, noise_uv):
        point = DesignPoint(n_bits=8, lna_noise_rms=noise_uv * 1e-6)
        amplitude = 0.45 * point.v_fs / point.lna_gain  # near full scale
        tone = sine(
            frequency=40.0,
            amplitude=amplitude,
            sample_rate=point.f_sample,
            n_samples=16384,
        )
        result = Simulator(build_baseline_chain(point, seed=1), point, seed=2).run(
            tone, record_taps=False
        )
        simulated = snr_vs_reference(tone.data, result.output.data)
        predicted = noise_budget(point).snr_db(amplitude / np.sqrt(2))
        assert simulated == pytest.approx(predicted, abs=1.5)

    def test_prediction_monotone_in_noise(self):
        signal = 50e-6
        snrs = [
            noise_budget(DesignPoint(lna_noise_rms=n * 1e-6)).snr_db(signal)
            for n in (1, 4, 16)
        ]
        assert snrs[0] > snrs[1] > snrs[2]


class TestRequiredNoiseFloor:
    def test_inverts_budget(self, baseline_point):
        signal = 0.7e-3
        floor = required_noise_floor(baseline_point, signal, target_snr_db=30.0)
        achieved = noise_budget(
            baseline_point.with_(lna_noise_rms=floor)
        ).snr_db(signal)
        assert achieved == pytest.approx(30.0, abs=0.01)

    def test_infeasible_target_raises(self):
        point = DesignPoint(n_bits=6)
        with pytest.raises(ValueError, match="increase n_bits"):
            required_noise_floor(point, signal_rms=50e-6, target_snr_db=60.0)

    def test_higher_target_needs_lower_floor(self, baseline_point):
        relaxed = required_noise_floor(baseline_point, 0.7e-3, 20.0)
        strict = required_noise_floor(baseline_point, 0.7e-3, 35.0)
        assert strict < relaxed

    def test_validation(self, baseline_point):
        with pytest.raises(ValueError):
            required_noise_floor(baseline_point, -1.0, 30.0)
        with pytest.raises(ValueError):
            required_noise_floor(baseline_point, 1.0, 0.0)
