"""Tests of the parallel/cached/resumable exploration backend."""

import json
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.core.execution import (
    EvaluationCache,
    SweepCheckpoint,
    chunk_pending,
    evaluator_fingerprint,
)
from repro.core.explorer import DesignSpaceExplorer
from repro.core.parameters import ParameterSpace
from repro.core.results import Evaluation
from repro.experiments.runner import SCALES
from repro.experiments.table3 import paper_search_space
from repro.power.technology import DesignPoint
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class ToyEvaluator:
    """Deterministic, picklable closed-form evaluator."""

    master_seed: int = 7

    def fingerprint(self) -> str:
        return f"toy:{self.master_seed}"

    def __call__(self, point) -> Evaluation:
        seed = derive_seed(self.master_seed, point.describe())
        return Evaluation(
            point=point,
            metrics={
                "power_uw": (seed % 10_000) / 1_000.0,
                "snr_db": (seed % 613) / 10.0,
            },
        )


@dataclass(frozen=True)
class FailingEvaluator:
    """Raises on a configured resolution, evaluates the rest."""

    bad_bits: int = 7

    def __call__(self, point) -> Evaluation:
        if point.n_bits == self.bad_bits:
            raise RuntimeError(f"cannot evaluate {point.n_bits}-bit points")
        return ToyEvaluator()(point)


@dataclass
class CountingEvaluator:
    """Counts serial in-process evaluations (for cache/resume tests)."""

    calls: list = field(default_factory=list)

    def fingerprint(self) -> str:
        return "counting"

    def __call__(self, point) -> Evaluation:
        self.calls.append(point.describe())
        return ToyEvaluator()(point)


def smoke_grid():
    scale = SCALES["smoke"]
    return paper_search_space(
        noise_values_uv=scale.noise_values_uv,
        n_bits_values=scale.n_bits_values,
        cs_m_values=scale.cs_m_values,
    )


def assert_sweeps_identical(expected, actual):
    assert len(expected) == len(actual)
    for left, right in zip(expected, actual):
        assert left.point.describe() == right.point.describe()
        assert left.metrics == right.metrics
        assert left.error == right.error


class TestParallelBitIdentity:
    def test_process_matches_serial_on_fig7_grid(self):
        explorer = DesignSpaceExplorer(ToyEvaluator())
        space = smoke_grid()
        serial = explorer.explore(space, name="s")
        parallel = explorer.explore(space, name="p", executor="process", n_workers=4)
        assert_sweeps_identical(serial, parallel)

    def test_thread_matches_serial(self):
        explorer = DesignSpaceExplorer(ToyEvaluator())
        space = smoke_grid()
        serial = explorer.explore(space)
        threaded = explorer.explore(space, executor="thread", n_workers=3)
        assert_sweeps_identical(serial, threaded)

    def test_process_matches_serial_real_evaluator(self):
        from repro.core.explorer import FrontEndEvaluator
        from tests.test_explorer import FS, small_corpus

        evaluator = FrontEndEvaluator(small_corpus(), None, FS, seed=3)
        explorer = DesignSpaceExplorer(evaluator)
        points = [
            DesignPoint(n_bits=8, lna_noise_rms=2e-6),
            DesignPoint(n_bits=8, lna_noise_rms=8e-6, use_cs=True, cs_m=150),
        ]
        serial = explorer.explore(points)
        parallel = explorer.explore(points, executor="process", n_workers=2)
        assert_sweeps_identical(serial, parallel)

    def test_chunk_size_does_not_change_results(self):
        explorer = DesignSpaceExplorer(ToyEvaluator())
        space = smoke_grid()
        serial = explorer.explore(space)
        chunked = explorer.explore(space, executor="process", n_workers=2, chunk_size=1)
        assert_sweeps_identical(serial, chunked)

    def test_unknown_executor_rejected(self):
        explorer = DesignSpaceExplorer(ToyEvaluator())
        with pytest.raises(ValueError, match="executor"):
            explorer.explore([DesignPoint()], executor="gpu")

    def test_progress_called_for_every_point(self):
        explorer = DesignSpaceExplorer(ToyEvaluator())
        space = smoke_grid()
        seen = []
        explorer.explore(
            space, executor="process", n_workers=2,
            progress=lambda i, e: seen.append(i),
        )
        assert sorted(seen) == list(range(space.size))


class TestFaultIsolation:
    def test_failed_point_recorded_not_raised(self):
        explorer = DesignSpaceExplorer(FailingEvaluator(bad_bits=7))
        space = ParameterSpace({"n_bits": [6, 7, 8]})
        result = explorer.explore(space)
        assert len(result) == 3
        assert result[1].error is not None
        assert "cannot evaluate 7-bit" in result[1].error
        assert result[1].metrics == {}
        assert result[0].ok and result[2].ok
        assert [e.point.n_bits for e in result.failures()] == [7]
        assert [e.point.n_bits for e in result.successes()] == [6, 8]

    def test_strict_reraises(self):
        explorer = DesignSpaceExplorer(FailingEvaluator(bad_bits=7))
        space = ParameterSpace({"n_bits": [6, 7, 8]})
        with pytest.raises(RuntimeError, match="7-bit"):
            explorer.explore(space, strict=True)

    def test_parallel_failures_isolated(self):
        explorer = DesignSpaceExplorer(FailingEvaluator(bad_bits=6))
        space = ParameterSpace({"n_bits": [6, 7, 8]})
        result = explorer.explore(space, executor="process", n_workers=2)
        assert [e.point.n_bits for e in result.failures()] == [6]

    def test_parallel_strict_reraises(self):
        explorer = DesignSpaceExplorer(FailingEvaluator(bad_bits=8))
        space = ParameterSpace({"n_bits": [6, 7, 8]})
        with pytest.raises(RuntimeError, match="8-bit"):
            explorer.explore(space, executor="process", n_workers=2, strict=True)

    def test_failed_points_excluded_from_analysis(self):
        explorer = DesignSpaceExplorer(FailingEvaluator(bad_bits=7))
        result = explorer.explore(ParameterSpace({"n_bits": [6, 7, 8]}))
        best = result.best(minimize="power_uw")
        assert best is not None and best.ok
        from repro.core.pareto import Objective

        front = result.pareto([Objective("power_uw"), Objective("snr_db", maximize=True)])
        assert front and all(e.ok for e in front)


class TestCheckpoint:
    def test_resume_skips_completed_points(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        space = ParameterSpace({"n_bits": [6, 7, 8], "lna_noise_rms": [2e-6, 8e-6]})
        first = CountingEvaluator()
        full = DesignSpaceExplorer(first).explore(space, checkpoint=path)
        assert len(first.calls) == 6
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 6

        # Simulate an interruption: keep only the first 4 completed lines.
        path.write_text("\n".join(lines[:4]) + "\n")
        second = CountingEvaluator()
        resumed = DesignSpaceExplorer(second).explore(space, checkpoint=path)
        assert len(second.calls) == 2  # only the missing points
        assert_sweeps_identical(full, resumed)
        # The checkpoint is complete again after the resume.
        assert len(path.read_text().strip().splitlines()) == 6

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        space = ParameterSpace({"n_bits": [6, 7, 8]})
        full = DesignSpaceExplorer(CountingEvaluator()).explore(space, checkpoint=path)
        with open(path, "a") as handle:
            handle.write('{"index": 99, "point": "trunc')  # killed mid-write
        second = CountingEvaluator()
        resumed = DesignSpaceExplorer(second).explore(space, checkpoint=path)
        assert len(second.calls) == 0
        assert_sweeps_identical(full, resumed)

    def test_stale_checkpoint_from_other_grid_ignored(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        DesignSpaceExplorer(CountingEvaluator()).explore(
            ParameterSpace({"n_bits": [6, 7]}), checkpoint=path
        )
        other = CountingEvaluator()
        DesignSpaceExplorer(other).explore(
            ParameterSpace({"lna_noise_rms": [2e-6, 8e-6]}), checkpoint=path
        )
        assert len(other.calls) == 2  # nothing restored from the stale file

    def test_parallel_sweep_checkpoints(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        explorer = DesignSpaceExplorer(ToyEvaluator())
        space = smoke_grid()
        result = explorer.explore(space, executor="process", n_workers=2, checkpoint=path)
        restored = SweepCheckpoint(path).load()
        assert len(restored) == len(result)
        for index, evaluation in restored.items():
            assert evaluation.metrics == result[index].metrics

    def test_checkpoint_restores_in_grid_order(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        space = ParameterSpace({"n_bits": [6, 7, 8]})
        explorer = DesignSpaceExplorer(ToyEvaluator())
        first = explorer.explore(space, checkpoint=path)
        # Shuffle the checkpoint lines: restore order must not matter.
        lines = path.read_text().strip().splitlines()
        path.write_text("\n".join(reversed(lines)) + "\n")
        resumed = explorer.explore(space, checkpoint=path)
        assert_sweeps_identical(first, resumed)


class TestEvaluationCache:
    def test_second_run_hits_cache(self, tmp_path):
        space = ParameterSpace({"n_bits": [6, 7, 8]})
        first = CountingEvaluator()
        run1 = DesignSpaceExplorer(first).explore(space, cache=tmp_path / "cache")
        assert len(first.calls) == 3
        second = CountingEvaluator()
        run2 = DesignSpaceExplorer(second).explore(space, cache=tmp_path / "cache")
        assert len(second.calls) == 0
        assert_sweeps_identical(run1, run2)

    def test_distinct_fingerprints_do_not_collide(self, tmp_path):
        space = ParameterSpace({"n_bits": [6, 7]})
        cache = EvaluationCache(tmp_path / "cache")
        DesignSpaceExplorer(ToyEvaluator(master_seed=1)).explore(space, cache=cache)
        other = DesignSpaceExplorer(ToyEvaluator(master_seed=2)).explore(space, cache=cache)
        fresh = DesignSpaceExplorer(ToyEvaluator(master_seed=2)).explore(space)
        assert_sweeps_identical(fresh, other)

    def test_failures_not_cached(self, tmp_path):
        cache = EvaluationCache(tmp_path / "cache")
        space = ParameterSpace({"n_bits": [6, 7, 8]})
        DesignSpaceExplorer(FailingEvaluator(bad_bits=7)).explore(space, cache=cache)
        assert len(cache) == 2  # only the two successes persisted
        recovered = DesignSpaceExplorer(ToyEvaluator()).explore(space, cache=cache)
        assert not recovered.failures()  # the failed point was retried

    def test_corrupt_cache_entry_ignored(self, tmp_path):
        cache_dir = tmp_path / "cache"
        space = ParameterSpace({"n_bits": [6, 7]})
        DesignSpaceExplorer(CountingEvaluator()).explore(space, cache=cache_dir)
        for entry in cache_dir.glob("*.json"):
            entry.write_text("{not json")
        retry = CountingEvaluator()
        DesignSpaceExplorer(retry).explore(space, cache=cache_dir)
        assert len(retry.calls) == 2

    def test_cache_round_trips_metrics_exactly(self, tmp_path):
        cache = EvaluationCache(tmp_path / "cache")
        point = DesignPoint(n_bits=8)
        evaluation = Evaluation(
            point=point, metrics={"power_uw": 1.2345678901234567e-3}
        )
        cache.put("fp", point, evaluation)
        loaded = cache.get("fp", point)
        assert loaded.metrics == evaluation.metrics

    def test_fingerprint_fallback_is_class_name(self):
        class Anonymous:
            def __call__(self, point):  # pragma: no cover - never invoked
                raise NotImplementedError

        assert "Anonymous" in evaluator_fingerprint(Anonymous())


class TestHelpers:
    def test_chunk_pending_covers_everything(self):
        pending = [(i, DesignPoint()) for i in range(10)]
        chunks = chunk_pending(pending, n_workers=3)
        flattened = [pair for chunk in chunks for pair in chunk]
        assert flattened == pending

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError, match="chunk_size"):
            chunk_pending([(0, DesignPoint())], n_workers=1, chunk_size=0)

    def test_checkpoint_line_format(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with SweepCheckpoint(path) as ckpt:
            ckpt.append(0, ToyEvaluator()(DesignPoint()))
        payload = json.loads(path.read_text())
        assert set(payload) == {"index", "point", "evaluation"}

    def test_front_end_evaluator_fingerprint_tracks_corpus(self):
        from repro.core.explorer import FrontEndEvaluator
        from tests.test_explorer import FS, small_corpus

        records = small_corpus()
        base = FrontEndEvaluator(records, None, FS, seed=1).fingerprint()
        same = FrontEndEvaluator(records.copy(), None, FS, seed=1).fingerprint()
        other_seed = FrontEndEvaluator(records, None, FS, seed=2).fingerprint()
        other_corpus = FrontEndEvaluator(records * 1.0001, None, FS, seed=1).fingerprint()
        assert base == same
        assert base != other_seed
        assert base != other_corpus


class TestProgressCallbackIsolation:
    """A raising progress callback must not kill a non-strict sweep."""

    @staticmethod
    def _raising_progress(index, evaluation):
        raise RuntimeError("observer exploded")

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_non_strict_sweep_survives_raising_callback(self, executor):
        from repro.core.telemetry import Telemetry

        space = smoke_grid()
        tel = Telemetry()
        explorer = DesignSpaceExplorer(ToyEvaluator())
        result = explorer.explore(
            space,
            progress=self._raising_progress,
            executor=executor,
            n_workers=2,
            telemetry=tel,
        )
        assert len(result) == space.size
        assert not result.failures()
        assert tel.counters["explore.progress_errors"] == space.size
        assert_sweeps_identical(explorer.explore(space), result)

    def test_strict_sweep_propagates_callback_error(self):
        explorer = DesignSpaceExplorer(ToyEvaluator())
        with pytest.raises(RuntimeError, match="observer exploded"):
            explorer.explore(
                smoke_grid(), progress=self._raising_progress, strict=True
            )


class TestBatchedCacheMirroring:
    """Cache hits mirrored into a checkpoint flush as one batch, not N."""

    def test_fully_cached_resume_pays_one_fsync(self, tmp_path, monkeypatch):
        import os as _os

        space = smoke_grid()
        explorer = DesignSpaceExplorer(ToyEvaluator())
        explorer.explore(space, cache=tmp_path / "cache")

        fsyncs = []
        real_fsync = _os.fsync
        monkeypatch.setattr(
            "repro.core.execution.os.fsync",
            lambda fd: (fsyncs.append(fd), real_fsync(fd))[1],
        )
        result = explorer.explore(
            space, cache=tmp_path / "cache", checkpoint=tmp_path / "resume.jsonl"
        )
        assert len(result) == space.size
        assert len(fsyncs) == 1, (
            f"{space.size} cache hits should mirror in one batched flush, "
            f"saw {len(fsyncs)} fsyncs"
        )

    def test_append_many_writes_every_entry(self, tmp_path):
        entries = [(i, ToyEvaluator()(DesignPoint(n_bits=b))) for i, b in enumerate((6, 7, 8))]
        path = tmp_path / "batch.jsonl"
        with SweepCheckpoint(path) as ckpt:
            ckpt.append_many(entries)
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert [json.loads(line)["index"] for line in lines] == [0, 1, 2]
