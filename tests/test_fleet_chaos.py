"""The chaos harness: deterministic fault injection against real fleets.

Every test here runs a real coordinator, real TCP sockets and real
forked worker processes, with faults scripted by
:class:`~repro.fleet.chaos.ChaosPlan` at the exact seams where
production fleets fail: SIGKILL mid-chunk, heartbeats silenced past the
lease deadline, sockets partitioned with a lease in hand, and the
coordinator itself killed mid-sweep.  The acceptance bar is the same
everywhere: the merged result is *identical* to a single-host serial
run -- zero lost points, zero double-finalised points -- and the fleet
report accounts for every recovery action taken.
"""

import pytest

from repro.core.explorer import DesignSpaceExplorer
from repro.core.telemetry import Telemetry
from repro.fleet import ChaosPlan, FleetOptions, seeded_plans
from tests.test_parallel_explorer import (
    ToyEvaluator,
    assert_sweeps_identical,
    smoke_grid,
)

#: Short leases so silence/expiry recovery happens at test speed.
FAST = dict(lease_timeout_s=1.0, heartbeat_interval_s=0.25)


def run_fleet(space, options, telemetry=None):
    explorer = DesignSpaceExplorer(ToyEvaluator())
    result = explorer.explore(
        space, executor="fleet", fleet=options, telemetry=telemetry
    )
    return result, explorer.last_fleet_report


class TestSeededPlans:
    def test_same_seed_same_plans(self):
        kwargs = dict(kill_fraction=0.4, silence_fraction=0.3, kill_after_points=2)
        assert seeded_plans(7, 6, **kwargs) == seeded_plans(7, 6, **kwargs)

    def test_different_seed_differs(self):
        kwargs = dict(kill_fraction=0.5, silence_fraction=0.5)
        assert seeded_plans(1, 8, **kwargs) != seeded_plans(2, 8, **kwargs)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            seeded_plans(1, 3, kill_fraction=0.8, silence_fraction=0.6)
        with pytest.raises(ValueError):
            seeded_plans(1, 3, kill_fraction=-0.1)

    def test_zero_fractions_are_benign(self):
        for plan in seeded_plans(3, 4):
            assert plan.kill_after_points is None
            assert plan.drop_heartbeats_on_chunk is None
            assert plan.partition_on_chunk is None


class TestWorkerChaos:
    def test_sigkilled_worker_is_recovered(self):
        """SIGKILL one worker mid-chunk: survivors absorb its leases."""
        space = smoke_grid()
        serial = DesignSpaceExplorer(ToyEvaluator()).explore(space, name="serial")
        tel = Telemetry()
        result, report = run_fleet(
            space,
            FleetOptions(
                spawn_workers=3,
                # Fair start: on a loaded (or single-core) host the
                # benign workers could otherwise drain the queue before
                # worker-0 gets the lease its chaos plan needs.
                wait_for_workers=3,
                chaos_plans=(ChaosPlan(kill_after_points=2),),
                **FAST,
            ),
            telemetry=tel,
        )
        assert_sweeps_identical(serial, result)
        assert report.points_completed == space.size
        assert report.points_quarantined == 0
        # The kill mid-chunk forced at least one recovery (the dropped
        # connection requeues immediately; a slow EOF expires instead).
        assert report.requeues + report.leases_expired >= 1
        actions = {
            event["action"] for event in tel.events if event["kind"] == "fleet.lease"
        }
        assert "grant" in actions
        assert "requeue" in actions

    def test_silent_worker_expires_and_late_completion_dedups(self):
        """Heartbeats dropped + slow completion: expiry, regrant, dedup."""
        space = smoke_grid()
        serial = DesignSpaceExplorer(ToyEvaluator()).explore(space, name="serial")
        result, report = run_fleet(
            space,
            FleetOptions(
                spawn_workers=3,
                wait_for_workers=3,
                chaos_plans=(
                    ChaosPlan(drop_heartbeats_on_chunk=0, complete_delay_s=2.5),
                ),
                **FAST,
            ),
        )
        assert_sweeps_identical(serial, result)
        assert report.leases_expired >= 1
        # The late copy arrived after the regrant finished those points:
        # every row of it deduplicated instead of double-finalising.
        assert report.duplicates_dropped >= 1
        assert report.points_completed == space.size

    def test_partitioned_worker_reconnects(self):
        # A single worker: it must receive the partition chunk (with
        # siblings, a fast fleet can drain the queue before worker-0
        # ever sees its second lease, injecting nothing).
        space = smoke_grid()
        serial = DesignSpaceExplorer(ToyEvaluator()).explore(space, name="serial")
        result, report = run_fleet(
            space,
            FleetOptions(
                spawn_workers=1,
                chaos_plans=(
                    ChaosPlan(partition_on_chunk=1, partition_reconnect_s=0.2),
                ),
                **FAST,
            ),
        )
        assert_sweeps_identical(serial, result)
        assert report.points_completed == space.size
        # The partition dropped a granted lease (requeued on disconnect)
        # and the worker came back under a fresh session.
        assert report.requeues >= 1
        assert report.workers["worker-0"]["disconnects"] >= 1

    def test_combined_chaos_converges(self):
        """Kill + silence + partition in one fleet: still digest-identical."""
        space = smoke_grid()
        serial = DesignSpaceExplorer(ToyEvaluator()).explore(space, name="serial")
        result, report = run_fleet(
            space,
            FleetOptions(
                spawn_workers=4,
                wait_for_workers=4,
                chaos_plans=(
                    ChaosPlan(kill_after_points=3),
                    ChaosPlan(drop_heartbeats_on_chunk=1, complete_delay_s=2.0),
                    ChaosPlan(partition_on_chunk=0, partition_reconnect_s=0.1),
                ),
                **FAST,
            ),
        )
        assert_sweeps_identical(serial, result)
        assert report.points_completed == space.size
        assert report.points_quarantined == 0


class TestCoordinatorKill:
    def test_interrupt_then_checkpoint_resume(self, tmp_path):
        """A killed coordinator resumes mid-sweep from its checkpoint."""
        space = smoke_grid()
        serial = DesignSpaceExplorer(ToyEvaluator()).explore(space, name="serial")
        checkpoint = tmp_path / "fleet.jsonl"

        explorer = DesignSpaceExplorer(ToyEvaluator())
        partial = explorer.explore(
            space,
            checkpoint=checkpoint,
            executor="fleet",
            fleet=FleetOptions(spawn_workers=2, interrupt_after_points=4, **FAST),
        )
        interrupted = [
            e for e in partial if e.error and e.error.startswith("Interrupted")
        ]
        finished_early = space.size - len(interrupted)
        assert 0 < finished_early < space.size  # it really stopped mid-sweep

        tel = Telemetry()
        resumed = explorer.explore(
            space,
            checkpoint=checkpoint,
            executor="fleet",
            fleet=FleetOptions(spawn_workers=2, **FAST),
            telemetry=tel,
        )
        report = explorer.last_fleet_report
        assert_sweeps_identical(serial, resumed)
        # Only the unfinished remainder was re-sharded; checkpointed
        # points were restored, not re-evaluated.
        assert report.points_total == len(interrupted)
        assert tel.counters["explore.checkpoint_restored"] == finished_early
        assert tel.counters["fleet.worker.evaluator_calls"] == len(interrupted)

    def test_interrupted_run_counts_in_telemetry(self, tmp_path):
        tel = Telemetry()
        explorer = DesignSpaceExplorer(ToyEvaluator())
        explorer.explore(
            smoke_grid(),
            checkpoint=tmp_path / "cp.jsonl",
            executor="fleet",
            fleet=FleetOptions(spawn_workers=2, interrupt_after_points=1, **FAST),
            telemetry=tel,
        )
        assert tel.counters["explore.interrupted"] == 1


class TestDistributedObservability:
    """The tentpole acceptance path: one chaos-injected fleet sweep must
    leave behind (a) a single merged Chrome trace with per-worker lanes
    and coordinator-parented, clock-aligned spans, (b) a flight-recorder
    artifact for the killed worker, and (c) a schema-v7 manifest whose
    ``trace``/``resources`` sections account for the merge."""

    def test_chaos_sweep_produces_merged_trace_and_flight_artifact(
        self, tmp_path, monkeypatch
    ):
        import json
        import os
        import time

        from repro.core.tracing import Tracer, chrome_trace
        from repro.core.telemetry import MANIFEST_SCHEMA_VERSION, RunManifest
        from repro.experiments.runner import build_run_manifest

        flight_dir = tmp_path / "flight"
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(flight_dir))

        space = smoke_grid()
        tel = Telemetry(tracer=Tracer(label="driver"))
        run_started = time.time()
        result, report = run_fleet(
            space,
            FleetOptions(
                spawn_workers=3,
                wait_for_workers=3,
                chaos_plans=(ChaosPlan(kill_after_points=2),),
                **FAST,
            ),
            telemetry=tel,
        )
        run_ended = time.time()
        assert report.points_completed == space.size

        # (a) One merged trace: worker lanes absorbed into the driver's.
        trace = chrome_trace(tel.tracer.snapshot())
        lane_labels = {
            event["args"]["name"]: event["pid"]
            for event in trace["traceEvents"]
            if event["ph"] == "M"
        }
        worker_lanes = [name for name in lane_labels if name.startswith("worker-")]
        assert len(worker_lanes) >= 2, f"lanes: {sorted(lane_labels)}"
        assert "driver" in lane_labels

        # Worker lease spans are parented under the coordinator's
        # fleet.run span: the lease trace context crossed the wire.
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        fleet_run = [e for e in spans if e["name"] == "fleet.run"]
        assert len(fleet_run) == 1
        lease_spans = [e for e in spans if e["name"] == "fleet.worker.lease"]
        assert lease_spans, "workers shipped no lease spans"
        assert {e["args"]["parent_id"] for e in lease_spans} == {
            fleet_run[0]["args"]["span_id"]
        }
        driver_pid = os.getpid()
        assert all(e["pid"] != driver_pid for e in lease_spans)

        # Clock-aligned and monotone: every absorbed span lies inside
        # the run's wall-clock window (sync offsets on one host are
        # sub-millisecond; a second of slack absorbs scheduling noise).
        for event in spans:
            start_s = event["ts"] / 1e6
            end_s = start_s + event["dur"] / 1e6
            assert start_s >= run_started - 1.0
            assert end_s <= run_ended + 1.0
            assert event["dur"] >= 0

        # (b) The killed worker left a flight artifact behind (the
        # coordinator dumps on the requeue/expiry recovery action).
        dumps = sorted(flight_dir.glob("flight-*.json"))
        assert dumps, "no flight artifact for the killed worker"
        triggers = {json.loads(p.read_text())["trigger"] for p in dumps}
        assert triggers & {"fleet-worker-lost", "fleet-quarantine"}

        # (c) Schema-v7 manifest: trace-merge bookkeeping + resources.
        manifest = build_run_manifest(
            result, tel, "smoke", executor="fleet", n_workers=3
        )
        assert manifest.schema == MANIFEST_SCHEMA_VERSION == 7
        assert manifest.trace["events"] > 0
        assert set(manifest.trace) >= {"clock_offsets", "dropped_by_lane", "lanes"}
        offsets = manifest.trace["clock_offsets"]
        assert all(abs(v) < 5.0 for v in offsets.values())  # same host
        histograms = manifest.resources["histograms"]
        assert histograms["resources.rss_mb"]["count"] >= 1
        workers = manifest.resources["workers"]
        assert workers, "no per-worker resource attribution"
        assert any(label.startswith("worker-") for label in workers)
        rebuilt = RunManifest.from_dict(
            json.loads(json.dumps(manifest.to_dict()))
        )
        assert rebuilt.resources == manifest.resources
        assert rebuilt.trace == manifest.trace
