"""Tests of the CS diagnostics (coherence, RIP spread, recovery rate)."""

import numpy as np
import pytest

from repro.cs.charge_sharing import ChargeSharingConfig, ChargeSharingEncoder
from repro.cs.diagnostics import (
    mutual_coherence,
    recovery_rate,
    rip_spread,
    weight_dynamic_range,
)
from repro.cs.matrices import gaussian, srbm_balanced


class TestMutualCoherence:
    def test_orthogonal_matrix_zero_coherence(self):
        assert mutual_coherence(np.eye(8)[:4]) == pytest.approx(0.0)

    def test_duplicated_column_full_coherence(self):
        a = np.random.default_rng(0).normal(size=(8, 4))
        a = np.hstack([a, a[:, :1]])
        assert mutual_coherence(a) == pytest.approx(1.0)

    def test_gaussian_coherence_reasonable(self):
        mu = mutual_coherence(gaussian(64, 256, seed=1).phi)
        assert 0.1 < mu < 0.8

    def test_zero_columns_do_not_crash(self):
        a = np.zeros((4, 3))
        a[:, 0] = 1.0
        assert mutual_coherence(a) == pytest.approx(0.0)


class TestRipSpread:
    def test_orthonormal_rows_bounded_above(self):
        # A matrix with orthonormal rows is a projection: ||Ax|| <= ||x||.
        q, _ = np.linalg.qr(np.random.default_rng(1).normal(size=(64, 16)))
        a = q.T  # 16 x 64, orthonormal rows
        _, hi = rip_spread(a, 2, n_trials=50, seed=2)
        assert hi <= 1.0 + 1e-9

    def test_gaussian_spread_brackets_one(self):
        a = gaussian(48, 128, seed=3).phi
        lo, hi = rip_spread(a, 4, n_trials=200, seed=4)
        assert lo < 1.0 < hi
        assert lo > 0.2
        assert hi < 2.5

    def test_deterministic_given_seed(self):
        a = gaussian(32, 64, seed=1).phi
        assert rip_spread(a, 3, seed=9) == rip_spread(a, 3, seed=9)

    def test_rejects_oversparse(self):
        a = gaussian(8, 16, seed=1).phi
        with pytest.raises(ValueError):
            rip_spread(a, 17)


class TestRecoveryRate:
    def test_high_rate_in_easy_regime(self):
        a = gaussian(48, 96, seed=5).phi
        assert recovery_rate(a, sparsity=3, n_trials=30, seed=6) >= 0.9

    def test_low_rate_in_hard_regime(self):
        a = gaussian(8, 96, seed=5).phi
        assert recovery_rate(a, sparsity=7, n_trials=30, seed=6) <= 0.5

    def test_noise_degrades_rate(self):
        a = gaussian(32, 96, seed=5).phi
        clean = recovery_rate(a, sparsity=4, n_trials=30, seed=7)
        noisy = recovery_rate(a, sparsity=4, n_trials=30, snr_db=5.0, seed=7)
        assert noisy <= clean


class TestWeightDynamicRange:
    def test_binary_matrix_has_unit_range(self):
        mat = srbm_balanced(8, 32, 2, seed=1)
        assert weight_dynamic_range(mat.phi) == pytest.approx(1.0)

    def test_larger_cap_ratio_flattens_weights(self):
        mat = srbm_balanced(16, 64, 2, seed=1)
        ranges = []
        for ratio in (2.0, 8.0, 32.0):
            cfg = ChargeSharingConfig(c_sample=1e-15, c_hold=ratio * 1e-15, kt=0.0)
            enc = ChargeSharingEncoder(mat, cfg, seed=1)
            ranges.append(weight_dynamic_range(enc.phi_effective))
        assert ranges[0] > ranges[1] > ranges[2]

    def test_rejects_empty_matrix(self):
        with pytest.raises(ValueError):
            weight_dynamic_range(np.zeros((4, 8)))
