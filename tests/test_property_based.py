"""Property-based tests (hypothesis) on the core invariants.

These cover the algebraic hearts of the system: charge-sharing weight
algebra (Eq. 1), quantizer monotonicity, Pareto-front axioms, dictionary
orthogonality, power-model scaling laws, and dataset determinism.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import Objective, dominates, pareto_front
from repro.cs.charge_sharing import effective_matrix
from repro.cs.dictionaries import dct_basis, wavelet_basis
from repro.cs.matrices import srbm_balanced
from repro.power.models import chain_power, lna_power, transmitter_power
from repro.power.technology import DesignPoint

# --- strategies -------------------------------------------------------------

dims = st.tuples(
    st.integers(min_value=4, max_value=24),  # m
    st.integers(min_value=25, max_value=96),  # n
    st.integers(min_value=1, max_value=3),  # s
).filter(lambda t: t[2] <= t[0] and t[0] < t[1])

metric_dicts = st.fixed_dictionaries(
    {
        "power": st.floats(min_value=0.1, max_value=100, allow_nan=False),
        "quality": st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    }
)

OBJ = (Objective("power", maximize=False), Objective("quality", maximize=True))


class FakeEval:
    def __init__(self, metrics):
        self.metrics = metrics


# --- charge-sharing algebra --------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(dims, st.floats(min_value=0.05, max_value=0.5), st.integers(0, 2**31 - 1))
def test_effective_matrix_weights_bounded(dim, share_gain, seed):
    """Every effective weight lies in (0, a] and zeros are preserved."""
    m, n, s = dim
    mat = srbm_balanced(m, n, s, seed=seed)
    weights = effective_matrix(mat, share_gain, 1.0 - share_gain)
    nonzero = weights[mat.phi != 0]
    assert np.all(nonzero > 0)
    assert np.all(nonzero <= share_gain + 1e-12)
    assert np.all(weights[mat.phi == 0] == 0)


@settings(max_examples=25, deadline=None)
@given(dims, st.integers(0, 2**31 - 1))
def test_effective_row_sums_below_unity(dim, seed):
    """Accumulated DC gain a * sum b^k < 1: passive networks cannot amplify."""
    m, n, s = dim
    mat = srbm_balanced(m, n, s, seed=seed)
    weights = effective_matrix(mat, 0.2, 0.8)
    assert np.all(weights.sum(axis=1) < 1.0 + 1e-12)


@settings(max_examples=20, deadline=None)
@given(dims, st.integers(0, 2**31 - 1))
def test_encoder_linear_in_input(dim, seed):
    """The noiseless encoder is a linear operator (superposition holds)."""
    from repro.cs.charge_sharing import ChargeSharingConfig, ChargeSharingEncoder

    m, n, s = dim
    mat = srbm_balanced(m, n, s, seed=seed)
    enc = ChargeSharingEncoder(
        mat, ChargeSharingConfig(c_sample=1e-15, c_hold=8e-15, kt=0.0), seed=seed
    )
    rng = np.random.default_rng(seed)
    x1, x2 = rng.normal(size=n), rng.normal(size=n)
    lhs = enc.encode(2.0 * x1 - 3.0 * x2)
    rhs = 2.0 * enc.encode(x1) - 3.0 * enc.encode(x2)
    np.testing.assert_allclose(lhs, rhs, atol=1e-12)


# --- s-SRBM construction -----------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(dims, st.integers(0, 2**31 - 1))
def test_srbm_balanced_invariants(dim, seed):
    m, n, s = dim
    mat = srbm_balanced(m, n, s, seed=seed)
    assert np.all(np.count_nonzero(mat.phi, axis=0) == s)
    degrees = mat.row_degrees()
    assert degrees.max() - degrees.min() <= 1
    assert degrees.sum() == n * s


# --- quantizer ---------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False), min_size=2, max_size=64),
    st.integers(min_value=2, max_value=12),
)
def test_ideal_quantizer_monotone_and_bounded(values, n_bits):
    from repro.blocks.sar_adc import ideal_quantize

    data = np.array(values)
    out = ideal_quantize(data, n_bits=n_bits, v_fs=2.0)
    lsb = 2.0 / 2**n_bits
    # Bounded error inside the rails.
    inside = np.abs(data) <= 1.0 - lsb
    assert np.all(np.abs(out[inside] - data[inside]) <= lsb)
    # Monotone: sorting the input sorts the output.
    order = np.argsort(data)
    assert np.all(np.diff(out[order]) >= -1e-12)


# --- Pareto axioms -------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(st.lists(metric_dicts, min_size=1, max_size=30))
def test_pareto_front_members_not_dominated(metrics_list):
    evals = [FakeEval(m) for m in metrics_list]
    front = pareto_front(evals, OBJ)
    assert front  # non-empty for non-empty input
    for member in front:
        assert not any(
            dominates(other.metrics, member.metrics, OBJ)
            for other in evals
            if other is not member
        )


@settings(max_examples=50, deadline=None)
@given(st.lists(metric_dicts, min_size=1, max_size=30))
def test_pareto_front_covers_all_non_members(metrics_list):
    evals = [FakeEval(m) for m in metrics_list]
    front = pareto_front(evals, OBJ)
    outside = [e for e in evals if e not in front]
    for loser in outside:
        assert any(dominates(w.metrics, loser.metrics, OBJ) for w in evals if w is not loser)


@settings(max_examples=30, deadline=None)
@given(st.lists(metric_dicts, min_size=2, max_size=20))
def test_pareto_idempotent(metrics_list):
    evals = [FakeEval(m) for m in metrics_list]
    front = pareto_front(evals, OBJ)
    assert set(map(id, pareto_front(front, OBJ))) == set(map(id, front))


# --- dictionaries --------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(st.sampled_from([8, 16, 32, 64, 128]))
def test_dct_parseval(n):
    psi = dct_basis(n)
    rng = np.random.default_rng(n)
    x = rng.normal(size=n)
    assert np.linalg.norm(psi.T @ x) == pytest.approx(np.linalg.norm(x), rel=1e-9)


@settings(max_examples=10, deadline=None)
@given(st.sampled_from([32, 64, 128]), st.sampled_from(["haar", "db2", "db4"]))
def test_wavelet_roundtrip(n, wavelet):
    psi = wavelet_basis(n, wavelet)
    rng = np.random.default_rng(n)
    x = rng.normal(size=n)
    np.testing.assert_allclose(psi @ (psi.T @ x), x, atol=1e-9)


# --- power scaling laws ---------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=1e-6, max_value=19e-6, allow_nan=False),
    st.floats(min_value=1.02, max_value=2.0),
)
def test_lna_noise_power_monotone(noise, factor):
    """More tolerated noise never costs more LNA power."""
    lo = DesignPoint(lna_noise_rms=noise)
    hi = DesignPoint(lna_noise_rms=noise * factor)
    assert lna_power(hi) <= lna_power(lo) + 1e-18


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=14))
def test_transmitter_power_linear_in_bits(n_bits):
    point = DesignPoint(n_bits=n_bits)
    per_bit = transmitter_power(point) / n_bits
    assert per_bit == pytest.approx(point.f_sample * point.technology.e_bit)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from([75, 100, 150, 192, 250]))
def test_compression_reduces_total_power(m):
    cs = DesignPoint(use_cs=True, cs_m=m, lna_noise_rms=8e-6)
    baseline = DesignPoint(use_cs=False, lna_noise_rms=8e-6)
    # TX dominates at this noise level, so compression must win overall.
    assert chain_power(cs).blocks["transmitter"] < chain_power(baseline).blocks["transmitter"]


# --- dataset determinism ----------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_record_generation_deterministic(seed):
    from repro.eeg.synthetic import SyntheticEegConfig, generate_record

    config = SyntheticEegConfig(duration=2.0)
    a = generate_record("seizure", config, seed, "s")
    b = generate_record("seizure", config, seed, "s")
    np.testing.assert_array_equal(a.data, b.data)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_snr_gain_invariance_property(seed):
    from repro.metrics.snr import snr_vs_reference

    rng = np.random.default_rng(seed)
    ref = rng.normal(size=512)
    noisy = ref + 0.1 * rng.normal(size=512)
    gain = float(10 ** rng.uniform(-3, 3))
    assert snr_vs_reference(ref, noisy * gain) == pytest.approx(
        snr_vs_reference(ref, noisy), abs=1e-6
    )


# --- serialization round-trips ----------------------------------------------------


design_points = st.builds(
    DesignPoint,
    n_bits=st.integers(min_value=4, max_value=12),
    lna_noise_rms=st.floats(min_value=1e-7, max_value=1e-4, allow_nan=False),
    lna_gain=st.floats(min_value=10.0, max_value=1e5, allow_nan=False),
    use_cs=st.booleans(),
    cs_architecture=st.sampled_from(["analog", "digital"]),
    cs_m=st.sampled_from([75, 150, 192]),
    cs_cap_ratio=st.floats(min_value=1.0, max_value=64.0, allow_nan=False),
)


@settings(max_examples=40, deadline=None)
@given(design_points)
def test_design_point_serialization_roundtrip(point):
    from repro.core.serialization import design_point_from_dict, design_point_to_dict

    assert design_point_from_dict(design_point_to_dict(point)) == point


@settings(max_examples=25, deadline=None)
@given(design_points)
def test_chain_power_always_positive_and_finite(point):
    report = chain_power(point)
    assert np.isfinite(report.total)
    assert report.total > 0
    assert all(v >= 0 for v in report.blocks.values())


@settings(max_examples=25, deadline=None)
@given(design_points)
def test_noise_budget_total_dominates_contributors(point):
    from repro.power.noise_budget import noise_budget

    budget = noise_budget(point)
    total = budget.total
    for value in budget.contributions().values():
        assert value <= total + 1e-18
    assert abs(sum(budget.fractions().values()) - 1.0) < 1e-9


# --- IHT invariants -----------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.integers(0, 2**31 - 1),
)
def test_iht_iterates_are_k_sparse(k, seed):
    from repro.cs.matrices import gaussian
    from repro.cs.reconstruction import iht

    rng = np.random.default_rng(seed)
    a = gaussian(32, 64, seed=seed).phi
    y = rng.normal(size=32)
    z = iht(a, y, sparsity=k, n_iter=30)
    assert np.count_nonzero(z) <= k


# --- area model invariants ------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(design_points)
def test_area_positive_and_cs_larger(point):
    from repro.power.area import chain_area

    report = chain_area(point)
    assert report.units > 0
    if point.use_cs and point.cs_architecture == "analog":
        baseline = chain_area(point.with_(use_cs=False))
        assert report.units > baseline.units
