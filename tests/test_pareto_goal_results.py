"""Tests of Pareto extraction, goal functions and result containers."""

import pytest

from repro.core.goal import (
    Goal,
    WeightedGoal,
    accuracy_power_goal,
    area_constrained_goal,
    snr_power_goal,
)
from repro.core.pareto import Objective, best_feasible, dominates, pareto_front
from repro.core.results import Evaluation, ExplorationResult
from repro.power.technology import DesignPoint


def ev(power, quality, use_cs=False, area=100.0):
    return Evaluation(
        point=DesignPoint(use_cs=use_cs),
        metrics={"power_uw": power, "accuracy": quality, "snr_db": quality, "area_units": area},
    )


OBJ = (Objective("power_uw", maximize=False), Objective("accuracy", maximize=True))


class TestDominates:
    def test_strictly_better_both(self):
        assert dominates({"power_uw": 1, "accuracy": 0.9}, {"power_uw": 2, "accuracy": 0.8}, OBJ)

    def test_equal_does_not_dominate(self):
        a = {"power_uw": 1, "accuracy": 0.9}
        assert not dominates(a, dict(a), OBJ)

    def test_tradeoff_does_not_dominate(self):
        a = {"power_uw": 1, "accuracy": 0.8}
        b = {"power_uw": 2, "accuracy": 0.9}
        assert not dominates(a, b, OBJ)
        assert not dominates(b, a, OBJ)

    def test_better_on_one_equal_other(self):
        a = {"power_uw": 1, "accuracy": 0.9}
        b = {"power_uw": 2, "accuracy": 0.9}
        assert dominates(a, b, OBJ)

    def test_requires_objectives(self):
        with pytest.raises(ValueError):
            dominates({}, {}, ())


class TestParetoFront:
    def test_extracts_non_dominated(self):
        evals = [ev(1, 0.8), ev(2, 0.9), ev(3, 0.85), ev(1.5, 0.95)]
        front = pareto_front(evals, OBJ)
        powers = [e.metrics["power_uw"] for e in front]
        assert powers == [1.0, 1.5]

    def test_single_point_is_front(self):
        assert len(pareto_front([ev(1, 0.5)], OBJ)) == 1

    def test_constraint_filters_first(self):
        evals = [ev(1, 0.8, area=1000), ev(2, 0.7, area=10)]
        front = pareto_front(evals, OBJ, constraint=lambda m: m["area_units"] < 100)
        assert len(front) == 1
        assert front[0].metrics["power_uw"] == 2

    def test_duplicates_survive(self):
        evals = [ev(1, 0.9), ev(1, 0.9)]
        assert len(pareto_front(evals, OBJ)) == 2

    def test_sorted_by_primary(self):
        evals = [ev(3, 0.99), ev(1, 0.8), ev(2, 0.9)]
        front = pareto_front(evals, OBJ)
        powers = [e.metrics["power_uw"] for e in front]
        assert powers == sorted(powers)


class TestBestFeasible:
    def test_minimum_power_meeting_constraint(self):
        evals = [ev(1, 0.7), ev(2, 0.99), ev(5, 0.999)]
        best = best_feasible(evals, "power_uw", constraint=lambda m: m["accuracy"] >= 0.98)
        assert best.metrics["power_uw"] == 2

    def test_none_when_infeasible(self):
        evals = [ev(1, 0.5)]
        assert best_feasible(evals, "power_uw", constraint=lambda m: m["accuracy"] > 0.9) is None

    def test_no_constraint_returns_global_min(self):
        evals = [ev(3, 0.1), ev(1, 0.0)]
        assert best_feasible(evals, "power_uw").metrics["power_uw"] == 1


class TestNonFiniteHandling:
    """Regression tests: NaN/inf metrics must never pollute a front.

    A crashed reconstruction used to report ``power_uw=NaN`` and ride
    onto the Pareto front because every NaN comparison is False, so no
    finite point appeared to dominate it.
    """

    nan = float("nan")
    inf = float("inf")

    def test_nan_metric_excluded_from_front(self):
        evals = [ev(1, 0.8), ev(self.nan, 0.99), ev(2, self.nan)]
        front = pareto_front(evals, OBJ)
        assert len(front) == 1
        assert front[0].metrics["power_uw"] == 1

    def test_inf_metric_excluded_from_front(self):
        evals = [ev(1, 0.8), ev(-self.inf, 0.99), ev(2, self.inf)]
        front = pareto_front(evals, OBJ)
        assert len(front) == 1
        assert front[0].metrics["power_uw"] == 1

    def test_all_nan_cloud_yields_empty_front(self):
        assert pareto_front([ev(self.nan, self.nan)] * 3, OBJ) == []

    def test_nan_never_dominates(self):
        assert not dominates({"power_uw": self.nan, "accuracy": 0.99}, {"power_uw": 5, "accuracy": 0.1}, OBJ)

    def test_finite_dominates_nan(self):
        assert dominates({"power_uw": 5, "accuracy": 0.1}, {"power_uw": self.nan, "accuracy": 0.99}, OBJ)

    def test_two_nan_points_do_not_dominate_each_other(self):
        a = {"power_uw": self.nan, "accuracy": 0.9}
        b = {"power_uw": 1.0, "accuracy": self.nan}
        assert not dominates(a, b, OBJ)
        assert not dominates(b, a, OBJ)

    def test_best_feasible_skips_nan_target(self):
        # The NaN candidate must lose regardless of scan order.
        evals = [ev(self.nan, 0.9), ev(3, 0.9)]
        assert best_feasible(evals, "power_uw").metrics["power_uw"] == 3
        assert best_feasible(list(reversed(evals)), "power_uw").metrics["power_uw"] == 3

    def test_best_feasible_all_nan_returns_none(self):
        assert best_feasible([ev(self.nan, 0.9)], "power_uw") is None


class TestGoals:
    def test_snr_goal_objectives(self):
        goal = snr_power_goal()
        assert {o.metric for o in goal.objectives} == {"power_uw", "snr_db"}
        assert goal.constraint is None

    def test_accuracy_goal_constraint(self):
        goal = accuracy_power_goal(0.98)
        assert goal.constraint({"accuracy": 0.985})
        assert not goal.constraint({"accuracy": 0.975})

    def test_accuracy_goal_validation(self):
        with pytest.raises(ValueError):
            accuracy_power_goal(0.0)

    def test_area_goal_combines_constraints(self):
        goal = area_constrained_goal(500.0, min_accuracy=0.9)
        assert goal.constraint({"accuracy": 0.95, "area_units": 400})
        assert not goal.constraint({"accuracy": 0.95, "area_units": 600})
        assert not goal.constraint({"accuracy": 0.85, "area_units": 400})

    def test_area_goal_validation(self):
        with pytest.raises(ValueError):
            area_constrained_goal(0.0)

    def test_goal_requires_objectives(self):
        with pytest.raises(ValueError):
            Goal(name="empty", objectives=())

    def test_weighted_goal_score(self):
        goal = WeightedGoal({"accuracy": 1.0, "power_uw": -0.1})
        assert goal.score({"accuracy": 0.9, "power_uw": 2.0}) == pytest.approx(0.7)

    def test_weighted_goal_empty_rejected(self):
        with pytest.raises(ValueError):
            WeightedGoal().score({})


class TestEvaluation:
    def test_metric_accessor(self):
        evaluation = ev(1.0, 0.9)
        assert evaluation.metric("power_uw") == 1.0
        with pytest.raises(KeyError, match="available"):
            evaluation.metric("zz")

    def test_summary_contains_metrics(self):
        text = ev(1.0, 0.9).summary()
        assert "power_uw" in text
        assert "baseline" in text


class TestExplorationResult:
    def make_result(self):
        return ExplorationResult(
            [ev(1, 0.8), ev(2, 0.99, use_cs=True), ev(3, 0.7)], name="test"
        )

    def test_len_iter_getitem(self):
        result = self.make_result()
        assert len(result) == 3
        assert result[0].metrics["power_uw"] == 1
        assert len(list(result)) == 3

    def test_split_by_architecture(self):
        baseline, cs = self.make_result().split_by_architecture()
        assert len(baseline) == 2
        assert len(cs) == 1

    def test_values(self):
        assert self.make_result().values("power_uw") == [1, 2, 3]

    def test_pareto_delegates(self):
        front = self.make_result().pareto(OBJ)
        assert [e.metrics["power_uw"] for e in front] == [1, 2]

    def test_best_with_constraint(self):
        best = self.make_result().best(constraint=lambda m: m["accuracy"] > 0.9)
        assert best.metrics["power_uw"] == 2

    def test_filter(self):
        filtered = self.make_result().filter(lambda e: e.metrics["power_uw"] < 2.5)
        assert len(filtered) == 2

    def test_as_table(self):
        table = self.make_result().as_table(["power_uw", "accuracy"])
        assert "power_uw" in table
        assert table.count("\n") == 3

    def test_to_dicts(self):
        dicts = self.make_result().to_dicts()
        assert len(dicts) == 3
        assert "point" in dicts[0]
        assert dicts[0]["power_uw"] == 1


class TestCsvExport:
    def test_to_csv_roundtrip(self, tmp_path):
        result = ExplorationResult([ev(1, 0.8), ev(2, 0.9, use_cs=True)])
        path = tmp_path / "sweep.csv"
        result.to_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        header = lines[0].split(",")
        assert header[0] == "point"
        assert "power_uw" in header
        assert "accuracy" in header

    def test_to_csv_selected_metrics(self, tmp_path):
        result = ExplorationResult([ev(1, 0.8)])
        path = tmp_path / "sweep.csv"
        result.to_csv(str(path), metrics=["power_uw"])
        header = path.read_text().splitlines()[0]
        assert header == "point,power_uw"


class TestHeterogeneousSweeps:
    """Regression: mixed metric sets (e.g. baseline/CS with and without
    accuracy) must not raise from values/as_table, matching to_csv."""

    def make_mixed(self):
        full = ev(1, 0.9)
        bare = Evaluation(point=DesignPoint(), metrics={"power_uw": 2.0})
        return ExplorationResult([full, bare], name="mixed")

    def test_values_renders_missing_as_nan(self):
        import math

        values = self.make_mixed().values("accuracy")
        assert values[0] == 0.9
        assert math.isnan(values[1])

    def test_as_table_renders_missing_as_blank(self):
        table = self.make_mixed().as_table(["power_uw", "accuracy"])
        lines = table.splitlines()
        assert len(lines) == 3
        assert "0.9" in lines[1]
        assert lines[2].rstrip().endswith("2")  # power present, accuracy blank

    def test_pareto_skips_items_missing_objectives(self):
        front = self.make_mixed().pareto(OBJ)
        assert [e.metrics["power_uw"] for e in front] == [1]

    def test_best_skips_items_missing_metric(self):
        best = self.make_mixed().best(minimize="accuracy")
        assert best.metrics["power_uw"] == 1

    def make_with_error_row(self):
        """A sweep where one point carries NaN metrics (failed batch shard)."""
        nan = float("nan")
        error = Evaluation(
            point=DesignPoint(n_bits=10),
            metrics={"power_uw": nan, "accuracy": nan},
            error="boom",
        )
        return ExplorationResult([ev(1, 0.9), error], name="witherror")

    def test_as_table_renders_nan_metrics_as_blank(self):
        """Error rows use the same blank convention as missing metrics --
        previously NaN values printed as right-padded 'nan' text, breaking
        the column convention for heterogeneous sweeps."""
        table = self.make_with_error_row().as_table(["power_uw", "accuracy"])
        lines = table.splitlines()
        assert len(lines) == 3
        assert "nan" not in table
        # The error row carries only its point description, both metric
        # cells blank; column width stays on the same fixed grid.
        assert lines[2].strip() == "baseline N=10b noise=5.0uV fs=538Hz"
        assert len(lines[1]) == len(lines[0])

    def test_to_csv_exports_nan_metrics_as_empty(self, tmp_path):
        path = tmp_path / "sweep.csv"
        self.make_with_error_row().to_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        assert "nan" not in lines[2]
        # NaN metric cells are blank; the trailing error column carries
        # the failure message (see TestLossyExportRegression).
        cells = lines[2].split(",")
        assert cells[-1] == "boom"
        assert set(cells[1:-1]) == {""}


class TestLossyExportRegression:
    """Regression: ``to_dicts``/``to_csv`` used to drop ``breakdown`` and
    ``error``, so a failed point exported as a bare ``{"point": ...}`` row
    indistinguishable from a metric-less success, and per-block power was
    unrecoverable from the export."""

    def make_result(self):
        good = Evaluation(
            point=DesignPoint(n_bits=6),
            metrics={"power_uw": 1.0, "accuracy": 0.9},
            breakdown={"lna": 0.4, "adc": 0.6},
        )
        failed = Evaluation(
            point=DesignPoint(n_bits=10), metrics={}, error="ValueError: boom"
        )
        return ExplorationResult([good, failed], name="mixed")

    def test_to_dicts_includes_breakdown(self):
        rows = self.make_result().to_dicts()
        assert rows[0]["breakdown"] == {"lna": 0.4, "adc": 0.6}
        assert "error" not in rows[0]

    def test_to_dicts_includes_error(self):
        rows = self.make_result().to_dicts()
        assert rows[1]["error"] == "ValueError: boom"
        assert "breakdown" not in rows[1]

    def test_to_dicts_round_trips_failed_point_visibly(self):
        # The failed row must be distinguishable from a success.
        rows = self.make_result().to_dicts()
        assert [("error" in r) for r in rows] == [False, True]

    def test_to_csv_mixed_sweep_gets_error_column(self, tmp_path):
        path = tmp_path / "sweep.csv"
        self.make_result().to_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0].split(",")[-1] == "error"
        assert lines[1].endswith(",")  # success row: empty error cell
        assert lines[2].endswith("ValueError: boom")

    def test_to_csv_all_success_keeps_historical_header(self, tmp_path):
        path = tmp_path / "sweep.csv"
        ExplorationResult([ev(1, 0.9)]).to_csv(str(path))
        header = path.read_text().splitlines()[0]
        assert "error" not in header.split(",")


class TestVectorisedParetoParity:
    """The numpy non-dominated filter must match the pairwise definition."""

    def brute_force(self, evals, objectives):
        front = [
            candidate
            for candidate in evals
            if not any(
                dominates(other.metrics, candidate.metrics, objectives)
                for other in evals
                if other is not candidate
            )
        ]
        primary = objectives[0]
        front.sort(key=lambda e: e.metrics[primary.metric], reverse=primary.maximize)
        return front

    def test_matches_brute_force_on_random_clouds(self):
        import numpy as np

        rng = np.random.default_rng(42)
        for trial in range(5):
            evals = [
                ev(power, quality, area=area)
                for power, quality, area in rng.uniform(0, 10, size=(60, 3)).round(1)
            ]
            for objectives in (
                OBJ,
                (Objective("power_uw"),),
                (
                    Objective("power_uw"),
                    Objective("accuracy", maximize=True),
                    Objective("area_units"),
                ),
            ):
                expected = self.brute_force(evals, objectives)
                actual = pareto_front(evals, objectives)
                assert actual == expected

    def test_rounded_duplicates_all_kept(self):
        evals = [ev(1, 0.9), ev(1, 0.9), ev(1, 0.9), ev(2, 0.8)]
        front = pareto_front(evals, OBJ)
        assert len(front) == 3

    def test_empty_objectives_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            pareto_front([ev(1, 0.9)], ())

    def test_large_front_crosses_block_boundary(self):
        # >256 mutually non-dominated points exercises the blocked filter.
        evals = [ev(float(i), float(i)) for i in range(600)]
        front = pareto_front(evals, OBJ)
        assert len(front) == 600
