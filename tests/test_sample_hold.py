"""Tests of the sample-and-hold model."""

import numpy as np
import pytest

from repro.blocks.sample_hold import SampleHold
from repro.blocks.sources import sine
from repro.core.block import SimulationContext
from repro.core.signal import Signal


def run_block(block, signal, seed=0):
    return block.process(signal, SimulationContext(seed=seed))


class TestKtcNoise:
    def test_noise_rms_matches_capacitance(self):
        sh = SampleHold(capacitance=1e-12)
        out = run_block(sh, Signal(np.zeros(200_000), 1000.0))
        assert np.std(out.data) == pytest.approx(sh.noise_rms, rel=0.02)

    def test_larger_cap_less_noise(self):
        small = SampleHold(capacitance=1e-15)
        large = SampleHold(capacitance=1e-12)
        assert large.noise_rms < small.noise_rms

    def test_zero_kt_no_noise(self):
        sh = SampleHold(capacitance=1e-15, kt=0.0)
        sig = Signal(np.ones(16), 1000.0)
        np.testing.assert_array_equal(run_block(sh, sig).data, sig.data)


class TestDroop:
    def test_droop_shrinks_toward_zero(self):
        sh = SampleHold(capacitance=1e-12, kt=0.0, droop_rate=10.0)  # 10 V/s
        sig = Signal(np.array([1.0, -1.0]), 100.0)  # hold 10 ms -> 0.1 V droop
        out = run_block(sh, sig)
        np.testing.assert_allclose(out.data, [0.9, -0.9])

    def test_droop_never_crosses_zero(self):
        sh = SampleHold(capacitance=1e-12, kt=0.0, droop_rate=1e6)
        out = run_block(sh, Signal(np.array([0.5, -0.5]), 100.0))
        np.testing.assert_allclose(out.data, [0.0, 0.0])

    def test_explicit_hold_time(self):
        sh = SampleHold(capacitance=1e-12, kt=0.0, droop_rate=1.0, hold_time=0.5)
        out = run_block(sh, Signal(np.array([2.0]), 100.0))
        assert out.data[0] == pytest.approx(1.5)


class TestAperture:
    def test_jitter_adds_slope_proportional_noise(self):
        sh = SampleHold(capacitance=1.0, kt=0.0, aperture_jitter=1e-5)
        fast = sine(frequency=400.0, amplitude=1.0, sample_rate=4000.0, n_samples=8192)
        slow = sine(frequency=10.0, amplitude=1.0, sample_rate=4000.0, n_samples=8192)
        err_fast = np.std(run_block(sh, fast).data - fast.data)
        err_slow = np.std(run_block(sh, slow).data - slow.data)
        assert err_fast > 5 * err_slow

    def test_no_jitter_identity(self):
        sh = SampleHold(capacitance=1.0, kt=0.0)
        tone = sine(frequency=10.0, amplitude=1.0, sample_rate=1000.0, n_samples=256)
        np.testing.assert_array_equal(run_block(sh, tone).data, tone.data)


class TestFromDesign:
    def test_cap_from_design_rule(self, baseline_point):
        sh = SampleHold.from_design(baseline_point)
        assert sh.capacitance == pytest.approx(baseline_point.sampling_capacitance)

    def test_droop_disabled_by_default(self, baseline_point):
        assert SampleHold.from_design(baseline_point).droop_rate == 0.0

    def test_droop_opt_in(self, baseline_point):
        sh = SampleHold.from_design(baseline_point, include_droop=True)
        expected = baseline_point.technology.i_leak / baseline_point.sampling_capacitance
        assert sh.droop_rate == pytest.approx(expected)

    def test_power_reports_sh_row(self, baseline_point):
        from repro.power.models import sample_hold_power

        sh = SampleHold.from_design(baseline_point)
        assert sh.power(baseline_point) == {
            "sample_hold": sample_hold_power(baseline_point)
        }

    def test_rejects_2d_input(self, baseline_point):
        sh = SampleHold.from_design(baseline_point)
        with pytest.raises(ValueError):
            run_block(sh, Signal(np.zeros((2, 3)), 100.0))
