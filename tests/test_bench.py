"""Tests of the benchmark ledger and its regression gate."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    append_records,
    bench_batched_sweep,
    bench_parallel_sweep,
    best_wall_times,
    compare_records,
    default_ledger_path,
    find_baseline,
    load_records,
    render_comparison,
    run_benchmarks,
)
from repro.cli import main


def record(name: str, wall_s: float) -> BenchRecord:
    return BenchRecord(name=name, wall_s=wall_s, points=64, reps=3, created_unix=1.0)


class TestLedger:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_20260806.json"
        append_records(path, [record("batched-sweep", 0.5)])
        append_records(path, [record("batched-sweep", 0.4)])
        records = load_records(path)
        assert [r.wall_s for r in records] == [0.5, 0.4]
        assert all(r.schema == BENCH_SCHEMA_VERSION for r in records)
        payload = json.loads(path.read_text())
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["records"][0]["points_per_s"] == pytest.approx(64 / 0.5)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": 999, "records": []}))
        with pytest.raises(ValueError, match="schema"):
            load_records(path)

    def test_default_path_is_dated(self, tmp_path):
        path = default_ledger_path(tmp_path)
        assert path.name.startswith("BENCH_") and path.suffix == ".json"

    def test_find_baseline_picks_newest_other_ledger(self, tmp_path):
        out = tmp_path / "BENCH_20260806.json"
        append_records(tmp_path / "BENCH_20260801.json", [record("a", 1.0)])
        append_records(tmp_path / "BENCH_20260804.json", [record("a", 1.0)])
        append_records(out, [record("a", 1.0)])
        assert find_baseline(out) == tmp_path / "BENCH_20260804.json"
        assert find_baseline(tmp_path / "BENCH_none.json") is not None
        assert find_baseline(tmp_path / "empty" / "BENCH_x.json") is None


class TestCompare:
    def test_best_wall_times_takes_minimum(self):
        best = best_wall_times([record("a", 0.5), record("a", 0.3), record("b", 1.0)])
        assert best == {"a": 0.3, "b": 1.0}

    def test_regression_over_threshold_flagged(self):
        rows = compare_records(
            [record("a", 1.0)], [record("a", 1.25)], threshold=0.20
        )
        assert rows[0]["regressed"] is True
        assert rows[0]["ratio"] == pytest.approx(1.25)

    def test_slowdown_within_threshold_passes(self):
        rows = compare_records([record("a", 1.0)], [record("a", 1.1)], threshold=0.20)
        assert rows[0]["regressed"] is False

    def test_one_sided_benchmarks_never_fail_the_gate(self):
        rows = compare_records([record("old", 1.0)], [record("new", 1.0)])
        assert not any(row["regressed"] for row in rows)
        text = render_comparison(rows, threshold=0.20)
        assert "no baseline" in text and "not run" in text

    def test_render_marks_regressions(self):
        rows = compare_records([record("a", 1.0)], [record("a", 2.0)])
        assert "REGRESSED" in render_comparison(rows, threshold=0.20)


class TestLedgerDurability:
    """Regression: the ledger append used to be a bare ``write_text``
    read-modify-write -- a crash mid-write destroyed the whole history,
    and two concurrent CI jobs lost each other's records."""

    def test_crash_mid_append_keeps_previous_ledger(self, tmp_path, monkeypatch):
        import os

        path = tmp_path / "BENCH_20260806.json"
        append_records(path, [record("a", 1.0)])
        before = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("simulated crash mid-rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            append_records(path, [record("b", 2.0)])
        monkeypatch.undo()
        assert path.read_text() == before
        assert [r.name for r in load_records(path)] == ["a"]
        assert list(tmp_path.glob("*.tmp")) == []

    def test_concurrent_appends_lose_no_records(self, tmp_path):
        import threading

        path = tmp_path / "BENCH_20260806.json"
        n_threads, n_each = 6, 5

        def worker(tag):
            for i in range(n_each):
                append_records(path, [record(f"{tag}-{i}", 1.0)])

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        names = [r.name for r in load_records(path)]
        assert len(names) == n_threads * n_each
        assert len(set(names)) == n_threads * n_each


class TestBenchCli:
    def _ledger(self, tmp_path, name: str, wall_s: float):
        path = tmp_path / name
        append_records(path, [record("batched-sweep", wall_s)])
        return path

    def test_synthetic_20_percent_slowdown_exits_nonzero(self, tmp_path, capsys):
        baseline = self._ledger(tmp_path, "BENCH_20260801.json", 1.0)
        current = self._ledger(tmp_path, "BENCH_20260806.json", 1.25)
        code = main(
            ["bench", "--compare-only", "--out", str(current), "--compare", str(baseline)]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_within_threshold_exits_zero(self, tmp_path):
        baseline = self._ledger(tmp_path, "BENCH_20260801.json", 1.0)
        current = self._ledger(tmp_path, "BENCH_20260806.json", 1.1)
        code = main(
            ["bench", "--compare-only", "--out", str(current), "--compare", str(baseline)]
        )
        assert code == 0

    def test_missing_baseline_warns_and_passes(self, tmp_path, capsys):
        current = self._ledger(tmp_path, "BENCH_20260806.json", 1.0)
        code = main(["bench", "--compare-only", "--out", str(current), "--compare"])
        assert code == 0
        assert "no baseline" in capsys.readouterr().out

    def test_auto_baseline_discovery(self, tmp_path):
        baseline = self._ledger(tmp_path, "BENCH_20260801.json", 1.0)
        current = self._ledger(tmp_path, "BENCH_20260806.json", 2.0)
        assert baseline.exists()
        code = main(["bench", "--compare-only", "--out", str(current), "--compare"])
        assert code == 1

    def test_unknown_benchmark_is_an_error(self, tmp_path):
        code = main(["bench", "--out", str(tmp_path / "B.json"), "--benchmarks", "nope"])
        assert code == 2

    def test_compare_only_missing_ledger_is_an_error(self, tmp_path, capsys):
        """Regression: ``--compare-only`` against a ledger that does not
        exist used to compare an empty record list and exit 0, silently
        masking a misconfigured CI gate."""
        missing = tmp_path / "BENCH_20260806.json"
        code = main(["bench", "--compare-only", "--out", str(missing), "--compare"])
        assert code == 2
        err = capsys.readouterr().err
        assert "existing ledger" in err
        assert str(missing) in err

    def test_cli_runs_registered_benchmarks(self, tmp_path, monkeypatch, capsys):
        import repro.bench as bench_module

        monkeypatch.setattr(
            bench_module,
            "BENCHMARKS",
            {"fast": lambda: record("fast", 0.001)},
        )
        out = tmp_path / "BENCH_20260806.json"
        code = main(["bench", "--out", str(out)])
        assert code == 0
        assert [r.name for r in load_records(out)] == ["fast"]
        assert "appended 1 record(s)" in capsys.readouterr().out


class TestRealBenchmarks:
    """Tiny-parameter runs of the registered benchmarks (records, not perf)."""

    def test_batched_sweep_benchmark_produces_a_record(self):
        result = bench_batched_sweep(n_points=8, reps=1)
        assert result.name == "batched-sweep"
        assert result.points == 8 and result.wall_s > 0

    def test_parallel_sweep_benchmark_produces_a_record(self):
        result = bench_parallel_sweep(n_points=4, n_workers=2, reps=1)
        assert result.name == "parallel-sweep"
        assert result.points == 4 and result.wall_s > 0
        assert result.meta["n_workers"] == 2

    def test_run_benchmarks_validates_names(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            run_benchmarks(["nope"])
