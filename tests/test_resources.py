"""Tests of the stdlib resource sampler and its manifest section."""

import time

from repro.core import flight
from repro.core.flight import FlightRecorder
from repro.core.resources import (
    CPU_PCT_BUCKETS,
    RSS_MB_BUCKETS,
    ResourceSampler,
    resources_section,
    sample_resources,
)
from repro.core.telemetry import Telemetry
from repro.core.tracing import Tracer


class TestSampleResources:
    def test_sample_fields(self):
        sample = sample_resources()
        assert sample["pid"] > 0
        assert sample["rss_bytes"] > 0
        assert sample["max_rss_bytes"] > 0
        assert sample["threads"] >= 1
        assert sample["cpu_user_s"] >= 0.0
        assert sample["cpu_system_s"] >= 0.0
        assert sample["t_unix"] > 0

    def test_cpu_monotone_across_samples(self):
        first = sample_resources()
        sum(i * i for i in range(200_000))  # burn some CPU
        second = sample_resources()
        assert second["cpu_user_s"] + second["cpu_system_s"] >= (
            first["cpu_user_s"] + first["cpu_system_s"]
        )


class TestResourceSampler:
    def test_ticks_fill_telemetry(self):
        tel = Telemetry()
        sampler = ResourceSampler(tel, interval_s=60.0, label="unit")
        sampler.tick()
        sampler.tick()
        snapshot = tel.snapshot()
        assert snapshot["histograms"]["resources.rss_mb"]["count"] == 2
        assert snapshot["histograms"]["resources.rss_mb"]["bounds"] == list(
            RSS_MB_BUCKETS
        )
        assert snapshot["values"]["resources.threads"]["count"] == 2
        assert snapshot["values"]["resources.cpu_s"]["count"] == 2
        # cpu_pct needs a delta, so only the second tick observes it.
        assert snapshot["histograms"]["resources.cpu_pct"]["count"] == 1
        assert snapshot["histograms"]["resources.cpu_pct"]["bounds"] == list(
            CPU_PCT_BUCKETS
        )

    def test_counter_events_on_attached_tracer(self):
        tracer = Tracer(label="unit")
        tel = Telemetry(tracer=tracer)
        ResourceSampler(tel, interval_s=60.0).tick()
        events = tracer.snapshot()["events"]
        counters = [e for e in events if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert {"resources.rss_mb", "resources.threads"} <= names
        assert all(isinstance(v, float) for e in counters for v in e["args"].values())

    def test_flight_ring_entries(self):
        previous = flight.set_recorder(FlightRecorder(capacity=16))
        try:
            ResourceSampler(Telemetry(), interval_s=60.0, label="w-9").tick()
            entries = [
                e
                for e in flight.get_recorder().snapshot()
                if e["kind"] == "resources.sample"
            ]
            assert entries and entries[-1]["label"] == "w-9"
            assert entries[-1]["rss_mb"] > 0
        finally:
            flight.set_recorder(previous)

    def test_start_stop_thread(self):
        tel = Telemetry()
        sampler = ResourceSampler(tel, interval_s=0.01, label="thread")
        with sampler:
            time.sleep(0.08)
        # immediate tick on start, periodic ticks, and a final tick on stop
        assert sampler.samples >= 3
        assert sampler.last["rss_bytes"] > 0
        summary = sampler.summary()
        assert summary["label"] == "thread"
        assert summary["samples"] == sampler.samples

    def test_stop_is_idempotent(self):
        sampler = ResourceSampler(Telemetry(), interval_s=60.0)
        sampler.start()
        sampler.stop()
        count = sampler.samples
        assert count >= 2  # immediate tick on start + final tick on stop
        sampler.stop()
        assert sampler.samples == count  # second stop is a no-op


class TestResourcesSection:
    def test_section_collects_resource_families(self):
        tel = Telemetry()
        sampler = ResourceSampler(tel, interval_s=60.0)
        sampler.tick()
        tel.observe("explore.point_seconds", 0.1)  # non-resource noise
        section = resources_section(tel.snapshot(), sampler=sampler)
        assert set(section["histograms"]) >= {"resources.rss_mb"}
        assert "explore.point_seconds" not in section["histograms"]
        assert set(section["values"]) == {"resources.threads", "resources.cpu_s"}
        assert section["sampler"]["samples"] == 1

    def test_per_worker_attribution_via_merge(self):
        worker_tel = Telemetry()
        ResourceSampler(worker_tel, interval_s=60.0, label="worker-1").tick()
        driver = Telemetry()
        driver.merge(worker_tel.drain_snapshot(label="worker-1"))
        section = resources_section(driver.snapshot())
        assert "worker-1" in section["workers"]
        stats = section["workers"]["worker-1"]["resources.threads"]
        assert stats["count"] == 1 and stats["max"] >= 1.0
