"""Tests of physical constants and unit conversion helpers."""

import math

import pytest

from repro.util import constants


class TestThermal:
    def test_kt_room_magnitude(self):
        assert constants.KT_ROOM == pytest.approx(4.14e-21, rel=0.01)

    def test_thermal_energy_default_matches_kt_room(self):
        assert constants.thermal_energy() == constants.KT_ROOM

    def test_thermal_energy_scales_linearly(self):
        assert constants.thermal_energy(600.3) == pytest.approx(2 * constants.KT_ROOM)

    def test_thermal_energy_rejects_zero(self):
        with pytest.raises(ValueError):
            constants.thermal_energy(0.0)

    def test_thermal_energy_rejects_negative(self):
        with pytest.raises(ValueError):
            constants.thermal_energy(-1.0)

    def test_thermal_voltage_room(self):
        # ~25.9 mV at 300 K.
        assert constants.thermal_voltage() == pytest.approx(25.9e-3, rel=0.01)

    def test_paper_vt_corresponds_to_cooler_extraction(self):
        # Table III lists 25.27 mV, i.e. roughly 293 K.
        assert constants.thermal_voltage(293.2) == pytest.approx(25.27e-3, rel=0.005)


class TestPrefixes:
    def test_prefix_ladder(self):
        assert constants.FEMTO * constants.TERA == pytest.approx(1e-3)
        assert constants.PICO / constants.NANO == pytest.approx(1e-3)
        assert constants.MICRO * constants.MEGA == pytest.approx(1.0)
        assert constants.KILO * constants.MILLI == pytest.approx(1.0)
        assert constants.GIGA * constants.ATTO == pytest.approx(1e-9)


class TestDecibels:
    def test_db_power_ratio(self):
        assert constants.db(10.0) == pytest.approx(10.0)
        assert constants.db(100.0) == pytest.approx(20.0)

    def test_db_amplitude_ratio(self):
        assert constants.db_amplitude(10.0) == pytest.approx(20.0)

    def test_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            constants.db(0.0)
        with pytest.raises(ValueError):
            constants.db_amplitude(-3.0)

    def test_from_db_roundtrip(self):
        for value in (0.1, 1.0, 17.3, 120.0):
            assert constants.from_db(constants.db(value)) == pytest.approx(value)

    def test_from_db_amplitude_roundtrip(self):
        for value in (0.5, 2.0, 1000.0):
            assert constants.from_db_amplitude(
                constants.db_amplitude(value)
            ) == pytest.approx(value)


class TestEnob:
    def test_ideal_8bit_sndr(self):
        assert constants.sndr_from_enob(8.0) == pytest.approx(49.92)

    def test_enob_roundtrip(self):
        for bits in (6.0, 7.5, 12.0):
            assert constants.enob_from_sndr(constants.sndr_from_enob(bits)) == pytest.approx(
                bits
            )

    def test_enob_is_monotone_in_sndr(self):
        assert constants.enob_from_sndr(50.0) > constants.enob_from_sndr(40.0)

    def test_quantization_noise_consistency(self):
        # kT/C-sized cap of the S&H rule equals quantization noise power.
        n, v_fs = 8, 2.0
        c = 12.0 * constants.KT_ROOM * 4.0**n / v_fs**2
        ktc_power = constants.KT_ROOM / c
        quant_power = v_fs**2 / (12.0 * 4.0**n)
        assert ktc_power == pytest.approx(quant_power)


class TestMathHelpers:
    def test_db_of_equal_powers_is_zero(self):
        assert constants.db(1.0) == 0.0

    def test_amplitude_vs_power_db_relation(self):
        ratio = 3.7
        assert constants.db_amplitude(ratio) == pytest.approx(
            constants.db(ratio**2), rel=1e-12
        )

    def test_thermal_voltage_uses_charge(self):
        assert constants.thermal_voltage(300.0) == pytest.approx(
            constants.BOLTZMANN_K * 300.0 / constants.ELEMENTARY_CHARGE
        )
        assert math.isclose(constants.ELEMENTARY_CHARGE, 1.602e-19, rel_tol=1e-3)
