"""Tests of the transmitter and DSP blocks."""

import numpy as np
import pytest

from repro.blocks.dsp import Decimator, FirFilter, Normalizer
from repro.blocks.sources import sine
from repro.blocks.transmitter import Transmitter
from repro.core.block import SimulationContext
from repro.core.signal import Signal


def ctx(seed=0):
    return SimulationContext(seed=seed)


class TestTransmitter:
    def test_passthrough_data(self):
        tx = Transmitter(bits_per_sample=8)
        sig = Signal(np.arange(4, dtype=float), 100.0)
        out = tx.process(sig, ctx())
        np.testing.assert_array_equal(out.data, sig.data)

    def test_counts_bits(self):
        tx = Transmitter(bits_per_sample=8)
        tx.process(Signal(np.zeros(100), 100.0), ctx())
        assert tx.transmitted_bits == 800
        tx.process(Signal(np.zeros(50), 100.0), ctx())
        assert tx.transmitted_bits == 1200

    def test_counts_2d_measurements(self):
        tx = Transmitter(bits_per_sample=6)
        tx.process(Signal(np.zeros((4, 10)), 100.0), ctx())
        assert tx.transmitted_bits == 240

    def test_reset_clears_counter(self):
        tx = Transmitter()
        tx.process(Signal(np.zeros(10), 100.0), ctx())
        tx.reset()
        assert tx.transmitted_bits == 0

    def test_measured_energy_and_power(self):
        tx = Transmitter(bits_per_sample=8, e_bit=1e-9)
        tx.process(Signal(np.zeros(1000), 100.0), ctx())
        assert tx.energy() == pytest.approx(8000e-9)
        assert tx.average_power(10.0) == pytest.approx(800e-9)

    def test_measured_power_matches_model_for_baseline(self, baseline_point):
        """The bit-counting measurement agrees with the Table II estimate."""
        from repro.power.models import transmitter_power

        tx = Transmitter.from_design(baseline_point)
        duration = 10.0
        n_samples = int(duration * baseline_point.f_sample)
        tx.process(Signal(np.zeros(n_samples), baseline_point.f_sample), ctx())
        assert tx.average_power(duration) == pytest.approx(
            transmitter_power(baseline_point), rel=0.01
        )


class TestFirFilter:
    def test_lowpass_attenuates_high_tone(self):
        filt = FirFilter(cutoff=50.0, n_taps=101)
        tone = sine(frequency=400.0, amplitude=1.0, sample_rate=1000.0, n_samples=4096)
        out = filt.process(tone, ctx())
        assert np.std(out.data[200:-200]) < 0.05

    def test_lowpass_passes_low_tone(self):
        filt = FirFilter(cutoff=100.0, n_taps=101)
        tone = sine(frequency=10.0, amplitude=1.0, sample_rate=1000.0, n_samples=4096)
        out = filt.process(tone, ctx())
        assert np.std(out.data[200:-200]) == pytest.approx(np.std(tone.data), rel=0.05)

    def test_bandpass(self):
        filt = FirFilter(cutoff=(40.0, 60.0), n_taps=201)
        inband = sine(frequency=50.0, amplitude=1.0, sample_rate=1000.0, n_samples=4096)
        outband = sine(frequency=200.0, amplitude=1.0, sample_rate=1000.0, n_samples=4096)
        assert np.std(filt.process(inband, ctx()).data[300:-300]) > 0.6
        assert np.std(filt.process(outband, ctx()).data[300:-300]) < 0.05

    def test_length_preserved(self):
        filt = FirFilter(cutoff=100.0, n_taps=31)
        out = filt.process(Signal(np.random.default_rng(0).normal(size=500), 1000.0), ctx())
        assert out.data.size == 500


class TestDecimator:
    def test_rate_and_length(self):
        dec = Decimator(factor=4)
        out = dec.process(Signal(np.zeros(400), 1000.0), ctx())
        assert out.sample_rate == 250.0
        assert out.data.size == 100

    def test_factor_one_identity(self):
        dec = Decimator(factor=1)
        sig = Signal(np.arange(8, dtype=float), 100.0)
        assert dec.process(sig, ctx()) is sig

    def test_antialias(self):
        dec = Decimator(factor=4)
        tone = sine(frequency=450.0, amplitude=1.0, sample_rate=1000.0, n_samples=4000)
        out = dec.process(tone, ctx())
        assert np.std(out.data) < 0.1  # above new Nyquist -> removed


class TestNormalizer:
    def test_explicit_gain(self):
        norm = Normalizer(gain=10.0)
        out = norm.process(Signal(np.full(4, 5.0), 100.0), ctx())
        np.testing.assert_allclose(out.data, 0.5)

    def test_uses_lna_gain_annotation(self):
        norm = Normalizer()
        sig = Signal(np.full(4, 100.0), 100.0, annotations={"lna_gain": 100.0})
        np.testing.assert_allclose(norm.process(sig, ctx()).data, 1.0)

    def test_no_annotation_identity(self):
        norm = Normalizer()
        sig = Signal(np.full(4, 7.0), 100.0)
        np.testing.assert_allclose(norm.process(sig, ctx()).data, 7.0)

    def test_offset(self):
        norm = Normalizer(gain=1.0, offset=-1.0)
        np.testing.assert_allclose(
            norm.process(Signal(np.zeros(3), 1.0), ctx()).data, -1.0
        )
