"""Tests of the SAR ADC model."""

import numpy as np
import pytest

from repro.blocks.sar_adc import SarAdc, ideal_quantize
from repro.blocks.sources import sine
from repro.core.block import SimulationContext
from repro.core.signal import Signal
from repro.metrics.snr import analyze_sine
from repro.util.rng import make_rng


def run_block(block, signal, seed=0):
    return block.process(signal, SimulationContext(seed=seed))


class TestIdealQuantize:
    def test_quantization_step(self):
        out = ideal_quantize(np.array([0.0]), n_bits=8, v_fs=2.0)
        lsb = 2.0 / 256
        # Mid-tread reconstruction sits on a half-LSB grid.
        assert abs(out[0]) <= lsb

    def test_clipping_at_rails(self):
        out = ideal_quantize(np.array([10.0, -10.0]), n_bits=4, v_fs=2.0)
        assert out[0] <= 1.0
        assert out[1] >= -1.0

    def test_error_bounded_by_lsb(self, rng):
        data = rng.uniform(-0.9, 0.9, size=1000)
        out = ideal_quantize(data, n_bits=8, v_fs=2.0)
        assert np.max(np.abs(out - data)) <= 2.0 / 256

    def test_more_bits_less_error(self, rng):
        data = rng.uniform(-0.9, 0.9, size=1000)
        err6 = np.std(ideal_quantize(data, 6, 2.0) - data)
        err10 = np.std(ideal_quantize(data, 10, 2.0) - data)
        assert err10 < err6 / 10


class TestIdealSar:
    def test_matches_ideal_quantizer(self, rng):
        adc = SarAdc(n_bits=8, v_fs=2.0)
        data = rng.uniform(-0.99, 0.99, size=2000)
        converted = adc.convert(data, make_rng(0))
        reference = ideal_quantize(data, 8, 2.0)
        np.testing.assert_allclose(converted, reference, atol=2.0 / 256 + 1e-12)

    def test_quantization_error_below_lsb(self, rng):
        adc = SarAdc(n_bits=8, v_fs=2.0)
        data = rng.uniform(-0.99, 0.99, size=500)
        out = adc.convert(data, make_rng(0))
        assert np.max(np.abs(out - data)) <= 2.0 / 256

    def test_sndr_near_ideal_8bit(self):
        adc = SarAdc(n_bits=8, v_fs=2.0)
        tone = sine(frequency=41.0, amplitude=0.99, sample_rate=4096.0, n_samples=8192)
        out = run_block(adc, tone)
        analysis = analyze_sine(out.data)
        assert analysis.sndr_db == pytest.approx(49.9, abs=2.5)

    def test_preserves_shape(self):
        adc = SarAdc(n_bits=6)
        out = adc.convert(np.zeros((3, 5)), make_rng(0))
        assert out.shape == (3, 5)

    def test_saturation(self):
        adc = SarAdc(n_bits=8, v_fs=2.0)
        out = adc.convert(np.array([5.0, -5.0]), make_rng(0))
        assert out[0] <= 1.0
        assert out[1] >= -1.0

    def test_codes_range(self, rng):
        adc = SarAdc(n_bits=6, v_fs=2.0)
        codes = adc.codes(rng.uniform(-2, 2, size=300))
        assert codes.min() >= 0
        assert codes.max() <= 63

    def test_domain_marked_digital(self):
        adc = SarAdc(n_bits=8)
        out = run_block(adc, Signal(np.zeros(8), 1000.0))
        assert out.domain == "digital"
        assert out.annotations["adc_bits"] == 8


class TestComparatorNoise:
    def test_noise_degrades_sndr(self):
        tone = sine(frequency=41.0, amplitude=0.99, sample_rate=4096.0, n_samples=8192)
        clean = analyze_sine(run_block(SarAdc(n_bits=8), tone).data).sndr_db
        noisy_adc = SarAdc(n_bits=8, comparator_noise_rms=0.05)
        noisy = analyze_sine(run_block(noisy_adc, tone).data).sndr_db
        assert noisy < clean - 6

    def test_noise_reproducible(self):
        adc = SarAdc(n_bits=8, comparator_noise_rms=0.01)
        sig = Signal(np.linspace(-0.5, 0.5, 64), 1000.0)
        a = run_block(adc, sig, seed=5).data
        b = run_block(adc, sig, seed=5).data
        np.testing.assert_array_equal(a, b)


class TestDacMismatch:
    def test_mismatch_creates_static_inl(self):
        ideal = SarAdc(n_bits=8)
        skewed = SarAdc(n_bits=8, dac_mismatch_sigma=0.05, mismatch_seed=3)
        ramp = np.linspace(-0.99, 0.99, 4000)
        out_ideal = ideal.convert(ramp, make_rng(0))
        out_skewed = skewed.convert(ramp, make_rng(0))
        assert np.max(np.abs(out_skewed - out_ideal)) > 2.0 / 256

    def test_mismatch_instance_reproducible(self):
        a = SarAdc(n_bits=8, dac_mismatch_sigma=0.02, mismatch_seed=3)
        b = SarAdc(n_bits=8, dac_mismatch_sigma=0.02, mismatch_seed=3)
        ramp = np.linspace(-0.9, 0.9, 100)
        np.testing.assert_array_equal(a.convert(ramp, make_rng(0)), b.convert(ramp, make_rng(0)))

    def test_distinct_instances_differ(self):
        a = SarAdc(n_bits=8, dac_mismatch_sigma=0.05, mismatch_seed=3)
        b = SarAdc(n_bits=8, dac_mismatch_sigma=0.05, mismatch_seed=4)
        ramp = np.linspace(-0.9, 0.9, 400)
        assert not np.array_equal(a.convert(ramp, make_rng(0)), b.convert(ramp, make_rng(0)))

    def test_static_transfer_monotone_count(self):
        adc = SarAdc(n_bits=6, dac_mismatch_sigma=0.01, mismatch_seed=1)
        thresholds = adc.static_transfer()
        assert thresholds.size == 2**6 - 1
        assert np.all(np.diff(thresholds) >= -1e-12)  # sorted by construction


class TestFromDesign:
    def test_wires_resolution_and_noise(self, baseline_point):
        adc = SarAdc.from_design(baseline_point, seed=1)
        assert adc.n_bits == baseline_point.n_bits
        assert adc.v_fs == baseline_point.v_fs
        assert adc.comparator_noise_rms == pytest.approx(adc.lsb / 4)

    def test_power_rows(self, baseline_point):
        adc = SarAdc.from_design(baseline_point, seed=1)
        rows = adc.power(baseline_point)
        assert set(rows) == {"comparator", "sar_logic", "dac", "leakage"}
        assert all(v >= 0 for v in rows.values())
