"""Cache-key policy across kernel backends.

The contract (registry docstring, ``FrontEndEvaluator.fingerprint``):
exact backends are bit-identical to the reference, so evaluation-cache
keys stay backend-invariant — warm caches survive enabling an exact
accelerator.  Documented-tolerance backends qualify the fingerprint, so
their results can never be served to (or from) a run on a different
backend.  The Reconstructor's content-keyed dictionary cache likewise
carries the active backend so a mid-process swap misses instead of
reusing another backend's entry.
"""

import numpy as np
import pytest

from repro.core.execution import EvaluationCache, evaluator_fingerprint
from repro.core.explorer import Evaluation, FrontEndEvaluator
from repro.cs.dictionaries import dct_basis
from repro.cs.reconstruction import Reconstructor
from repro.kernels import KernelBackend, registry
from repro.kernels import numpy_backend
from repro.power.technology import DesignPoint

F_SAMPLE = 2.1 * 256.0


@pytest.fixture
def evaluator():
    records = np.random.default_rng(5).normal(0.0, 20e-6, size=(2, 384))
    return FrontEndEvaluator(records, None, F_SAMPLE, seed=13)


@pytest.fixture
def fake_backends():
    """Register an exact and a tolerance fake backend; clean up after."""
    exact = KernelBackend(
        name="fake-exact", kernels={"fista": numpy_backend.fista}, exact=True
    )
    tolerance = KernelBackend(
        name="fake-tol", kernels={"fista": numpy_backend.fista}, exact=False, rtol=1e-6
    )
    registry.register(exact)
    registry.register(tolerance)
    try:
        yield exact, tolerance
    finally:
        registry.unregister("fake-exact")
        registry.unregister("fake-tol")


class TestEvaluatorFingerprint:
    def test_backend_invariant_for_exact_backends(self, evaluator, fake_backends):
        baseline = evaluator.fingerprint()
        with registry.use_backend("fake-exact"):
            assert evaluator.fingerprint() == baseline

    def test_qualified_for_tolerance_backends(self, evaluator, fake_backends):
        baseline = evaluator.fingerprint()
        with registry.use_backend("fake-tol"):
            qualified = evaluator.fingerprint()
        assert qualified != baseline
        # Restored selection restores the key.
        assert evaluator.fingerprint() == baseline

    def test_unavailable_tolerance_backend_is_effectively_reference(self, evaluator):
        ghost = KernelBackend(name="fake-ghost", kernels={}, available=False, rtol=1e-6)
        registry.register(ghost)
        try:
            baseline = evaluator.fingerprint()
            with registry.use_backend("fake-ghost"):
                # Nothing can dispatch off-reference: keys stay shared.
                assert evaluator.fingerprint() == baseline
        finally:
            registry.unregister("fake-ghost")


class TestEvaluationCacheIsolation:
    def _evaluation(self):
        return Evaluation(
            point=DesignPoint(), metrics={"snr_db": 12.0}, breakdown={}, error=None
        )

    def test_exact_backend_shares_cached_evaluations(
        self, tmp_path, evaluator, fake_backends
    ):
        cache = EvaluationCache(tmp_path)
        point = DesignPoint()
        cache.put(evaluator_fingerprint(evaluator), point, self._evaluation())
        with registry.use_backend("fake-exact"):
            hit = cache.get(evaluator_fingerprint(evaluator), point)
        assert hit is not None and hit.metrics["snr_db"] == 12.0

    def test_tolerance_backend_is_isolated_both_ways(
        self, tmp_path, evaluator, fake_backends
    ):
        cache = EvaluationCache(tmp_path)
        point = DesignPoint()
        cache.put(evaluator_fingerprint(evaluator), point, self._evaluation())
        with registry.use_backend("fake-tol"):
            assert cache.get(evaluator_fingerprint(evaluator), point) is None
            cache.put(evaluator_fingerprint(evaluator), point, self._evaluation())
        # The tolerance entry must not leak back to the reference key
        # (both entries coexist under their own fingerprints).
        assert cache.get(evaluator_fingerprint(evaluator), point) is not None
        assert len(list(tmp_path.glob("*.json"))) == 2


class TestReconstructorDictionaryCache:
    """Regression: the content-keyed A = Phi @ Psi cache is per-backend."""

    def _phi(self):
        rng = np.random.default_rng(3)
        phi = (rng.random((24, 96)) < 0.1).astype(np.float64)
        phi[:, 0] = 1.0  # ensure non-degenerate
        return phi

    def test_backend_swap_misses_dictionary_cache(self, fake_backends):
        recon = Reconstructor(basis=dct_basis(96), method="fista", n_iter=5)
        phi = self._phi()
        y = np.random.default_rng(4).normal(size=24)
        recon.recover(phi, y)
        (key_numpy,) = recon._cache
        with registry.use_backend("fake-tol"):
            recon.recover(phi, y)
            (key_tol,) = recon._cache
        assert key_numpy != key_tol
        assert key_numpy[:2] == key_tol[:2]  # same content, different backend
        assert key_numpy[2] == "numpy" and key_tol[2] == "fake-tol"

    def test_swap_back_restores_original_key(self, fake_backends):
        recon = Reconstructor(basis=dct_basis(96), method="fista", n_iter=5)
        phi = self._phi()
        y = np.random.default_rng(4).normal(size=24)
        recon.recover(phi, y)
        (key_before,) = recon._cache
        with registry.use_backend("fake-tol"):
            recon.recover(phi, y)
        recon.recover(phi, y)
        (key_after,) = recon._cache
        assert key_before == key_after

    def test_recovered_signal_identical_across_exact_swap(self, fake_backends):
        recon = Reconstructor(basis=dct_basis(96), method="fista", n_iter=40)
        phi = self._phi()
        y = np.random.default_rng(4).normal(size=24)
        reference = recon.recover(phi, y)
        with registry.use_backend("fake-exact"):
            swapped = recon.recover(phi, y)
        np.testing.assert_array_equal(swapped, reference)
