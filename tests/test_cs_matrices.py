"""Tests of the sensing-matrix constructions."""

import numpy as np
import pytest

from repro.cs.matrices import (
    SensingMatrix,
    bernoulli,
    gaussian,
    make_sensing_matrix,
    srbm,
    srbm_balanced,
)


class TestSrbm:
    def test_exact_column_sparsity(self):
        mat = srbm(16, 64, sparsity=2, seed=1)
        assert np.all(np.count_nonzero(mat.phi, axis=0) == 2)

    def test_entries_are_binary(self):
        mat = srbm(16, 64, sparsity=3, seed=1)
        assert set(np.unique(mat.phi)).issubset({0.0, 1.0})

    def test_deterministic_given_seed(self):
        a = srbm(8, 32, 2, seed=5)
        b = srbm(8, 32, 2, seed=5)
        np.testing.assert_array_equal(a.phi, b.phi)

    def test_seed_changes_matrix(self):
        assert not np.array_equal(srbm(8, 32, 2, seed=5).phi, srbm(8, 32, 2, seed=6).phi)

    def test_rejects_sparsity_above_m(self):
        with pytest.raises(ValueError):
            srbm(4, 16, sparsity=5)

    def test_rejects_tall_matrix(self):
        with pytest.raises(ValueError):
            srbm(32, 16)

    def test_paper_dimensions(self):
        for m in (75, 150, 192):
            mat = srbm(m, 384, 2, seed=m)
            assert mat.phi.shape == (m, 384)
            assert mat.compression_ratio == pytest.approx(384 / m)


class TestSrbmBalanced:
    def test_row_degrees_within_one(self):
        mat = srbm_balanced(16, 64, sparsity=2, seed=1)
        degrees = mat.row_degrees()
        assert degrees.max() - degrees.min() <= 1

    def test_column_sparsity_preserved(self):
        mat = srbm_balanced(16, 64, sparsity=2, seed=1)
        assert np.all(np.count_nonzero(mat.phi, axis=0) == 2)

    def test_deterministic(self):
        a = srbm_balanced(12, 48, 2, seed=3)
        b = srbm_balanced(12, 48, 2, seed=3)
        np.testing.assert_array_equal(a.phi, b.phi)

    def test_paper_geometry_balanced(self):
        mat = srbm_balanced(150, 384, 2, seed=9)
        degrees = mat.row_degrees()
        # 384*2/150 = 5.12 -> rows hold 5 or 6 samples.
        assert set(degrees.tolist()).issubset({5, 6})


class TestDenseMatrices:
    def test_gaussian_variance(self):
        mat = gaussian(64, 256, seed=2)
        assert np.var(mat.phi) == pytest.approx(1 / 64, rel=0.1)

    def test_bernoulli_entries(self):
        mat = bernoulli(16, 64, seed=2)
        assert set(np.round(np.unique(mat.phi) * 4, 6)) == {-1.0, 1.0}

    def test_dense_have_no_sparsity(self):
        assert gaussian(8, 32, seed=1).sparsity is None
        assert bernoulli(8, 32, seed=1).sparsity is None


class TestSensingMatrixApi:
    def test_measure_single_vector(self):
        mat = srbm(8, 32, 2, seed=1)
        x = np.arange(32, dtype=float)
        np.testing.assert_allclose(mat.measure(x), mat.phi @ x)

    def test_measure_batch(self):
        mat = srbm(8, 32, 2, seed=1)
        batch = np.random.default_rng(0).normal(size=(5, 32))
        np.testing.assert_allclose(mat.measure(batch), batch @ mat.phi.T)

    def test_measure_rejects_3d(self):
        mat = srbm(8, 32, 2, seed=1)
        with pytest.raises(ValueError):
            mat.measure(np.zeros((2, 2, 32)))

    def test_column_support_matches_phi(self):
        mat = srbm(8, 32, 2, seed=1)
        support = mat.column_support()
        for j, rows in enumerate(support):
            assert np.all(mat.phi[rows, j] == 1.0)
            assert len(rows) == 2

    def test_mutual_coherence_in_unit_interval(self):
        mat = gaussian(32, 128, seed=1)
        mu = mat.mutual_coherence()
        assert 0.0 < mu < 1.0

    def test_coherence_with_basis(self):
        from repro.cs.dictionaries import dct_basis

        mat = srbm_balanced(32, 128, 2, seed=1)
        assert 0.0 < mat.mutual_coherence(dct_basis(128)) <= 1.0

    def test_rejects_square_matrix(self):
        with pytest.raises(ValueError):
            SensingMatrix(phi=np.eye(4), kind="x", sparsity=None, seed=None)


class TestFactory:
    def test_kinds(self):
        assert make_sensing_matrix("srbm", 8, 32, seed=1).kind == "srbm-balanced"
        assert make_sensing_matrix("srbm", 8, 32, seed=1, balanced=False).kind == "srbm"
        assert make_sensing_matrix("gaussian", 8, 32, seed=1).kind == "gaussian"
        assert make_sensing_matrix("bernoulli", 8, 32, seed=1).kind == "bernoulli"

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown"):
            make_sensing_matrix("fourier", 8, 32)
