"""Tests of the sparsifying dictionaries (DCT, wavelets)."""

import numpy as np
import pytest

from repro.cs.dictionaries import (
    WAVELET_FILTERS,
    dct_basis,
    identity_basis,
    make_basis,
    wavelet_basis,
)


class TestDctBasis:
    @pytest.mark.parametrize("n", [4, 16, 64, 384])
    def test_orthonormal(self, n):
        psi = dct_basis(n)
        np.testing.assert_allclose(psi.T @ psi, np.eye(n), atol=1e-10)

    def test_first_column_is_dc(self):
        psi = dct_basis(32)
        np.testing.assert_allclose(psi[:, 0], np.full(32, 1 / np.sqrt(32)))

    def test_pure_cosine_is_one_sparse(self):
        n = 64
        psi = dct_basis(n)
        t = np.arange(n)
        k = 5
        x = np.cos(np.pi * (2 * t + 1) * k / (2 * n))
        alpha = psi.T @ x
        dominant = np.argmax(np.abs(alpha))
        assert dominant == k
        others = np.delete(np.abs(alpha), dominant)
        assert np.max(others) < 1e-10 * np.abs(alpha[dominant])

    def test_energy_preservation(self, rng):
        psi = dct_basis(128)
        x = rng.normal(size=128)
        assert np.linalg.norm(psi.T @ x) == pytest.approx(np.linalg.norm(x))


class TestWaveletBasis:
    @pytest.mark.parametrize("wavelet", sorted(WAVELET_FILTERS))
    def test_orthonormal_all_filters(self, wavelet):
        psi = wavelet_basis(64, wavelet)
        np.testing.assert_allclose(psi.T @ psi, np.eye(64), atol=1e-9)

    def test_paper_frame_length(self):
        psi = wavelet_basis(384, "db4")
        np.testing.assert_allclose(psi.T @ psi, np.eye(384), atol=1e-9)

    def test_haar_two_sample_analysis(self):
        psi = wavelet_basis(2, "haar", levels=1)
        x = np.array([3.0, 1.0])
        coeffs = psi.T @ x
        assert coeffs[0] == pytest.approx(4 / np.sqrt(2))  # approximation
        assert coeffs[1] == pytest.approx(2 / np.sqrt(2))  # detail

    def test_constant_signal_concentrates_in_approximation(self):
        psi = wavelet_basis(64, "db4", levels=3)
        alpha = psi.T @ np.ones(64)
        # All energy must land in the 64/8 = 8 approximation coefficients.
        assert np.sum(alpha[:8] ** 2) == pytest.approx(64.0, rel=1e-9)
        assert np.max(np.abs(alpha[8:])) < 1e-9

    def test_levels_limited_by_length(self):
        with pytest.raises(ValueError, match="levels"):
            wavelet_basis(32, "db4", levels=5)

    def test_unknown_wavelet(self):
        with pytest.raises(ValueError, match="unknown wavelet"):
            wavelet_basis(64, "sym9")

    def test_filters_have_unit_energy(self):
        for name, h in WAVELET_FILTERS.items():
            assert np.sum(h**2) == pytest.approx(1.0, abs=1e-9), name

    def test_filters_sum_to_sqrt2(self):
        # Orthogonal scaling filters satisfy sum(h) = sqrt(2).
        for name, h in WAVELET_FILTERS.items():
            assert np.sum(h) == pytest.approx(np.sqrt(2.0), abs=1e-9), name


class TestFactory:
    def test_identity(self):
        np.testing.assert_array_equal(make_basis("identity", 8), np.eye(8))
        np.testing.assert_array_equal(identity_basis(8), np.eye(8))

    def test_dct(self):
        np.testing.assert_array_equal(make_basis("dct", 16), dct_basis(16))

    def test_wavelet_pass_through(self):
        np.testing.assert_array_equal(
            make_basis("haar", 16, levels=2), wavelet_basis(16, "haar", levels=2)
        )

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown basis"):
            make_basis("fourier", 16)


class TestCompressibility:
    """The property CS reconstruction relies on: EEG-like signals are
    compressible in these bases."""

    def test_synthetic_eeg_is_dct_compressible(self):
        from repro.eeg.synthetic import SyntheticEegConfig, generate_background
        from repro.util.rng import make_rng

        config = SyntheticEegConfig()
        signal = generate_background(config, make_rng(3))[:384]
        psi = dct_basis(384)
        alpha = np.sort(np.abs(psi.T @ signal))[::-1]
        energy = np.cumsum(alpha**2) / np.sum(alpha**2)
        # 15 % of coefficients must carry > 95 % of the energy.
        assert energy[int(0.15 * 384)] > 0.95

    def test_synthetic_eeg_is_db4_compressible(self):
        from repro.eeg.synthetic import SyntheticEegConfig, generate_background
        from repro.util.rng import make_rng

        config = SyntheticEegConfig()
        signal = generate_background(config, make_rng(3))[:384]
        psi = wavelet_basis(384, "db4")
        alpha = np.sort(np.abs(psi.T @ signal))[::-1]
        energy = np.cumsum(alpha**2) / np.sum(alpha**2)
        assert energy[int(0.15 * 384)] > 0.95
