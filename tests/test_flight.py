"""Tests of the crash flight recorder and its dump triggers."""

import json

import pytest

from repro.core import flight
from repro.core.execution import ExecutionPolicy, evaluate_one
from repro.core.flight import (
    DEFAULT_FLIGHT_CAPACITY,
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
)
from repro.core.results import Evaluation
from repro.core.telemetry import Telemetry
from repro.power.technology import DesignPoint


@pytest.fixture
def recorder(tmp_path):
    """A fresh recorder installed as the process global for the test."""
    fresh = FlightRecorder(capacity=8, directory=tmp_path / "dumps")
    previous = flight.set_recorder(fresh)
    yield fresh
    flight.set_recorder(previous)


class TestRing:
    def test_record_is_bounded(self, recorder):
        for i in range(20):
            recorder.record("tick", i=i)
        events = recorder.snapshot()
        assert len(events) == 8  # capacity, not total
        assert recorder.recorded == 20
        assert [e["i"] for e in events] == list(range(12, 20))

    def test_entries_are_stamped(self, recorder):
        recorder.record("lease", worker="w-1")
        (entry,) = recorder.snapshot()
        assert entry["kind"] == "lease"
        assert entry["worker"] == "w-1"
        assert entry["t_unix"] > 0
        assert isinstance(entry["pid"], int)

    def test_note_taps_preshaped_payloads(self, recorder):
        recorder.note({"kind": "explore.progress", "done": 3})
        (entry,) = recorder.snapshot()
        assert entry["done"] == 3
        assert "t_unix" in entry and "pid" in entry

    def test_telemetry_events_reach_the_ring(self, recorder):
        tel = Telemetry()
        tel.event("fleet.lease", action="grant", lease="L1")
        kinds = [e["kind"] for e in recorder.snapshot()]
        assert "fleet.lease" in kinds

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_FLIGHT_CAPACITY


class TestDump:
    def test_dump_writes_schema_and_ring(self, recorder):
        recorder.record("setup", phase="one")
        recorder.record("fail", reason="boom")
        path = recorder.dump("unit-test", detail="why", extra=7)
        assert path is not None and path.exists()
        assert path.name.startswith("flight-") and path.suffix == ".json"
        payload = json.loads(path.read_text())
        assert payload["version"] == FLIGHT_SCHEMA_VERSION
        assert payload["trigger"] == "unit-test"
        assert payload["detail"] == "why"
        assert payload["context"] == {"extra": 7}
        assert [e["kind"] for e in payload["events"]] == ["setup", "fail"]
        # The dump carries a live resource snapshot for context.
        assert payload["resources"]["rss_bytes"] > 0

    def test_dump_rate_limited(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path, max_dumps=2)
        assert recorder.dump("a") is not None
        assert recorder.dump("b") is not None
        assert recorder.dump("c") is None  # budget exhausted
        assert len(list(tmp_path.glob("flight-*.json"))) == 2

    def test_env_kill_switch(self, recorder, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT", "0")
        assert not recorder.enabled
        assert recorder.dump("suppressed") is None

    def test_env_dir_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path / "via-env"))
        recorder = FlightRecorder()  # no explicit directory
        path = recorder.dump("env-dir")
        assert path is not None
        assert path.parent == tmp_path / "via-env"

    def test_configure_keeps_ring_contents(self, recorder):
        for i in range(5):
            flight.record("tick", i=i)
        flight.configure(capacity=3)
        assert [e["i"] for e in recorder.snapshot()] == [2, 3, 4]


class TestTimeoutTrigger:
    def test_point_timeout_dumps_flight_artifact(self, recorder):
        def hang(point):
            import time as _time

            _time.sleep(5.0)
            return Evaluation(point=point, metrics={})  # pragma: no cover

        point = DesignPoint(n_bits=8, lna_noise_rms=2e-6)
        evaluation = evaluate_one(
            hang, point, strict=False, policy=ExecutionPolicy(timeout_s=0.05)
        )
        assert evaluation.error is not None and "Timeout" in evaluation.error
        dumps = list((recorder.directory).glob("flight-*.json"))
        assert len(dumps) == 1
        payload = json.loads(dumps[0].read_text())
        assert payload["trigger"] == "point-timeout"
        assert payload["context"]["point"] == point.describe()
        assert any(e["kind"] == "point.timeout" for e in payload["events"])
