"""Tests of hardened sweep execution: timeouts, retries, crash recovery."""

import os
import pickle
import time
from dataclasses import dataclass

import pytest

from repro.core.execution import (
    DEFAULT_POLICY,
    CheckpointLockedError,
    EvaluationCache,
    EvaluationTimeout,
    ExecutionPolicy,
    PointEvaluationError,
    SweepCheckpoint,
    evaluate_one,
)
from repro.core.explorer import DesignSpaceExplorer
from repro.core.telemetry import Telemetry
from repro.power.technology import DesignPoint
from tests.test_parallel_explorer import (
    FailingEvaluator,
    ToyEvaluator,
    assert_sweeps_identical,
)

POINTS = [DesignPoint(n_bits=n) for n in (6, 7, 8, 9)]
BAD_BITS = 7


@dataclass(frozen=True)
class HangingEvaluator:
    """Sleeps far past any test timeout on the marked resolution."""

    bad_bits: int = BAD_BITS
    sleep_s: float = 5.0

    def fingerprint(self) -> str:
        return f"hanging:{self.bad_bits}"

    def __call__(self, point):
        if point.n_bits == self.bad_bits:
            time.sleep(self.sleep_s)
        return ToyEvaluator()(point)


@dataclass(frozen=True)
class FlakyEvaluator:
    """Fails the marked point until ``fail_times`` attempts are recorded.

    The attempt counter is a file so retries are visible across worker
    processes as well as in-process.
    """

    counter_dir: str
    bad_bits: int = BAD_BITS
    fail_times: int = 2

    def fingerprint(self) -> str:
        return f"flaky:{self.bad_bits}:{self.fail_times}"

    def __call__(self, point):
        if point.n_bits == self.bad_bits:
            counter = os.path.join(self.counter_dir, "attempts")
            with open(counter, "ab") as handle:
                handle.write(b"x")
            if os.path.getsize(counter) <= self.fail_times:
                raise RuntimeError("transient wobble")
        return ToyEvaluator()(point)


@dataclass(frozen=True)
class KamikazeEvaluator:
    """Kills its own process on the marked point.

    With ``crash_once`` the first attempt leaves a flag file behind, so the
    re-dispatched chunk succeeds after the pool is rebuilt.  Without it the
    point crashes every worker that touches it.
    """

    flag_dir: str
    bad_bits: int = BAD_BITS
    crash_once: bool = True

    def fingerprint(self) -> str:
        return f"kamikaze:{self.bad_bits}:{self.crash_once}"

    def __call__(self, point):
        if point.n_bits == self.bad_bits:
            flag = os.path.join(self.flag_dir, "crashed")
            if not (self.crash_once and os.path.exists(flag)):
                with open(flag, "w") as handle:
                    handle.write(str(os.getpid()))
                os._exit(17)
        return ToyEvaluator()(point)


@dataclass(frozen=True)
class InterruptOnceEvaluator:
    """Raises KeyboardInterrupt on the marked point, once."""

    flag_dir: str
    bad_bits: int = BAD_BITS

    def fingerprint(self) -> str:
        return f"interrupt-once:{self.bad_bits}"

    def __call__(self, point):
        if point.n_bits == self.bad_bits:
            flag = os.path.join(self.flag_dir, "interrupted")
            if not os.path.exists(flag):
                with open(flag, "w") as handle:
                    handle.write("1")
                raise KeyboardInterrupt
        return ToyEvaluator()(point)


def clean_reference():
    return DesignSpaceExplorer(ToyEvaluator()).explore(POINTS)


class TestExecutionPolicy:
    def test_defaults_are_permissive(self):
        assert DEFAULT_POLICY.timeout_s is None
        assert DEFAULT_POLICY.retries == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_s": 0.0},
            {"timeout_s": -1.0},
            {"retries": -1},
            {"retry_backoff_s": -0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs)

    def test_explore_rejects_policy_plus_shorthand(self):
        explorer = DesignSpaceExplorer(ToyEvaluator())
        with pytest.raises(ValueError, match="not both"):
            explorer.explore(
                POINTS, policy=ExecutionPolicy(retries=1), retries=2
            )


class TestTimeouts:
    @pytest.mark.parametrize("executor_kwargs", [
        {},
        {"executor": "thread", "n_workers": 2},
        {"executor": "process", "n_workers": 2},
    ], ids=["serial", "thread", "process"])
    def test_hung_point_fails_others_match_clean(self, executor_kwargs):
        tel = Telemetry()
        explorer = DesignSpaceExplorer(HangingEvaluator())
        result = explorer.explore(
            POINTS, timeout_s=0.3, telemetry=tel, **executor_kwargs
        )
        reference = clean_reference()
        for left, right in zip(reference, result):
            if right.point.n_bits == BAD_BITS:
                assert right.error is not None
                assert "EvaluationTimeout" in right.error
            else:
                assert left.metrics == right.metrics
                assert right.error is None
        if not executor_kwargs:  # telemetry counters are in-process only
            assert tel.counters["explore.timeouts"] == 1

    def test_strict_timeout_raises_with_point_description(self):
        explorer = DesignSpaceExplorer(HangingEvaluator())
        bad = [DesignPoint(n_bits=BAD_BITS)]
        with pytest.raises(PointEvaluationError) as excinfo:
            explorer.explore(bad, timeout_s=0.2, strict=True)
        assert bad[0].describe() in str(excinfo.value)
        assert "EvaluationTimeout" in str(excinfo.value)

    def test_timeouts_not_retried_by_default(self):
        policy = ExecutionPolicy(timeout_s=0.2, retries=3, retry_backoff_s=0.0)
        start = time.monotonic()
        evaluation = evaluate_one(
            HangingEvaluator(), DesignPoint(n_bits=BAD_BITS),
            strict=False, policy=policy,
        )
        elapsed = time.monotonic() - start
        assert "EvaluationTimeout" in evaluation.error
        assert elapsed < 1.0  # one attempt, not four


class TestRetries:
    def test_flaky_point_recovers_serial(self, tmp_path):
        tel = Telemetry()
        evaluator = FlakyEvaluator(counter_dir=str(tmp_path))
        explorer = DesignSpaceExplorer(evaluator)
        result = explorer.explore(
            POINTS, retries=2, retry_backoff_s=0.0, telemetry=tel
        )
        assert not result.failures()
        assert_sweeps_identical(clean_reference(), result)
        assert tel.counters["explore.retries"] == 2

    def test_flaky_point_recovers_in_process_pool(self, tmp_path):
        evaluator = FlakyEvaluator(counter_dir=str(tmp_path))
        explorer = DesignSpaceExplorer(evaluator)
        result = explorer.explore(
            POINTS, retries=2, retry_backoff_s=0.0,
            executor="process", n_workers=2,
        )
        assert not result.failures()
        assert_sweeps_identical(clean_reference(), result)

    def test_exhausted_retries_report_last_error(self, tmp_path):
        evaluator = FlakyEvaluator(counter_dir=str(tmp_path), fail_times=5)
        result = DesignSpaceExplorer(evaluator).explore(
            POINTS, retries=1, retry_backoff_s=0.0
        )
        failures = result.failures()
        assert len(failures) == 1
        assert "transient wobble" in failures[0].error


class TestStrictParallelErrors:
    def test_error_carries_point_description(self):
        explorer = DesignSpaceExplorer(FailingEvaluator())
        bad_points = [DesignPoint(n_bits=BAD_BITS)]
        with pytest.raises(PointEvaluationError) as excinfo:
            explorer.explore(
                bad_points, strict=True, executor="process", n_workers=2
            )
        assert bad_points[0].describe() in str(excinfo.value)
        assert "7-bit" in str(excinfo.value)

    def test_point_evaluation_error_pickles(self):
        error = PointEvaluationError("n_bits=7", "RuntimeError: boom")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, PointEvaluationError)
        assert clone.point_description == "n_bits=7"
        assert "n_bits=7" in str(clone)


class TestWorkerCrashes:
    def test_pool_restart_recovers_crash_once(self, tmp_path):
        tel = Telemetry()
        evaluator = KamikazeEvaluator(flag_dir=str(tmp_path))
        explorer = DesignSpaceExplorer(evaluator)
        result = explorer.explore(
            POINTS, executor="process", n_workers=2, chunk_size=1,
            telemetry=tel,
        )
        assert not result.failures()
        assert_sweeps_identical(clean_reference(), result)
        assert tel.counters["explore.pool_restarts"] >= 1

    def test_persistent_crasher_is_isolated_and_named(self, tmp_path):
        tel = Telemetry()
        evaluator = KamikazeEvaluator(flag_dir=str(tmp_path), crash_once=False)
        explorer = DesignSpaceExplorer(evaluator)
        result = explorer.explore(
            POINTS, executor="process", n_workers=2, chunk_size=1,
            telemetry=tel,
        )
        reference = clean_reference()
        failures = result.failures()
        assert len(failures) == 1
        assert failures[0].point.n_bits == BAD_BITS
        assert failures[0].error.startswith("WorkerCrashed")
        for left, right in zip(reference, result):
            if right.point.n_bits != BAD_BITS:
                assert left.metrics == right.metrics
        assert tel.counters["explore.worker_crashes"] == 1

    def test_strict_mode_reraises_pool_break(self, tmp_path):
        from concurrent.futures.process import BrokenProcessPool

        evaluator = KamikazeEvaluator(flag_dir=str(tmp_path), crash_once=False)
        explorer = DesignSpaceExplorer(evaluator)
        with pytest.raises(BrokenProcessPool):
            explorer.explore(
                POINTS, strict=True, executor="process", n_workers=2,
                chunk_size=1,
            )


class TestInterrupt:
    def test_partial_results_kept_and_resume_completes(self, tmp_path):
        tel = Telemetry()
        ckpt = tmp_path / "sweep.jsonl"
        evaluator = InterruptOnceEvaluator(flag_dir=str(tmp_path))
        explorer = DesignSpaceExplorer(evaluator)
        partial = explorer.explore(
            POINTS, checkpoint=str(ckpt), telemetry=tel
        )
        assert tel.counters["explore.interrupted"] == 1
        by_bits = {e.point.n_bits: e for e in partial}
        assert by_bits[6].error is None  # evaluated before the interrupt
        for n in (7, 8, 9):
            assert by_bits[n].error is not None
            assert by_bits[n].error.startswith("Interrupted")
        # Interrupted slots were NOT checkpointed, so the resumed sweep
        # evaluates them and matches a clean run exactly.
        resumed = explorer.explore(POINTS, checkpoint=str(ckpt))
        assert_sweeps_identical(clean_reference(), resumed)

    def test_strict_mode_reraises_interrupt(self, tmp_path):
        evaluator = InterruptOnceEvaluator(flag_dir=str(tmp_path))
        explorer = DesignSpaceExplorer(evaluator)
        with pytest.raises(KeyboardInterrupt):
            explorer.explore(POINTS, strict=True)


class TestCheckpointLock:
    def test_concurrent_sweep_fails_fast(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        holder = SweepCheckpoint(path)
        holder.acquire()
        try:
            with pytest.raises(CheckpointLockedError):
                DesignSpaceExplorer(ToyEvaluator()).explore(
                    POINTS, checkpoint=str(path)
                )
        finally:
            holder.close()

    def test_lock_released_on_close_allows_reuse(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        explorer = DesignSpaceExplorer(ToyEvaluator())
        explorer.explore(POINTS, checkpoint=str(path))
        result = explorer.explore(POINTS, checkpoint=str(path))
        assert not result.failures()
        assert not path.with_name(path.name + ".lock").exists()


class TestCacheQuarantine:
    def test_corrupt_entry_renamed_and_counted(self, tmp_path):
        from repro.core.telemetry import activate

        cache = EvaluationCache(tmp_path / "cache")
        point = DesignPoint(n_bits=8)
        from repro.core.results import Evaluation

        cache.put("fp", point, Evaluation(point=point, metrics={"m": 1.0}))
        for entry in (tmp_path / "cache").glob("*.json"):
            entry.write_text("{not json")
        with activate(Telemetry()) as tel:
            assert cache.get("fp", point) is None
        assert cache.corrupt == 1
        assert tel.counters["cache.corrupt"] == 1
        assert list((tmp_path / "cache").glob("*.json")) == []
        assert len(list((tmp_path / "cache").glob("*.corrupt"))) == 1

    def test_quarantined_entry_is_re_evaluated_and_rewritten(self, tmp_path):
        cache_dir = tmp_path / "cache"
        explorer = DesignSpaceExplorer(ToyEvaluator())
        explorer.explore(POINTS, cache=cache_dir)
        for entry in cache_dir.glob("*.json"):
            entry.write_text("garbage")
        recovered = explorer.explore(POINTS, cache=cache_dir)
        assert_sweeps_identical(clean_reference(), recovered)
        # Fresh entries were written next to the quarantined ones.
        assert len(list(cache_dir.glob("*.json"))) == len(POINTS)
        assert len(list(cache_dir.glob("*.corrupt"))) == len(POINTS)


class TestEvaluationTimeoutType:
    def test_is_a_timeout_error(self):
        assert issubclass(EvaluationTimeout, TimeoutError)
