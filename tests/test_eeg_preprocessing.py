"""Tests of EEG preprocessing (resampling, bandpass, windowing)."""

import numpy as np
import pytest

from repro.eeg.dataset import EegDataset, EegRecord
from repro.eeg.preprocessing import (
    SIMULATION_RATE,
    bandpass_record,
    resample_dataset,
    resample_record,
    window_record,
)


def tone_record(freq=10.0, rate=173.61, duration=2.0, label=0):
    n = int(round(rate * duration))
    t = np.arange(n) / rate
    return EegRecord(np.sin(2 * np.pi * freq * t), rate, label, "tone")


class TestResample:
    def test_paper_upsampling_ratio(self):
        record = tone_record(duration=23.6)
        up = resample_record(record, 512.0)
        assert up.sample_rate == 512.0
        expected = int(round(record.data.size * 512.0 / 173.61))
        assert up.data.size == expected

    def test_tone_preserved(self):
        record = tone_record(freq=10.0)
        up = resample_record(record, 512.0)
        spectrum = np.abs(np.fft.rfft(up.data * np.hanning(up.data.size)))
        freqs = np.fft.rfftfreq(up.data.size, 1 / 512.0)
        peak = freqs[np.argmax(spectrum)]
        assert peak == pytest.approx(10.0, abs=0.5)

    def test_same_rate_is_identity(self):
        record = tone_record()
        assert resample_record(record, record.sample_rate) is record

    def test_metadata_provenance(self):
        up = resample_record(tone_record(), 512.0)
        assert up.meta["resampled_from"] == pytest.approx(173.61)

    def test_dataset_resample(self):
        ds = EegDataset([tone_record(), tone_record()])
        up = resample_dataset(ds, SIMULATION_RATE)
        assert up.sample_rate == SIMULATION_RATE
        assert len(up) == 2

    def test_energy_approximately_preserved(self):
        record = tone_record(freq=5.0, duration=4.0)
        up = resample_record(record, 512.0)
        assert np.std(up.data) == pytest.approx(np.std(record.data), rel=0.05)


class TestBandpass:
    def test_passband_tone_survives(self):
        record = tone_record(freq=10.0, rate=512.0, duration=4.0)
        out = bandpass_record(record, 1.0, 40.0)
        assert np.std(out.data) == pytest.approx(np.std(record.data), rel=0.1)

    def test_stopband_tone_removed(self):
        record = tone_record(freq=100.0, rate=512.0, duration=8.0)
        out = bandpass_record(record, 1.0, 40.0)
        # Compare away from the filtfilt edge transients (the 1 Hz low
        # edge gives the filter a ~1 s impulse response).
        core = slice(1024, -1024)
        assert np.std(out.data[core]) < 0.05 * np.std(record.data[core])

    def test_rejects_bad_band(self):
        record = tone_record(rate=512.0)
        with pytest.raises(ValueError):
            bandpass_record(record, 40.0, 10.0)
        with pytest.raises(ValueError):
            bandpass_record(record, 10.0, 400.0)


class TestWindowing:
    def test_disjoint_windows(self):
        record = EegRecord(np.arange(100, dtype=float), 100.0, 0, "w")
        windows = window_record(record, 30)
        assert windows.shape == (3, 30)
        np.testing.assert_array_equal(windows[1], np.arange(30, 60))

    def test_overlap(self):
        record = EegRecord(np.arange(100, dtype=float), 100.0, 0, "w")
        windows = window_record(record, 40, overlap=0.5)
        assert windows.shape == (4, 40)
        np.testing.assert_array_equal(windows[1][:5], np.arange(20, 25))

    def test_too_short_rejected(self):
        record = EegRecord(np.arange(10, dtype=float), 100.0, 0, "w")
        with pytest.raises(ValueError):
            window_record(record, 30)

    def test_bad_overlap_rejected(self):
        record = EegRecord(np.arange(100, dtype=float), 100.0, 0, "w")
        with pytest.raises(ValueError):
            window_record(record, 10, overlap=1.0)
