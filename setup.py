"""Setup shim: enables legacy editable installs in offline environments
where the `wheel` package (needed for PEP-517 editable builds) is absent.
Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
