#!/usr/bin/env python3
"""The paper's headline experiment, end to end, at reduced scale.

Reproduces the Fig. 7 b) pathfinding flow for EEG epilepsy detection:

1. synthesise a Bonn-like EEG corpus and train the seizure detector;
2. sweep the Table III search space over both architectures (baseline and
   passive charge-sharing CS);
3. extract the accuracy/power Pareto fronts and the optimal (minimum
   power at >= 98 % accuracy) design point per architecture;
4. compare the optima's power breakdowns (Fig. 8).

Run:  python examples/epilepsy_pathfinding.py            (smoke scale, ~1 min)
      REPRO_SCALE=small python examples/epilepsy_pathfinding.py   (~10 min)

Large sweeps parallelise, checkpoint and cache:

      python examples/epilepsy_pathfinding.py --workers 4 \
          --checkpoint sweep.ckpt.jsonl --cache-dir .repro-cache

Interrupt it mid-sweep and re-run: completed points are restored from the
JSONL checkpoint (and any earlier run's on-disk cache) instead of being
re-simulated.

Add ``--profile`` for the telemetry summary (per-block wall time, solver
iterations, per-point latency) and ``--no-progress`` to silence the live
ETA line.
"""

import argparse

from repro.experiments import (
    active_scale,
    analyze_fig7,
    analyze_fig8,
    render_front,
    run_search_space,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel workers (default: REPRO_WORKERS, else serial)")
    parser.add_argument("--executor", choices=["serial", "process", "thread"],
                        default=None)
    parser.add_argument("--checkpoint", default=None,
                        help="JSONL checkpoint path (re-run resumes)")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk evaluation cache directory")
    parser.add_argument("--profile", action="store_true",
                        help="collect telemetry and print its summary at the end")
    parser.add_argument("--no-progress", action="store_true",
                        help="suppress the live per-point progress line")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    scale = active_scale()
    print(
        f"scale={scale.name}: {scale.n_eval_records} eval records x "
        f"{scale.frames_per_record} frames, noise sweep {scale.noise_values_uv} uV, "
        f"N bits {scale.n_bits_values}, M {scale.cs_m_values}"
    )

    from repro.cli import _progress_printer
    from repro.core import Telemetry, activate
    from repro.experiments import search_space_for

    telemetry = Telemetry() if args.profile else None
    progress = None if args.no_progress else _progress_printer(
        search_space_for(scale.name).size
    )

    print("\nsweeping the search space (baseline + CS grids)...")
    with activate(telemetry):
        sweep = run_search_space(
            scale.name,
            executor=args.executor,
            n_workers=args.workers,
            checkpoint=args.checkpoint,
            cache_dir=args.cache_dir,
            progress=progress,
            telemetry=telemetry,
        )
    print(f"evaluated {len(sweep)} design points")
    if sweep.failures():
        for failed in sweep.failures():
            print(f"  FAILED {failed.point.describe()}: {failed.error}")
        sweep = sweep.successes()

    # The paper's 98 % bound needs the small/paper scales; the smoke
    # scale's short records raise the oracle's variance floor, so the
    # bound is relaxed there (shape, not absolute level, is the point).
    min_accuracy = 0.90 if scale.name == "smoke" else 0.98
    fig7 = analyze_fig7(sweep, min_accuracy=min_accuracy)
    print("\n--- Fig. 7 b): accuracy vs power Pareto fronts ---")
    print("\nbaseline front:")
    print(render_front(fig7.accuracy_front_baseline, "accuracy"))
    print("\nCS front:")
    print(render_front(fig7.accuracy_front_cs, "accuracy"))

    print(f"\n--- optimal design points (min power at >= {min_accuracy:.0%} accuracy) ---")
    print(fig7.summary())
    print("(paper: baseline 98.1 % @ 8.8 uW, CS 99.3 % @ 2.44 uW, 3.6x)")

    print("\n--- Fig. 7 b) as a chart ---")
    from repro.util.textplot import pareto_chart

    print(
        pareto_chart(
            {
                "baseline": fig7.accuracy_front_baseline,
                "cs": fig7.accuracy_front_cs,
            },
            title="accuracy vs power (Pareto fronts)",
        )
    )

    print("\n--- Fig. 8: power breakdown of the two optima ---")
    fig8 = analyze_fig8(sweep, min_accuracy=min_accuracy)
    print(fig8.savings_table())
    print(
        "\nreading: CS saves mostly in the transmitter (fewer words) and the "
        "LNA (higher tolerable noise floor); the CS encoder's digital power "
        "is a modest increase."
    )

    if telemetry is not None:
        print()
        print(telemetry.summary())


if __name__ == "__main__":
    main()
