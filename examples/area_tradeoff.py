#!/usr/bin/env python3
"""Area-aware pathfinding: the Fig. 9 / Fig. 10 trade-off.

The CS architecture buys its power saving with capacitor area (M hold
capacitors against the baseline's DAC array).  This example:

1. prints the capacitor inventory of representative design points
   (Fig. 9's metric: total capacitance in C_u,min units);
2. re-runs the accuracy/power Pareto extraction under tightening area
   caps (Fig. 10) to show the cap limiting the achievable accuracy;
3. shows how a designer would read the result (bondpad-limited dies can
   afford the CS area; tiny dies cannot).

Run:  python examples/area_tradeoff.py             (smoke scale)
      REPRO_SCALE=small python examples/area_tradeoff.py
"""

from repro.experiments import analyze_fig10, analyze_fig9, run_search_space
from repro.power import DesignPoint, chain_area


def main() -> None:
    print("--- capacitor inventory of representative points (Fig. 9 metric) ---")
    for point in (
        DesignPoint(n_bits=8, lna_noise_rms=2e-6),
        DesignPoint(n_bits=6, lna_noise_rms=2e-6),
        DesignPoint(n_bits=8, lna_noise_rms=8e-6, use_cs=True, cs_m=75),
        DesignPoint(n_bits=8, lna_noise_rms=8e-6, use_cs=True, cs_m=192),
    ):
        report = chain_area(point)
        print(f"\n{point.describe()}  ->  {report.units:.0f} x Cu_min "
              f"({report.area_um2:.0f} um^2)")
        print(report.as_table())

    print("\n--- sweeping the search space for the area study ---")
    sweep = run_search_space()
    fig9 = analyze_fig9(sweep)
    base_lo, base_hi = fig9.area_range("baseline")
    cs_lo, cs_hi = fig9.area_range("cs")
    print(f"baseline area range: {base_lo:.0f} - {base_hi:.0f} x Cu_min")
    print(f"cs area range:       {cs_lo:.0f} - {cs_hi:.0f} x Cu_min")
    print(f"median area ratio (cs / baseline): {fig9.area_ratio():.1f}x")

    print("\n--- Fig. 10: accuracy under area constraints ---")
    fig10 = analyze_fig10(sweep)
    print(fig10.render())
    print(
        "\nreading: tight caps exclude the hold-capacitor bank, so the CS "
        "branch (and with it the highest-accuracy/lowest-power corners) only "
        "becomes available when the area budget is relaxed."
    )


if __name__ == "__main__":
    main()
