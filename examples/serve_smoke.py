"""Smoke-test client of the sweep service (``repro serve``).

Drives one full service cycle over plain HTTP with nothing but the
stdlib, and asserts the contract at each step:

1. wait for ``/healthz``;
2. submit a smoke-scale sweep and stream its progress events;
3. query the Pareto front and capture the ``ETag``;
4. revalidate with ``If-None-Match`` and require ``304 Not Modified``;
5. resubmit the identical sweep and require it served from the store;
6. fetch the sweep's Chrome trace artifact from ``/v1/sweeps/<n>/trace``;
7. scrape ``GET /metrics`` and validate the OpenMetrics exposition:
   correct content type, ``# EOF`` terminator, at least one counter
   family and one per-route request-latency histogram family whose
   cumulative buckets are monotone and end in ``le="+Inf"``.

Used as the CI service smoke test::

    PYTHONPATH=src python -m repro serve --port 8731 --store .repro-store &
    PYTHONPATH=src python examples/serve_smoke.py --port 8731

Exits non-zero (assertion) on any contract violation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def wait_healthy(base: str, timeout_s: float = 30.0) -> None:
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        try:
            with urllib.request.urlopen(base + "/healthz", timeout=2) as response:
                if response.status == 200:
                    return
        except (urllib.error.URLError, OSError):
            time.sleep(0.25)
    raise SystemExit(f"service at {base} not healthy within {timeout_s}s")


def get_json(base: str, path: str, headers: dict | None = None):
    request = urllib.request.Request(base + path, headers=headers or {})
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, dict(response.headers), json.loads(response.read())


def post_json(base: str, path: str, payload: dict):
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def validate_openmetrics(body: str) -> dict[str, str]:
    """Parse an OpenMetrics exposition into ``{family: type}``, asserting
    the structural invariants a Prometheus scraper relies on."""
    assert body.endswith("# EOF\n"), "missing OpenMetrics # EOF terminator"
    families: dict[str, str] = {}
    bucket_runs: dict[str, list[int]] = {}
    for line in body.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            families[name] = kind
        elif "_bucket{" in line:
            name = line.split("_bucket{", 1)[0]
            bucket_runs.setdefault(name, []).append(int(line.rsplit(" ", 1)[1]))
    for name, counts in bucket_runs.items():
        assert counts == sorted(counts), f"non-cumulative buckets in {name}"
    assert 'le="+Inf"' in body, "histograms must end in a +Inf bucket"
    return families


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8731)
    parser.add_argument("--scale", default="smoke")
    parser.add_argument("--metrics-out", default=None, metavar="PATH")
    args = parser.parse_args(argv)
    base = f"http://{args.host}:{args.port}"

    wait_healthy(base)
    print(f"service healthy at {base}")

    status, submitted = post_json(base, "/v1/sweeps", {"scale": args.scale})
    name = submitted["name"]
    print(f"submitted sweep {name!r}: HTTP {status}, status={submitted['status']}")
    assert status in (200, 202), status

    # Stream the progress events (ND-JSON, ends with serve.stream_end).
    progress = 0
    with urllib.request.urlopen(base + f"/v1/sweeps/{name}/events", timeout=600) as stream:
        for raw in stream:
            line = raw.strip()
            if not line:
                continue
            event = json.loads(line)
            if event.get("kind") == "explore.progress":
                progress += 1
            last = event
    print(f"streamed {progress} progress events; final: {last['kind']}")
    assert progress > 0, "no progress events streamed"
    assert last["kind"] == "serve.stream_end" and last["status"] == "done", last

    status, headers, front = get_json(base, f"/v1/sweeps/{name}/pareto")
    etag = headers["ETag"]
    print(f"pareto front: {front['total']} point(s), ETag {etag[:18]}..")
    assert status == 200 and front["total"] > 0

    try:
        get_json(base, f"/v1/sweeps/{name}/pareto", headers={"If-None-Match": etag})
        raise SystemExit("revalidation returned 200; expected 304")
    except urllib.error.HTTPError as error:
        assert error.code == 304, error.code
        print("revalidation: 304 Not Modified")

    status, resubmitted = post_json(base, "/v1/sweeps", {"scale": args.scale})
    print(f"resubmit: HTTP {status}, from_store={resubmitted['from_store']}")
    assert status == 200 and resubmitted["from_store"] is True, resubmitted

    status, _headers, trace = get_json(base, f"/v1/sweeps/{name}/trace")
    spans = sum(1 for e in trace["traceEvents"] if e["ph"] == "X")
    print(f"sweep trace artifact: {spans} spans")
    assert status == 200 and spans > 0, "sweep trace artifact missing or empty"

    with urllib.request.urlopen(base + "/metrics", timeout=60) as response:
        content_type = response.headers["Content-Type"]
        body = response.read().decode()
    assert content_type.startswith("application/openmetrics-text"), content_type
    families = validate_openmetrics(body)
    counters = [n for n, kind in families.items() if kind == "counter"]
    histograms = [n for n, kind in families.items() if kind == "histogram"]
    print(
        f"/metrics: {len(families)} families "
        f"({len(counters)} counters, {len(histograms)} histograms)"
    )
    assert "repro_serve_requests" in counters, counters
    assert any(n.startswith("repro_serve_request_seconds") for n in histograms), (
        "no per-route request-latency histogram family exposed"
    )
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            handle.write(body)
        print(f"exposition saved to {args.metrics_out}")

    print("service smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
