"""Smoke-test client of the sweep service (``repro serve``).

Drives one full service cycle over plain HTTP with nothing but the
stdlib, and asserts the contract at each step:

1. wait for ``/healthz``;
2. submit a smoke-scale sweep and stream its progress events;
3. query the Pareto front and capture the ``ETag``;
4. revalidate with ``If-None-Match`` and require ``304 Not Modified``;
5. resubmit the identical sweep and require it served from the store.

Used as the CI service smoke test::

    PYTHONPATH=src python -m repro serve --port 8731 --store .repro-store &
    PYTHONPATH=src python examples/serve_smoke.py --port 8731

Exits non-zero (assertion) on any contract violation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def wait_healthy(base: str, timeout_s: float = 30.0) -> None:
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        try:
            with urllib.request.urlopen(base + "/healthz", timeout=2) as response:
                if response.status == 200:
                    return
        except (urllib.error.URLError, OSError):
            time.sleep(0.25)
    raise SystemExit(f"service at {base} not healthy within {timeout_s}s")


def get_json(base: str, path: str, headers: dict | None = None):
    request = urllib.request.Request(base + path, headers=headers or {})
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, dict(response.headers), json.loads(response.read())


def post_json(base: str, path: str, payload: dict):
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8731)
    parser.add_argument("--scale", default="smoke")
    args = parser.parse_args(argv)
    base = f"http://{args.host}:{args.port}"

    wait_healthy(base)
    print(f"service healthy at {base}")

    status, submitted = post_json(base, "/v1/sweeps", {"scale": args.scale})
    name = submitted["name"]
    print(f"submitted sweep {name!r}: HTTP {status}, status={submitted['status']}")
    assert status in (200, 202), status

    # Stream the progress events (ND-JSON, ends with serve.stream_end).
    progress = 0
    with urllib.request.urlopen(base + f"/v1/sweeps/{name}/events", timeout=600) as stream:
        for raw in stream:
            line = raw.strip()
            if not line:
                continue
            event = json.loads(line)
            if event.get("kind") == "explore.progress":
                progress += 1
            last = event
    print(f"streamed {progress} progress events; final: {last['kind']}")
    assert progress > 0, "no progress events streamed"
    assert last["kind"] == "serve.stream_end" and last["status"] == "done", last

    status, headers, front = get_json(base, f"/v1/sweeps/{name}/pareto")
    etag = headers["ETag"]
    print(f"pareto front: {front['total']} point(s), ETag {etag[:18]}..")
    assert status == 200 and front["total"] > 0

    try:
        get_json(base, f"/v1/sweeps/{name}/pareto", headers={"If-None-Match": etag})
        raise SystemExit("revalidation returned 200; expected 304")
    except urllib.error.HTTPError as error:
        assert error.code == 304, error.code
        print("revalidation: 304 Not Modified")

    status, resubmitted = post_json(base, "/v1/sweeps", {"scale": args.scale})
    print(f"resubmit: HTTP {status}, from_store={resubmitted['from_store']}")
    assert status == 200 and resubmitted["from_store"] is True, resubmitted

    print("service smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
