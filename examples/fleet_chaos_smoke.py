"""Smoke-test of the fault-tolerant fleet executor under scripted chaos.

Runs the same smoke-scale paper sweep twice -- once serially, once on a
three-worker lease-based fleet where one worker is SIGKILLed mid-chunk
and another drops its heartbeats past the lease deadline -- and asserts
the fault-tolerance contract:

1. the fleet result is point-for-point identical to the serial run
   (same metrics, same errors, zero lost and zero duplicated points);
2. the coordinator actually recovered something (at least one lease
   was requeued or expired -- chaos that injures nothing proves
   nothing);
3. no point was quarantined as poison (the faults are environmental,
   not evaluator bugs);
4. the lease-event trail (``fleet.lease`` grant/requeue/complete
   actions) lands in the ``--events-out`` JSONL for post-mortems;
5. with ``--trace-out``, the merged Chrome trace carries at least two
   clock-aligned ``worker-*`` lanes next to the driver's (distributed
   tracing crossed the wire);
6. with ``--flight-dir``, the killed/silenced worker left a
   ``flight-*.json`` crash artifact behind.

Used as the CI chaos smoke test::

    PYTHONPATH=src python examples/fleet_chaos_smoke.py \
        --events-out fleet-events.jsonl \
        --trace-out fleet-trace.json --flight-dir flight

Exits non-zero (assertion) on any contract violation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.core.explorer import DesignSpaceExplorer
from repro.core.metrics import JsonlEventWriter
from repro.core.telemetry import Telemetry
from repro.core.tracing import Tracer, chrome_trace
from repro.experiments.runner import make_harness, search_space_for
from repro.fleet import ChaosPlan, FleetOptions


def assert_identical(serial, fleet) -> None:
    assert len(serial) == len(fleet), (len(serial), len(fleet))
    for ours, theirs in zip(serial, fleet):
        assert ours.point.describe() == theirs.point.describe()
        assert ours.metrics == theirs.metrics, ours.point.describe()
        assert ours.error == theirs.error, ours.point.describe()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="smoke")
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--events-out", default=None, metavar="PATH")
    parser.add_argument("--trace-out", default=None, metavar="PATH")
    parser.add_argument("--flight-dir", default=None, metavar="DIR")
    args = parser.parse_args(argv)
    if args.flight_dir:
        # Workers inherit the environment, so their dumps land here too.
        os.environ["REPRO_FLIGHT_DIR"] = args.flight_dir

    harness = make_harness(args.scale)
    space = search_space_for(args.scale)
    print(f"sweeping {space.size} points at scale {args.scale!r}")

    serial = DesignSpaceExplorer(harness.evaluator).explore(space, name="serial")
    print(f"serial baseline done ({len(serial)} points)")

    sink = JsonlEventWriter(args.events_out) if args.events_out else None
    tracer = Tracer(label="driver") if args.trace_out else None
    telemetry = Telemetry(event_sink=sink, tracer=tracer)
    explorer = DesignSpaceExplorer(harness.evaluator)
    try:
        result = explorer.explore(
            space,
            executor="fleet",
            telemetry=telemetry,
            fleet=FleetOptions(
                spawn_workers=args.workers,
                # Fair start: guarantee every worker (and so every chaos
                # plan) gets a lease even on a single-core CI runner.
                wait_for_workers=args.workers,
                lease_timeout_s=2.0,
                heartbeat_interval_s=0.5,
                chaos_plans=(
                    ChaosPlan(kill_after_points=2),
                    ChaosPlan(drop_heartbeats_on_chunk=0, complete_delay_s=4.0),
                ),
            ),
        )
    finally:
        if sink is not None:
            sink.close()
    report = explorer.last_fleet_report

    print(
        f"fleet done: {report.points_completed}/{report.points_total} points, "
        f"{report.leases_granted} leases, {report.requeues} requeues, "
        f"{report.leases_expired} expired, "
        f"{report.duplicates_dropped} duplicates dropped"
    )
    for name, stats in sorted(report.workers.items()):
        print(f"  {name}: {stats}")

    assert_identical(serial, result)
    print("fleet result is point-for-point identical to the serial run")
    assert report.points_completed == space.size, report
    assert report.points_quarantined == 0, report.quarantined
    assert report.requeues + report.leases_expired >= 1, (
        "chaos injured nothing; the smoke test proved nothing"
    )

    if args.events_out:
        actions = set()
        with open(args.events_out) as handle:
            for line in handle:
                event = json.loads(line)
                if event.get("kind") == "fleet.lease":
                    actions.add(event["action"])
        print(f"lease-event trail in {args.events_out}: actions={sorted(actions)}")
        assert {"grant", "complete"} <= actions, actions

    if args.trace_out:
        trace = chrome_trace(tracer.snapshot())
        Path(args.trace_out).write_text(json.dumps(trace, indent=1) + "\n")
        lanes = sorted(
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        )
        workers = [lane for lane in lanes if lane.startswith("worker-")]
        spans = sum(1 for e in trace["traceEvents"] if e["ph"] == "X")
        print(f"merged trace in {args.trace_out}: {spans} spans, lanes={lanes}")
        assert len(workers) >= 2, (
            f"expected >=2 worker lanes in the merged trace, got {lanes}"
        )
        offsets = tracer.summary().get("clock_offsets", {})
        print(f"handshake clock offsets (s): {offsets}")

    if args.flight_dir:
        dumps = sorted(Path(args.flight_dir).glob("flight-*.json"))
        triggers = [json.loads(p.read_text())["trigger"] for p in dumps]
        print(f"flight artifacts in {args.flight_dir}: {triggers}")
        assert "fleet-worker-lost" in triggers, (
            "the killed worker left no flight-recorder artifact"
        )

    print("fleet chaos smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
