#!/usr/bin/env python3
"""Extending the library: model a NEW block and see its system impact.

The paper positions EffiCSense as an *open* framework: Section III walks
through adding the passive CS encoder to the library (functional model +
power model), then re-running the pathfinding.  This example repeats that
workflow for a simpler block -- a chopper that suppresses the LNA's 1/f
noise at the cost of extra switching power -- following the same recipe:

1. subclass ``Block`` with a vectorised functional model;
2. override ``power()`` with an analytical estimate in terms of the
   design point;
3. drop the block into an existing chain and compare system metrics.

The polished version of this block graduated into the library as
``repro.blocks.Chopper`` -- this walkthrough keeps the from-scratch
definition so the extension recipe stays visible end to end.

Run:  python examples/custom_block.py
"""

import numpy as np

from repro.blocks import build_baseline_chain, sine
from repro.core import Block, Signal, SimulationContext, Simulator
from repro.metrics import sndr_sine
from repro.power import DesignPoint
from repro.util import MICRO


class Chopper(Block):
    """Chopper stabilisation modelled at the behavioural level.

    Functional model: 1/f (flicker) noise that the plain LNA would add is
    injected here as correlated noise, attenuated by the chopping factor.
    Power model: the chopper clock toggles four switch gates at
    ``chop_ratio * f_sample``.
    """

    def __init__(
        self,
        flicker_rms: float,
        chop_ratio: int = 8,
        suppression: float = 20.0,
        name: str = "chopper",
    ):
        super().__init__(name)
        self.flicker_rms = float(flicker_rms)
        self.chop_ratio = int(chop_ratio)
        self.suppression = float(suppression)

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        rng = ctx.rng(self.name)
        # Residual flicker noise after chopping: 1/f-shaped, suppressed.
        white = rng.normal(size=signal.data.size)
        spectrum = np.fft.rfft(white)
        freqs = np.fft.rfftfreq(signal.data.size, d=1.0 / signal.sample_rate)
        freqs[0] = freqs[1]
        shaped = np.fft.irfft(spectrum / np.sqrt(freqs), n=signal.data.size)
        shaped *= self.flicker_rms / self.suppression / max(np.std(shaped), 1e-30)
        return signal.replaced(data=signal.data + shaped)

    def power(self, point: DesignPoint) -> dict[str, float]:
        f_chop = self.chop_ratio * point.f_sample
        tech = point.technology
        return {"chopper": 4 * tech.c_logic * point.v_dd**2 * f_chop}


def main() -> None:
    point = DesignPoint(n_bits=8, lna_noise_rms=3e-6)
    amplitude = 0.9 * point.v_fs / 2 / point.lna_gain
    tone = sine(frequency=40.0, amplitude=amplitude, sample_rate=point.f_sample, n_samples=8192)
    flicker = 6e-6  # 1/f noise an un-chopped bio-LNA would exhibit

    # System A: plain chain, flicker noise fully present (modelled by a
    # chopper block with suppression 1).
    plain = build_baseline_chain(point, seed=1)
    plain.insert_before("lna", Chopper(flicker, suppression=1.0, name="no_chop"))
    result_plain = Simulator(plain, point, seed=7).run(tone)

    # System B: chopped chain -- flicker suppressed 20x, small clock cost.
    chopped = build_baseline_chain(point, seed=1)
    chopped.insert_before("lna", Chopper(flicker, suppression=20.0))
    result_chopped = Simulator(chopped, point, seed=7).run(tone)

    for name, result in (("without chopper", result_plain), ("with chopper", result_chopped)):
        sndr = sndr_sine(result.tap("adc").data)
        extra = {k: v for k, v in result.power.blocks.items() if k in ("chopper", "no_chop")}
        extra_uw = sum(extra.values()) / MICRO
        print(
            f"{name:<18} SNDR = {sndr:6.2f} dB   total = "
            f"{result.power.total_uw:6.3f} uW   (chopper clock: {extra_uw:.4f} uW)"
        )

    print(
        "\nThe chopper recovers the flicker-limited SNDR for microwatt-level "
        "clock cost -- the same library-extension workflow the paper uses "
        "for the CS encoder in Section III."
    )


if __name__ == "__main__":
    main()
