#!/usr/bin/env python3
"""Yield analysis: how much fault margin do the two optima really have?

The paper's pathfinding flow picks nominal optima; a silicon team also
needs to know how those optima behave when the front-end misbehaves.
This example:

1. builds a fault suite spanning the chain (LNA saturation bursts and
   gain drift, S&H dropouts, ADC bit faults, TX packet loss and NaN
   glitches);
2. runs a Monte-Carlo yield sweep — fault severity x chip realisations —
   against the clean reference of each architecture;
3. reads the result the way a designer would: yield curves, degradation
   statistics, and the severity each chain tolerates at >= 50% yield;
4. shows the single-fault drill-down used to attribute the collapse.

Run:  python examples/yield_analysis.py             (smoke scale)
      REPRO_SCALE=small python examples/yield_analysis.py
"""

from repro.experiments import (
    DEFAULT_FAULT_SUITE,
    make_harness,
    reference_operating_points,
)
from repro.faults import FaultSuite, MonteCarloYield, NanGlitch, PacketLoss


def main() -> None:
    print("--- building harness and reference operating points ---")
    harness = make_harness()
    points = reference_operating_points()
    evaluators = {name: harness.evaluator for name in points}

    print("\n--- full-suite Monte-Carlo yield sweep ---")
    runner = MonteCarloYield(
        evaluators=evaluators,
        points=points,
        suite=DEFAULT_FAULT_SUITE,
        severities=(0.1, 0.25, 0.5, 1.0),
        n_realisations=3,
    )
    result = runner.run()
    print(result.as_table())

    for chain in result.chains():
        tolerated = [s for s, y in result.yield_curve(chain) if y >= 0.5]
        verdict = f"severity {max(tolerated):g}" if tolerated else "none"
        print(f"{chain}: >= 50% yield up to {verdict}")

    print("\n--- drill-down: transmitter faults only ---")
    tx_suite = FaultSuite(
        entries=(
            ("transmitter", PacketLoss(severity=1.0)),
            ("transmitter", NanGlitch(severity=1.0)),
        )
    )
    drill = MonteCarloYield(
        evaluators=evaluators,
        points=points,
        suite=tx_suite,
        severities=(0.5, 1.0),
        n_realisations=3,
    ).run()
    print(drill.as_table())
    print(
        "Reading: if the transmitter-only collapse matches the full-suite "
        "collapse at severity 1, the link (not the analog front-end) is "
        "the margin limiter — harden the packetisation first."
    )


if __name__ == "__main__":
    main()
