#!/usr/bin/env python3
"""Quickstart: simulate one front-end and read quality + power together.

This is the 60-second tour of EffiCSense's core idea: a single simulation
of a block chain yields BOTH the processed waveform (graded as SNDR) and
the per-block power estimate, because every block couples a functional
model with a Table II power model.

Run:  python examples/quickstart.py
"""

from repro.blocks import build_baseline_chain, sine
from repro.core import Simulator
from repro.metrics import analyze_sine
from repro.power import DesignPoint


def main() -> None:
    # 1. Describe the architecture: an 8-bit baseline front-end with a
    #    2 uVrms LNA noise floor (all other Table III defaults).
    point = DesignPoint(n_bits=8, lna_noise_rms=2e-6)
    print("design point:", point.describe())
    print(f"  f_sample = {point.f_sample:.1f} Hz, f_clk = {point.f_clk:.1f} Hz")
    print(f"  LNA bandwidth = {point.bw_lna:.0f} Hz, load = {point.lna_load_capacitance:.2e} F")

    # 2. Build the chain (LNA -> S&H -> SAR ADC -> TX) and a test tone at
    #    90 % of the input-referred full scale.
    chain = build_baseline_chain(point, seed=1)
    print("\nchain:", " -> ".join(chain.block_names()))
    amplitude = 0.9 * point.v_fs / 2 / point.lna_gain
    tone = sine(frequency=40.0, amplitude=amplitude, sample_rate=point.f_sample, n_samples=8192)

    # 3. One run produces the waveform AND the power budget.
    result = Simulator(chain, point, seed=42).run(tone)
    analysis = analyze_sine(result.tap("adc").data)
    print(f"\nsignal quality: {analysis}")
    print("\npower budget:")
    print(result.power.as_table())

    # 4. The pathfinding question: what does halving the noise floor cost?
    quiet = point.with_(lna_noise_rms=1e-6)
    quiet_result = Simulator(build_baseline_chain(quiet, seed=1), quiet, seed=42).run(tone)
    quiet_analysis = analyze_sine(quiet_result.tap("adc").data)
    print(
        f"\nhalving the noise floor: SNDR {analysis.sndr_db:.1f} -> "
        f"{quiet_analysis.sndr_db:.1f} dB costs "
        f"{result.power.total_uw:.2f} -> {quiet_result.power.total_uw:.2f} uW "
        "(the LNA noise bound scales as 1/vn^2)"
    )


if __name__ == "__main__":
    main()
