"""Multi-backend kernel dispatch for the hot numerical paths.

``registry`` is the process-global :class:`KernelRegistry` the engine
dispatches through; see :mod:`repro.kernels.registry` for the selection
rules (env ``REPRO_KERNEL_BACKEND``, CLI ``--kernel-backend``) and the
exactness/cache-key contract, and :mod:`repro.testing.conformance` for
the harness that locks every backend to the numpy reference.
"""

from repro.kernels.registry import (
    ENV_VAR,
    KERNEL_NAMES,
    REFERENCE_BACKEND,
    KernelBackend,
    KernelRegistry,
    UnknownBackendError,
    build_default_registry,
)

#: The process-global registry used by all dispatch sites.
registry = build_default_registry()

__all__ = [
    "ENV_VAR",
    "KERNEL_NAMES",
    "REFERENCE_BACKEND",
    "KernelBackend",
    "KernelRegistry",
    "UnknownBackendError",
    "build_default_registry",
    "registry",
]
