"""Runtime backend registry for the hot numerical kernels.

The sweep engine spends nearly all of its time in a handful of kernels:
the LASSO/greedy solvers (``fista``/``ista``/``omp``), the s-SRBM
charge-sharing encoder multiply, and the stacked batched signal pass.
Each kernel has a numpy *reference* implementation (the numbers the
golden suite locks down) and may have faster optional implementations
(numba JIT, JAX) that are only safe to enable because the conformance
harness (:mod:`repro.testing.conformance`) proves them numerically
locked to the reference.

Selection
---------
The active backend is process-global and chosen, in priority order, by

1. an explicit :meth:`KernelRegistry.select` call (the CLI's
   ``--kernel-backend`` flag ends up here),
2. the ``REPRO_KERNEL_BACKEND`` environment variable (inherited by pool
   workers, which is what keeps driver and workers consistent),
3. the default: ``numpy``.

A selected backend that is unavailable (numba not installed) or does
not provide a given kernel *falls back* to the reference implementation
per call.  Fallbacks are counted in telemetry (``kernels.fallback``)
and recorded per kernel in the usage ledger that
:meth:`KernelRegistry.manifest_section` exports into the run manifest's
``kernels`` section, so a run artefact always shows which backend
actually produced its numbers.

Exactness contract
------------------
A backend declares ``exact=True`` only when its kernels are
*bit-identical* to the reference (same dtype, same operation order).
Exact backends share evaluation-cache keys with the reference;
non-exact (documented-tolerance) backends qualify the evaluator
fingerprint via :func:`cache_tag` so a backend switch can never serve
stale-but-different cached results.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Callable, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Environment variable naming the requested backend.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The backend every kernel is guaranteed to exist on.
REFERENCE_BACKEND = "numpy"

#: Kernels the core engine dispatches today (backends may implement any
#: subset; missing kernels fall back to the reference).
KERNEL_NAMES = ("fista", "ista", "omp", "encoder_multiply", "signal_pass")

_GET_ACTIVE_TELEMETRY = None


def _telemetry():
    """Ambient telemetry sink, lazily imported (avoids repro.core cycles)."""
    global _GET_ACTIVE_TELEMETRY
    if _GET_ACTIVE_TELEMETRY is None:
        from repro.core.telemetry import get_active

        _GET_ACTIVE_TELEMETRY = get_active
    return _GET_ACTIVE_TELEMETRY()


class UnknownBackendError(ValueError):
    """Raised when selecting a backend name that was never registered."""


@dataclass(frozen=True)
class KernelBackend:
    """One registered backend: availability, exactness contract, kernels.

    Parameters
    ----------
    name:
        Registry key (``numpy``, ``numba``, ``jax``, ...).
    kernels:
        Mapping of kernel name -> callable.  Missing kernels dispatch to
        the reference backend (recorded as a fallback).
    exact:
        True when every provided kernel is bit-identical to the
        reference implementation.  Exact backends share cache keys with
        the reference; non-exact backends get backend-qualified keys.
    rtol:
        Documented agreement tolerance versus the reference for
        non-exact backends (the conformance suite enforces it).
    available:
        False when the backend's runtime (numba, jax) is not importable.
        Unavailable backends always fall back.
    unavailable_reason:
        Human-readable reason shown in the manifest when unavailable.
    """

    name: str
    kernels: Mapping[str, Callable] = field(default_factory=dict)
    exact: bool = False
    rtol: float = 0.0
    available: bool = True
    unavailable_reason: str | None = None


@dataclass
class _KernelUsage:
    """Per-kernel dispatch ledger for one process."""

    backend: str | None = None
    requested: str | None = None
    calls: int = 0
    fallback_calls: int = 0
    errors: int = 0
    fallback_reason: str | None = None


class KernelRegistry:
    """Process-global dispatch table for the hot kernels."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._backends: dict[str, KernelBackend] = {}
        self._selected: str | None = None
        # Backends that raised at call time, demoted for the rest of the
        # process so a broken JIT does not retry (and re-fail) per frame.
        self._demoted: set[tuple[str, str]] = set()
        self._usage: dict[str, _KernelUsage] = {}

    # -- registration ---------------------------------------------------

    def register(self, backend: KernelBackend) -> None:
        """Register (or replace) a backend."""
        with self._lock:
            self._backends[backend.name] = backend
            self._demoted = {d for d in self._demoted if d[0] != backend.name}

    def unregister(self, name: str) -> None:
        if name == REFERENCE_BACKEND:
            raise ValueError("the reference backend cannot be unregistered")
        with self._lock:
            self._backends.pop(name, None)
            if self._selected == name:
                self._selected = None

    def backends(self) -> tuple[KernelBackend, ...]:
        """All registered backends, reference first."""
        with self._lock:
            ordered = sorted(
                self._backends.values(), key=lambda b: (b.name != REFERENCE_BACKEND, b.name)
            )
        return tuple(ordered)

    def backend(self, name: str) -> KernelBackend:
        try:
            return self._backends[name]
        except KeyError:
            raise UnknownBackendError(
                f"unknown kernel backend {name!r}; registered: "
                f"{', '.join(sorted(self._backends))}"
            ) from None

    # -- selection ------------------------------------------------------

    def select(self, name: str | None) -> str:
        """Select the process-wide backend; ``None`` re-reads the env var.

        Returns the resolved *requested* name.  Selecting an unavailable
        backend is allowed (per-call auto-fallback handles it); selecting
        an unregistered name raises :class:`UnknownBackendError`.
        """
        if name is not None:
            self.backend(name)  # raises on unknown names
        with self._lock:
            self._selected = name
        return self.requested()

    def requested(self) -> str:
        """The backend name requested for this process (env-aware)."""
        if self._selected is not None:
            return self._selected
        env = os.environ.get(ENV_VAR, "").strip()
        return env or REFERENCE_BACKEND

    def active(self, kernel: str) -> str:
        """The backend that *would* run ``kernel`` right now (no dispatch).

        Resolves the requested backend through availability, kernel
        coverage, and call-time demotion, without touching the ledger.
        """
        backend, _reason = self._resolve(kernel)
        return backend.name

    def active_is_exact(self) -> bool:
        """True when every dispatched kernel is bit-identical to the
        reference (the requested backend is exact or resolves to it)."""
        requested = self.requested()
        try:
            backend = self.backend(requested)
        except UnknownBackendError:
            return True
        if backend.name == REFERENCE_BACKEND or backend.exact:
            return True
        # A non-exact backend that cannot run anything is effectively
        # the reference.
        return not backend.available

    def _resolve(self, kernel: str) -> tuple[KernelBackend, str | None]:
        """Resolve ``kernel`` to a backend + fallback reason (or None)."""
        requested = self.requested()
        try:
            backend = self.backend(requested)
        except UnknownBackendError:
            # Env vars are user input: an unknown name degrades to the
            # reference instead of crashing every worker.
            return self.backend(REFERENCE_BACKEND), f"unknown backend {requested!r}"
        if backend.name == REFERENCE_BACKEND:
            return backend, None
        if not backend.available:
            reason = backend.unavailable_reason or f"{backend.name} unavailable"
            return self.backend(REFERENCE_BACKEND), reason
        if kernel not in backend.kernels:
            return (
                self.backend(REFERENCE_BACKEND),
                f"{backend.name} does not implement {kernel!r}",
            )
        if (backend.name, kernel) in self._demoted:
            return (
                self.backend(REFERENCE_BACKEND),
                f"{backend.name}:{kernel} demoted after a runtime error",
            )
        return backend, None

    # -- dispatch -------------------------------------------------------

    def call(self, kernel: str, *args, **kwargs):
        """Dispatch ``kernel`` to the active backend.

        Non-reference backend failures are contained: the error is
        counted, the (backend, kernel) pair is demoted for the rest of
        the process, and the call is retried on the reference
        implementation, so an optional accelerator can never take down a
        sweep.
        """
        backend, reason = self._resolve(kernel)
        requested = self.requested()
        if backend.name != REFERENCE_BACKEND:
            try:
                result = backend.kernels[kernel](*args, **kwargs)
            except Exception as exc:  # noqa: BLE001 - contained by design
                with self._lock:
                    self._demoted.add((backend.name, kernel))
                reason = f"{backend.name}:{kernel} raised {type(exc).__name__}: {exc}"
                self._note(kernel, REFERENCE_BACKEND, requested, reason, error=True)
                return self._reference_impl(kernel)(*args, **kwargs)
            self._note(kernel, backend.name, requested, None)
            return result
        self._note(kernel, REFERENCE_BACKEND, requested, reason)
        return self._reference_impl(kernel)(*args, **kwargs)

    def _reference_impl(self, kernel: str) -> Callable:
        reference = self.backend(REFERENCE_BACKEND)
        try:
            return reference.kernels[kernel]
        except KeyError:
            raise KeyError(
                f"kernel {kernel!r} has no reference implementation; "
                f"known kernels: {', '.join(sorted(reference.kernels))}"
            ) from None

    def _note(
        self,
        kernel: str,
        backend: str,
        requested: str,
        fallback_reason: str | None,
        *,
        error: bool = False,
    ) -> None:
        fell_back = requested not in (backend, REFERENCE_BACKEND) or error
        with self._lock:
            usage = self._usage.setdefault(kernel, _KernelUsage())
            usage.backend = backend
            usage.requested = requested
            usage.calls += 1
            if fell_back:
                usage.fallback_calls += 1
                usage.fallback_reason = fallback_reason
            if error:
                usage.errors += 1
        telemetry = _telemetry()
        if telemetry.enabled:
            telemetry.count(f"kernels.{kernel}.{backend}")
            if fell_back:
                telemetry.count("kernels.fallback")
                telemetry.count(f"kernels.{kernel}.fallback")
            if error:
                telemetry.count("kernels.backend_error")

    # -- introspection --------------------------------------------------

    def usage(self) -> dict[str, dict]:
        """Per-kernel dispatch ledger (which backend actually ran)."""
        with self._lock:
            return {
                kernel: {
                    "backend": u.backend,
                    "requested": u.requested,
                    "calls": u.calls,
                    "fallback_calls": u.fallback_calls,
                    "errors": u.errors,
                    "fallback_reason": u.fallback_reason,
                }
                for kernel, u in sorted(self._usage.items())
            }

    def reset_usage(self) -> None:
        with self._lock:
            self._usage.clear()

    def manifest_section(self) -> dict:
        """The ``kernels`` section of the run manifest.

        Records the requested backend, every registered backend's
        availability and exactness contract, and the per-kernel ledger of
        which backend actually ran (including fallbacks and why) — the
        attribution a reader needs to trust a run artefact's numbers.
        """
        return {
            "requested": self.requested(),
            "exact": self.active_is_exact(),
            "backends": {
                b.name: {
                    "available": b.available,
                    "exact": b.exact,
                    "rtol": b.rtol,
                    "kernels": sorted(b.kernels),
                    **(
                        {"unavailable_reason": b.unavailable_reason}
                        if b.unavailable_reason
                        else {}
                    ),
                }
                for b in self.backends()
            },
            "usage": self.usage(),
        }

    def cache_tag(self) -> str:
        """Evaluator-fingerprint qualifier for the active backend.

        Empty when dispatch is bit-identical to the reference (cache
        keys stay backend-invariant); a ``kernels:<name>`` tag when a
        documented-tolerance backend is active, so its results can never
        be served to (or from) a run on a different backend.
        """
        if self.active_is_exact():
            return ""
        return f"kernels:{self.requested()}"

    @contextmanager
    def use_backend(self, name: str | None):
        """Temporarily select ``name`` (tests, conformance, benches)."""
        with self._lock:
            previous = self._selected
        self.select(name)
        try:
            yield self
        finally:
            with self._lock:
                self._selected = previous


def build_default_registry() -> KernelRegistry:
    """The process-global registry with all built-in backends attached."""
    from repro.kernels import jax_backend, numba_backend, numpy_backend

    reg = KernelRegistry()
    reg.register(numpy_backend.make_backend())
    reg.register(numba_backend.make_backend())
    reg.register(jax_backend.make_backend())
    return reg
