"""Reference (numpy) implementations of the hot kernels.

These are the *definitional* implementations: the golden suite locks
their numbers down, and every other backend is accepted only if the
conformance harness proves agreement with them (bit-identical for
``exact`` backends, documented tolerance otherwise).  The solver bodies
here are the exact loops that used to live inline in
:mod:`repro.cs.reconstruction`; the wrappers there now validate, time
and dispatch, while the numeric cores live behind the registry.

Kernel contract
---------------
``fista`` / ``ista``
    ``(a(M,N), y2(B,M), lam, n_iter, tol) -> (z(B,N), iterations)``;
    ``iterations == 0`` only for the degenerate zero-operator case.
``omp``
    ``(a(M,N), y(M,), sparsity, tol) -> (coeffs(N,), n_selected)``.
``encoder_multiply``
    The charge-sharing accumulation of paper Eq. (1) with *pre-drawn*
    noise: ``(frames(B,N), routes(N,s), c_sample(s,), c_hold(m,), kt,
    sample_draws(N,B,s)|None, share_draws(N,B,s)|None) ->
    (v_hold(B,m), last_touch(m,))``.  The caller draws the noise from
    its RNG in the original order, so replay stays bit-identical no
    matter which backend runs the arithmetic.
``signal_pass``
    The stacked batched chain pass:
    ``(batch, peer_rows, ctxs) -> batch`` where ``peer_rows`` holds the
    per-position peer block lists of a compiled group.
"""

from __future__ import annotations

import numpy as np


def _telemetry():
    from repro.core.telemetry import get_active

    return get_active()


def _soft_threshold(z: np.ndarray, threshold: float) -> np.ndarray:
    return np.sign(z) * np.maximum(np.abs(z) - threshold, 0.0)


def _lipschitz(a: np.ndarray) -> float:
    return float(np.linalg.norm(a, ord=2) ** 2)


def least_squares_on_support(a: np.ndarray, y: np.ndarray, support: np.ndarray) -> np.ndarray:
    coeffs = np.zeros(a.shape[1])
    if support.size == 0:
        return coeffs
    sub = a[:, support]
    solution, *_ = np.linalg.lstsq(sub, y, rcond=None)
    coeffs[support] = solution
    return coeffs


def fista(
    a: np.ndarray, y2: np.ndarray, lam: float, n_iter: int, tol: float
) -> tuple[np.ndarray, int]:
    """Batched FISTA core (Beck & Teboulle); see module docstring."""
    b, _m = y2.shape
    n = a.shape[1]
    lipschitz = _lipschitz(a)
    if lipschitz == 0:
        return np.zeros((b, n)), 0
    step = 1.0 / lipschitz
    z = np.zeros((b, n))
    momentum = z.copy()
    t = 1.0
    gram = a.T @ a  # (N, N), precomputed: gradient = momentum @ gram - y A
    ya = y2 @ a  # (B, N)
    iterations = 0
    for _ in range(n_iter):
        iterations += 1
        gradient = momentum @ gram - ya
        z_next = _soft_threshold(momentum - step * gradient, lam * step)
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
        momentum = z_next + ((t - 1.0) / t_next) * (z_next - z)
        delta = np.max(np.abs(z_next - z))
        z = z_next
        t = t_next
        if delta <= tol:
            break
    return z, iterations


def ista(
    a: np.ndarray, y2: np.ndarray, lam: float, n_iter: int, tol: float
) -> tuple[np.ndarray, int]:
    """Batched ISTA core; see module docstring."""
    lipschitz = _lipschitz(a)
    if lipschitz == 0:
        return np.zeros((y2.shape[0], a.shape[1])), 0
    step = 1.0 / lipschitz
    z = np.zeros((y2.shape[0], a.shape[1]))
    iterations = 0
    for _ in range(n_iter):
        iterations += 1
        gradient = (z @ a.T - y2) @ a  # (B, N): (A z - y) A, batched
        z_next = _soft_threshold(z - step * gradient, lam * step)
        if np.max(np.abs(z_next - z)) <= tol:
            z = z_next
            break
        z = z_next
    return z, iterations


def omp(a: np.ndarray, y: np.ndarray, sparsity: int, tol: float) -> tuple[np.ndarray, int]:
    """Greedy OMP core; see module docstring."""
    m, n = a.shape
    norms = np.linalg.norm(a, axis=0)
    norms = np.where(norms == 0, 1.0, norms)
    residual = y.copy()
    support: list[int] = []
    y_norm = np.linalg.norm(y)
    if y_norm == 0:
        return np.zeros(n), 0
    for _ in range(min(sparsity, m)):
        correlations = np.abs(a.T @ residual) / norms
        if support:
            correlations[support] = -np.inf
        atom = int(np.argmax(correlations))
        support.append(atom)
        coeffs = least_squares_on_support(a, y, np.array(support))
        residual = y - a @ coeffs
        if tol > 0 and np.linalg.norm(residual) <= tol * y_norm:
            break
    return least_squares_on_support(a, y, np.array(support)), len(support)


def encoder_multiply(
    frames: np.ndarray,
    routes: np.ndarray,
    c_sample: np.ndarray,
    c_hold: np.ndarray,
    kt: float,
    sample_draws: np.ndarray | None,
    share_draws: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Charge-sharing accumulation (paper Eq. 1) with pre-drawn noise."""
    n_frames = frames.shape[0]
    n = routes.shape[0]
    m = c_hold.shape[0]
    v_hold = np.zeros((n_frames, m))
    last_touch = np.zeros(m)  # sample index of the last share per row
    for j in range(n):
        rows = routes[j]  # (s,) destinations of sample j
        vin = frames[:, j][:, None]  # (n_frames, 1)
        if sample_draws is not None:
            vin = vin + sample_draws[j]
        cs = c_sample[: len(rows)]  # one sampling cap per route slot
        ch = c_hold[rows]
        a = cs / (cs + ch)  # (s,)
        b = ch / (cs + ch)
        v_hold[:, rows] = b * v_hold[:, rows] + a * vin
        if share_draws is not None:
            share_noise = np.sqrt(kt / (cs + ch))
            v_hold[:, rows] += share_draws[j] * (share_noise)
        last_touch[rows] = j
    return v_hold, last_touch


def signal_pass(batch, peer_rows, ctxs):
    """Drive a batch through the stacked ``process_batch`` kernels."""
    tel = _telemetry()
    n_points = batch.n_points
    for peers in peer_rows:
        with tel.span(f"block.{peers[0].name}"):
            batch = peers[0].process_batch(batch, peers, ctxs)
        if batch.n_points != n_points:
            raise RuntimeError(
                f"batch kernel {type(peers[0]).__name__}.process_batch returned "
                f"{batch.n_points} rows for {n_points} points"
            )
    return batch


def make_backend():
    from repro.kernels.registry import KernelBackend

    return KernelBackend(
        name="numpy",
        exact=True,
        kernels={
            "fista": fista,
            "ista": ista,
            "omp": omp,
            "encoder_multiply": encoder_multiply,
            "signal_pass": signal_pass,
        },
    )
