"""Optional JAX backend (stub-able; registered unavailable without jax).

The registry's design goal is that adding an accelerator backend is
"register + pass the conformance suite".  This module is the worked
example for a JAX/XLA port: it registers under the name ``jax``, gates
itself on ``import jax`` (absent in the default container, so it shows
up in the manifest ``kernels`` section as unavailable with a reason),
and — when jax *is* importable — provides jitted float64
implementations of the batched LASSO solvers.

Exactness: documented tolerance (XLA fuses and reorders reductions);
like the numba backend, activating it qualifies evaluation-cache keys
with the backend name.
"""

from __future__ import annotations

import numpy as np

#: Documented agreement tolerance versus the numpy reference.
RTOL = 1e-5

_JAX: dict | None = None


def available() -> tuple[bool, str | None]:
    try:
        import jax  # noqa: F401
    except Exception as exc:  # pragma: no cover - depends on environment
        return False, f"jax not importable: {type(exc).__name__}: {exc}"
    return True, None


def _jax() -> dict:  # pragma: no cover - requires jax installed
    global _JAX
    if _JAX is not None:
        return _JAX
    import jax

    jax.config.update("jax_enable_x64", True)
    import jax.numpy as jnp

    def _soft_threshold(z, threshold):
        return jnp.sign(z) * jnp.maximum(jnp.abs(z) - threshold, 0.0)

    @jax.jit
    def _fista_steps(a, y2, lam, n_iter):
        lipschitz = jnp.linalg.norm(a, ord=2) ** 2
        step = jnp.where(lipschitz > 0, 1.0 / jnp.where(lipschitz > 0, lipschitz, 1.0), 0.0)
        gram = a.T @ a
        ya = y2 @ a

        def body(carry, _):
            z, momentum, t = carry
            gradient = momentum @ gram - ya
            z_next = _soft_threshold(momentum - step * gradient, lam * step)
            t_next = 0.5 * (1.0 + jnp.sqrt(1.0 + 4.0 * t * t))
            momentum = z_next + ((t - 1.0) / t_next) * (z_next - z)
            return (z_next, momentum, t_next), None

        z0 = jnp.zeros((y2.shape[0], a.shape[1]))
        (z, _, _), _ = jax.lax.scan(body, (z0, z0, 1.0), None, length=n_iter)
        return z

    _JAX = {"fista_steps": _fista_steps, "jnp": jnp}
    return _JAX


def fista(a, y2, lam, n_iter, tol):  # pragma: no cover - requires jax
    del tol  # fixed-length scan: no early exit (tolerance-backend contract)
    impl = _jax()
    z = impl["fista_steps"](
        np.asarray(a, dtype=np.float64), np.asarray(y2, dtype=np.float64), float(lam), int(n_iter)
    )
    return np.asarray(z), int(n_iter)


def make_backend():
    from repro.kernels.registry import KernelBackend

    ok, reason = available()
    return KernelBackend(
        name="jax",
        kernels={"fista": fista} if ok else {},
        exact=False,
        rtol=RTOL,
        available=ok,
        unavailable_reason=reason,
    )
