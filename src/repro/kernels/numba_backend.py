"""Optional numba JIT backend for the hot kernels.

Everything is gated on ``import numba`` succeeding: when numba is not
installed (the default container has only numpy/scipy) the backend
registers as *unavailable* and every dispatch falls back to the numpy
reference, with the fallback counted in telemetry and recorded in the
manifest ``kernels`` section.

Exactness: **documented tolerance, not bit-identity** (``rtol``
below).  The JIT loops accumulate in a different order than numpy's
BLAS calls (and the Lipschitz constant comes from an SVD rather than
``np.linalg.norm(ord=2)``), so results agree to floating-point
round-off but not bitwise.  The conformance suite
(:mod:`repro.testing.conformance`) enforces the tolerance; because the
backend is non-exact, the registry qualifies evaluation-cache keys with
the backend name whenever it is active (see
:meth:`repro.kernels.registry.KernelRegistry.cache_tag`).

Compilation is lazy: the first dispatched call pays the JIT cost, and
any compile/runtime error is contained by the registry (demote + fall
back to the reference), so a broken numba install can never take down a
sweep.
"""

from __future__ import annotations

import numpy as np

#: Documented agreement tolerance versus the numpy reference.
RTOL = 1e-6

_COMPILED: dict | None = None


def available() -> tuple[bool, str | None]:
    try:
        import numba  # noqa: F401
    except Exception as exc:  # pragma: no cover - depends on environment
        return False, f"numba not importable: {type(exc).__name__}: {exc}"
    return True, None


def _compiled() -> dict:
    """Compile the JIT kernels once per process (lazy)."""
    global _COMPILED
    if _COMPILED is not None:
        return _COMPILED
    import numba

    njit = numba.njit

    @njit(fastmath=False)
    def _soft_threshold_into(candidate, thr, out):
        b, n = candidate.shape
        for i in range(b):
            for k in range(n):
                v = candidate[i, k]
                if v > thr:
                    out[i, k] = v - thr
                elif v < -thr:
                    out[i, k] = v + thr
                else:
                    out[i, k] = 0.0

    @njit(fastmath=False)
    def _fista(a, y2, lam, n_iter, tol):
        b, _m = y2.shape
        n = a.shape[1]
        sv = np.linalg.svd(a)[1]
        lipschitz = sv[0] * sv[0] if sv.shape[0] > 0 else 0.0
        z = np.zeros((b, n))
        if lipschitz == 0.0:
            return z, 0
        step = 1.0 / lipschitz
        momentum = z.copy()
        t = 1.0
        gram = np.dot(a.T, a)
        ya = np.dot(y2, a)
        z_next = np.zeros((b, n))
        iterations = 0
        for _ in range(n_iter):
            iterations += 1
            gradient = np.dot(momentum, gram) - ya
            _soft_threshold_into(momentum - step * gradient, lam * step, z_next)
            t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
            coef = (t - 1.0) / t_next
            delta = 0.0
            nan_seen = False
            for i in range(b):
                for k in range(n):
                    diff = z_next[i, k] - z[i, k]
                    momentum[i, k] = z_next[i, k] + coef * diff
                    d = abs(diff)
                    if d != d:
                        nan_seen = True
                    elif d > delta:
                        delta = d
            tmp = z
            z = z_next
            z_next = tmp
            t = t_next
            if not nan_seen and delta <= tol:
                break
        return z, iterations

    @njit(fastmath=False)
    def _ista(a, y2, lam, n_iter, tol):
        b, _m = y2.shape
        n = a.shape[1]
        sv = np.linalg.svd(a)[1]
        lipschitz = sv[0] * sv[0] if sv.shape[0] > 0 else 0.0
        z = np.zeros((b, n))
        if lipschitz == 0.0:
            return z, 0
        step = 1.0 / lipschitz
        z_next = np.zeros((b, n))
        iterations = 0
        for _ in range(n_iter):
            iterations += 1
            gradient = np.dot(np.dot(z, a.T) - y2, a)
            _soft_threshold_into(z - step * gradient, lam * step, z_next)
            delta = 0.0
            nan_seen = False
            for i in range(b):
                for k in range(n):
                    d = abs(z_next[i, k] - z[i, k])
                    if d != d:
                        nan_seen = True
                    elif d > delta:
                        delta = d
            tmp = z
            z = z_next
            z_next = tmp
            if not nan_seen and delta <= tol:
                break
        return z, iterations

    @njit(fastmath=False)
    def _lstsq_on_support(a, y, support, n_selected):
        sub = np.empty((a.shape[0], n_selected))
        for k in range(n_selected):
            sub[:, k] = a[:, support[k]]
        solution = np.linalg.lstsq(sub, y)[0]
        coeffs = np.zeros(a.shape[1])
        for k in range(n_selected):
            coeffs[support[k]] = solution[k]
        return coeffs

    @njit(fastmath=False)
    def _omp(a, y, sparsity, tol):
        m, n = a.shape
        norms = np.empty(n)
        for k in range(n):
            acc = 0.0
            for i in range(m):
                acc += a[i, k] * a[i, k]
            norms[k] = np.sqrt(acc) if acc > 0.0 else 1.0
        y_norm = np.sqrt(np.dot(y, y))
        if y_norm == 0.0:
            return np.zeros(n), 0
        residual = y.copy()
        support = np.empty(min(sparsity, m), dtype=np.int64)
        n_selected = 0
        coeffs = np.zeros(n)
        for _ in range(min(sparsity, m)):
            correlations = np.abs(np.dot(a.T, residual)) / norms
            for k in range(n_selected):
                correlations[support[k]] = -np.inf
            atom = int(np.argmax(correlations))
            support[n_selected] = atom
            n_selected += 1
            coeffs = _lstsq_on_support(a, y, support, n_selected)
            residual = y - np.dot(a, coeffs)
            if tol > 0.0 and np.sqrt(np.dot(residual, residual)) <= tol * y_norm:
                break
        return _lstsq_on_support(a, y, support, n_selected), n_selected

    @njit(fastmath=False)
    def _encoder_multiply(
        frames, routes, c_sample, c_hold, kt, sample_draws, share_draws, has_sample, has_share
    ):
        n_frames = frames.shape[0]
        n, s = routes.shape
        m = c_hold.shape[0]
        v_hold = np.zeros((n_frames, m))
        last_touch = np.zeros(m)
        for j in range(n):
            for slot in range(s):
                row = routes[j, slot]
                cs = c_sample[slot]
                ch = c_hold[row]
                a = cs / (cs + ch)
                b = ch / (cs + ch)
                share_noise = np.sqrt(kt / (cs + ch)) if has_share else 0.0
                for f in range(n_frames):
                    vin = frames[f, j]
                    if has_sample:
                        vin += sample_draws[j, f, slot]
                    v = b * v_hold[f, row] + a * vin
                    if has_share:
                        v += share_draws[j, f, slot] * share_noise
                    v_hold[f, row] = v
            for slot in range(s):
                last_touch[routes[j, slot]] = j
        return v_hold, last_touch

    _COMPILED = {
        "fista": _fista,
        "ista": _ista,
        "omp": _omp,
        "encoder_multiply": _encoder_multiply,
    }
    return _COMPILED


def _as_f64(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(x, dtype=np.float64))


def fista(a, y2, lam, n_iter, tol):
    z, iterations = _compiled()["fista"](
        _as_f64(a), _as_f64(y2), float(lam), int(n_iter), float(tol)
    )
    return z, int(iterations)


def ista(a, y2, lam, n_iter, tol):
    z, iterations = _compiled()["ista"](
        _as_f64(a), _as_f64(y2), float(lam), int(n_iter), float(tol)
    )
    return z, int(iterations)


def omp(a, y, sparsity, tol):
    coeffs, n_selected = _compiled()["omp"](
        _as_f64(a), _as_f64(y), int(sparsity), float(tol)
    )
    return coeffs, int(n_selected)


def encoder_multiply(frames, routes, c_sample, c_hold, kt, sample_draws, share_draws):
    frames = _as_f64(frames)
    routes = np.ascontiguousarray(np.asarray(routes, dtype=np.int64))
    empty = np.zeros((routes.shape[0], frames.shape[0], routes.shape[1]))
    return _compiled()["encoder_multiply"](
        frames,
        routes,
        _as_f64(c_sample),
        _as_f64(c_hold),
        float(kt),
        empty if sample_draws is None else _as_f64(sample_draws),
        empty if share_draws is None else _as_f64(share_draws),
        sample_draws is not None,
        share_draws is not None,
    )


def make_backend():
    from repro.kernels.registry import KernelBackend

    ok, reason = available()
    kernels = (
        {"fista": fista, "ista": ista, "omp": omp, "encoder_multiply": encoder_multiply}
        if ok
        else {}
    )
    return KernelBackend(
        name="numba",
        kernels=kernels,
        exact=False,
        rtol=RTOL,
        available=ok,
        unavailable_reason=reason,
    )
