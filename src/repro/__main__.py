"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Downstream pipe closed early (e.g. ``repro store get NAME | head``).
    # Flushing the already-broken stdout at interpreter exit would raise
    # again, so detach it and exit with the conventional SIGPIPE code.
    devnull = os.open(os.devnull, os.O_WRONLY)
    os.dup2(devnull, sys.stdout.fileno())
    sys.exit(128 + 13)
