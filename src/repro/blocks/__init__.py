"""Functional block library: sources, LNA, S&H, SAR ADC, CS encoder, DSP, TX.

Every block couples a vectorised behavioural model with the matching
Table II power model, so assembling a chain from this library yields both
waveform quality and a power breakdown from a single simulation run.
"""

from repro.blocks.chains import (
    build_baseline_chain,
    build_chain,
    build_cs_chain,
    build_digital_cs_chain,
    encoder_attenuation,
)
from repro.blocks.cs_frontend import (
    CsEncoderBlock,
    CsReconstructionBlock,
    DigitalCsEncoderBlock,
    FramerBlock,
    frame_stream,
)
from repro.blocks.chopper import Chopper
from repro.blocks.dsp import Decimator, FirFilter, Normalizer
from repro.blocks.lna import LNA
from repro.blocks.sample_hold import SampleHold
from repro.blocks.sar_adc import SarAdc, ideal_quantize
from repro.blocks.sources import from_array, multitone, sine
from repro.blocks.transmitter import Transmitter

__all__ = [
    "CsEncoderBlock",
    "DigitalCsEncoderBlock",
    "Chopper",
    "CsReconstructionBlock",
    "Decimator",
    "FirFilter",
    "FramerBlock",
    "LNA",
    "Normalizer",
    "SampleHold",
    "SarAdc",
    "Transmitter",
    "build_baseline_chain",
    "build_chain",
    "build_cs_chain",
    "build_digital_cs_chain",
    "encoder_attenuation",
    "frame_stream",
    "from_array",
    "ideal_quantize",
    "multitone",
    "sine",
]
