"""Sample-and-hold model (Table II row 2).

The chain is simulated at the sampled rate already, so the functional job
of the S&H block is to add its electrical imperfections to each sample:

* **kT/C noise** of the sampling capacitor (the capacitor is sized from
  the design point's quantization-matched rule, the same sizing the power
  model assumes);
* **aperture jitter** -- timing noise converts to voltage noise through
  the signal slope, ``sigma_v = dV/dt * sigma_t``;
* **droop** -- leakage discharge during the hold interval (one conversion
  period).

Power is the charge-delivery bound of Table II.
"""

from __future__ import annotations

import numpy as np

from repro.core.block import Block, SimulationContext
from repro.core.signal import Signal
from repro.power.models import sample_hold_power
from repro.power.technology import DesignPoint
from repro.util.constants import KT_ROOM
from repro.util.validation import check_non_negative, check_positive


class SampleHold(Block):
    """Behavioural S&H with kT/C noise, aperture jitter and droop.

    Parameters
    ----------
    capacitance:
        Sampling capacitor in farads (sets the kT/C noise floor).
    aperture_jitter:
        RMS sampling-instant jitter in seconds (0 disables).
    droop_rate:
        Hold-node discharge in volts/second (0 disables).
    hold_time:
        Hold interval for droop, in seconds; ``None`` uses one sample
        period of the incoming stream.
    kt:
        Thermal energy (exposed for tests; 0 disables kT/C noise).
    """

    def __init__(
        self,
        name: str = "sample_hold",
        capacitance: float = 1e-14,
        aperture_jitter: float = 0.0,
        droop_rate: float = 0.0,
        hold_time: float | None = None,
        kt: float = KT_ROOM,
    ):
        super().__init__(name)
        self.capacitance = check_positive("capacitance", capacitance)
        self.aperture_jitter = check_non_negative("aperture_jitter", aperture_jitter)
        self.droop_rate = check_non_negative("droop_rate", droop_rate)
        self.hold_time = None if hold_time is None else check_positive("hold_time", hold_time)
        self.kt = check_non_negative("kt", kt)

    @classmethod
    def from_design(
        cls,
        point: DesignPoint,
        name: str = "sample_hold",
        include_droop: bool = False,
    ) -> "SampleHold":
        """Size the capacitor (and optionally droop) from the design point.

        Droop is off by default: at Table III's I_leak = 1 pA the
        noise-sized (femtofarad) capacitor would droop by volts within one
        conversion -- real designs mitigate this with low-leakage switches
        and bottom-plate techniques that the paper's behavioural level
        abstracts away.  Leakage still appears as static power in the
        chain's power report; enable ``include_droop`` to study the raw
        effect explicitly.
        """
        cap = point.sampling_capacitance
        return cls(
            name=name,
            capacitance=cap,
            droop_rate=point.technology.i_leak / cap if include_droop else 0.0,
            kt=point.technology.kt,
        )

    @property
    def noise_rms(self) -> float:
        """kT/C noise RMS in volts."""
        if self.kt == 0:
            return 0.0
        return float(np.sqrt(self.kt / self.capacitance))

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        data = signal.data
        if data.ndim != 1:
            raise ValueError(f"S&H expects a 1-D stream, got shape {data.shape}")
        rng = ctx.rng(self.name)
        if self.aperture_jitter > 0:
            # Voltage error = slope * timing error, slope from differences.
            slope = np.gradient(data) * signal.sample_rate
            data = data + slope * rng.normal(0.0, self.aperture_jitter, size=data.shape)
        noise = self.noise_rms
        if noise > 0:
            data = data + rng.normal(0.0, noise, size=data.shape)
        if self.droop_rate > 0:
            hold = self.hold_time if self.hold_time is not None else 1.0 / signal.sample_rate
            droop = self.droop_rate * hold
            data = data - np.sign(data) * np.minimum(np.abs(data), droop)
        return signal.replaced(data=data)

    def process_batch(self, batch, peers, ctxs):
        """Vectorised :meth:`process` over stacked points (see core.batch).

        The scalar path draws jitter then kT/C noise from ONE generator
        per run; each row here gets its own generator with the identical
        call pattern, so per-point outputs match the scalar path exactly.
        Droop (deterministic) vectorises across the rows that enable it.
        """
        data = batch.data
        if data.ndim != 2:
            raise ValueError(f"S&H expects 1-D streams, got batch shape {data.shape}")
        rates = batch.sample_rates
        out = data.copy()
        for i, (blk, ctx) in enumerate(zip(peers, ctxs)):
            rng = ctx.rng(blk.name)
            row = out[i]
            if blk.aperture_jitter > 0:
                slope = np.gradient(row) * rates[i]
                row += slope * rng.normal(0.0, blk.aperture_jitter, size=row.shape)
            noise = blk.noise_rms
            if noise > 0:
                row += rng.normal(0.0, noise, size=row.shape)
        droopy = [i for i, blk in enumerate(peers) if blk.droop_rate > 0]
        if droopy:
            droop = np.array(
                [
                    peers[i].droop_rate
                    * (peers[i].hold_time if peers[i].hold_time is not None else 1.0 / rates[i])
                    for i in droopy
                ]
            )[:, None]
            sub = out[droopy]
            out[droopy] = sub - np.sign(sub) * np.minimum(np.abs(sub), droop)
        return batch.replaced(data=out)

    def power(self, point: DesignPoint) -> dict[str, float]:
        return {"sample_hold": sample_hold_power(point)}
