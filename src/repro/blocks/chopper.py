"""Chopper-stabilisation block (library-extension example made permanent).

Bio-potential LNAs are flicker-noise limited below ~1 kHz; chopper
stabilisation modulates the signal above the 1/f corner and back,
suppressing flicker noise at the cost of a modest switching clock.  This
block models the technique at the paper's behavioural level and carries
its own power model, making it the library's canonical example of the
Section III extension recipe (the walkthrough lives in
``examples/custom_block.py``).

Functional model: the *residual* 1/f noise after chopping is injected as
1/f-shaped noise with RMS ``flicker_rms / suppression`` (``suppression=1``
models an un-chopped amplifier, i.e. the full flicker burden).

Power model: four modulator switch gates toggling at the chop frequency,
``P = 4 * C_logic * V_dd^2 * f_chop`` with ``f_chop = chop_ratio *
f_sample``.
"""

from __future__ import annotations

import numpy as np

from repro.core.block import Block, SimulationContext
from repro.core.signal import Signal
from repro.power.technology import DesignPoint
from repro.util.validation import check_positive, check_positive_int


class Chopper(Block):
    """Behavioural chopper: residual flicker noise + switching power.

    Parameters
    ----------
    flicker_rms:
        Input-referred 1/f noise RMS of the un-chopped amplifier, volts.
    chop_ratio:
        Chop frequency as a multiple of the sample rate.
    suppression:
        Flicker attenuation factor achieved by chopping (>= 1; 1 models
        no chopping, i.e. the full flicker noise is injected).
    """

    def __init__(
        self,
        flicker_rms: float,
        chop_ratio: int = 8,
        suppression: float = 20.0,
        name: str = "chopper",
    ):
        super().__init__(name)
        self.flicker_rms = check_positive("flicker_rms", flicker_rms)
        self.chop_ratio = check_positive_int("chop_ratio", chop_ratio)
        if suppression < 1.0:
            raise ValueError(f"suppression must be >= 1, got {suppression}")
        self.suppression = float(suppression)

    @property
    def residual_rms(self) -> float:
        """Flicker noise RMS that survives chopping, volts."""
        return self.flicker_rms / self.suppression

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        data = signal.data
        if data.ndim != 1:
            raise ValueError(f"chopper expects a 1-D stream, got shape {data.shape}")
        rng = ctx.rng(self.name)
        white = rng.normal(size=data.size)
        spectrum = np.fft.rfft(white)
        freqs = np.fft.rfftfreq(data.size, d=1.0 / signal.sample_rate)
        freqs[0] = freqs[1] if freqs.size > 1 else 1.0
        shaped = np.fft.irfft(spectrum / np.sqrt(freqs), n=data.size)
        std = np.std(shaped)
        if std > 0:
            shaped *= self.residual_rms / std
        return signal.replaced(data=data + shaped)

    def power(self, point: DesignPoint) -> dict[str, float]:
        tech = point.technology
        f_chop = self.chop_ratio * point.f_sample
        return {self.name: 4.0 * tech.c_logic * point.v_dd**2 * f_chop}
