"""Signal sources.

Sources create the :class:`~repro.core.signal.Signal` that enters a chain:
calibration tones (single sine, multitone — used by the Fig. 4 SNDR sweep),
and dataset-backed sources that replay recorded/synthetic sensor data
(Step 4 of the paper's flow).
"""

from __future__ import annotations

import numpy as np

from repro.core.signal import Signal
from repro.util.validation import check_non_negative, check_positive, check_positive_int


def sine(
    frequency: float,
    amplitude: float,
    sample_rate: float,
    duration: float | None = None,
    n_samples: int | None = None,
    phase: float = 0.0,
    dc_offset: float = 0.0,
    coherent: bool = True,
) -> Signal:
    """A single-tone test signal.

    With ``coherent=True`` (default) the frequency is snapped to the
    nearest nonzero integer number of cycles in the record, so FFT-based
    SNDR analysis needs no windowing -- the standard ADC test practice.

    Exactly one of ``duration`` / ``n_samples`` must be given.
    """
    check_positive("frequency", frequency)
    check_positive("amplitude", amplitude)
    check_positive("sample_rate", sample_rate)
    if (duration is None) == (n_samples is None):
        raise ValueError("specify exactly one of duration / n_samples")
    if n_samples is None:
        n_samples = int(round(duration * sample_rate))
    n_samples = check_positive_int("n_samples", n_samples)
    if frequency >= sample_rate / 2:
        raise ValueError(
            f"frequency {frequency} Hz is not below Nyquist ({sample_rate / 2} Hz)"
        )
    if coherent:
        cycles = max(1, round(frequency * n_samples / sample_rate))
        frequency = cycles * sample_rate / n_samples
    t = np.arange(n_samples) / sample_rate
    data = dc_offset + amplitude * np.sin(2.0 * np.pi * frequency * t + phase)
    return Signal(
        data=data,
        sample_rate=sample_rate,
        domain="analog",
        annotations={"source": "sine", "frequency": frequency, "amplitude": amplitude},
    )


def multitone(
    frequencies: list[float],
    amplitudes: list[float],
    sample_rate: float,
    n_samples: int,
    seed_phases: bool = True,
) -> Signal:
    """A multi-tone test signal (intermodulation / linearity testing).

    Each tone is snapped to a coherent bin.  ``seed_phases`` applies
    deterministic pseudo-random phases to keep the crest factor reasonable.
    """
    if len(frequencies) != len(amplitudes):
        raise ValueError("frequencies and amplitudes must have equal length")
    if not frequencies:
        raise ValueError("at least one tone is required")
    check_positive("sample_rate", sample_rate)
    n_samples = check_positive_int("n_samples", n_samples)
    t = np.arange(n_samples) / sample_rate
    data = np.zeros(n_samples)
    snapped = []
    for idx, (freq, amp) in enumerate(zip(frequencies, amplitudes)):
        check_positive(f"frequencies[{idx}]", freq)
        check_non_negative(f"amplitudes[{idx}]", amp)
        cycles = max(1, round(freq * n_samples / sample_rate))
        freq_coherent = cycles * sample_rate / n_samples
        snapped.append(freq_coherent)
        phase = 2.399963 * idx if seed_phases else 0.0  # golden-angle spread
        data += amp * np.sin(2.0 * np.pi * freq_coherent * t + phase)
    return Signal(
        data=data,
        sample_rate=sample_rate,
        domain="analog",
        annotations={"source": "multitone", "frequencies": snapped},
    )


def from_array(data: np.ndarray, sample_rate: float, **annotations) -> Signal:
    """Wrap a raw sample array (e.g. a dataset record) as a Signal."""
    return Signal(
        data=np.asarray(data, dtype=np.float64),
        sample_rate=sample_rate,
        domain="analog",
        annotations={"source": "array", **annotations},
    )
