"""Low-noise amplifier model (paper Fig. 3 + Table II row 1).

Functional pipeline, in signal order:

1. **Input-referred noise** -- additive white Gaussian noise with total RMS
   equal to the design's ``lna_noise_rms``.  The sampled simulation runs
   below the LNA bandwidth (BW_LNA = 3 x BW_in vs f_sim = 2 x BW_in), so
   the out-of-band part of the LNA's noise aliases into the sampled band;
   injecting the full integrated RMS models exactly that, matching how a
   S&H downstream would fold the wideband noise.
2. **Gain** -- linear voltage gain.
3. **Bandwidth** -- single-pole low-pass at BW_LNA (applied as a bilinear
   IIR; a no-op when BW_LNA is above simulation Nyquist, which is the
   paper's default geometry).
4. **Non-linearity** -- odd third-order term ``v + a3 v^3`` expressed via
   ``hd3_at_fs``: the third-harmonic distortion ratio when driven at
   full-scale output amplitude (a designer-facing spec rather than a raw
   polynomial coefficient).
5. **Clipping** -- hard saturation at the output swing limit (supply rail
   by default).

The power model is the three-bound maximum of Table II (see
:func:`repro.power.models.lna_power`).
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.core.block import Block, SimulationContext
from repro.core.signal import Signal
from repro.power.models import lna_power
from repro.power.technology import DesignPoint
from repro.util.validation import check_non_negative, check_positive


class LNA(Block):
    """Behavioural LNA with noise, gain, bandwidth, distortion and clipping.

    Parameters
    ----------
    gain:
        Linear voltage gain (> 0).
    noise_rms:
        Total input-referred noise in Vrms (0 disables noise injection).
    bandwidth:
        -3 dB bandwidth in Hz; ``None`` for an ideal (unlimited) response.
    hd3_at_fs:
        Third-harmonic distortion (amplitude ratio, e.g. 0.001 = -60 dBc)
        when the *output* swings to ``clip_level``.  0 disables the
        non-linearity.
    clip_level:
        Output saturation in volts (None disables clipping).
    """

    def __init__(
        self,
        name: str = "lna",
        gain: float = 1000.0,
        noise_rms: float = 0.0,
        bandwidth: float | None = None,
        hd3_at_fs: float = 0.0,
        clip_level: float | None = None,
    ):
        super().__init__(name)
        self.gain = check_positive("gain", gain)
        self.noise_rms = check_non_negative("noise_rms", noise_rms)
        self.bandwidth = None if bandwidth is None else check_positive("bandwidth", bandwidth)
        self.hd3_at_fs = check_non_negative("hd3_at_fs", hd3_at_fs)
        self.clip_level = None if clip_level is None else check_positive("clip_level", clip_level)

    @classmethod
    def from_design(cls, point: DesignPoint, name: str = "lna", hd3_at_fs: float = 1e-4) -> "LNA":
        """Configure the LNA from a design point (gain, noise, BW, clip)."""
        return cls(
            name=name,
            gain=point.lna_gain,
            noise_rms=point.lna_noise_rms,
            bandwidth=point.bw_lna,
            hd3_at_fs=hd3_at_fs,
            clip_level=point.v_fs / 2.0,
        )

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        data = signal.data
        if data.ndim != 1:
            raise ValueError(f"LNA expects a 1-D stream, got shape {data.shape}")
        # 1. input-referred noise
        if self.noise_rms > 0:
            rng = ctx.rng(self.name)
            data = data + rng.normal(0.0, self.noise_rms, size=data.shape)
        # 2. gain
        data = data * self.gain
        # 3. bandwidth limitation (single pole)
        if self.bandwidth is not None and self.bandwidth < signal.sample_rate / 2:
            b, a = sp_signal.butter(1, self.bandwidth, fs=signal.sample_rate)
            data = sp_signal.lfilter(b, a, data)
        # 4. third-order non-linearity: v - a3 v^3 (compressive), with a3
        #    chosen so the HD3 of a clip-level sine equals hd3_at_fs.
        #    For v = A sin(wt): HD3 amplitude ratio = a3 A^2 / 4.
        if self.hd3_at_fs > 0 and self.clip_level is not None:
            a3 = 4.0 * self.hd3_at_fs / self.clip_level**2
            data = data - a3 * data**3
        # 5. clipping
        if self.clip_level is not None:
            data = np.clip(data, -self.clip_level, self.clip_level)
        return signal.replaced(data=data, lna_gain=self.gain)

    def process_batch(self, batch, peers, ctxs):
        """Vectorised :meth:`process` over stacked points (see core.batch).

        Per-row RNG draws replicate the scalar path exactly (one
        generator per row, one draw, same shape); gain, the nonlinearity
        and clipping vectorise across rows, and the IIR bandwidth filter
        runs once per unique ``(bandwidth, sample_rate)`` pair instead of
        once per point.
        """
        data = batch.data
        if data.ndim != 2:
            raise ValueError(f"LNA expects 1-D streams, got batch shape {data.shape}")
        rates = batch.sample_rates
        # 1. input-referred noise (independent per-row streams)
        out = data.copy()
        for i, (blk, ctx) in enumerate(zip(peers, ctxs)):
            if blk.noise_rms > 0:
                rng = ctx.rng(blk.name)
                out[i] += rng.normal(0.0, blk.noise_rms, size=data.shape[1])
        # 2. gain
        gains = np.array([blk.gain for blk in peers])
        out = out * gains[:, None]
        # 3. bandwidth limitation, grouped by filter coefficients
        filter_rows: dict[tuple[float, float], list[int]] = {}
        for i, blk in enumerate(peers):
            if blk.bandwidth is not None and blk.bandwidth < rates[i] / 2:
                filter_rows.setdefault((blk.bandwidth, rates[i]), []).append(i)
        n_rows = len(peers)
        for (bandwidth, rate), rows in filter_rows.items():
            b, a = sp_signal.butter(1, bandwidth, fs=rate)
            if len(rows) == n_rows:
                out = sp_signal.lfilter(b, a, out, axis=-1)
            else:
                out[rows] = sp_signal.lfilter(b, a, out[rows], axis=-1)
        # 4. third-order non-linearity, only on rows that enable it (the
        #    masked update keeps disabled rows bit-identical to scalar;
        #    the homogeneous case skips the fancy-index copies)
        cubic = [
            i for i, blk in enumerate(peers) if blk.hd3_at_fs > 0 and blk.clip_level is not None
        ]
        if len(cubic) == n_rows:
            a3 = np.array([4.0 * blk.hd3_at_fs / blk.clip_level**2 for blk in peers])
            out = out - a3[:, None] * out**3
        elif cubic:
            a3 = np.array([4.0 * peers[i].hd3_at_fs / peers[i].clip_level**2 for i in cubic])
            sub = out[cubic]
            out[cubic] = sub - a3[:, None] * sub**3
        # 5. clipping
        clipped = [i for i, blk in enumerate(peers) if blk.clip_level is not None]
        if len(clipped) == n_rows:
            level = np.array([blk.clip_level for blk in peers])[:, None]
            out = np.clip(out, -level, level)
        elif clipped:
            level = np.array([peers[i].clip_level for i in clipped])[:, None]
            out[clipped] = np.clip(out[clipped], -level, level)
        return batch.replaced(
            data=out, row_annotations=[{"lna_gain": blk.gain} for blk in peers]
        )

    def power(self, point: DesignPoint) -> dict[str, float]:
        return {"lna": lna_power(point)}
