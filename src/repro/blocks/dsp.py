"""Digital signal-conditioning blocks (the paper's "DSP" box in Fig. 1).

Simple vectorised digital stages used for signal conditioning ahead of
the transmitter or the application metric: FIR low-pass/band-pass
filtering, decimation, and a digital gain/offset normaliser used to map
reconstructed streams back to sensor-referred units.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.core.block import Block, SimulationContext
from repro.core.signal import Signal
from repro.util.validation import check_positive, check_positive_int


class FirFilter(Block):
    """Linear-phase FIR filter (windowed-sinc design via scipy.firwin).

    Parameters
    ----------
    cutoff:
        Scalar for low-pass, (low, high) pair for band-pass, in Hz.
    n_taps:
        Filter order + 1 (odd keeps the group delay integer).
    """

    def __init__(
        self,
        cutoff: float | tuple[float, float],
        n_taps: int = 63,
        name: str = "fir",
    ):
        super().__init__(name)
        self.n_taps = check_positive_int("n_taps", n_taps)
        self.cutoff = cutoff
        self._taps_cache: dict[float, np.ndarray] = {}

    def _taps(self, sample_rate: float) -> np.ndarray:
        taps = self._taps_cache.get(sample_rate)
        if taps is None:
            if np.isscalar(self.cutoff):
                taps = sp_signal.firwin(self.n_taps, self.cutoff, fs=sample_rate)
            else:
                low, high = self.cutoff
                taps = sp_signal.firwin(
                    self.n_taps, [low, high], pass_zero=False, fs=sample_rate
                )
            self._taps_cache[sample_rate] = taps
        return taps

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        del ctx
        taps = self._taps(signal.sample_rate)
        # Zero-phase compensation: shift by the integer group delay.
        filtered = np.convolve(signal.data, taps, mode="full")
        delay = (len(taps) - 1) // 2
        filtered = filtered[delay : delay + signal.data.size]
        return signal.replaced(data=filtered)


class Decimator(Block):
    """Integer decimation with anti-alias FIR pre-filtering."""

    def __init__(self, factor: int, name: str = "decimator"):
        super().__init__(name)
        self.factor = check_positive_int("factor", factor)

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        del ctx
        if self.factor == 1:
            return signal
        data = sp_signal.decimate(signal.data, self.factor, ftype="fir", zero_phase=True)
        return signal.replaced(data=data, sample_rate=signal.sample_rate / self.factor)


class Normalizer(Block):
    """Digital gain/offset stage, e.g. to undo the LNA gain.

    ``gain=None`` divides by the ``lna_gain`` annotation if present
    (sensor-referred output), else leaves the data unchanged.
    """

    def __init__(self, gain: float | None = None, offset: float = 0.0, name: str = "normalizer"):
        super().__init__(name)
        self.gain = None if gain is None else check_positive("gain", gain)
        self.offset = float(offset)

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        del ctx
        gain = self.gain
        if gain is None:
            gain = signal.annotations.get("lna_gain", 1.0)
        return signal.replaced(data=signal.data / gain + self.offset)

    def process_batch(self, batch, peers, ctxs):
        """Vectorised :meth:`process` over stacked points (see core.batch).

        Per-row gains come from each block's configuration or its row's
        ``lna_gain`` annotation, broadcast over the row's trailing axes.
        """
        del ctxs
        gains = np.array(
            [
                blk.gain
                if blk.gain is not None
                else batch.annotations[i].get("lna_gain", 1.0)
                for i, blk in enumerate(peers)
            ]
        )
        offsets = np.array([blk.offset for blk in peers])
        shape = (len(peers),) + (1,) * (batch.data.ndim - 1)
        return batch.replaced(
            data=batch.data / gains.reshape(shape) + offsets.reshape(shape)
        )
