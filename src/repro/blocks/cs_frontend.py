"""CS front-end blocks: framing, passive encoder, reconstruction.

Three blocks implement the compressive branch of the paper's Fig. 1 b):

* :class:`CsEncoderBlock` -- splits the incoming stream into N_phi-sample
  frames and runs the passive charge-sharing accumulation of Section III
  on each, emitting (n_frames, M) compressed measurements.  The nominal
  effective matrix ``Phi_eff`` is attached to the signal's annotations so
  downstream reconstruction uses the correct (weighted) model without any
  out-of-band plumbing.
* :class:`CsReconstructionBlock` -- recovers the frames with the
  configured solver/basis and re-assembles the 1-D stream.  This block
  models the *receiver side* (base station / phone), so it contributes no
  power to the sensor budget -- exactly the asymmetry CS exploits.
* :class:`FramerBlock` -- standalone framing utility (also used by tests).
"""

from __future__ import annotations

import numpy as np

from repro.core.block import Block, SimulationContext
from repro.core.signal import Signal
from repro.cs.charge_sharing import ChargeSharingConfig, ChargeSharingEncoder, encode_batch
from repro.cs.matrices import SensingMatrix
from repro.cs.reconstruction import Reconstructor
from repro.power.models import cs_encoder_logic_power
from repro.power.technology import DesignPoint
from repro.util.validation import check_positive_int


def frame_stream(data: np.ndarray, frame_length: int) -> np.ndarray:
    """Split a 1-D stream into complete frames, dropping the remainder.

    Returns shape (n_frames, frame_length).  Raises if not even one
    complete frame is available.
    """
    frame_length = check_positive_int("frame_length", frame_length)
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 1:
        raise ValueError(f"expected 1-D stream, got shape {data.shape}")
    n_frames = data.size // frame_length
    if n_frames == 0:
        raise ValueError(
            f"stream of {data.size} samples is shorter than one frame ({frame_length})"
        )
    return data[: n_frames * frame_length].reshape(n_frames, frame_length)


class FramerBlock(Block):
    """Reshape a 1-D stream into (n_frames, frame_length) frames."""

    def __init__(self, frame_length: int, name: str = "framer"):
        super().__init__(name)
        self.frame_length = check_positive_int("frame_length", frame_length)

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        del ctx
        frames = frame_stream(signal.data, self.frame_length)
        return signal.replaced(data=frames, frame_length=self.frame_length)


class CsEncoderBlock(Block):
    """Passive charge-sharing CS encoder as a chain block.

    Parameters
    ----------
    matrix:
        The s-SRBM routing matrix (M x N_phi).
    config:
        Electrical configuration of the capacitor network.
    seed:
        Mismatch-realisation seed of this encoder instance.  The per-run
        noise stream comes from the simulation context, so identical runs
        replay identically while distinct design points decorrelate.
    """

    def __init__(
        self,
        matrix: SensingMatrix,
        config: ChargeSharingConfig,
        name: str = "cs_encoder",
        seed: int | None = None,
    ):
        super().__init__(name)
        self.matrix = matrix
        self.config = config
        self.seed = seed
        self._encoder = ChargeSharingEncoder(matrix=matrix, config=config, seed=seed)

    @classmethod
    def from_design(
        cls,
        point: DesignPoint,
        matrix: SensingMatrix,
        name: str = "cs_encoder",
        seed: int | None = None,
        include_droop: bool = False,
    ) -> "CsEncoderBlock":
        """Wire capacitor sizing and mismatch from the design point.

        Leakage droop is off by default for the same reason as in
        :meth:`SampleHold.from_design`: at Table III's raw I_leak the
        pathfinding-scale hold capacitors would droop by volts over a
        frame, which real charge-sharing designs prevent with low-leakage
        switches; leakage remains in the static-power budget.  Set
        ``include_droop=True`` for explicit droop studies.
        """
        tech = point.technology
        c_hold = point.cs_hold_capacitance
        c_sample = point.cs_sample_capacitance
        config = ChargeSharingConfig(
            c_sample=c_sample,
            c_hold=c_hold,
            kt=tech.kt,
            mismatch_sigma_sample=tech.cap_mismatch_sigma(c_sample),
            mismatch_sigma_hold=tech.cap_mismatch_sigma(c_hold),
            i_leak=tech.i_leak if include_droop else 0.0,
            f_sample=point.f_sample,
        )
        return cls(matrix=matrix, config=config, name=name, seed=seed)

    @property
    def phi_effective(self) -> np.ndarray:
        """Nominal weighted sensing matrix (reconstruction model)."""
        return self._encoder.phi_effective

    def reset(self) -> None:
        self._encoder.reset_noise()

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        del ctx  # noise stream is owned by the encoder (seeded, replayable)
        frames = frame_stream(signal.data, self.matrix.n)
        measurements = self._encoder.encode(frames)
        frame_rate = signal.sample_rate / self.matrix.n
        return signal.replaced(
            data=measurements,
            sample_rate=frame_rate * self.matrix.m,
            domain="compressed",
            phi_effective=self.phi_effective,
            cs_frame_length=self.matrix.n,
            cs_measurements=self.matrix.m,
            input_sample_rate=signal.sample_rate,
        )

    def batch_group_key(self) -> tuple:
        """Stacking compatibility: matrix dimensions set the route shapes."""
        return ("cs", self.matrix.m, self.matrix.n, self.matrix.sparsity)

    def process_batch(self, batch, peers, ctxs):
        """Vectorised :meth:`process` over stacked points (see core.batch).

        Framing and the passive accumulation vectorise across encoder
        instances via :func:`repro.cs.charge_sharing.encode_batch`; each
        instance keeps its own mismatch realisation and noise stream, so
        rows match the scalar path exactly.
        """
        del ctxs  # noise streams are owned by the encoders (seeded, replayable)
        data = batch.data
        if data.ndim != 2:
            raise ValueError(f"CS encoder expects 1-D streams, got batch shape {data.shape}")
        frames = np.stack(
            [frame_stream(data[i], blk.matrix.n) for i, blk in enumerate(peers)]
        )
        measurements = encode_batch([blk._encoder for blk in peers], frames)
        rates = np.array(
            [
                batch.sample_rates[i] / blk.matrix.n * blk.matrix.m
                for i, blk in enumerate(peers)
            ]
        )
        return batch.replaced(
            data=measurements,
            sample_rates=rates,
            domain="compressed",
            row_annotations=[
                {
                    "phi_effective": blk.phi_effective,
                    "cs_frame_length": blk.matrix.n,
                    "cs_measurements": blk.matrix.m,
                    "input_sample_rate": float(batch.sample_rates[i]),
                }
                for i, blk in enumerate(peers)
            ],
        )

    def power(self, point: DesignPoint) -> dict[str, float]:
        # One routing switch pair per sampling capacitor plus one per hold
        # capacitor leaks statically (Table III's I_leak per switch).
        tech = point.technology
        n_switches = point.cs_sparsity + point.cs_m
        return {
            "cs_encoder": cs_encoder_logic_power(point),
            "leakage": n_switches * tech.i_leak * point.v_dd,
        }


class DigitalCsEncoderBlock(Block):
    """Post-ADC digital MAC CS encoder (the Chen [2]-style comparator).

    Computes the exact binary measurement ``y = Phi x`` on the digitised
    samples -- no analog non-idealities, but the ADC upstream must run at
    the full input rate (the power model charges it accordingly).  The
    plain ``Phi`` is attached as ``phi_effective`` so the same
    reconstruction block serves both encoder variants.
    """

    def __init__(self, matrix: SensingMatrix, name: str = "cs_encoder"):
        super().__init__(name)
        self.matrix = matrix

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        del ctx
        frames = frame_stream(signal.data, self.matrix.n)
        measurements = self.matrix.measure(frames)
        frame_rate = signal.sample_rate / self.matrix.n
        return signal.replaced(
            data=measurements,
            sample_rate=frame_rate * self.matrix.m,
            domain="compressed",
            phi_effective=self.matrix.phi,
            cs_frame_length=self.matrix.n,
            cs_measurements=self.matrix.m,
            input_sample_rate=signal.sample_rate,
        )

    def batch_group_key(self) -> tuple:
        """Stacking compatibility: matrix dimensions set the output shape."""
        return ("digital-cs", self.matrix.m, self.matrix.n)

    def process_batch(self, batch, peers, ctxs):
        """Vectorised :meth:`process` over stacked points (see core.batch).

        The measurement itself stays per-row (``matrix.measure`` with each
        point's own Phi -- matrices differ per point, so there is nothing
        to stack); framing and metadata handling batch around it.
        """
        del ctxs
        data = batch.data
        if data.ndim != 2:
            raise ValueError(f"CS encoder expects 1-D streams, got batch shape {data.shape}")
        measurements = np.stack(
            [
                blk.matrix.measure(frame_stream(data[i], blk.matrix.n))
                for i, blk in enumerate(peers)
            ]
        )
        rates = np.array(
            [
                batch.sample_rates[i] / blk.matrix.n * blk.matrix.m
                for i, blk in enumerate(peers)
            ]
        )
        return batch.replaced(
            data=measurements,
            sample_rates=rates,
            domain="compressed",
            row_annotations=[
                {
                    "phi_effective": blk.matrix.phi,
                    "cs_frame_length": blk.matrix.n,
                    "cs_measurements": blk.matrix.m,
                    "input_sample_rate": float(batch.sample_rates[i]),
                }
                for i, blk in enumerate(peers)
            ],
        )

    def power(self, point: DesignPoint) -> dict[str, float]:
        from repro.power.models import digital_cs_encoder_power

        return {"cs_encoder": digital_cs_encoder_power(point)}


class CsReconstructionBlock(Block):
    """Receiver-side sparse reconstruction of compressed frames.

    Consumes the ``phi_effective`` annotation placed by the encoder (after
    quantization the annotation is still attached -- the ADC preserves
    annotations) and emits the re-assembled 1-D stream at the original
    input rate.  Contributes no sensor-side power.
    """

    def __init__(self, reconstructor: Reconstructor, name: str = "reconstruction"):
        super().__init__(name)
        self.reconstructor = reconstructor

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        del ctx
        if signal.data.ndim != 2:
            raise ValueError(
                f"reconstruction expects (n_frames, M) measurements, got {signal.data.shape}"
            )
        phi_eff = signal.annotations.get("phi_effective")
        if phi_eff is None:
            raise ValueError(
                "signal carries no 'phi_effective' annotation; place a "
                "CsEncoderBlock upstream"
            )
        frames = self.reconstructor.recover(phi_eff, signal.data)
        stream = np.asarray(frames).reshape(-1)
        rate = signal.annotations.get("input_sample_rate")
        if rate is None:
            frame_length = signal.annotations["cs_frame_length"]
            m = signal.annotations["cs_measurements"]
            rate = signal.sample_rate * frame_length / m
        return signal.replaced(data=stream, sample_rate=float(rate), domain="digital")

    def process_batch(self, batch, peers, ctxs):
        """Row-wise :meth:`process` over stacked points (see core.batch).

        Reconstruction does not vectorise across points -- each row
        solves against its own effective matrix, and the FISTA solve is
        already batched across frames -- so the kernel exists to keep
        reconstruction-bearing chains on the batched path rather than to
        speed this block up.
        """
        outputs = [blk.process(batch.row(i), ctxs[i]) for i, blk in enumerate(peers)]
        return batch.replaced(
            data=np.stack([out.data for out in outputs]),
            sample_rates=np.array([out.sample_rate for out in outputs]),
            domain="digital",
            row_annotations=[out.annotations for out in outputs],
        )
