"""Transmitter / storage model (Table II row 6).

Functionally the transmitter is lossless -- it forwards the digitised
stream -- but it dominates the sensor power budget (E_bit per transmitted
bit, refs [4], [12] of the paper).  The block counts the bits it would
radiate and reports the corresponding power; the compression achieved by
the CS encoder shows up here as the biggest single saving of Fig. 8.
"""

from __future__ import annotations

from repro.core.block import Block, SimulationContext
from repro.core.signal import Signal
from repro.power.models import transmitter_power
from repro.power.technology import DesignPoint
from repro.util.validation import check_positive, check_positive_int


class Transmitter(Block):
    """Bit-counting transmitter with the E_bit energy model.

    Parameters
    ----------
    bits_per_sample:
        Word width of each transmitted sample (the ADC resolution).
    e_bit:
        Energy per transmitted bit in joules.
    """

    def __init__(self, name: str = "transmitter", bits_per_sample: int = 8, e_bit: float = 1e-9):
        super().__init__(name)
        self.bits_per_sample = check_positive_int("bits_per_sample", bits_per_sample)
        self.e_bit = check_positive("e_bit", e_bit)
        self.transmitted_bits = 0

    @classmethod
    def from_design(cls, point: DesignPoint, name: str = "transmitter") -> "Transmitter":
        """Configure word width and E_bit from the design point."""
        return cls(name=name, bits_per_sample=point.n_bits, e_bit=point.technology.e_bit)

    def reset(self) -> None:
        self.transmitted_bits = 0

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        del ctx
        self.transmitted_bits += signal.n_samples * self.bits_per_sample
        return signal.replaced(transmitted_bits=self.transmitted_bits)

    def process_batch(self, batch, peers, ctxs):
        """Vectorised :meth:`process` over stacked points (see core.batch).

        Lossless passthrough; each point's transmitter instance counts
        its own row's bits, so :meth:`energy` stays per-point exact.
        """
        del ctxs
        annotations = []
        for i, blk in enumerate(peers):
            blk.transmitted_bits += int(batch.data[i].size) * blk.bits_per_sample
            annotations.append({"transmitted_bits": blk.transmitted_bits})
        return batch.replaced(row_annotations=annotations)

    def energy(self) -> float:
        """Total transmit energy of the processed stream, joules."""
        return self.transmitted_bits * self.e_bit

    def average_power(self, duration: float) -> float:
        """Average transmit power over ``duration`` seconds (measured)."""
        check_positive("duration", duration)
        return self.energy() / duration

    def power(self, point: DesignPoint) -> dict[str, float]:
        return {"transmitter": transmitter_power(point)}
