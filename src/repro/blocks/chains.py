"""Pre-wired front-end chains for the two architectures of Fig. 1.

These builders assemble the standard baseline and compressive-sensing
acquisition chains from a :class:`~repro.power.technology.DesignPoint`,
wiring every block's electrical parameters from the shared design point so
the functional simulation and the power estimate stay consistent -- the
core discipline of the framework.

Both chains end in a :class:`~repro.blocks.dsp.Normalizer` so their output
is sensor-referred (LNA gain removed) and directly comparable against the
clean input for SNR/accuracy goals.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.cs_frontend import CsEncoderBlock, CsReconstructionBlock
from repro.blocks.dsp import Normalizer
from repro.blocks.lna import LNA
from repro.blocks.sample_hold import SampleHold
from repro.blocks.sar_adc import SarAdc
from repro.blocks.transmitter import Transmitter
from repro.core.system import SystemModel
from repro.cs.matrices import SensingMatrix, make_sensing_matrix
from repro.cs.reconstruction import Reconstructor
from repro.power.technology import DesignPoint
from repro.util.rng import derive_seed


def build_baseline_chain(point: DesignPoint, seed: int = 0) -> SystemModel:
    """Classical acquisition chain: LNA -> S&H -> SAR ADC -> TX (Fig. 1 a).

    ``seed`` controls the static mismatch realisations (one fabricated
    instance); the per-run noise comes from the simulator's context.
    """
    if point.use_cs:
        raise ValueError("design point has use_cs=True; use build_cs_chain")
    return SystemModel(
        [
            LNA.from_design(point),
            SampleHold.from_design(point),
            SarAdc.from_design(point, seed=derive_seed(seed, "adc-mismatch")),
            Transmitter.from_design(point),
            Normalizer(),
        ],
        name="baseline",
    )


def encoder_attenuation(phi_effective) -> float:
    """RMS attenuation of the passive encoder for white inputs.

    For a zero-mean uncorrelated input of variance ``s^2`` the measurement
    on row i has variance ``s^2 * sum_j w_ij^2``, so the encoder's
    amplitude scale is ``sqrt(mean_i sum_j w_ij^2)``.  The charge-sharing
    weights (a * b^k, all < 1) make this well below 1 -- unlike a digital
    binary encoder, which *amplifies* by sqrt(row degree).
    """
    row_energy = float(np.mean(np.sum(np.square(phi_effective), axis=1)))
    if row_energy <= 0:
        raise ValueError("effective matrix has no energy")
    return float(row_energy**0.5)


def build_cs_chain(
    point: DesignPoint,
    matrix: SensingMatrix | None = None,
    reconstructor: Reconstructor | None = None,
    seed: int = 0,
    compensate_attenuation: bool = True,
) -> SystemModel:
    """Compressive chain: LNA -> CS encoder -> SAR ADC -> TX -> reconstruction.

    Parameters
    ----------
    point:
        Design point with ``use_cs=True`` (defines M, N_phi, s, capacitor
        sizing).
    matrix:
        s-SRBM routing matrix; generated from the design point (balanced
        variant, seeded) when omitted.
    reconstructor:
        Receiver-side solver; defaults to batched FISTA on a db4 wavelet
        basis, the configuration used by all paper experiments.
    seed:
        Controls matrix generation and mismatch realisations.
    compensate_attenuation:
        Scale the LNA gain by the inverse of the encoder's passive
        charge-sharing attenuation so the compressed measurements use the
        same fraction of the ADC full scale as the baseline chain does --
        the gain-plan step any designer performs (without it the
        measurements sit several LSBs down and quantization dominates).
        The boost is a few units and does not move the LNA's power-
        dominating noise bound.
    """
    if not point.use_cs:
        raise ValueError("design point has use_cs=False; use build_baseline_chain")
    if point.cs_architecture != "analog":
        raise ValueError(
            "design point selects the digital CS encoder; use build_digital_cs_chain"
        )
    if matrix is None:
        matrix = make_sensing_matrix(
            "srbm",
            point.cs_m,
            point.cs_n_phi,
            sparsity=point.cs_sparsity,
            seed=derive_seed(seed, "sensing-matrix"),
        )
    if matrix.m != point.cs_m or matrix.n != point.cs_n_phi:
        raise ValueError(
            f"matrix is {matrix.m}x{matrix.n} but design point wants "
            f"{point.cs_m}x{point.cs_n_phi}"
        )
    if reconstructor is None:
        from repro.cs.dictionaries import dct_basis

        # DCT + light shrinkage: the configuration that preserves narrow
        # spectral structure (rhythms, low-voltage fast activity) best --
        # orthogonal wavelets smear narrowband content across detail
        # coefficients that l1 shrinkage then suppresses.
        reconstructor = Reconstructor(
            basis=dct_basis(point.cs_n_phi),
            method="fista",
            lam_rel=0.002,
            n_iter=300,
        )
    encoder = CsEncoderBlock.from_design(point, matrix, seed=derive_seed(seed, "cs-mismatch"))
    lna = LNA.from_design(point)
    if compensate_attenuation:
        lna.gain = point.lna_gain / encoder_attenuation(encoder.phi_effective)
    return SystemModel(
        [
            lna,
            encoder,
            SarAdc.from_design(point, seed=derive_seed(seed, "adc-mismatch")),
            Transmitter.from_design(point),
            CsReconstructionBlock(reconstructor),
            Normalizer(),
        ],
        name="cs",
    )


def build_digital_cs_chain(
    point: DesignPoint,
    matrix: SensingMatrix | None = None,
    reconstructor: Reconstructor | None = None,
    seed: int = 0,
) -> SystemModel:
    """Digital-CS chain: LNA -> S&H -> full-rate ADC -> MAC encoder -> TX.

    The Chen [2]-style comparator the paper's Section III motivates
    exploring: the measurement is computed exactly in the digital domain
    (binary Phi, no analog encoder non-idealities), but every input sample
    must be digitised, and the MAC logic replaces the passive capacitor
    network -- the trade the Fig. 8-style breakdown exposes.
    """
    if not (point.use_cs and point.cs_architecture == "digital"):
        raise ValueError(
            "design point must have use_cs=True and cs_architecture='digital'"
        )
    if matrix is None:
        matrix = make_sensing_matrix(
            "srbm",
            point.cs_m,
            point.cs_n_phi,
            sparsity=point.cs_sparsity,
            seed=derive_seed(seed, "sensing-matrix"),
        )
    if matrix.m != point.cs_m or matrix.n != point.cs_n_phi:
        raise ValueError(
            f"matrix is {matrix.m}x{matrix.n} but design point wants "
            f"{point.cs_m}x{point.cs_n_phi}"
        )
    if reconstructor is None:
        from repro.cs.dictionaries import dct_basis

        reconstructor = Reconstructor(
            basis=dct_basis(point.cs_n_phi), method="fista", lam_rel=0.002, n_iter=300
        )
    from repro.blocks.cs_frontend import DigitalCsEncoderBlock

    return SystemModel(
        [
            LNA.from_design(point),
            SampleHold.from_design(point),
            SarAdc.from_design(point, seed=derive_seed(seed, "adc-mismatch")),
            DigitalCsEncoderBlock(matrix),
            Transmitter.from_design(point),
            CsReconstructionBlock(reconstructor),
            Normalizer(),
        ],
        name="cs-digital",
    )


def build_chain(point: DesignPoint, seed: int = 0, **kwargs) -> SystemModel:
    """Dispatch to the architecture selected by the design point."""
    if point.use_cs:
        if point.cs_architecture == "digital":
            return build_digital_cs_chain(point, seed=seed, **kwargs)
        return build_cs_chain(point, seed=seed, **kwargs)
    return build_baseline_chain(point, seed=seed)
