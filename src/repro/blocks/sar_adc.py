"""SAR ADC model (comparator + capacitive DAC + SAR logic).

The functional model walks the actual successive-approximation algorithm
bit by bit (vectorised across all samples), which lets the three dominant
imperfections enter exactly where they do in silicon:

* **Comparator noise** -- an independent Gaussian draw on *every bit
  decision* (not per sample), so near-threshold codes flicker like a real
  latch.
* **Capacitive-DAC mismatch** -- each binary-weighted capacitor carries a
  static relative error drawn with Pelgrom scaling
  (``sigma_u / sqrt(2^k)`` for the 2^k-unit capacitor).  The comparator
  thresholds use the *true* weights while the output code is interpreted
  with *nominal* weights, producing a realistic static INL/DNL signature.
* **Quantization** -- the algorithm itself.

Inputs are treated as bipolar around 0 with full scale ``v_fs`` (range
[-v_fs/2, +v_fs/2]); out-of-range samples saturate.  The block's output is
the code re-expressed in volts (nominal weights, mid-tread offset), i.e.
"what the digital back-end believes the voltage was".

Power: the comparator, SAR-logic and DAC rows of Table II.
"""

from __future__ import annotations

import numpy as np

from repro.core.block import Block, SimulationContext
from repro.core.signal import Signal
from repro.power.models import comparator_power, dac_power, sar_logic_power
from repro.power.technology import DesignPoint
from repro.util.rng import make_rng
from repro.util.validation import check_non_negative, check_positive, check_positive_int


def ideal_quantize(data: np.ndarray, n_bits: int, v_fs: float) -> np.ndarray:
    """Ideal mid-tread quantization of a bipolar signal to N bits.

    Reference implementation used in tests and by the ideal-ADC fallback:
    clips to [-v_fs/2, v_fs/2] and rounds to the nearest of 2^N levels.
    """
    n_bits = check_positive_int("n_bits", n_bits)
    check_positive("v_fs", v_fs)
    lsb = v_fs / (2.0**n_bits)
    clipped = np.clip(data, -v_fs / 2.0, v_fs / 2.0 - lsb)
    codes = np.round((clipped + v_fs / 2.0) / lsb)
    codes = np.clip(codes, 0, 2.0**n_bits - 1)
    return codes * lsb - v_fs / 2.0 + lsb / 2.0


class SarAdc(Block):
    """Behavioural SAR ADC.

    Parameters
    ----------
    n_bits:
        Resolution.
    v_fs:
        Full-scale range in volts (bipolar: +-v_fs/2).
    comparator_noise_rms:
        RMS input-referred comparator noise per decision, volts.
    dac_mismatch_sigma:
        Relative sigma of a *unit* DAC capacitor; bit k (2^k units) gets
        ``sigma / sqrt(2^k)``.  0 gives an ideal DAC.
    mismatch_seed:
        Seed of the static mismatch realisation (per fabricated instance).
    """

    def __init__(
        self,
        name: str = "adc",
        n_bits: int = 8,
        v_fs: float = 2.0,
        comparator_noise_rms: float = 0.0,
        dac_mismatch_sigma: float = 0.0,
        mismatch_seed: int | None = None,
    ):
        super().__init__(name)
        self.n_bits = check_positive_int("n_bits", n_bits)
        self.v_fs = check_positive("v_fs", v_fs)
        self.comparator_noise_rms = check_non_negative(
            "comparator_noise_rms", comparator_noise_rms
        )
        self.dac_mismatch_sigma = check_non_negative("dac_mismatch_sigma", dac_mismatch_sigma)
        self.mismatch_seed = mismatch_seed
        self._weights_nominal, self._weights_true = self._draw_weights()

    def _draw_weights(self) -> tuple[np.ndarray, np.ndarray]:
        """Nominal and mismatched bit weights, MSB first, in volts."""
        k = np.arange(self.n_bits - 1, -1, -1)  # MSB..LSB unit counts 2^k
        nominal = self.v_fs * (2.0**k) / (2.0**self.n_bits)
        if self.dac_mismatch_sigma > 0:
            rng = make_rng(self.mismatch_seed)
            errors = rng.normal(0.0, self.dac_mismatch_sigma / np.sqrt(2.0**k))
            true = nominal * (1.0 + errors)
            # Renormalise so the array total (full scale) is preserved --
            # a gain error is absorbed by the reference, mismatch is not.
            true *= nominal.sum() / true.sum()
        else:
            true = nominal.copy()
        return nominal, true

    @classmethod
    def from_design(cls, point: DesignPoint, name: str = "adc", seed: int | None = None) -> "SarAdc":
        """Configure resolution, FS, mismatch and comparator noise.

        Comparator noise is tied to the quantization noise at 1/2 LSB RMS
        divided by sqrt(12) -- i.e. it sits comfortably below quantization
        for a well-designed comparator, scaling with resolution the way the
        power model's ``2N ln 2`` decision-accuracy factor assumes.
        """
        lsb = point.v_fs / 2.0**point.n_bits
        sigma_u = point.technology.unit_cap_mismatch_sigma
        # Per-unit sigma of the matching-sized DAC unit capacitor.
        units = point.technology.dac_unit_cap(point.n_bits) / point.technology.cu_min
        return cls(
            name=name,
            n_bits=point.n_bits,
            v_fs=point.v_fs,
            comparator_noise_rms=lsb / 4.0,
            dac_mismatch_sigma=sigma_u / np.sqrt(units),
            mismatch_seed=seed,
        )

    @property
    def lsb(self) -> float:
        """LSB size in volts."""
        return self.v_fs / 2.0**self.n_bits

    def convert(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Run the SAR algorithm on an array of voltages.

        Returns the digital estimate re-expressed in volts (nominal
        weights, mid-tread centre).  Shape is preserved.
        """
        shape = data.shape
        flat = np.clip(data.ravel(), -self.v_fs / 2.0, self.v_fs / 2.0)
        v = flat + self.v_fs / 2.0  # unipolar for the search
        acc_true = np.zeros_like(v)
        acc_nominal = np.zeros_like(v)
        for w_nom, w_true in zip(self._weights_nominal, self._weights_true):
            threshold = acc_true + w_true
            observed = v
            if self.comparator_noise_rms > 0:
                observed = v + rng.normal(0.0, self.comparator_noise_rms, size=v.shape)
            keep = observed >= threshold
            acc_true = np.where(keep, threshold, acc_true)
            acc_nominal = acc_nominal + keep * w_nom
        result = acc_nominal + self.lsb / 2.0 - self.v_fs / 2.0
        return result.reshape(shape)

    def codes(self, data: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        """Integer output codes (0 .. 2^N - 1) for ``data``."""
        rng = make_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        voltages = self.convert(np.asarray(data, dtype=np.float64), rng)
        return np.round((voltages + self.v_fs / 2.0 - self.lsb / 2.0) / self.lsb).astype(int)

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        rng = ctx.rng(self.name)
        converted = self.convert(signal.data, rng)
        # adc_v_fs rides along so downstream consumers (e.g. the fault
        # models re-deriving integer codes) need not reach into the block.
        return signal.replaced(
            data=converted,
            domain="digital",
            adc_bits=self.n_bits,
            adc_v_fs=self.v_fs,
        )

    def batch_group_key(self) -> tuple:
        """Stacking compatibility: bit depth sets the weight-array shape."""
        return ("n_bits", self.n_bits)

    def process_batch(self, batch, peers, ctxs):
        """Vectorised :meth:`process` over stacked points (see core.batch).

        Runs ONE successive-approximation bit loop for the whole group
        with per-point weight vectors stacked along axis 0 -- the win
        that motivates the batched engine (the scalar path pays ``n_bits``
        numpy dispatches per point).  Comparator-noise draws stay per-row
        (one generator per point, scalar call pattern) so outputs match
        the scalar path exactly; rows without comparator noise draw
        nothing, as in :meth:`convert`.
        """
        data = batch.data
        n_points = len(peers)
        shape = data.shape
        flat_len = int(np.prod(shape[1:], dtype=int))
        vfs = np.array([blk.v_fs for blk in peers])[:, None]  # (P, 1)
        flat = np.clip(data.reshape(n_points, flat_len), -vfs / 2.0, vfs / 2.0)
        v = flat + vfs / 2.0
        acc_true = np.zeros_like(v)
        acc_nominal = np.zeros_like(v)
        w_nominal = np.stack([blk._weights_nominal for blk in peers])  # (P, n_bits)
        w_true = np.stack([blk._weights_true for blk in peers])
        n_bits = w_nominal.shape[1]
        noisy = [i for i, blk in enumerate(peers) if blk.comparator_noise_rms > 0]
        # One block draw per noisy row covers all of its bit decisions:
        # Generator.normal fills C-contiguously from the bit stream, so a
        # (n_bits, flat) draw is bit-identical to n_bits sequential
        # per-bit draws -- the scalar call pattern -- at a fraction of the
        # dispatch cost.  Noiseless rows stay zero; ``x + 0.0`` only feeds
        # a ``>=`` comparison, where a sign-flipped zero is equivalent.
        noise = None
        if noisy:
            alloc = np.empty if len(noisy) == n_points else np.zeros
            noise = alloc((n_points, n_bits, flat_len))
        for i, blk in enumerate(peers):
            rng = ctxs[i].rng(blk.name)  # scalar-identical registry call pattern
            if blk.comparator_noise_rms > 0:
                noise[i] = rng.normal(
                    0.0, blk.comparator_noise_rms, size=(n_bits, flat_len)
                )
        for bit in range(n_bits):
            threshold = acc_true + w_true[:, bit][:, None]
            observed = v if noise is None else v + noise[:, bit]
            keep = observed >= threshold
            acc_true = np.where(keep, threshold, acc_true)
            acc_nominal = acc_nominal + keep * w_nominal[:, bit][:, None]
        lsb = np.array([blk.lsb for blk in peers])[:, None]
        result = (acc_nominal + lsb / 2.0 - vfs / 2.0).reshape(shape)
        return batch.replaced(
            data=result,
            domain="digital",
            row_annotations=[
                {"adc_bits": blk.n_bits, "adc_v_fs": blk.v_fs} for blk in peers
            ],
        )

    def power(self, point: DesignPoint) -> dict[str, float]:
        # Leakage of the converter's switch network: the S&H switch plus
        # two per bit of the DAC bank (Table III's I_leak per switch).
        tech = point.technology
        return {
            "comparator": comparator_power(point),
            "sar_logic": sar_logic_power(point),
            "dac": dac_power(point),
            "leakage": (1 + 2 * point.n_bits) * tech.i_leak * point.v_dd,
        }

    def static_transfer(self) -> np.ndarray:
        """Code transition thresholds (true weights) for INL/DNL analysis.

        Returns the 2^N - 1 input voltages at which the output code
        increments, computed by exercising every code with the mismatched
        weight set (noiseless).
        """
        n_codes = 2**self.n_bits
        # Threshold of code c is sum of true weights of its set bits.
        thresholds = np.zeros(n_codes)
        for code in range(n_codes):
            bits = [(code >> (self.n_bits - 1 - i)) & 1 for i in range(self.n_bits)]
            thresholds[code] = float(np.dot(bits, self._weights_true))
        return np.sort(thresholds)[1:] - self.v_fs / 2.0
