"""Signal-quality metrics: SNR/SNDR/ENOB (tone + reference based), NMSE/PRD."""

from repro.metrics.quality import correlation, nmse, prd
from repro.metrics.snr import (
    ToneAnalysis,
    analyze_sine,
    enob_sine,
    sndr_sine,
    snr_vs_reference,
    thd_sine,
)

__all__ = [
    "ToneAnalysis",
    "analyze_sine",
    "correlation",
    "enob_sine",
    "nmse",
    "prd",
    "sndr_sine",
    "snr_vs_reference",
    "thd_sine",
]
