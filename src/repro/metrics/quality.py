"""Waveform-fidelity metrics: NMSE, PRD, correlation.

Used mainly to grade CS reconstruction quality (PRD -- percentage
root-mean-square difference -- is the standard metric of the biomedical CS
literature, e.g. Zhang et al. [8] of the paper).
"""

from __future__ import annotations

import numpy as np


def _check_pair(reference: np.ndarray, estimate: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    reference = np.asarray(reference, dtype=np.float64)
    estimate = np.asarray(estimate, dtype=np.float64)
    if reference.shape != estimate.shape:
        raise ValueError(
            f"shape mismatch: reference {reference.shape} vs estimate {estimate.shape}"
        )
    return reference, estimate


def nmse(reference: np.ndarray, estimate: np.ndarray) -> float:
    """Normalised mean squared error ``||r - e||^2 / ||r||^2``."""
    reference, estimate = _check_pair(reference, estimate)
    denom = float(np.sum(reference**2))
    if denom == 0:
        raise ValueError("reference signal is identically zero")
    return float(np.sum((reference - estimate) ** 2)) / denom


def prd(reference: np.ndarray, estimate: np.ndarray, remove_mean: bool = True) -> float:
    """Percentage RMS difference, the biomedical-CS fidelity standard.

    ``PRD = 100 * ||r - e|| / ||r - mean(r)||`` (mean removal per the
    common PRD1 convention; disable for the raw variant).  PRD < 9 % is
    conventionally "very good" reconstruction for biosignals.
    """
    reference, estimate = _check_pair(reference, estimate)
    centred = reference - np.mean(reference) if remove_mean else reference
    denom = float(np.linalg.norm(centred))
    if denom == 0:
        raise ValueError("reference signal has no energy after mean removal")
    return 100.0 * float(np.linalg.norm(reference - estimate)) / denom


def correlation(reference: np.ndarray, estimate: np.ndarray) -> float:
    """Pearson correlation coefficient between the two streams."""
    reference, estimate = _check_pair(reference, estimate)
    ref_c = reference - np.mean(reference)
    est_c = estimate - np.mean(estimate)
    denom = float(np.linalg.norm(ref_c) * np.linalg.norm(est_c))
    if denom == 0:
        return 0.0
    return float(np.dot(ref_c, est_c)) / denom
