"""Signal-quality metrics: SNR, SNDR, THD, ENOB.

Two families:

* **Reference-based** (:func:`snr_vs_reference`) -- compares a processed
  stream against the known clean input (optimal-gain aligned), the metric
  used for dataset signals where no tone structure exists.  This is the
  "achieved SNR" axis of the paper's Fig. 7 a).
* **Spectral single-tone** (:func:`sndr_sine`, :func:`thd_sine`) -- the
  classic coherent-FFT ADC analysis used for Fig. 4: the fundamental bin
  is the signal, harmonic bins are distortion, everything else is noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.constants import db, enob_from_sndr
from repro.util.validation import check_positive_int


def snr_vs_reference(reference: np.ndarray, processed: np.ndarray) -> float:
    """SNR in dB of ``processed`` against the clean ``reference``.

    The processed stream is first aligned with the optimal scalar gain
    ``g = <ref, proc> / <proc, proc>`` so that pure gain errors (which any
    digital back-end would calibrate out) do not count as noise.  Streams
    must have equal length.
    """
    reference = np.asarray(reference, dtype=np.float64)
    processed = np.asarray(processed, dtype=np.float64)
    if reference.shape != processed.shape:
        raise ValueError(
            f"shape mismatch: reference {reference.shape} vs processed {processed.shape}"
        )
    signal_power = float(np.mean(reference**2))
    if signal_power == 0:
        raise ValueError("reference signal is identically zero")
    denom = float(np.dot(processed, processed))
    if denom == 0:
        # A dead channel (identically-zero output) recovers nothing of the
        # reference: -inf dB, so it can never outrank a noisy-but-alive
        # design point in a Pareto sweep.  (The old 0.0 dB fallback made
        # an all-zero output look better than a -3 dB one.)
        return -np.inf
    gain = float(np.dot(reference, processed)) / denom
    error = reference - gain * processed
    noise_power = float(np.mean(error**2))
    if noise_power == 0:
        return np.inf
    return db(signal_power / noise_power)


@dataclass(frozen=True)
class ToneAnalysis:
    """Result of a coherent single-tone FFT analysis."""

    sndr_db: float
    snr_db: float
    thd_db: float
    enob: float
    fundamental_bin: int
    fundamental_power: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SNDR={self.sndr_db:.2f} dB, SNR={self.snr_db:.2f} dB, "
            f"THD={self.thd_db:.2f} dB, ENOB={self.enob:.2f} b"
        )


def analyze_sine(
    data: np.ndarray,
    n_harmonics: int = 5,
    exclude_dc_bins: int = 1,
) -> ToneAnalysis:
    """Coherent FFT analysis of a (nominally) single-tone record.

    Assumes the tone is bin-centred (use a coherent source); no windowing
    is applied.  The fundamental is located as the largest non-DC bin.
    ``n_harmonics`` harmonic bins (with aliasing folded back into the first
    Nyquist zone) count as distortion; remaining bins count as noise.

    Folding edge cases: a harmonic that aliases onto bin 0 or into the
    ``exclude_dc_bins`` guard band still counts as distortion (with its
    *unzeroed* bin power) -- previously such bins were silently dropped
    from both distortion and noise, inflating the SNDR of exactly the
    coherent tones whose harmonics land on DC or Nyquist.  A harmonic that
    folds onto the fundamental itself is unmeasurable and remains excluded.
    Note this means any true DC offset of the record is attributed to
    distortion in the (rare) coherent case where a harmonic aliases to
    bin 0.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 1:
        raise ValueError(f"expected a 1-D record, got shape {data.shape}")
    n = data.size
    check_positive_int("record length", n)
    spectrum = np.fft.rfft(data)
    power = np.abs(spectrum) ** 2
    # Zero only a search copy: the true bin powers must survive so that
    # harmonics folding into the excluded DC region keep their power.
    search = power.copy()
    search[0:exclude_dc_bins] = 0.0
    fundamental = int(np.argmax(search))
    if search[fundamental] == 0:
        raise ValueError("record contains no tone (flat spectrum)")
    p_fund = float(power[fundamental])

    harmonic_bins: set[int] = set()
    n_bins = power.size
    period = 2 * (n_bins - 1) if n_bins > 1 else 1
    for k in range(2, 2 + n_harmonics):
        # Fold aliased harmonics back into [0, N/2] (bin 0 and the
        # Nyquist bin n_bins-1 are both valid folding targets).
        folded = (fundamental * k) % period
        if folded >= n_bins:
            folded = period - folded
        if folded != fundamental:
            harmonic_bins.add(folded)
    p_harm = float(sum(power[b] for b in harmonic_bins))

    mask = np.ones(n_bins, dtype=bool)
    mask[:exclude_dc_bins] = False
    mask[fundamental] = False
    for b in harmonic_bins:
        mask[b] = False
    p_noise = float(np.sum(power[mask]))

    sndr = db(p_fund / (p_noise + p_harm)) if (p_noise + p_harm) > 0 else np.inf
    snr = db(p_fund / p_noise) if p_noise > 0 else np.inf
    thd = db(p_harm / p_fund) if p_harm > 0 else -np.inf
    return ToneAnalysis(
        sndr_db=sndr,
        snr_db=snr,
        thd_db=thd,
        enob=enob_from_sndr(sndr) if np.isfinite(sndr) else np.inf,
        fundamental_bin=fundamental,
        fundamental_power=p_fund,
    )


def sndr_sine(data: np.ndarray, n_harmonics: int = 5) -> float:
    """SNDR in dB of a coherent single-tone record."""
    return analyze_sine(data, n_harmonics=n_harmonics).sndr_db


def thd_sine(data: np.ndarray, n_harmonics: int = 5) -> float:
    """THD in dB (harmonic power over fundamental) of a tone record."""
    return analyze_sine(data, n_harmonics=n_harmonics).thd_db


def enob_sine(data: np.ndarray, n_harmonics: int = 5) -> float:
    """Effective number of bits from the measured SNDR of a tone record."""
    return analyze_sine(data, n_harmonics=n_harmonics).enob
