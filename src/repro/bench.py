"""Benchmark harness: tracked performance records with a regression gate.

The repo's performance claims (the batched executor's >= 3x signal-pass
speedup, the parallel executor's scaling) are enforced once in the
benchmark suite but never *tracked*: a 15% regression that stays above
the acceptance floor lands silently.  ``repro bench`` closes that gap:

* each invocation runs the registered benchmarks and **appends** one
  schema'd record per benchmark to a dated ledger
  (``BENCH_<YYYYMMDD>.json``), so a directory of ledgers is a
  performance history;
* ``repro bench --compare [BASELINE]`` additionally gates against a
  baseline ledger (default: the newest *other* ``BENCH_*.json`` in the
  output directory) and exits non-zero when any benchmark's best wall
  time regressed by more than ``--threshold`` (default 20%).  With no
  baseline available it warns and passes -- the CI bootstrap case.

Records are compared on the *best* (minimum) wall time per benchmark
name within a ledger, the same best-of discipline the benchmark suite
uses to keep scheduler noise out of single-core CI timings.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.util.fsio import FileLock, atomic_write_text

#: Version stamp of the benchmark-record JSON schema.
BENCH_SCHEMA_VERSION = 1

#: Default regression gate: fail when best wall time grows by more than this.
DEFAULT_REGRESSION_THRESHOLD = 0.20

#: Ledger filename pattern (one file per day; append within a day).
LEDGER_GLOB = "BENCH_*.json"


@dataclass
class BenchRecord:
    """One benchmark measurement appended to the dated ledger."""

    name: str
    wall_s: float
    points: int
    reps: int
    created_unix: float = 0.0
    meta: dict = field(default_factory=dict)
    schema: int = BENCH_SCHEMA_VERSION

    @property
    def points_per_s(self) -> float:
        """Throughput (0 when the wall time is degenerate)."""
        return self.points / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["points_per_s"] = self.points_per_s
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchRecord":
        if payload.get("schema") != BENCH_SCHEMA_VERSION:
            raise ValueError(
                f"bench record schema {payload.get('schema')!r} != "
                f"supported {BENCH_SCHEMA_VERSION}"
            )
        return cls(
            name=str(payload["name"]),
            wall_s=float(payload["wall_s"]),
            points=int(payload["points"]),
            reps=int(payload["reps"]),
            created_unix=float(payload.get("created_unix", 0.0)),
            meta=dict(payload.get("meta", {})),
        )


# --- ledger I/O ---------------------------------------------------------------


def default_ledger_path(directory: str | Path = ".") -> Path:
    """Today's ledger path: ``<directory>/BENCH_<YYYYMMDD>.json``."""
    return Path(directory) / time.strftime("BENCH_%Y%m%d.json")


def load_records(path: str | Path) -> list[BenchRecord]:
    """Read a ledger written by :func:`append_records`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or payload.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(f"{path}: not a bench ledger (schema {BENCH_SCHEMA_VERSION})")
    return [BenchRecord.from_dict(record) for record in payload.get("records", [])]


def append_records(path: str | Path, records: list[BenchRecord]) -> Path:
    """Append ``records`` to the ledger at ``path`` (created if missing).

    The append is a read-modify-write cycle, so it is serialised under an
    advisory sidecar lock (two concurrent CI bench jobs pointed at one
    ledger queue instead of losing each other's records) and the rewrite
    is atomic (temp file + ``os.replace``): a reader -- or a crash
    mid-write -- never observes a torn ledger.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with FileLock(path):
        existing = load_records(path) if path.exists() else []
        payload = {
            "schema": BENCH_SCHEMA_VERSION,
            "records": [record.to_dict() for record in existing + records],
        }
        atomic_write_text(
            path, json.dumps(payload, indent=2, sort_keys=True) + "\n", fsync=True
        )
    return path


def find_baseline(out_path: str | Path) -> Path | None:
    """Newest ``BENCH_*.json`` sibling of ``out_path`` other than itself."""
    out_path = Path(out_path)
    candidates = sorted(
        p for p in out_path.parent.glob(LEDGER_GLOB) if p.name != out_path.name
    )
    return candidates[-1] if candidates else None


# --- comparison ---------------------------------------------------------------


def best_wall_times(records: list[BenchRecord]) -> dict[str, float]:
    """Best (minimum) wall seconds per benchmark name."""
    best: dict[str, float] = {}
    for record in records:
        previous = best.get(record.name)
        if previous is None or record.wall_s < previous:
            best[record.name] = record.wall_s
    return best


def compare_records(
    baseline: list[BenchRecord],
    current: list[BenchRecord],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> list[dict]:
    """Per-benchmark comparison rows; ``regressed`` marks gate failures.

    A benchmark regresses when its best current wall time exceeds the
    best baseline wall time by more than ``threshold`` (relative).
    Benchmarks present on only one side are reported but never fail the
    gate (a new benchmark has no baseline; a removed one has no current).
    """
    base = best_wall_times(baseline)
    now = best_wall_times(current)
    rows: list[dict] = []
    for name in sorted(set(base) | set(now)):
        row = {
            "name": name,
            "baseline_s": base.get(name),
            "current_s": now.get(name),
            "ratio": None,
            "regressed": False,
        }
        if name in base and name in now and base[name] > 0:
            row["ratio"] = now[name] / base[name]
            row["regressed"] = row["ratio"] > 1.0 + threshold
        rows.append(row)
    return rows


def render_comparison(rows: list[dict], threshold: float) -> str:
    """Fixed-width comparison table (repo plain-text conventions)."""
    lines = [
        f"{'benchmark':<28}{'baseline':>12}{'current':>12}{'ratio':>8}  verdict",
    ]
    for row in rows:
        baseline = f"{row['baseline_s']:.3f}s" if row["baseline_s"] is not None else "-"
        current = f"{row['current_s']:.3f}s" if row["current_s"] is not None else "-"
        ratio = f"{row['ratio']:.2f}x" if row["ratio"] is not None else "-"
        if row["regressed"]:
            verdict = f"REGRESSED (> {1.0 + threshold:.2f}x)"
        elif row["ratio"] is None:
            verdict = "no baseline" if row["baseline_s"] is None else "not run"
        else:
            verdict = "ok"
        lines.append(f"{row['name']:<28}{baseline:>12}{current:>12}{ratio:>8}  {verdict}")
    return "\n".join(lines)


# --- benchmark implementations ------------------------------------------------


def _bench_grid(n_points: int) -> list:
    """Baseline LNA/S&H/SAR grid of ``n_points`` (resolutions x noise)."""
    import numpy as np

    from repro.power.technology import DesignPoint

    resolutions = (8, 10, 12, 14)
    per_resolution = max(1, n_points // len(resolutions))
    return [
        DesignPoint(n_bits=n_bits, lna_noise_rms=noise, lna_bw_ratio=1.0)
        for n_bits in resolutions
        for noise in np.linspace(1e-6, 30e-6, per_resolution)
    ][:n_points]


def _bench_evaluator():
    import numpy as np

    from repro.core.explorer import FrontEndEvaluator

    records = np.random.default_rng(1).normal(0.0, 20e-6, size=(1, 64))
    return FrontEndEvaluator(records, None, 2.1 * 256, seed=3)


def _best_of(fn, reps: int) -> float:
    fn()  # warm-up: imports, filter design, allocator
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_batched_sweep(n_points: int = 64, reps: int = 3) -> BenchRecord:
    """End-to-end ``explore(executor="batched")`` over the baseline grid."""
    from repro.core.explorer import DesignSpaceExplorer

    explorer = DesignSpaceExplorer(_bench_evaluator())
    points = _bench_grid(n_points)
    wall_s = _best_of(lambda: explorer.explore(points, executor="batched"), reps)
    return BenchRecord(
        name="batched-sweep",
        wall_s=wall_s,
        points=len(points),
        reps=reps,
        created_unix=time.time(),
        meta={"executor": "batched"},
    )


def bench_parallel_sweep(
    n_points: int = 32, n_workers: int = 2, reps: int = 2
) -> BenchRecord:
    """End-to-end process-pool ``explore`` (pool startup included)."""
    from repro.core.explorer import DesignSpaceExplorer

    explorer = DesignSpaceExplorer(_bench_evaluator())
    points = _bench_grid(n_points)
    wall_s = _best_of(
        lambda: explorer.explore(points, executor="process", n_workers=n_workers),
        reps,
    )
    return BenchRecord(
        name="parallel-sweep",
        wall_s=wall_s,
        points=len(points),
        reps=reps,
        created_unix=time.time(),
        meta={"executor": "process", "n_workers": n_workers},
    )


def _adaptive_fig7a_setup():
    """Evaluator + grid of the ``adaptive_fig7a`` benchmark.

    A fig7a-style power-vs-SNR pathfinding problem shaped so the
    reduction claim is meaningful: a 480-point grid dominated by
    quality-neutral axes (``v_dd`` sweeps power without touching SNR)
    over a small sparse-friendly multi-sine corpus -- CS reconstruction
    of white noise is meaningless, and its SNR too unstable across
    fidelities to steer by.
    """
    import numpy as np

    from repro.core.explorer import FrontEndEvaluator
    from repro.experiments.runner import FistaReconstructorFactory
    from repro.power.technology import DesignPoint

    sample_rate = 2.1 * 256
    rng = np.random.default_rng(7)
    t = np.arange(512) / sample_rate
    records = np.stack(
        [
            sum(
                a * np.sin(2 * np.pi * f * t + p)
                for a, f, p in zip(
                    rng.uniform(30e-6, 120e-6, 5),
                    rng.uniform(2.0, 40.0, 5),
                    rng.uniform(0, 2 * np.pi, 5),
                )
            )
            for _ in range(4)
        ]
    )
    evaluator = FrontEndEvaluator(
        records,
        None,
        sample_rate,
        seed=11,
        reconstructor_factory=FistaReconstructorFactory(n_iter=60, n_phi=256),
    )
    noises = np.linspace(1e-6, 26e-6, 6)
    vdds = np.linspace(0.9, 2.0, 20)
    points = [
        DesignPoint(n_bits=n_bits, lna_noise_rms=noise, v_dd=v_dd)
        for n_bits in (8, 10)
        for noise in noises
        for v_dd in vdds
    ] + [
        DesignPoint(use_cs=True, cs_n_phi=256, cs_m=cs_m, lna_noise_rms=noise, v_dd=v_dd)
        for cs_m in (64, 128)
        for noise in noises
        for v_dd in vdds
    ]
    return evaluator, points


#: Correctness gate of the adaptive benchmark: the reduction the ROADMAP
#: claims.  ``bench_adaptive_fig7a`` raises below this.
ADAPTIVE_MIN_REDUCTION = 10.0


def bench_adaptive_fig7a(reps: int = 2) -> BenchRecord:
    """Adaptive (successive-halving) fig7a exploration vs the exhaustive sweep.

    Measures the adaptive explorer's wall time on the 480-point grid and
    **verifies its two claims before recording anything**: the per-
    architecture Pareto fronts must equal the exhaustive sweep's exactly
    (golden relative tolerance 1e-6), and the run must use at least
    :data:`ADAPTIVE_MIN_REDUCTION` x fewer full-fidelity evaluations than
    the grid size -- otherwise this raises ``RuntimeError`` and nothing
    reaches the ledger.  The exhaustive reference sweep doubles as the
    warm-up and is not timed.
    """
    import numpy as np

    from repro.core.adaptive import FidelityRung, FidelitySchedule
    from repro.core.explorer import DesignSpaceExplorer
    from repro.core.pareto import Objective, pareto_front

    evaluator, points = _adaptive_fig7a_setup()
    explorer = DesignSpaceExplorer(evaluator)
    objectives = (Objective("power_uw"), Objective("snr_db", maximize=True))
    schedule = FidelitySchedule(
        [FidelityRung("half", corpus_fraction=0.5, solver_scale=0.5), FidelityRung("full")]
    )

    def front_points(evaluations) -> dict[bool, np.ndarray]:
        return {
            arch: np.array(
                sorted(
                    (e.metrics["power_uw"], e.metrics["snr_db"])
                    for e in pareto_front(
                        [e for e in evaluations if e.ok and e.point.use_cs == arch],
                        objectives,
                    )
                )
            )
            for arch in (False, True)
        }

    exhaustive = explorer.explore(points, executor="batched")
    expected = front_points(list(exhaustive))

    def run_adaptive():
        return explorer.explore_adaptive(
            points,
            objectives=objectives,
            schedule=schedule,
            keep_frac=0.06,
            group_by=lambda e: e.point.use_cs,
            executor="batched",
        )

    result = run_adaptive()
    wall_s = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        result = run_adaptive()
        wall_s = min(wall_s, time.perf_counter() - start)

    ledger = result.ledger
    reduction = ledger.reduction or 0.0
    if reduction < ADAPTIVE_MIN_REDUCTION:
        raise RuntimeError(
            f"adaptive_fig7a used {ledger.full_fidelity_evaluations} full-fidelity "
            f"evaluations for {ledger.grid_size} grid points "
            f"({reduction:.1f}x < required {ADAPTIVE_MIN_REDUCTION:.0f}x reduction)"
        )
    got = front_points(list(result))
    for arch in (False, True):
        if expected[arch].shape != got[arch].shape or not np.allclose(
            expected[arch], got[arch], rtol=1e-6
        ):
            raise RuntimeError(
                f"adaptive_fig7a front mismatch (use_cs={arch}): exhaustive "
                f"{expected[arch].shape[0]} points vs adaptive {got[arch].shape[0]}"
            )
    return BenchRecord(
        name="adaptive_fig7a",
        wall_s=wall_s,
        points=len(points),
        reps=reps,
        created_unix=time.time(),
        meta={
            "executor": "batched",
            "grid_size": ledger.grid_size,
            "full_fidelity_evaluations": ledger.full_fidelity_evaluations,
            "low_fidelity_evaluations": ledger.low_fidelity_evaluations,
            "reduction": reduction,
            "keep_frac": ledger.keep_frac,
            "rungs": len(ledger.rungs),
            "front_points": int(sum(f.shape[0] for f in expected.values())),
        },
    )


#: Correctness gate of the kernel benchmark: the speedup an accelerated
#: backend must deliver over the numpy reference before it is recorded.
KERNELS_FISTA_MIN_SPEEDUP = 2.0


def bench_kernels_fista(reps: int = 3) -> BenchRecord:
    """FISTA kernel: best available accelerated backend vs numpy reference.

    Times a smoke-scale batched LASSO solve (the shape class that
    dominates sweep wall time: small matrices, many iterations, where
    per-op numpy overhead is the bottleneck a JIT removes).  With an
    accelerated backend importable (numba), its conformance is checked,
    the :data:`KERNELS_FISTA_MIN_SPEEDUP` x claim is **verified before
    recording** (otherwise ``RuntimeError`` and nothing reaches the
    ledger), and the accelerated wall time is recorded.  Without numba
    the record is the reference timing with ``meta.fallback = true`` --
    the auto-fallback path, exercised so the ledger entry never silently
    vanishes when the accelerator is absent.
    """
    import numpy as np

    from repro.kernels import registry

    rng = np.random.default_rng(7)
    m, n, b = 16, 64, 4
    a = rng.normal(size=(m, n)) / np.sqrt(m)
    y2 = rng.normal(size=(b, m))
    lam = 0.02 * float(np.max(np.abs(y2 @ a)))
    n_iter = 400
    tol = 0.0  # no early exit: pure kernel throughput, comparable runs

    def run(backend: str):
        with registry.use_backend(backend):
            return registry.call("fista", a, y2, lam, n_iter, tol)

    numpy_wall = _best_of(lambda: run("numpy"), reps)
    backend_name, wall_s, speedup, fallback = "numpy", numpy_wall, 1.0, True
    numba = registry.backend("numba")
    if numba.available and "fista" in numba.kernels:
        from repro.testing.conformance import check_backend

        mismatches = check_backend("numba")
        if mismatches:
            raise RuntimeError(
                "kernels_fista: numba backend failed conformance: "
                + "; ".join(mismatches[:3])
            )
        accel_wall = _best_of(lambda: run("numba"), reps)  # warm-up pays the JIT
        speedup = numpy_wall / accel_wall if accel_wall > 0 else float("inf")
        if speedup < KERNELS_FISTA_MIN_SPEEDUP:
            raise RuntimeError(
                f"kernels_fista: numba speedup {speedup:.2f}x < required "
                f"{KERNELS_FISTA_MIN_SPEEDUP:.0f}x over the numpy reference"
            )
        backend_name, wall_s, fallback = "numba", accel_wall, False
    return BenchRecord(
        name="kernels_fista",
        wall_s=wall_s,
        points=b,
        reps=reps,
        created_unix=time.time(),
        meta={
            "backend": backend_name,
            "fallback": fallback,
            "numpy_wall_s": numpy_wall,
            "speedup_vs_numpy": speedup,
            "problem": {"m": m, "n": n, "batch": b, "n_iter": n_iter},
        },
    )


#: Correctness gate of the transport benchmark: shared-memory evaluator
#: transport must beat the pickled-bytes baseline by this factor.
SHM_MIN_SPEEDUP = 2.0


def bench_shm_transport(reps: int = 5) -> BenchRecord:
    """Evaluator transport: shared-memory handle vs pickled corpus bytes.

    Measures the per-worker cost of shipping a corpus-sized evaluator
    across a process boundary -- the serialise + deserialise round-trip a
    ``spawn``/``forkserver`` pool pays per worker.  Baseline: plain
    pickle (the corpus bytes are copied).  Candidate: the evaluator
    armed with :meth:`~repro.core.explorer.FrontEndEvaluator.
    shared_transport`, whose pickle carries a segment name and whose
    deserialise attaches the driver's pages zero-copy.  The
    :data:`SHM_MIN_SPEEDUP` x claim is verified before recording.
    """
    import pickle

    import numpy as np

    from repro.core.explorer import FrontEndEvaluator
    from repro.core.shm import SharedArrayPool

    records = np.random.default_rng(11).normal(0.0, 20e-6, size=(512, 4096))
    evaluator = FrontEndEvaluator(records, None, 2.1 * 256, seed=3)

    def pickled_roundtrip():
        return pickle.loads(pickle.dumps(evaluator))

    baseline_s = _best_of(pickled_roundtrip, reps)
    bytes_baseline = len(pickle.dumps(evaluator))

    with SharedArrayPool() as pool:
        armed = evaluator.shared_transport(pool)

        def shm_roundtrip():
            return pickle.loads(pickle.dumps(armed))

        wall_s = _best_of(shm_roundtrip, reps)
        bytes_shm = len(pickle.dumps(armed))
        restored = shm_roundtrip()
        if not np.array_equal(restored.records, records):
            raise RuntimeError("shm_transport: attached corpus differs from source")
    speedup = baseline_s / wall_s if wall_s > 0 else float("inf")
    if speedup < SHM_MIN_SPEEDUP:
        raise RuntimeError(
            f"shm_transport: shared-memory transport speedup {speedup:.2f}x < "
            f"required {SHM_MIN_SPEEDUP:.0f}x over pickled bytes"
        )
    return BenchRecord(
        name="shm_transport",
        wall_s=wall_s,
        points=records.shape[0],
        reps=reps,
        created_unix=time.time(),
        meta={
            "baseline_wall_s": baseline_s,
            "speedup_vs_pickle": speedup,
            "bytes_pickled": bytes_baseline,
            "bytes_shm": bytes_shm,
            "corpus_mb": round(records.nbytes / 1e6, 1),
        },
    )


#: Registered benchmarks, in execution order.
BENCHMARKS = {
    "batched-sweep": bench_batched_sweep,
    "parallel-sweep": bench_parallel_sweep,
    "adaptive_fig7a": bench_adaptive_fig7a,
    "kernels_fista": bench_kernels_fista,
    "shm_transport": bench_shm_transport,
}


def run_benchmarks(names: list[str] | None = None) -> list[BenchRecord]:
    """Run the named benchmarks (default: all registered)."""
    selected = list(BENCHMARKS) if names is None else list(names)
    unknown = [name for name in selected if name not in BENCHMARKS]
    if unknown:
        raise KeyError(f"unknown benchmark(s) {unknown}; registered: {list(BENCHMARKS)}")
    return [BENCHMARKS[name]() for name in selected]
