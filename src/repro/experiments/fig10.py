"""Fig. 10 -- area-constrained accuracy/power Pareto fronts.

Repeats the Fig. 7 b) Pareto analysis under a cap on the total capacitance
(area).  The paper's finding, asserted by the benchmark: tightening the
area budget **limits the maximum achievable accuracy** -- small caps force
small hold-capacitor counts (low M) or exclude the CS branch entirely, so
the CS advantage only materialises when the area increase is tolerated
(e.g. on bondpad-limited dies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pareto import Objective
from repro.core.results import Evaluation, ExplorationResult

#: Default area caps swept, in C_u,min units.  Chosen to bite at every
#: structural boundary of the search space: 300 admits only the low-
#: resolution baselines (6/7-bit DAC arrays), 700 admits the full-
#: resolution baseline (~470 units), 2400 admits the M=75 CS bank
#: (~1700 units), 4800 admits every design.
DEFAULT_AREA_CAPS = (300.0, 700.0, 2400.0, 4800.0)

#: Pareto objectives of the accuracy-power trade (same as Fig. 7 b).
OBJECTIVES = (Objective("power_uw", maximize=False), Objective("accuracy", maximize=True))


@dataclass
class ConstrainedFront:
    """Pareto front under one area cap."""

    max_area_units: float
    front: list[Evaluation] = field(default_factory=list)

    @property
    def max_accuracy(self) -> float | None:
        """Best accuracy achievable within the cap (None if infeasible)."""
        if not self.front:
            return None
        return max(evaluation.metric("accuracy") for evaluation in self.front)

    @property
    def min_power_uw(self) -> float | None:
        """Lowest power on the constrained front."""
        if not self.front:
            return None
        return min(evaluation.metric("power_uw") for evaluation in self.front)

    def contains_cs(self) -> bool:
        """True if any CS point survives the cap."""
        return any(evaluation.point.use_cs for evaluation in self.front)


@dataclass
class Fig10Result:
    """Constrained fronts for every swept cap (ascending)."""

    fronts: list[ConstrainedFront]

    def max_accuracies(self) -> list[float | None]:
        """Max accuracy per cap, ascending cap order (the Fig. 10 trend)."""
        return [front.max_accuracy for front in self.fronts]

    def render(self) -> str:
        """Summary table: cap -> achievable accuracy, CS availability."""
        lines = [f"{'area cap [xCu]':>15}{'max accuracy':>14}{'cs feasible':>13}{'points':>8}"]
        for front in self.fronts:
            acc = front.max_accuracy
            lines.append(
                f"{front.max_area_units:>15.0f}"
                f"{(f'{acc:.3f}' if acc is not None else 'none'):>14}"
                f"{str(front.contains_cs()):>13}{len(front.front):>8}"
            )
        return "\n".join(lines)


def analyze_fig10(
    sweep: ExplorationResult,
    area_caps: tuple[float, ...] = DEFAULT_AREA_CAPS,
) -> Fig10Result:
    """Extract the area-constrained fronts from the shared sweep."""
    if not area_caps:
        raise ValueError("need at least one area cap")
    fronts = []
    for cap in sorted(area_caps):
        front = sweep.pareto(
            OBJECTIVES,
            constraint=lambda metrics, cap=cap: metrics["area_units"] <= cap,
        )
        fronts.append(ConstrainedFront(max_area_units=cap, front=front))
    return Fig10Result(fronts=fronts)
