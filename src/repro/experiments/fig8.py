"""Fig. 8 -- per-block power breakdown of the two optimal design points.

Compares the block-level power of the optimal baseline configuration
against the optimal CS configuration (from Fig. 7 b).  The paper's
findings, asserted by the benchmark:

* the CS optimum spends **much less in the transmitter** (fewer
  transmitted words -- the expected effect of compression);
* the CS optimum also spends **much less in the LNA** -- the non-obvious
  insight: the CS system tolerates a higher input noise floor because the
  reconstruction of summed measurements averages noise out;
* the CS encoder adds digital power, but only a **marginal** amount
  compared to the savings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import Evaluation, ExplorationResult
from repro.experiments.fig7 import MIN_ACCURACY, analyze_fig7
from repro.power.models import BLOCK_ORDER
from repro.util.constants import MICRO


@dataclass
class Fig8Result:
    """The two optimal breakdowns, plus the deltas the paper highlights."""

    baseline: Evaluation
    cs: Evaluation

    def breakdown_uw(self, which: str) -> dict[str, float]:
        """Per-block power of one optimum, in uW."""
        evaluation = {"baseline": self.baseline, "cs": self.cs}[which]
        return {name: watts / MICRO for name, watts in evaluation.breakdown.items()}

    def delta_uw(self, block: str) -> float:
        """CS minus baseline power of ``block`` (negative = CS saves)."""
        base = self.baseline.breakdown.get(block, 0.0)
        cs = self.cs.breakdown.get(block, 0.0)
        return (cs - base) / MICRO

    def savings_table(self) -> str:
        """Side-by-side breakdown in the figure's block order."""
        blocks = [
            name
            for name in BLOCK_ORDER
            if name in self.baseline.breakdown or name in self.cs.breakdown
        ]
        lines = [f"{'block':<12}{'baseline [uW]':>15}{'cs [uW]':>12}{'delta [uW]':>13}"]
        for block in blocks:
            base = self.baseline.breakdown.get(block, 0.0) / MICRO
            cs = self.cs.breakdown.get(block, 0.0) / MICRO
            lines.append(f"{block:<12}{base:>15.4f}{cs:>12.4f}{cs - base:>13.4f}")
        lines.append(
            f"{'total':<12}{self.baseline.metric('power_uw'):>15.4f}"
            f"{self.cs.metric('power_uw'):>12.4f}"
            f"{self.cs.metric('power_uw') - self.baseline.metric('power_uw'):>13.4f}"
        )
        return "\n".join(lines)


def analyze_fig8(sweep: ExplorationResult, min_accuracy: float = MIN_ACCURACY) -> Fig8Result:
    """Extract the Fig. 8 comparison from the shared search-space sweep."""
    fig7 = analyze_fig7(sweep, min_accuracy=min_accuracy)
    if fig7.optimal_baseline is None or fig7.optimal_cs is None:
        raise ValueError(
            "no feasible optimum for one of the architectures; widen the sweep "
            "or lower min_accuracy"
        )
    return Fig8Result(baseline=fig7.optimal_baseline, cs=fig7.optimal_cs)
