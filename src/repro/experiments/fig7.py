"""Fig. 7 -- search-space sweep: Pareto fronts and optimal points.

Fig. 7 a) plots achieved SNR vs power for every point of the Table III
search space, with the baseline and CS Pareto fronts; the paper's reading
is that **CS wins at low SNR while the classical chain wins at high SNR**
(the passive encoder's reconstruction quality saturates, the baseline's
does not).

Fig. 7 b) plots the same search space against *detection accuracy*; now
**CS dominates the whole range**, and the optimal (minimum-power,
accuracy >= 98 %) points are:

=============  =============  ==========
architecture   accuracy       power
=============  =============  ==========
baseline       98.1 %         8.8 uW
CS             99.3 %         2.44 uW   (3.6x saving)
=============  =============  ==========

This module extracts both figures (and the optimal-point table) from the
shared search-space sweep of :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.goal import accuracy_power_goal, snr_power_goal
from repro.core.results import Evaluation, ExplorationResult

#: The paper's minimum acceptable detection accuracy.
MIN_ACCURACY = 0.98

#: Paper-reported optima, for the EXPERIMENTS.md comparison.
PAPER_BASELINE_OPTIMUM = {"accuracy": 0.981, "power_uw": 8.8}
PAPER_CS_OPTIMUM = {"accuracy": 0.993, "power_uw": 2.44}
PAPER_POWER_SAVING = 3.6


@dataclass
class Fig7Result:
    """Both panels of Fig. 7 extracted from one sweep."""

    sweep: ExplorationResult
    baseline: ExplorationResult
    cs: ExplorationResult
    snr_front_baseline: list[Evaluation]
    snr_front_cs: list[Evaluation]
    accuracy_front_baseline: list[Evaluation]
    accuracy_front_cs: list[Evaluation]
    optimal_baseline: Evaluation | None
    optimal_cs: Evaluation | None

    @property
    def power_saving(self) -> float | None:
        """Optimal baseline power / optimal CS power (the paper's 3.6x)."""
        if self.optimal_baseline is None or self.optimal_cs is None:
            return None
        return self.optimal_baseline.metric("power_uw") / self.optimal_cs.metric("power_uw")

    def summary(self) -> str:
        """Optimal-point table in the paper's reporting format."""
        lines = [f"{'architecture':<14}{'accuracy':>10}{'power [uW]':>12}"]
        for name, opt in (("baseline", self.optimal_baseline), ("cs", self.optimal_cs)):
            if opt is None:
                lines.append(f"{name:<14}{'infeasible':>10}{'-':>12}")
            else:
                lines.append(
                    f"{name:<14}{opt.metric('accuracy'):>10.3f}"
                    f"{opt.metric('power_uw'):>12.2f}"
                )
        saving = self.power_saving
        if saving is not None:
            lines.append(f"power saving: {saving:.2f}x")
        return "\n".join(lines)


def analyze_fig7(sweep: ExplorationResult, min_accuracy: float = MIN_ACCURACY) -> Fig7Result:
    """Extract Fig. 7 a) and b) artefacts from a search-space sweep."""
    baseline, cs = sweep.split_by_architecture()
    snr_goal = snr_power_goal()
    acc_goal = accuracy_power_goal(min_accuracy)
    return Fig7Result(
        sweep=sweep,
        baseline=baseline,
        cs=cs,
        snr_front_baseline=baseline.pareto(snr_goal.objectives),
        snr_front_cs=cs.pareto(snr_goal.objectives),
        accuracy_front_baseline=baseline.pareto(acc_goal.objectives),
        accuracy_front_cs=cs.pareto(acc_goal.objectives),
        optimal_baseline=baseline.best(minimize="power_uw", constraint=acc_goal.constraint),
        optimal_cs=cs.best(minimize="power_uw", constraint=acc_goal.constraint),
    )


def render_front(front: list[Evaluation], metric: str) -> str:
    """Text series of a Pareto front (power ascending)."""
    lines = [f"{'power [uW]':>12}{metric:>14}  design point"]
    for evaluation in front:
        lines.append(
            f"{evaluation.metric('power_uw'):>12.3f}{evaluation.metric(metric):>14.4g}"
            f"  {evaluation.point.describe()}"
        )
    return "\n".join(lines)


def max_quality(front: list[Evaluation], metric: str) -> float:
    """Best quality value along a front (used in shape assertions)."""
    if not front:
        raise ValueError("empty front")
    return max(evaluation.metric(metric) for evaluation in front)


def quality_at_power(
    evaluations: list[Evaluation], metric: str, max_power_uw: float
) -> float | None:
    """Best ``metric`` among points at or below a power budget."""
    candidates = [
        evaluation.metric(metric)
        for evaluation in evaluations
        if evaluation.metric("power_uw") <= max_power_uw
    ]
    return max(candidates) if candidates else None
