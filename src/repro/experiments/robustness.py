"""Robustness experiment: Monte-Carlo yield analysis of the two optima.

Beyond-the-paper validation of its central claim: the Fig. 7 b optimal
operating points (baseline 8 bit @ 2 uVrms; CS 8 bit, M = 150 @ 8 uVrms)
are stressed with the :mod:`repro.faults` non-ideality suite over a grid
of fault severities and independent chip/fault realisations, reporting
how detection accuracy degrades and what fraction of instances still
meets spec -- the "yield" a silicon team would quote.

The default suite spans the whole signal path:

* ``lna``          -- saturation bursts (artefacts) + slow gain drift;
* ``sample_hold``  -- missed conversions (held samples, baseline only);
* ``adc``          -- transient bit flips + a possible stuck bit;
* ``transmitter``  -- lost packets/frames + rare NaN glitches.

The same plan serves both architectures (entries whose block is absent
from a chain are skipped), so the comparison is apples-to-apples.

Everything derives from the harness master seed: re-running the
experiment reproduces the table bit-exactly, at any executor.
"""

from __future__ import annotations

import time

from repro.core.execution import ExecutionPolicy
from repro.core.telemetry import RunManifest, Telemetry, get_active
from repro.kernels import registry as kernel_registry
from repro.experiments.runner import SCALES, ExperimentScale, active_scale, make_harness
from repro.experiments.table2 import reference_operating_points
from repro.faults import (
    AdcBitFlip,
    AdcStuckBit,
    FaultSuite,
    GainDrift,
    MonteCarloYield,
    NanGlitch,
    PacketLoss,
    SampleDropout,
    SaturationBurst,
    YieldResult,
)

#: Severity grid of the yield sweep (0 = clean reference, added implicitly).
DEFAULT_SEVERITIES = (0.1, 0.25, 0.5, 1.0)

#: Spec: a realisation yields when accuracy degrades by at most this much.
DEFAULT_MAX_DEGRADATION = 0.05

#: Full-path fault plan at unit severity; scaled down by the sweep.
DEFAULT_FAULT_SUITE = FaultSuite(
    entries=(
        ("lna", SaturationBurst(severity=1.0)),
        ("lna", GainDrift(severity=1.0)),
        ("sample_hold", SampleDropout(severity=1.0)),
        ("adc", AdcBitFlip(severity=1.0)),
        ("adc", AdcStuckBit(severity=1.0)),
        ("transmitter", PacketLoss(severity=1.0)),
        ("transmitter", NanGlitch(severity=1.0)),
    )
)


def run_robustness(
    scale: str | ExperimentScale | None = None,
    *,
    suite: FaultSuite | None = None,
    severities: tuple[float, ...] = DEFAULT_SEVERITIES,
    n_realisations: int | None = None,
    max_degradation: float = DEFAULT_MAX_DEGRADATION,
    timeout_s: float | None = None,
    retries: int = 0,
    telemetry: Telemetry | None = None,
) -> YieldResult:
    """Run the yield analysis at ``scale`` for both reference optima.

    ``n_realisations`` defaults to 3 at smoke scale and 8 otherwise (the
    smoke run exists to validate code paths in seconds, not statistics).
    ``timeout_s``/``retries`` guard each evaluation through the same
    :class:`ExecutionPolicy` machinery the sweeps use.
    """
    if scale is None:
        scale = active_scale()
    if isinstance(scale, str):
        scale = SCALES[scale]
    if n_realisations is None:
        n_realisations = 3 if scale.name == "smoke" else 8
    harness = make_harness(scale.name)
    points = reference_operating_points()
    runner = MonteCarloYield(
        evaluators={name: harness.evaluator for name in points},
        points=points,
        suite=suite if suite is not None else DEFAULT_FAULT_SUITE,
        severities=severities,
        n_realisations=n_realisations,
        metric="accuracy",
        max_degradation=max_degradation,
        policy=ExecutionPolicy(timeout_s=timeout_s, retries=retries),
    )
    return runner.run(telemetry=telemetry)


def render_robustness(result: YieldResult) -> str:
    """The yield/degradation table plus a one-line verdict per chain."""
    lines = [result.as_table(), ""]
    for chain in result.chains():
        curve = result.yield_curve(chain)
        held = [s for s, y in curve if y >= 0.5]
        verdict = (
            f"{chain}: holds >= 50% yield up to severity {max(held):g}"
            if held
            else f"{chain}: below 50% yield across the whole severity grid"
        )
        lines.append(verdict)
    return "\n".join(lines)


def build_robustness_manifest(
    result: YieldResult,
    telemetry: Telemetry | None = None,
    scale: str | ExperimentScale | None = None,
    *,
    command: str = "robustness",
) -> RunManifest:
    """A :class:`RunManifest` for one robustness run.

    The ``robustness`` section carries the yield digest plus the fault /
    retry / timeout counters the hardened execution layer accumulated.
    """
    if scale is None:
        scale = active_scale()
    if isinstance(scale, str):
        scale = SCALES[scale]
    tel = telemetry if telemetry is not None else get_active()
    counters = tel.snapshot()["counters"] if tel.enabled else {}
    return RunManifest(
        command=command,
        created_unix=time.time(),
        seed=scale.seed,
        scale=scale.name,
        executor="serial",
        n_workers=1,
        phases=tel.timers() if tel.enabled else {},
        robustness={
            **result.summary(),
            "counters": {
                "faults_applied": counters.get("faults.applied", 0),
                "evaluations": counters.get("robustness.evaluations", 0),
                "failures": counters.get("robustness.failures", 0),
                "retries": counters.get("robustness.retries", 0),
                "timeouts": counters.get("robustness.timeouts", 0),
            },
        },
        kernels=kernel_registry.manifest_section(),
        environment=RunManifest.describe_environment(),
    )
