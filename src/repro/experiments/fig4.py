"""Fig. 4 -- LNA input-referred-noise sweep on the baseline chain.

The paper's framework demo: sweep the LNA's total input-referred noise
(1-20 uVrms) with a full-scale sine input through the standard acquisition
chain of Fig. 1 a), and record (i) the achieved system SNDR, (ii) the
total power, and (iii) the per-block power distribution.

Expected shape (asserted by the benchmark):

* SNDR decreases monotonically with the noise floor;
* total power decreases steeply at the low-noise end (the LNA's
  noise-bound current scales as 1/v_n^2) and flattens once the
  transmitter dominates;
* the power distribution shifts from LNA-dominated (low noise) to
  transmitter-dominated (high noise).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocks.chains import build_baseline_chain
from repro.blocks.sources import sine
from repro.core.simulator import Simulator
from repro.metrics.snr import sndr_sine
from repro.power.technology import DesignPoint
from repro.util.constants import MICRO

#: Default sweep of Table III's noise range, uVrms.
DEFAULT_NOISE_SWEEP_UV = (1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 11.0, 15.0, 20.0)


@dataclass(frozen=True)
class Fig4Row:
    """One sweep point of Fig. 4."""

    noise_uv: float
    sndr_db: float
    power_uw: float
    breakdown_uw: dict[str, float]

    def dominant_block(self) -> str:
        """Name of the block with the largest power share."""
        return max(self.breakdown_uw, key=lambda name: self.breakdown_uw[name])


def run_fig4(
    noise_values_uv: tuple[float, ...] = DEFAULT_NOISE_SWEEP_UV,
    base_point: DesignPoint | None = None,
    n_samples: int = 8192,
    tone_frequency: float = 40.0,
    amplitude_fraction: float = 0.9,
    seed: int = 4,
) -> list[Fig4Row]:
    """Regenerate the Fig. 4 sweep.

    The tone amplitude is ``amplitude_fraction`` of the input-referred
    full scale (v_fs / 2 / gain), matching the near-full-scale drive of a
    standard SNDR characterisation.
    """
    base_point = base_point or DesignPoint(n_bits=8)
    amplitude = amplitude_fraction * base_point.v_fs / 2.0 / base_point.lna_gain
    source = sine(
        frequency=tone_frequency,
        amplitude=amplitude,
        sample_rate=base_point.f_sample,
        n_samples=n_samples,
    )
    rows = []
    for noise_uv in noise_values_uv:
        point = base_point.with_(lna_noise_rms=noise_uv * MICRO)
        chain = build_baseline_chain(point, seed=seed)
        result = Simulator(chain, point, seed=seed).run(source)
        sndr = sndr_sine(result.tap("adc").data)
        rows.append(
            Fig4Row(
                noise_uv=noise_uv,
                sndr_db=sndr,
                power_uw=result.power.total / MICRO,
                breakdown_uw={
                    name: watts / MICRO for name, watts in result.power.blocks.items()
                },
            )
        )
    return rows


def render_fig4(rows: list[Fig4Row]) -> str:
    """Text rendering of the sweep (series + distribution, Fig. 4 layout)."""
    blocks = sorted({name for row in rows for name in row.breakdown_uw})
    header = f"{'noise[uV]':>10}{'SNDR[dB]':>10}{'P[uW]':>9}" + "".join(
        f"{name[:10]:>11}" for name in blocks
    )
    lines = [header]
    for row in rows:
        cells = "".join(f"{row.breakdown_uw.get(name, 0.0):>11.4f}" for name in blocks)
        lines.append(f"{row.noise_uv:>10.1f}{row.sndr_db:>10.2f}{row.power_uw:>9.3f}{cells}")
    return "\n".join(lines)
