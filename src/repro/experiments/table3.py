"""Table III -- technology constants and the swept design parameters.

Encodes the paper's Table III as data: the extracted gpdk045 technology
constants (implemented by :class:`~repro.power.technology.Technology`) and
the design-parameter sweep ranges, from which
:func:`paper_search_space` builds the exact search space of the Fig. 7-10
experiments (baseline grid union CS grid).
"""

from __future__ import annotations

import numpy as np

from repro.core.parameters import CompositeSpace, ParameterSpace
from repro.power.technology import GPDK045, DesignPoint, Technology
from repro.util.constants import MICRO

#: Paper sweep: LNA input-referred noise 1-20 (uVrms).
NOISE_SWEEP_UV = (1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 16.0, 20.0)

#: Paper sweep: ADC resolution 6-8 bit.
N_BITS_SWEEP = (6, 7, 8)

#: Paper sweep: compressed measurements per N_phi = 384 frame.
CS_M_SWEEP = (75, 150, 192)

#: Frame length of the CS encoder.
CS_N_PHI = 384


def technology_rows(technology: Technology = GPDK045) -> list[tuple[str, str, float, str]]:
    """(symbol, description, value, unit) rows of the technology half."""
    return [
        ("C_logic", "logic gate capacitance", technology.c_logic, "F"),
        ("gm/Id", "transconductance efficiency", technology.gm_over_id, "1/V"),
        ("c_density", "capacitor density", technology.cap_density, "F/um^2"),
        ("C_u,min", "minimum unit capacitor", technology.cu_min, "F"),
        ("C_pk", "published matching figure", technology.c_pk, "%/um^2"),
        ("sigma_u", "unit-cap mismatch sigma", technology.unit_cap_mismatch_sigma, "-"),
        ("I_leak", "switch leakage", technology.i_leak, "A"),
        ("E_bit", "energy per transmitted bit", technology.e_bit, "J"),
        ("V_T", "thermal voltage", technology.v_t, "V"),
        ("NEF", "LNA noise-efficiency factor", technology.nef, "-"),
    ]


def design_rows(point: DesignPoint | None = None) -> list[tuple[str, str, object, str]]:
    """(symbol, description, value, unit) rows of the design half."""
    point = point or DesignPoint()
    return [
        ("BW_in", "input bandwidth", point.bw_in, "Hz"),
        ("M, N_phi", "CS measurements / frame length", f"{CS_M_SWEEP} / {CS_N_PHI}", "-"),
        ("noise floor", "LNA input noise sweep", f"{NOISE_SWEEP_UV} uVrms", "-"),
        ("N", "ADC resolution sweep", N_BITS_SWEEP, "bit"),
        ("V_dd", "supply", point.v_dd, "V"),
        ("f_sample", "2.1 * BW_in", point.f_sample, "Hz"),
        ("f_clk", "(N+1) * f_sample", point.f_clk, "Hz"),
        ("V_FS, V_ref", "full scale / reference", point.v_fs, "V"),
        ("BW_LNA", "3 * BW_in", point.bw_lna, "Hz"),
    ]


def render_table3() -> str:
    """Both halves of Table III as fixed-width text."""
    lines = [f"{'symbol':<14}{'description':<34}{'value':>16}  unit"]
    lines.append("-- technology (gpdk045 extraction) --")
    for symbol, desc, value, unit in technology_rows():
        lines.append(f"{symbol:<14}{desc:<34}{value!s:>16}  {unit}")
    lines.append("-- design parameters --")
    for symbol, desc, value, unit in design_rows():
        lines.append(f"{symbol:<14}{desc:<34}{value!s:>16}  {unit}")
    return "\n".join(lines)


def paper_search_space(
    noise_values_uv: tuple[float, ...] = NOISE_SWEEP_UV,
    n_bits_values: tuple[int, ...] = N_BITS_SWEEP,
    cs_m_values: tuple[int, ...] = CS_M_SWEEP,
) -> CompositeSpace:
    """The Fig. 7-10 search space: baseline grid union CS grid.

    Baseline sweeps noise x resolution; the CS branch additionally sweeps
    the measurement count M at N_phi = 384 and s = 2 (fixed by the
    architecture of Fig. 5).
    """
    noise_volts = [value * MICRO for value in noise_values_uv]
    baseline = ParameterSpace(
        {
            "use_cs": [False],
            "lna_noise_rms": noise_volts,
            "n_bits": list(n_bits_values),
        }
    )
    cs = ParameterSpace(
        {
            "use_cs": [True],
            "lna_noise_rms": noise_volts,
            "n_bits": list(n_bits_values),
            "cs_m": list(cs_m_values),
        }
    )
    return baseline | cs


def space_summary() -> dict[str, int]:
    """Point counts of the paper search space (used by the Table III bench)."""
    space = paper_search_space()
    baseline, cs = space.spaces
    return {
        "baseline_points": baseline.size,
        "cs_points": cs.size,
        "total_points": space.size,
    }
