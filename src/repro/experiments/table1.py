"""Table I -- qualitative comparison of modeling frameworks.

The paper's Table I positions EffiCSense against high-level behavioural
modeling (Malcovati et al. [11]) and FOM-based CS energy analyses (Chen
[2], Bellasi & Benini [12]).  The table is a capability matrix; this
module encodes it as data and renders the same rows, and -- more useful
for a reproduction -- backs each EffiCSense claim with a pointer to the
module that implements the capability, which the benchmark asserts
importable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FrameworkProfile:
    """One column of Table I."""

    name: str
    target_application: str
    mixed_signal_modeling: bool
    power_modeling: bool
    method: str
    application_specific: bool


TABLE1_COLUMNS = (
    FrameworkProfile(
        name="High-Level Behavioral Modeling [11]",
        target_application="Delta-Sigma ADCs",
        mixed_signal_modeling=True,
        power_modeling=False,
        method="/",
        application_specific=False,
    ),
    FrameworkProfile(
        name="FOM-based [2], [12]",
        target_application="CS applications",
        mixed_signal_modeling=False,
        power_modeling=True,
        method="FOM/Ideal Model",
        application_specific=True,
    ),
    FrameworkProfile(
        name="EffiCSense",
        target_application="Sensor Front-Ends",
        mixed_signal_modeling=True,
        power_modeling=True,
        method="FOM/Analytical Model",
        application_specific=False,
    ),
)

#: Capability -> module(s) of this repo implementing it for EffiCSense.
CAPABILITY_EVIDENCE = {
    "mixed_signal_modeling": (
        "repro.blocks.lna",
        "repro.blocks.sar_adc",
        "repro.blocks.cs_frontend",
        "repro.core.simulator",
    ),
    "power_modeling": (
        "repro.power.models",
        "repro.power.technology",
    ),
    "analytical_method": ("repro.power.models",),
    "application_agnostic": (
        "repro.core.parameters",
        "repro.core.goal",
        "repro.core.explorer",
    ),
}


def _cell(value: bool) -> str:
    return "Yes" if value else "No"


def render_table1() -> str:
    """The comparison matrix as fixed-width text (paper Table I rows)."""
    rows = [
        ("Target Application", lambda p: p.target_application),
        ("Mixed-Signal Modeling", lambda p: _cell(p.mixed_signal_modeling)),
        ("Power Modeling", lambda p: _cell(p.power_modeling)),
        ("Method", lambda p: p.method),
        ("Application Specific", lambda p: _cell(p.application_specific)),
    ]
    name_width = 24
    col_width = 36
    header = " " * name_width + "".join(f"{p.name:<{col_width}}" for p in TABLE1_COLUMNS)
    lines = [header]
    for label, getter in rows:
        cells = "".join(f"{getter(p):<{col_width}}" for p in TABLE1_COLUMNS)
        lines.append(f"{label:<{name_width}}{cells}")
    return "\n".join(lines)


def verify_capability_evidence() -> dict[str, bool]:
    """Import-check every module claimed as capability evidence.

    Returns capability -> True when all its modules import; used by the
    Table I benchmark to turn the qualitative table into a checkable
    artefact.
    """
    import importlib

    results: dict[str, bool] = {}
    for capability, modules in CAPABILITY_EVIDENCE.items():
        ok = True
        for module in modules:
            try:
                importlib.import_module(module)
            except ImportError:
                ok = False
        results[capability] = ok
    return results
