"""Fig. 9 -- detection accuracy vs total capacitor area.

Plots every search-space point's accuracy against its total capacitance
(in multiples of the minimum technology capacitor C_u,min -- the paper's
area proxy, since capacitors dominate mixed-signal die area).

The finding asserted by the benchmark: the CS architecture costs
**significantly more capacitor area** than the baseline (M hold
capacitors plus the sampling pair, against the baseline's DAC array
alone) -- area is the price of the CS power saving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import Evaluation, ExplorationResult


@dataclass
class Fig9Result:
    """Accuracy-vs-area scatter, split by architecture."""

    baseline: list[Evaluation]
    cs: list[Evaluation]

    def area_range(self, which: str) -> tuple[float, float]:
        """(min, max) area in C_u,min units for one architecture."""
        population = {"baseline": self.baseline, "cs": self.cs}[which]
        areas = [evaluation.metric("area_units") for evaluation in population]
        return (min(areas), max(areas))

    def median_area(self, which: str) -> float:
        """Median area of one architecture's points."""
        population = {"baseline": self.baseline, "cs": self.cs}[which]
        return float(np.median([e.metric("area_units") for e in population]))

    def area_ratio(self) -> float:
        """Median CS area / median baseline area (the paper's 'significant
        increase')."""
        return self.median_area("cs") / self.median_area("baseline")

    def scatter(self, which: str) -> list[tuple[float, float]]:
        """(area_units, accuracy) pairs of one architecture."""
        population = {"baseline": self.baseline, "cs": self.cs}[which]
        return [
            (evaluation.metric("area_units"), evaluation.metric("accuracy"))
            for evaluation in population
        ]

    def render(self) -> str:
        """Text rendering of the scatter, ordered by area."""
        lines = [f"{'arch':<10}{'area [xCu]':>12}{'accuracy':>10}  design point"]
        for name in ("baseline", "cs"):
            for area, accuracy in sorted(self.scatter(name)):
                lines.append(f"{name:<10}{area:>12.1f}{accuracy:>10.3f}")
        return "\n".join(lines)


def analyze_fig9(sweep: ExplorationResult) -> Fig9Result:
    """Extract the Fig. 9 scatter from the shared search-space sweep."""
    baseline, cs = sweep.split_by_architecture()
    if len(baseline) == 0 or len(cs) == 0:
        raise ValueError("sweep must contain both architectures")
    return Fig9Result(baseline=baseline.evaluations, cs=cs.evaluations)
