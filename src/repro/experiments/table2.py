"""Table II -- power models of the building blocks, evaluated.

Regenerates the paper's Table II as numbers: every block's power model is
evaluated at a reference operating point (Table III defaults, N = 8,
baseline and CS variants) so the table becomes a concrete power budget.
The benchmark asserts the structural facts the paper derives from it
(transmitter and LNA dominate the baseline; the CS encoder adds only a
modest digital term).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.models import (
    comparator_power,
    cs_encoder_logic_power,
    dac_power,
    leakage_power,
    lna_power,
    sample_hold_power,
    sar_logic_power,
    transmitter_power,
)
from repro.power.technology import DesignPoint
from repro.util.constants import MICRO


@dataclass(frozen=True)
class PowerModelRow:
    """One Table II row evaluated at a design point."""

    block: str
    formula: str
    reference: str
    power_w: float

    @property
    def power_uw(self) -> float:
        """Power in microwatts."""
        return self.power_w / MICRO


#: Formula strings as printed in the paper (for the rendered table).
FORMULAS = {
    "lna": "Vdd * max(GBW*2pi*Cl/(gm/Id), Vref*fclk*Cl, (NEF/vn)^2*2pi*4kT*BW*VT)",
    "sample_hold": "Vref * fclk * 12kT * 2^(2N) / VFS^2",
    "comparator": "2N ln2 (fclk - fs) Cl VFS Veff",
    "sar_logic": "a (2N+1) Clogic Vdd^2 (fclk - fs), a=0.4",
    "dac": "2^N fclk Cu/(N+1) {(5/6 - 2^-N - 2^-2N/3) Vref^2 - Vin^2/2 - 2^-N Vin Vref}",
    "transmitter": "fclk/(N+1) * N * Ebit",
    "cs_encoder": "a (ceil(log2 Nphi)+1) Nphi 8Clogic Vdd^2 fclk, a=1",
    "leakage": "n_switches * Ileak * Vdd",
}

REFERENCES = {
    "lna": "[16] Steyaert",
    "sample_hold": "[14] Sundstrom",
    "comparator": "[14] Sundstrom",
    "sar_logic": "[17] Bos",
    "dac": "[15]/[3] Saberi",
    "transmitter": "[4],[12]",
    "cs_encoder": "[17] Bos (derived, Sec. III)",
    "leakage": "Table III",
}


def power_model_rows(point: DesignPoint) -> list[PowerModelRow]:
    """Evaluate every Table II model at ``point``."""
    entries = [
        ("lna", lna_power(point)),
        ("sample_hold", sample_hold_power(point)),
        ("comparator", comparator_power(point)),
        ("sar_logic", sar_logic_power(point)),
        ("dac", dac_power(point)),
        ("transmitter", transmitter_power(point)),
        ("leakage", leakage_power(point)),
    ]
    if point.use_cs:
        entries.insert(-1, ("cs_encoder", cs_encoder_logic_power(point)))
    return [
        PowerModelRow(
            block=name,
            formula=FORMULAS[name],
            reference=REFERENCES[name],
            power_w=watts,
        )
        for name, watts in entries
    ]


def reference_operating_points() -> dict[str, DesignPoint]:
    """The two reference points the rendered table evaluates."""
    return {
        "baseline": DesignPoint(n_bits=8, lna_noise_rms=2e-6),
        "cs": DesignPoint(n_bits=8, lna_noise_rms=8e-6, use_cs=True, cs_m=150),
    }


def render_table2() -> str:
    """Table II with evaluated power columns for both architectures."""
    points = reference_operating_points()
    rows_by_arch = {name: power_model_rows(point) for name, point in points.items()}
    blocks = [row.block for row in rows_by_arch["cs"]]
    lines = [
        f"{'block':<14}{'reference':<28}{'baseline [uW]':>16}{'cs [uW]':>12}",
    ]
    baseline_map = {row.block: row for row in rows_by_arch["baseline"]}
    cs_map = {row.block: row for row in rows_by_arch["cs"]}
    for block in blocks:
        base = baseline_map.get(block)
        cs = cs_map.get(block)
        base_cell = f"{base.power_uw:>16.4f}" if base else f"{'-':>16}"
        cs_cell = f"{cs.power_uw:>12.4f}" if cs else f"{'-':>12}"
        reference = (cs or base).reference
        lines.append(f"{block:<14}{reference:<28}{base_cell}{cs_cell}")
    total_base = sum(r.power_uw for r in rows_by_arch["baseline"])
    total_cs = sum(r.power_uw for r in rows_by_arch["cs"])
    lines.append(f"{'total':<14}{'':<28}{total_base:>16.4f}{total_cs:>12.4f}")
    return "\n".join(lines)
