"""Paper experiments: one module per table/figure, plus the shared harness.

* :mod:`repro.experiments.runner` -- dataset/detector/evaluator harness
  with ``smoke``/``small``/``paper`` scales (``REPRO_SCALE`` env var).
* ``table1``..``table3`` -- the paper's tables as data + rendered text.
* ``fig4`` -- LNA noise sweep (SNDR + power breakdown).
* ``fig7`` -- search-space sweep, Pareto fronts, optimal points.
* ``fig8`` -- power breakdown of the two optima.
* ``fig9`` -- accuracy vs capacitor area.
* ``fig10`` -- area-constrained Pareto fronts.
"""

from repro.experiments.fig4 import DEFAULT_NOISE_SWEEP_UV, Fig4Row, render_fig4, run_fig4
from repro.experiments.fig7 import (
    MIN_ACCURACY,
    PAPER_BASELINE_OPTIMUM,
    PAPER_CS_OPTIMUM,
    PAPER_POWER_SAVING,
    Fig7Result,
    analyze_fig7,
    render_front,
)
from repro.experiments.fig8 import Fig8Result, analyze_fig8
from repro.experiments.fig9 import Fig9Result, analyze_fig9
from repro.experiments.fig10 import DEFAULT_AREA_CAPS, Fig10Result, analyze_fig10
from repro.experiments.robustness import (
    DEFAULT_FAULT_SUITE,
    DEFAULT_MAX_DEGRADATION,
    DEFAULT_SEVERITIES,
    build_robustness_manifest,
    render_robustness,
    run_robustness,
)
from repro.experiments.runner import (
    F_SAMPLE,
    SCALES,
    ExperimentHarness,
    ExperimentScale,
    FistaReconstructorFactory,
    active_scale,
    augment_training_set,
    build_run_manifest,
    default_workers,
    make_harness,
    profile_representative_point,
    run_adaptive_search_space,
    run_search_space,
    search_space_for,
)
from repro.experiments.table1 import TABLE1_COLUMNS, render_table1, verify_capability_evidence
from repro.experiments.table2 import power_model_rows, reference_operating_points, render_table2
from repro.experiments.table3 import (
    CS_M_SWEEP,
    CS_N_PHI,
    N_BITS_SWEEP,
    NOISE_SWEEP_UV,
    paper_search_space,
    render_table3,
    space_summary,
)

__all__ = [
    "CS_M_SWEEP",
    "CS_N_PHI",
    "DEFAULT_AREA_CAPS",
    "DEFAULT_FAULT_SUITE",
    "DEFAULT_MAX_DEGRADATION",
    "DEFAULT_NOISE_SWEEP_UV",
    "DEFAULT_SEVERITIES",
    "ExperimentHarness",
    "ExperimentScale",
    "F_SAMPLE",
    "Fig10Result",
    "Fig4Row",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "MIN_ACCURACY",
    "N_BITS_SWEEP",
    "NOISE_SWEEP_UV",
    "PAPER_BASELINE_OPTIMUM",
    "PAPER_CS_OPTIMUM",
    "PAPER_POWER_SAVING",
    "SCALES",
    "TABLE1_COLUMNS",
    "FistaReconstructorFactory",
    "active_scale",
    "default_workers",
    "analyze_fig10",
    "analyze_fig7",
    "analyze_fig8",
    "analyze_fig9",
    "augment_training_set",
    "build_robustness_manifest",
    "build_run_manifest",
    "make_harness",
    "profile_representative_point",
    "search_space_for",
    "paper_search_space",
    "power_model_rows",
    "reference_operating_points",
    "render_fig4",
    "render_front",
    "render_robustness",
    "run_robustness",
    "render_table1",
    "render_table2",
    "render_table3",
    "run_fig4",
    "run_adaptive_search_space",
    "run_search_space",
    "space_summary",
    "verify_capability_evidence",
]
