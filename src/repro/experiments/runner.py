"""Shared experiment harness: dataset, detector, evaluator, scales.

Every figure experiment runs on the same stack:

1. a synthetic Bonn-like corpus resampled to the front-end rate
   ``f_sample = 2.1 * 256 Hz`` and truncated to a whole number of CS
   frames;
2. the deterministic spectral-comb seizure detector calibrated once on an
   *independent* clean corpus (the accuracy oracle standing in for the CNN
   of ref. [20] -- see :mod:`repro.detection.spectral` for the rationale);
3. a :class:`~repro.core.explorer.FrontEndEvaluator` scoring design points.

Because full paper scale (500 records x 23.6 s x ~100 grid points) takes
hours in pure Python, the harness exposes named :class:`ExperimentScale`
presets.  ``smoke`` checks code paths in seconds; ``small`` (the default
for benchmark reporting) resolves accuracy to <1 % in minutes; ``paper``
is the faithful full-size run.  Select one globally with the
``REPRO_SCALE`` environment variable.

Harnesses and full Fig. 7 sweeps are cached per scale so the Fig. 7/8/9/10
benchmarks share a single exploration.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.adaptive import AdaptiveExplorationResult
from repro.core.explorer import DesignSpaceExplorer, FrontEndEvaluator
from repro.core.pareto import Objective
from repro.core.results import Evaluation, ExplorationResult
from repro.core.resources import resources_section
from repro.core.telemetry import Telemetry, RunManifest, activate
from repro.cs.dictionaries import dct_basis, wavelet_basis
from repro.cs.reconstruction import Reconstructor
from repro.kernels import registry as kernel_registry
from repro.detection.spectral import SpectralCombDetector
from repro.eeg.preprocessing import resample_dataset
from repro.eeg.synthetic import make_bonn_like_dataset
from repro.experiments.table3 import CS_N_PHI, paper_search_space
from repro.power.technology import DesignPoint
from repro.util.rng import derive_seed

#: Front-end sampling rate of all experiments (Table III: 2.1 * 256 Hz).
F_SAMPLE = 2.1 * 256.0


@dataclass(frozen=True)
class ExperimentScale:
    """Size preset of an experiment run."""

    name: str
    n_eval_records: int
    n_train_records: int
    frames_per_record: int
    noise_values_uv: tuple[float, ...]
    n_bits_values: tuple[int, ...]
    cs_m_values: tuple[int, ...]
    fista_iters: int
    seed: int = 2022

    @property
    def samples_per_record(self) -> int:
        """Record length in samples (whole CS frames)."""
        return self.frames_per_record * CS_N_PHI


SCALES: dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        n_eval_records=24,
        n_train_records=40,
        frames_per_record=8,
        noise_values_uv=(2.0, 8.0, 20.0),
        n_bits_values=(6, 8),
        cs_m_values=(75, 150),
        fista_iters=120,
    ),
    "small": ExperimentScale(
        name="small",
        n_eval_records=120,
        n_train_records=150,
        frames_per_record=16,
        noise_values_uv=(1.0, 2.0, 4.0, 8.0, 14.0, 20.0),
        n_bits_values=(6, 8),
        cs_m_values=(75, 150, 192),
        fista_iters=250,
    ),
    "paper": ExperimentScale(
        name="paper",
        n_eval_records=500,
        n_train_records=300,
        frames_per_record=33,
        noise_values_uv=(1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 16.0, 20.0),
        n_bits_values=(6, 7, 8),
        cs_m_values=(75, 150, 192),
        fista_iters=400,
    ),
}


def active_scale() -> ExperimentScale:
    """The scale selected by ``REPRO_SCALE`` (default ``smoke``)."""
    name = os.environ.get("REPRO_SCALE", "smoke")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(f"REPRO_SCALE={name!r}; known scales: {sorted(SCALES)}") from None


def default_workers() -> int | None:
    """Worker count selected by ``REPRO_WORKERS`` (``None`` = serial)."""
    value = os.environ.get("REPRO_WORKERS")
    if value is None:
        return None
    try:
        workers = int(value)
    except ValueError:
        raise ValueError(f"REPRO_WORKERS={value!r} is not an integer") from None
    if workers < 1:
        raise ValueError(f"REPRO_WORKERS={workers} must be >= 1")
    return workers


def _shrink(records: np.ndarray, keep: float, psi: np.ndarray) -> np.ndarray:
    """Per-frame hard thresholding in basis ``psi``, keeping a fraction."""
    frames = records.reshape(records.shape[0], -1, CS_N_PHI)
    coefficients = frames @ psi
    k = max(1, int(keep * CS_N_PHI))
    thresholds = np.sort(np.abs(coefficients), axis=2)[:, :, -k][..., None]
    kept = np.where(np.abs(coefficients) >= thresholds, coefficients, 0.0)
    return (kept @ psi.T).reshape(records.shape)


def augment_training_set(
    records: np.ndarray,
    labels: np.ndarray,
    seed: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Shrinkage augmentation of the detector training set.

    Adds, per clean record, sparse-shrinkage copies (per-frame hard
    thresholding in the DCT and db4 wavelet domains) that mimic the
    artefacts of l1 reconstruction.  This reflects the realistic CS
    deployment protocol: the receiver-side classifier always sees
    *reconstructed* signals, so training it on reconstruction-like data is
    standard practice.  No analog-noise augmentation is applied -- the
    deployed noise floor is a design unknown at training time, which is
    exactly why the paper's accuracy goal is sensitive to it.
    """
    del seed  # shrinkage is deterministic; kept for signature stability
    psi_dct = dct_basis(CS_N_PHI)
    psi_db4 = wavelet_basis(CS_N_PHI, "db4")
    variants = [
        records,
        _shrink(records, 0.08, psi_dct),
        _shrink(records, 0.06, psi_db4),
        _shrink(records, 0.12, psi_db4),
    ]
    augmented = np.vstack(variants)
    return augmented, np.tile(labels, len(variants))


@lru_cache(maxsize=8)
def _dct_basis_cached(n_phi: int) -> np.ndarray:
    return dct_basis(n_phi)


@dataclass(frozen=True)
class FistaReconstructorFactory:
    """Picklable reconstructor factory of the experiment harness.

    A module-level frozen dataclass (not a closure) so the evaluator can
    cross process boundaries in parallel sweeps; exposes a content
    ``fingerprint`` for the on-disk evaluation cache.
    """

    n_iter: int
    n_phi: int = CS_N_PHI
    lam_rel: float = 0.002

    def __call__(self, point: DesignPoint) -> Reconstructor:
        return Reconstructor(
            basis=_dct_basis_cached(self.n_phi),
            method="fista",
            lam_rel=self.lam_rel,
            n_iter=self.n_iter,
        )

    def fingerprint(self) -> str:
        return f"fista:dct{self.n_phi}:lam{self.lam_rel}:iters{self.n_iter}"


@dataclass
class ExperimentHarness:
    """Everything a figure experiment needs, built once per scale."""

    scale: ExperimentScale
    records: np.ndarray
    labels: np.ndarray
    detector: SpectralCombDetector
    evaluator: FrontEndEvaluator

    @property
    def sample_rate(self) -> float:
        """Record rate, Hz."""
        return F_SAMPLE


def _truncated_records(n_records: int, seed: int, samples: int) -> tuple[np.ndarray, np.ndarray]:
    dataset = resample_dataset(make_bonn_like_dataset(n_records=n_records, seed=seed), F_SAMPLE)
    return dataset.stacked(samples), dataset.labels()


@lru_cache(maxsize=4)
def _harness_cached(scale_name: str) -> ExperimentHarness:
    scale = SCALES[scale_name]
    samples = scale.samples_per_record
    eval_records, eval_labels = _truncated_records(
        scale.n_eval_records, derive_seed(scale.seed, "eval"), samples
    )
    train_records, train_labels = _truncated_records(
        scale.n_train_records, derive_seed(scale.seed, "train"), samples
    )
    # The accuracy oracle: the deterministic spectral-comb detector,
    # calibrated once on the clean training corpus (see
    # repro.detection.spectral for why this oracle -- rather than a small
    # learned network -- drives the sweeps).
    detector = SpectralCombDetector(sample_rate=F_SAMPLE)
    detector.fit(train_records, train_labels)

    reconstructor_factory = FistaReconstructorFactory(n_iter=scale.fista_iters)

    evaluator = FrontEndEvaluator(
        records=eval_records,
        labels=eval_labels,
        sample_rate=F_SAMPLE,
        detector=detector,
        seed=derive_seed(scale.seed, "evaluator"),
        reconstructor_factory=reconstructor_factory,
    )
    return ExperimentHarness(
        scale=scale,
        records=eval_records,
        labels=eval_labels,
        detector=detector,
        evaluator=evaluator,
    )


def make_harness(scale: str | ExperimentScale | None = None) -> ExperimentHarness:
    """Build (or fetch the cached) harness for ``scale``."""
    if scale is None:
        scale = active_scale()
    name = scale if isinstance(scale, str) else scale.name
    if name not in SCALES:
        raise ValueError(f"unknown scale {name!r}; known: {sorted(SCALES)}")
    return _harness_cached(name)


def search_space_for(scale: str | ExperimentScale):
    """The Table III search space at ``scale`` (both architectures)."""
    if isinstance(scale, str):
        scale = SCALES[scale]
    return paper_search_space(
        noise_values_uv=scale.noise_values_uv,
        n_bits_values=scale.n_bits_values,
        cs_m_values=scale.cs_m_values,
    )


def _run_sweep(
    scale_name: str,
    executor: str,
    n_workers: int | None,
    checkpoint: str | None,
    cache_dir: str | None,
    progress: Callable[[int, Evaluation], None] | None = None,
    telemetry: Telemetry | None = None,
    timeout_s: float | None = None,
    retries: int = 0,
    fleet=None,
) -> ExplorationResult:
    harness = make_harness(scale_name)
    explorer = DesignSpaceExplorer(harness.evaluator)
    return explorer.explore(
        search_space_for(harness.scale),
        name=f"fig7-{scale_name}",
        executor=executor,
        n_workers=n_workers,
        checkpoint=checkpoint,
        cache=cache_dir,
        progress=progress,
        telemetry=telemetry,
        timeout_s=timeout_s,
        retries=retries,
        fleet=fleet,
    )


@lru_cache(maxsize=8)
def _sweep_cached(
    scale_name: str,
    executor: str,
    n_workers: int | None,
    checkpoint: str | None,
    cache_dir: str | None,
    timeout_s: float | None = None,
    retries: int = 0,
) -> ExplorationResult:
    return _run_sweep(
        scale_name,
        executor,
        n_workers,
        checkpoint,
        cache_dir,
        timeout_s=timeout_s,
        retries=retries,
    )


def run_search_space(
    scale: str | ExperimentScale | None = None,
    *,
    executor: str | None = None,
    n_workers: int | None = None,
    checkpoint: str | None = None,
    cache_dir: str | None = None,
    progress: Callable[[int, Evaluation], None] | None = None,
    telemetry: Telemetry | None = None,
    timeout_s: float | None = None,
    retries: int = 0,
    fleet=None,
) -> ExplorationResult:
    """The Fig. 7 search-space sweep (cached per scale; Figs. 8-10 reuse it).

    ``n_workers`` defaults to ``REPRO_WORKERS`` (serial when unset);
    ``executor`` defaults to ``"process"`` whenever more than one worker
    is requested.  Parallel runs are bit-identical to serial ones, so the
    in-process per-scale cache stays valid across backends.  ``checkpoint``
    (JSONL resume) and ``cache_dir`` (on-disk evaluation cache) are passed
    through to :meth:`DesignSpaceExplorer.explore`, as are ``progress``
    (live per-point callback) and ``telemetry`` (sweep statistics sink) --
    runs observed through either bypass the in-process memo so the
    observers actually fire.  ``timeout_s``/``retries`` harden the run
    (per-point wall-clock ceiling, bounded retry of transient failures).
    ``fleet`` (:class:`repro.fleet.FleetOptions`, or executor="fleet")
    distributes the sweep over lease-based worker processes; fleet runs
    always bypass the memo -- their per-run report (and any chaos plans)
    is per-run state.
    """
    if scale is None:
        scale = active_scale()
    name = scale if isinstance(scale, str) else scale.name
    if n_workers is None:
        n_workers = default_workers()
    if executor is None:
        executor = "fleet" if fleet is not None else (
            "process" if (n_workers or 1) > 1 else "serial"
        )
    if progress is not None or telemetry is not None or executor == "fleet":
        return _run_sweep(
            name,
            executor,
            n_workers,
            checkpoint,
            cache_dir,
            progress,
            telemetry,
            timeout_s=timeout_s,
            retries=retries,
            fleet=fleet,
        )
    return _sweep_cached(
        name, executor, n_workers, checkpoint, cache_dir, timeout_s, retries
    )


#: Survivor-selection objectives of adaptive experiment runs: the Fig. 7
#: trade-off axes.  Accuracy is deliberately included alongside SNR so the
#: fig7b front survives promotion too.
ADAPTIVE_OBJECTIVES = (
    Objective("power_uw", maximize=False),
    Objective("snr_db", maximize=True),
    Objective("accuracy", maximize=True),
)


def _architecture_of(evaluation: Evaluation) -> bool:
    """Survivor-selection grouping key: baseline vs CS (Fig. 7's curves)."""
    return evaluation.point.use_cs


def run_adaptive_search_space(
    scale: str | ExperimentScale | None = None,
    *,
    rungs: int = 3,
    keep_frac: float = 1 / 3,
    executor: str | None = None,
    n_workers: int | None = None,
    checkpoint: str | None = None,
    cache_dir: str | None = None,
    progress: Callable[[int, Evaluation], None] | None = None,
    telemetry: Telemetry | None = None,
    timeout_s: float | None = None,
    retries: int = 0,
) -> AdaptiveExplorationResult:
    """The Fig. 7 search space explored adaptively (successive halving).

    Same harness and Table III grid as :func:`run_search_space`, but only
    rung survivors reach the full-fidelity evaluator -- see
    :mod:`repro.core.adaptive`.  Survivor selection uses the Fig. 7
    trade-off axes (:data:`ADAPTIVE_OBJECTIVES`) and is grouped by
    architecture so both the baseline and the CS fronts survive promotion.
    Not memoised: the promotion ledger is per-run state callers typically
    want fresh (the per-scale exhaustive cache in :func:`run_search_space`
    exists because Figs. 8-10 share one sweep).
    """
    if scale is None:
        scale = active_scale()
    name = scale if isinstance(scale, str) else scale.name
    if n_workers is None:
        n_workers = default_workers()
    if executor is None:
        executor = "batched"
    harness = make_harness(name)
    explorer = DesignSpaceExplorer(harness.evaluator)
    return explorer.explore_adaptive(
        search_space_for(harness.scale),
        name=f"fig7-adaptive-{name}",
        objectives=ADAPTIVE_OBJECTIVES,
        rungs=rungs,
        keep_frac=keep_frac,
        group_by=_architecture_of,
        executor=executor,
        n_workers=n_workers,
        checkpoint=checkpoint,
        cache=cache_dir,
        progress=progress,
        telemetry=telemetry,
        timeout_s=timeout_s,
        retries=retries,
    )


def profile_representative_point(
    sweep: ExplorationResult,
    telemetry: Telemetry,
    scale: str | ExperimentScale | None = None,
) -> Evaluation | None:
    """Re-simulate one successful point with ``telemetry`` activated.

    Parallel sweeps run their simulations in worker processes, where the
    driver's telemetry is not ambient -- so no per-block time spans reach
    the manifest.  This profiles a single representative point (the
    minimum-power success) in-process to recover the per-block time
    breakdown; returns the profiling evaluation, or ``None`` when the
    sweep has no successful point.
    """
    best = sweep.best()
    representative = best if best is not None else next(
        (e for e in sweep if e.ok), None
    )
    if representative is None:
        return None
    harness = make_harness(scale)
    with activate(telemetry), telemetry.span("profile.representative"):
        return harness.evaluator.evaluate(representative.point)


def build_run_manifest(
    sweep: ExplorationResult,
    telemetry: Telemetry,
    scale: str | ExperimentScale | None = None,
    *,
    executor: str | None = None,
    n_workers: int | None = None,
    command: str = "sweep",
    max_eta_events: int = 200,
    adaptive: dict | None = None,
) -> RunManifest:
    """Assemble the :class:`RunManifest` of one profiled sweep.

    Combines the sweep result (per-block *power* breakdown of the optimum,
    failure counts) with the telemetry state (per-phase and per-block
    *time* breakdowns, cache/checkpoint counters, per-point latency, ETA
    history).  When the telemetry holds no ``block.*`` spans -- the
    parallel-executor case -- one representative point is re-simulated
    in-process to fill the time breakdown.  ``adaptive`` is the promotion
    ledger dict (:meth:`~repro.core.adaptive.PromotionLedger.to_dict`) of
    an adaptive run; exhaustive sweeps leave it empty.
    """
    if scale is None:
        scale = active_scale()
    if isinstance(scale, str):
        scale = SCALES[scale]

    if not telemetry.timers("block."):
        profile_representative_point(sweep, telemetry, scale.name)

    snapshot = telemetry.snapshot()
    counters = snapshot["counters"]
    eta_history = [
        event for event in snapshot["events"] if event["kind"] == "explore.progress"
    ]
    if len(eta_history) > max_eta_events:
        # Thin evenly but always keep the final event (the run's end state).
        stride = -(-len(eta_history) // max_eta_events)
        eta_history = eta_history[::stride] + [eta_history[-1]]
    batch_fallbacks = [
        {"index": event.get("index"), "reason": event.get("reason")}
        for event in snapshot["events"]
        if event["kind"] == "batch.fallback"
    ]
    # A fleet run reports its lease/requeue/quarantine accounting as one
    # ``fleet.report`` event when the coordinator finishes; the last one
    # wins (resumed runs emit one per attempt).
    fleet_section: dict = {}
    for event in snapshot["events"]:
        if event["kind"] == "fleet.report":
            fleet_section = {
                key: value
                for key, value in event.items()
                if key not in ("kind", "t_unix")
            }

    best = sweep.best()
    representative = best if best is not None else next(
        (e for e in sweep if e.ok), None
    )

    point_stats = snapshot["values"].get("explore.point_seconds", {})
    return RunManifest(
        command=command,
        created_unix=time.time(),
        seed=scale.seed,
        scale=scale.name,
        grid_size=search_space_for(scale).size,
        executor=executor,
        n_workers=n_workers,
        phases=telemetry.timers(),
        block_time_s=telemetry.timers("block."),
        block_power_w=dict(representative.breakdown) if representative else {},
        sweep={
            "name": sweep.name,
            "evaluated": len(sweep),
            "failures": len(sweep.failures()),
            "cache_hits": counters.get("explore.cache_hits", 0),
            "cache_misses": counters.get("explore.cache_misses", 0),
            "checkpoint_restored": counters.get("explore.checkpoint_restored", 0),
            "progress_errors": counters.get("explore.progress_errors", 0),
            "cache_corrupt": counters.get("cache.corrupt", 0),
            "timeouts": counters.get("explore.timeouts", 0),
            "retries": counters.get("explore.retries", 0),
            "pool_restarts": counters.get("explore.pool_restarts", 0),
            "worker_crashes": counters.get("explore.worker_crashes", 0),
            "interrupted": counters.get("explore.interrupted", 0),
            "point_seconds": point_stats,
            "events_dropped": counters.get("telemetry.events_dropped", 0),
            "max_events": telemetry.max_events,
            "batch_fallback_points": counters.get("explore.batch_fallback_points", 0),
            "batch_fallbacks": batch_fallbacks,
            "representative_point": (
                representative.point.describe() if representative else None
            ),
        },
        trace=telemetry.tracer.summary() if telemetry.tracer is not None else {},
        resources=resources_section(snapshot),
        adaptive=dict(adaptive) if adaptive else {},
        fleet=fleet_section,
        workers=snapshot["workers"],
        histograms=snapshot["histograms"],
        kernels=kernel_registry.manifest_section(),
        eta_history=eta_history,
        environment=RunManifest.describe_environment(),
    )
