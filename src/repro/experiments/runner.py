"""Shared experiment harness: dataset, detector, evaluator, scales.

Every figure experiment runs on the same stack:

1. a synthetic Bonn-like corpus resampled to the front-end rate
   ``f_sample = 2.1 * 256 Hz`` and truncated to a whole number of CS
   frames;
2. the deterministic spectral-comb seizure detector calibrated once on an
   *independent* clean corpus (the accuracy oracle standing in for the CNN
   of ref. [20] -- see :mod:`repro.detection.spectral` for the rationale);
3. a :class:`~repro.core.explorer.FrontEndEvaluator` scoring design points.

Because full paper scale (500 records x 23.6 s x ~100 grid points) takes
hours in pure Python, the harness exposes named :class:`ExperimentScale`
presets.  ``smoke`` checks code paths in seconds; ``small`` (the default
for benchmark reporting) resolves accuracy to <1 % in minutes; ``paper``
is the faithful full-size run.  Select one globally with the
``REPRO_SCALE`` environment variable.

Harnesses and full Fig. 7 sweeps are cached per scale so the Fig. 7/8/9/10
benchmarks share a single exploration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.explorer import DesignSpaceExplorer, FrontEndEvaluator
from repro.core.results import ExplorationResult
from repro.cs.dictionaries import dct_basis, wavelet_basis
from repro.cs.reconstruction import Reconstructor
from repro.detection.spectral import SpectralCombDetector
from repro.eeg.preprocessing import resample_dataset
from repro.eeg.synthetic import make_bonn_like_dataset
from repro.experiments.table3 import CS_N_PHI, paper_search_space
from repro.power.technology import DesignPoint
from repro.util.rng import derive_seed

#: Front-end sampling rate of all experiments (Table III: 2.1 * 256 Hz).
F_SAMPLE = 2.1 * 256.0


@dataclass(frozen=True)
class ExperimentScale:
    """Size preset of an experiment run."""

    name: str
    n_eval_records: int
    n_train_records: int
    frames_per_record: int
    noise_values_uv: tuple[float, ...]
    n_bits_values: tuple[int, ...]
    cs_m_values: tuple[int, ...]
    fista_iters: int
    seed: int = 2022

    @property
    def samples_per_record(self) -> int:
        """Record length in samples (whole CS frames)."""
        return self.frames_per_record * CS_N_PHI


SCALES: dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        n_eval_records=24,
        n_train_records=40,
        frames_per_record=8,
        noise_values_uv=(2.0, 8.0, 20.0),
        n_bits_values=(6, 8),
        cs_m_values=(75, 150),
        fista_iters=120,
    ),
    "small": ExperimentScale(
        name="small",
        n_eval_records=120,
        n_train_records=150,
        frames_per_record=16,
        noise_values_uv=(1.0, 2.0, 4.0, 8.0, 14.0, 20.0),
        n_bits_values=(6, 8),
        cs_m_values=(75, 150, 192),
        fista_iters=250,
    ),
    "paper": ExperimentScale(
        name="paper",
        n_eval_records=500,
        n_train_records=300,
        frames_per_record=33,
        noise_values_uv=(1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 16.0, 20.0),
        n_bits_values=(6, 7, 8),
        cs_m_values=(75, 150, 192),
        fista_iters=400,
    ),
}


def active_scale() -> ExperimentScale:
    """The scale selected by ``REPRO_SCALE`` (default ``smoke``)."""
    name = os.environ.get("REPRO_SCALE", "smoke")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(f"REPRO_SCALE={name!r}; known scales: {sorted(SCALES)}") from None


def default_workers() -> int | None:
    """Worker count selected by ``REPRO_WORKERS`` (``None`` = serial)."""
    value = os.environ.get("REPRO_WORKERS")
    if value is None:
        return None
    try:
        workers = int(value)
    except ValueError:
        raise ValueError(f"REPRO_WORKERS={value!r} is not an integer") from None
    if workers < 1:
        raise ValueError(f"REPRO_WORKERS={workers} must be >= 1")
    return workers


def _shrink(records: np.ndarray, keep: float, psi: np.ndarray) -> np.ndarray:
    """Per-frame hard thresholding in basis ``psi``, keeping a fraction."""
    frames = records.reshape(records.shape[0], -1, CS_N_PHI)
    coefficients = frames @ psi
    k = max(1, int(keep * CS_N_PHI))
    thresholds = np.sort(np.abs(coefficients), axis=2)[:, :, -k][..., None]
    kept = np.where(np.abs(coefficients) >= thresholds, coefficients, 0.0)
    return (kept @ psi.T).reshape(records.shape)


def augment_training_set(
    records: np.ndarray,
    labels: np.ndarray,
    seed: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Shrinkage augmentation of the detector training set.

    Adds, per clean record, sparse-shrinkage copies (per-frame hard
    thresholding in the DCT and db4 wavelet domains) that mimic the
    artefacts of l1 reconstruction.  This reflects the realistic CS
    deployment protocol: the receiver-side classifier always sees
    *reconstructed* signals, so training it on reconstruction-like data is
    standard practice.  No analog-noise augmentation is applied -- the
    deployed noise floor is a design unknown at training time, which is
    exactly why the paper's accuracy goal is sensitive to it.
    """
    del seed  # shrinkage is deterministic; kept for signature stability
    psi_dct = dct_basis(CS_N_PHI)
    psi_db4 = wavelet_basis(CS_N_PHI, "db4")
    variants = [
        records,
        _shrink(records, 0.08, psi_dct),
        _shrink(records, 0.06, psi_db4),
        _shrink(records, 0.12, psi_db4),
    ]
    augmented = np.vstack(variants)
    return augmented, np.tile(labels, len(variants))


@lru_cache(maxsize=8)
def _dct_basis_cached(n_phi: int) -> np.ndarray:
    return dct_basis(n_phi)


@dataclass(frozen=True)
class FistaReconstructorFactory:
    """Picklable reconstructor factory of the experiment harness.

    A module-level frozen dataclass (not a closure) so the evaluator can
    cross process boundaries in parallel sweeps; exposes a content
    ``fingerprint`` for the on-disk evaluation cache.
    """

    n_iter: int
    n_phi: int = CS_N_PHI
    lam_rel: float = 0.002

    def __call__(self, point: DesignPoint) -> Reconstructor:
        return Reconstructor(
            basis=_dct_basis_cached(self.n_phi),
            method="fista",
            lam_rel=self.lam_rel,
            n_iter=self.n_iter,
        )

    def fingerprint(self) -> str:
        return f"fista:dct{self.n_phi}:lam{self.lam_rel}:iters{self.n_iter}"


@dataclass
class ExperimentHarness:
    """Everything a figure experiment needs, built once per scale."""

    scale: ExperimentScale
    records: np.ndarray
    labels: np.ndarray
    detector: SpectralCombDetector
    evaluator: FrontEndEvaluator

    @property
    def sample_rate(self) -> float:
        """Record rate, Hz."""
        return F_SAMPLE


def _truncated_records(n_records: int, seed: int, samples: int) -> tuple[np.ndarray, np.ndarray]:
    dataset = resample_dataset(make_bonn_like_dataset(n_records=n_records, seed=seed), F_SAMPLE)
    return dataset.stacked(samples), dataset.labels()


@lru_cache(maxsize=4)
def _harness_cached(scale_name: str) -> ExperimentHarness:
    scale = SCALES[scale_name]
    samples = scale.samples_per_record
    eval_records, eval_labels = _truncated_records(
        scale.n_eval_records, derive_seed(scale.seed, "eval"), samples
    )
    train_records, train_labels = _truncated_records(
        scale.n_train_records, derive_seed(scale.seed, "train"), samples
    )
    # The accuracy oracle: the deterministic spectral-comb detector,
    # calibrated once on the clean training corpus (see
    # repro.detection.spectral for why this oracle -- rather than a small
    # learned network -- drives the sweeps).
    detector = SpectralCombDetector(sample_rate=F_SAMPLE)
    detector.fit(train_records, train_labels)

    reconstructor_factory = FistaReconstructorFactory(n_iter=scale.fista_iters)

    evaluator = FrontEndEvaluator(
        records=eval_records,
        labels=eval_labels,
        sample_rate=F_SAMPLE,
        detector=detector,
        seed=derive_seed(scale.seed, "evaluator"),
        reconstructor_factory=reconstructor_factory,
    )
    return ExperimentHarness(
        scale=scale,
        records=eval_records,
        labels=eval_labels,
        detector=detector,
        evaluator=evaluator,
    )


def make_harness(scale: str | ExperimentScale | None = None) -> ExperimentHarness:
    """Build (or fetch the cached) harness for ``scale``."""
    if scale is None:
        scale = active_scale()
    name = scale if isinstance(scale, str) else scale.name
    if name not in SCALES:
        raise ValueError(f"unknown scale {name!r}; known: {sorted(SCALES)}")
    return _harness_cached(name)


@lru_cache(maxsize=8)
def _sweep_cached(
    scale_name: str,
    executor: str,
    n_workers: int | None,
    checkpoint: str | None,
    cache_dir: str | None,
) -> ExplorationResult:
    harness = make_harness(scale_name)
    scale = harness.scale
    space = paper_search_space(
        noise_values_uv=scale.noise_values_uv,
        n_bits_values=scale.n_bits_values,
        cs_m_values=scale.cs_m_values,
    )
    explorer = DesignSpaceExplorer(harness.evaluator)
    return explorer.explore(
        space,
        name=f"fig7-{scale_name}",
        executor=executor,
        n_workers=n_workers,
        checkpoint=checkpoint,
        cache=cache_dir,
    )


def run_search_space(
    scale: str | ExperimentScale | None = None,
    *,
    executor: str | None = None,
    n_workers: int | None = None,
    checkpoint: str | None = None,
    cache_dir: str | None = None,
) -> ExplorationResult:
    """The Fig. 7 search-space sweep (cached per scale; Figs. 8-10 reuse it).

    ``n_workers`` defaults to ``REPRO_WORKERS`` (serial when unset);
    ``executor`` defaults to ``"process"`` whenever more than one worker
    is requested.  Parallel runs are bit-identical to serial ones, so the
    in-process per-scale cache stays valid across backends.  ``checkpoint``
    (JSONL resume) and ``cache_dir`` (on-disk evaluation cache) are passed
    through to :meth:`DesignSpaceExplorer.explore`.
    """
    if scale is None:
        scale = active_scale()
    name = scale if isinstance(scale, str) else scale.name
    if n_workers is None:
        n_workers = default_workers()
    if executor is None:
        executor = "process" if (n_workers or 1) > 1 else "serial"
    return _sweep_cached(name, executor, n_workers, checkpoint, cache_dir)
