"""Compressive-sensing mathematics: matrices, charge-sharing, reconstruction.

This package implements the CS substrate the paper's architecture depends
on: s-SRBM sensing matrices (Zhao et al. [9]), the passive charge-sharing
encoder algebra of Section III / Eq. (1) with its analog non-idealities,
sparsifying dictionaries (DCT, orthogonal wavelets), and from-scratch
OMP/ISTA/FISTA reconstruction.
"""

from repro.cs.charge_sharing import (
    ChargeSharingConfig,
    ChargeSharingEncoder,
    EncoderPerturbation,
    effective_matrix,
    encoder_from_design,
)
from repro.cs.diagnostics import (
    mutual_coherence,
    recovery_rate,
    rip_spread,
    weight_dynamic_range,
)
from repro.cs.dictionaries import (
    WAVELET_FILTERS,
    dct_basis,
    identity_basis,
    make_basis,
    wavelet_basis,
)
from repro.cs.matrices import (
    SensingMatrix,
    bernoulli,
    gaussian,
    make_sensing_matrix,
    srbm,
    srbm_balanced,
)
from repro.cs.reconstruction import (
    Reconstructor,
    fista,
    iht,
    ista,
    least_squares_on_support,
    omp,
)

__all__ = [
    "ChargeSharingConfig",
    "ChargeSharingEncoder",
    "EncoderPerturbation",
    "Reconstructor",
    "SensingMatrix",
    "WAVELET_FILTERS",
    "bernoulli",
    "dct_basis",
    "effective_matrix",
    "encoder_from_design",
    "fista",
    "gaussian",
    "identity_basis",
    "iht",
    "ista",
    "least_squares_on_support",
    "make_basis",
    "make_sensing_matrix",
    "mutual_coherence",
    "omp",
    "recovery_rate",
    "rip_spread",
    "srbm",
    "srbm_balanced",
    "wavelet_basis",
    "weight_dynamic_range",
]
