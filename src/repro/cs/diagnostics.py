"""Diagnostics for sensing-matrix / dictionary quality.

Small numerical tools used when choosing CS parameters: mutual coherence,
empirical restricted-isometry spread, and a Monte-Carlo recovery-rate probe.
These back the design guidance of Section III (how sparse can s-SRBM be,
how much compression M/N_phi tolerates) and are exercised by the property
tests.
"""

from __future__ import annotations

import numpy as np

from repro.cs.reconstruction import omp
from repro.util.rng import make_rng
from repro.util.validation import check_positive_int


def mutual_coherence(a: np.ndarray) -> float:
    """Maximum normalised off-diagonal Gram entry of ``a``'s columns."""
    norms = np.linalg.norm(a, axis=0)
    norms = np.where(norms == 0, 1.0, norms)
    gram = (a / norms).T @ (a / norms)
    np.fill_diagonal(gram, 0.0)
    return float(np.max(np.abs(gram)))


def rip_spread(
    a: np.ndarray,
    sparsity: int,
    n_trials: int = 200,
    seed: int | None = None,
) -> tuple[float, float]:
    """Empirical restricted-isometry spread of ``a`` for K-sparse vectors.

    Samples ``n_trials`` random K-sparse unit vectors ``x`` and returns
    ``(min, max)`` of ``||A x||^2`` -- an empirical view of the RIP
    constants ``(1 - delta, 1 + delta)``.  Exact RIP verification is
    NP-hard; this sampled spread is the standard practical proxy.
    """
    sparsity = check_positive_int("sparsity", sparsity)
    n_trials = check_positive_int("n_trials", n_trials)
    rng = make_rng(seed)
    n = a.shape[1]
    if sparsity > n:
        raise ValueError(f"sparsity ({sparsity}) exceeds dictionary size ({n})")
    energies = np.empty(n_trials)
    for t in range(n_trials):
        support = rng.choice(n, size=sparsity, replace=False)
        x = np.zeros(n)
        x[support] = rng.normal(size=sparsity)
        x /= np.linalg.norm(x)
        energies[t] = np.linalg.norm(a @ x) ** 2
    return float(energies.min()), float(energies.max())


def recovery_rate(
    a: np.ndarray,
    sparsity: int,
    n_trials: int = 50,
    snr_db: float = np.inf,
    success_nmse: float = 1e-2,
    seed: int | None = None,
) -> float:
    """Monte-Carlo exact-recovery probability of OMP on matrix ``a``.

    Draws random K-sparse coefficient vectors, measures them (optionally
    with additive white noise at ``snr_db``), reconstructs with OMP at the
    true sparsity, and reports the fraction of trials whose normalised MSE
    is below ``success_nmse``.
    """
    sparsity = check_positive_int("sparsity", sparsity)
    n_trials = check_positive_int("n_trials", n_trials)
    rng = make_rng(seed)
    n = a.shape[1]
    successes = 0
    for t in range(n_trials):
        support = rng.choice(n, size=sparsity, replace=False)
        x = np.zeros(n)
        x[support] = rng.normal(size=sparsity)
        y = a @ x
        if np.isfinite(snr_db):
            signal_power = np.mean(y**2)
            noise_rms = np.sqrt(signal_power / 10 ** (snr_db / 10))
            y = y + rng.normal(0.0, noise_rms, size=y.shape)
        x_hat = omp(a, y, sparsity=sparsity)
        denom = np.sum(x**2)
        nmse = np.sum((x - x_hat) ** 2) / denom if denom > 0 else 0.0
        if nmse < success_nmse:
            successes += 1
    return successes / n_trials


def weight_dynamic_range(phi_eff: np.ndarray) -> float:
    """Ratio of the largest to the smallest nonzero |weight| of ``phi_eff``.

    For the charge-sharing encoder this quantifies how uneven the
    accumulation weights are: a large value means early samples are nearly
    invisible in the measurement, degrading the conditioning of the
    effective dictionary.  Controlled by the C_hold/C_sample ratio.
    """
    magnitudes = np.abs(phi_eff[phi_eff != 0])
    if magnitudes.size == 0:
        raise ValueError("phi_eff has no nonzero entries")
    return float(magnitudes.max() / magnitudes.min())
