"""Sparse-signal reconstruction solvers.

Recovers ``x`` from compressed measurements ``y = A x + noise`` where
``A = Phi_eff @ Psi`` is the effective sensing matrix composed with a
sparsifying basis.  Three solvers are implemented from scratch:

* :func:`omp` -- Orthogonal Matching Pursuit, a greedy support-growing
  solver; the reference algorithm of most CS ASIC papers.
* :func:`ista` / :func:`fista` -- proximal-gradient solvers of the LASSO
  problem ``min 0.5 ||y - A z||^2 + lam ||z||_1``.  FISTA adds Nesterov
  momentum and is the workhorse: it is fully vectorised across *batches* of
  frames (one matrix-matrix product per iteration for thousands of frames),
  which is what makes sweeping 500-record datasets feasible in Python.
* :func:`least_squares_on_support` -- debiasing step shared by all solvers.

:class:`Reconstructor` packages a basis + solver + parameters into the
object the simulation chain and the explorer consume.

The numeric solver cores live in :mod:`repro.kernels.numpy_backend`
and are dispatched through the process-global backend registry
(:data:`repro.kernels.registry`): the functions here validate, time
and report telemetry, while ``registry.call("fista"|"ista"|"omp", ...)``
picks the implementation (numpy reference, or an optional
numba/JAX backend locked to the reference by the conformance suite).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.kernels import registry
from repro.util.validation import check_positive, check_positive_int

_GET_ACTIVE_TELEMETRY = None


def _telemetry():
    """The ambient telemetry sink (lazily imported).

    ``repro.core.__init__`` imports the explorer, which imports this
    module, so a top-level ``from repro.core.telemetry import ...`` would
    be circular when ``repro.cs`` is imported first.  The first solve
    resolves and caches the accessor instead; with telemetry disabled the
    ambient sink is the shared no-op instance.
    """
    global _GET_ACTIVE_TELEMETRY
    if _GET_ACTIVE_TELEMETRY is None:
        from repro.core.telemetry import get_active

        _GET_ACTIVE_TELEMETRY = get_active
    return _GET_ACTIVE_TELEMETRY()


def _note_solve(method: str, iterations: int, frames: int, elapsed_s: float) -> None:
    """Report one solver convergence (iterations + wall time) to telemetry."""
    telemetry = _telemetry()
    if not telemetry.enabled:
        return
    telemetry.count(f"cs.{method}.solves")
    telemetry.count(f"cs.{method}.frames", frames)
    telemetry.record(f"cs.{method}.iterations", iterations)
    telemetry.record(f"cs.{method}.solve_seconds", elapsed_s)
    # Histograms add the tail view the mean-based stats above cannot: a
    # p99 iteration count at the solver's cap flags near-divergence even
    # when the average looks healthy.
    from repro.core.metrics import DEFAULT_ITERATION_BUCKETS

    telemetry.observe(
        f"cs.{method}.iterations", iterations, bounds=DEFAULT_ITERATION_BUCKETS
    )
    telemetry.observe(f"cs.{method}.solve_seconds", elapsed_s)


def least_squares_on_support(
    a: np.ndarray, y: np.ndarray, support: np.ndarray
) -> np.ndarray:
    """Solve ``min ||y - A[:, support] z||`` and embed into full length.

    The standard debiasing step: after the support is identified (greedily
    or by thresholding a LASSO solution), re-fit the nonzero coefficients
    without the l1 shrinkage bias.
    """
    coeffs = np.zeros(a.shape[1])
    if support.size == 0:
        return coeffs
    sub = a[:, support]
    solution, *_ = np.linalg.lstsq(sub, y, rcond=None)
    coeffs[support] = solution
    return coeffs


def omp(
    a: np.ndarray,
    y: np.ndarray,
    sparsity: int,
    tol: float = 0.0,
) -> np.ndarray:
    """Orthogonal Matching Pursuit.

    Greedily selects the dictionary atom most correlated with the residual,
    re-fits on the grown support, and repeats ``sparsity`` times or until
    the residual norm drops below ``tol * ||y||``.

    Parameters
    ----------
    a:
        Measurement matrix (M x N), columns need not be normalised (they
        are normalised internally for atom selection).
    y:
        Measurement vector (M,).
    sparsity:
        Maximum number of atoms to select (K).
    tol:
        Optional relative residual early-exit threshold.

    Returns
    -------
    Coefficient vector (N,) with at most K nonzeros.
    """
    sparsity = check_positive_int("sparsity", sparsity)
    y = np.asarray(y, dtype=np.float64)
    m, _n = a.shape
    if y.shape != (m,):
        raise ValueError(f"y must have shape ({m},), got {y.shape}")
    start = time.perf_counter()
    coeffs, n_selected = registry.call("omp", a, y, sparsity, tol)
    if n_selected:
        _note_solve("omp", n_selected, 1, time.perf_counter() - start)
    return coeffs


def _soft_threshold(z: np.ndarray, threshold: float) -> np.ndarray:
    """Elementwise soft-thresholding, the proximal operator of lam*||.||_1."""
    return np.sign(z) * np.maximum(np.abs(z) - threshold, 0.0)


def _lipschitz(a: np.ndarray) -> float:
    """Largest eigenvalue of A^T A (squared spectral norm), the gradient
    Lipschitz constant of the LASSO smooth term."""
    return float(np.linalg.norm(a, ord=2) ** 2)


def ista(
    a: np.ndarray,
    y: np.ndarray,
    lam: float,
    n_iter: int = 200,
    tol: float = 1e-8,
) -> np.ndarray:
    """Iterative Shrinkage-Thresholding for the LASSO.

    Plain proximal gradient descent with step ``1/L``; converges at O(1/k).
    Provided mainly as the reference against which FISTA's acceleration is
    benchmarked; supports single vectors (M,) or batches (B, M) like
    :func:`fista`.
    """
    check_positive("lam", lam)
    n_iter = check_positive_int("n_iter", n_iter)
    y2 = np.atleast_2d(np.asarray(y, dtype=np.float64))
    start = time.perf_counter()
    z, iterations = registry.call("ista", a, y2, lam, n_iter, tol)
    if iterations:
        _note_solve("ista", iterations, y2.shape[0], time.perf_counter() - start)
    return z[0] if np.ndim(y) == 1 else z


def fista(
    a: np.ndarray,
    y: np.ndarray,
    lam: float,
    n_iter: int = 100,
    tol: float = 1e-9,
    debias: bool = False,
) -> np.ndarray:
    """FISTA (Beck & Teboulle) for the LASSO, batched across frames.

    Parameters
    ----------
    a:
        Measurement matrix (M x N).
    y:
        One measurement vector (M,) or a batch (B, M).  The batch form
        performs every iteration as one (B, M) x (M, N) product, which is
        how full-dataset evaluation stays fast.
    lam:
        l1 regularisation weight, in the units of ``y`` squared.
    n_iter:
        Maximum iterations (O(1/k^2) convergence).
    tol:
        Early exit when the max coefficient update falls below this.
    debias:
        Re-fit nonzero coefficients by least squares per frame after
        convergence (slower; per-frame loop).

    Returns
    -------
    Coefficients (N,) or (B, N) matching the input rank.
    """
    check_positive("lam", lam)
    n_iter = check_positive_int("n_iter", n_iter)
    single = np.ndim(y) == 1
    y2 = np.atleast_2d(np.asarray(y, dtype=np.float64))
    b, m = y2.shape
    if m != a.shape[0]:
        raise ValueError(f"y frames have length {m}, expected {a.shape[0]}")
    start = time.perf_counter()
    z, iterations = registry.call("fista", a, y2, lam, n_iter, tol)
    if iterations:
        _note_solve("fista", iterations, b, time.perf_counter() - start)
    if debias:
        for i in range(b):
            support = np.flatnonzero(z[i])
            if 0 < support.size <= m:
                z[i] = least_squares_on_support(a, y2[i], support)
    return z[0] if single else z


def iht(
    a: np.ndarray,
    y: np.ndarray,
    sparsity: int,
    n_iter: int = 200,
    tol: float = 1e-10,
) -> np.ndarray:
    """Iterative Hard Thresholding (Blumensath & Davies).

    Projected gradient descent onto the set of K-sparse vectors:
    ``z <- H_K(z + step * A^T (y - A z))`` with step ``1/L``.  Converges
    to a local optimum when A satisfies a RIP at level 3K; cheaper per
    iteration than OMP's growing least-squares and, unlike the LASSO
    solvers, returns an exactly K-sparse iterate.

    Supports batches like :func:`fista`: ``y`` of shape (M,) or (B, M).
    """
    sparsity = check_positive_int("sparsity", sparsity)
    n_iter = check_positive_int("n_iter", n_iter)
    single = np.ndim(y) == 1
    y2 = np.atleast_2d(np.asarray(y, dtype=np.float64))
    b, m = y2.shape
    if m != a.shape[0]:
        raise ValueError(f"y frames have length {m}, expected {a.shape[0]}")
    n = a.shape[1]
    if sparsity > n:
        raise ValueError(f"sparsity ({sparsity}) exceeds dictionary size ({n})")
    lipschitz = _lipschitz(a)
    if lipschitz == 0:
        out = np.zeros((b, n))
        return out[0] if single else out
    step = 1.0 / lipschitz
    z = np.zeros((b, n))
    start = time.perf_counter()
    iterations = 0
    for _ in range(n_iter):
        iterations += 1
        gradient = (z @ a.T - y2) @ a
        candidate = z - step * gradient
        # Keep the K largest-magnitude entries per row.
        thresholds = np.partition(np.abs(candidate), n - sparsity, axis=1)[
            :, n - sparsity
        ][:, None]
        z_next = np.where(np.abs(candidate) >= thresholds, candidate, 0.0)
        if np.max(np.abs(z_next - z)) <= tol:
            z = z_next
            break
        z = z_next
    _note_solve("iht", iterations, b, time.perf_counter() - start)
    return z[0] if single else z


@dataclass
class Reconstructor:
    """Basis + solver bundle used by the CS signal chain.

    Parameters
    ----------
    basis:
        N x N synthesis matrix ``Psi`` (columns are atoms); ``None`` means
        the canonical basis (recover ``x`` directly).
    method:
        ``"fista"`` (default), ``"ista"`` or ``"omp"``.
    lam_rel:
        For the LASSO solvers: ``lam = lam_rel * max|A^T y|`` per batch,
        the standard scale-free parameterisation.
    sparsity:
        For OMP: atoms to select.
    n_iter:
        Iteration budget for the LASSO solvers.
    debias:
        Apply least-squares debiasing on the recovered support.
    """

    basis: np.ndarray | None = None
    method: str = "fista"
    lam_rel: float = 0.02
    sparsity: int = 32
    n_iter: int = 120
    debias: bool = False
    _cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.method not in ("fista", "ista", "omp", "iht"):
            raise ValueError(f"unknown reconstruction method {self.method!r}")
        check_positive("lam_rel", self.lam_rel)
        check_positive_int("sparsity", self.sparsity)
        check_positive_int("n_iter", self.n_iter)

    def _effective_dictionary(self, phi_eff: np.ndarray) -> np.ndarray:
        """A = Phi_eff @ Psi, cached by Phi_eff content + active backend.

        Keyed by a content fingerprint (shape + byte hash), not ``id()``:
        object identity does not survive pickling, so an identity key
        silently misses in every pool worker of a parallel sweep (and can
        alias when ids are recycled).  The key also carries the kernel
        backend that will consume the dictionary: backends may hold
        backend-specific state for a cached dictionary (device arrays,
        JIT specialisations), so a mid-process backend swap must miss
        rather than reuse the other backend's entry.
        """
        phi_eff = np.ascontiguousarray(phi_eff)
        key = (
            phi_eff.shape,
            hashlib.sha1(phi_eff.tobytes()).hexdigest(),
            registry.active(self.method),
        )
        cached = self._cache.get(key)
        if cached is None:
            a = phi_eff if self.basis is None else phi_eff @ self.basis
            self._cache = {key: a}
            cached = a
        return cached

    def recover(self, phi_eff: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Recover signal frames from measurements.

        ``phi_eff`` is the effective (weighted) sensing matrix; ``y`` a
        single measurement (M,) or batch (B, M).  Returns reconstructed
        signal frames (N,) or (B, N).
        """
        telemetry = _telemetry()
        a = self._effective_dictionary(phi_eff)
        single = np.ndim(y) == 1
        y2 = np.atleast_2d(np.asarray(y, dtype=np.float64))
        with telemetry.span(f"cs.recover.{self.method}"):
            return self._solve(a, y2, single)

    def _solve(self, a: np.ndarray, y2: np.ndarray, single: bool) -> np.ndarray:
        if self.method == "omp":
            coeffs = np.stack([omp(a, row, sparsity=self.sparsity) for row in y2])
        elif self.method == "iht":
            coeffs = np.atleast_2d(iht(a, y2, sparsity=self.sparsity, n_iter=self.n_iter))
        else:
            lam_scale = np.max(np.abs(y2 @ a))
            lam = self.lam_rel * (lam_scale if lam_scale > 0 else 1.0)
            solver = fista if self.method == "fista" else ista
            if self.method == "fista":
                coeffs = fista(a, y2, lam, n_iter=self.n_iter, debias=self.debias)
            else:
                coeffs = solver(a, y2, lam, n_iter=self.n_iter)
            coeffs = np.atleast_2d(coeffs)
        frames = coeffs if self.basis is None else coeffs @ self.basis.T
        return frames[0] if single else frames
