"""Passive charge-sharing CS encoder model (paper Section III, Eq. 1).

The encoder of Fig. 5 performs the CS matrix multiplication ``y = Phi x``
*passively*: each input sample is stored on a sampling capacitor
``C_sample`` and then charge-shared onto one hold capacitor ``C_hold`` per
nonzero of its s-SRBM column.  Charge sharing between ``C1`` (sample) and
``C2`` (hold) leaves both at ``(C1 V1 + C2 V2) / (C1 + C2)``, so a hold
capacitor that accumulates samples ``V_{j1}, ..., V_{jK}`` (in time order)
ends at

    V_sum = sum_k  V_{jk} * a * b^(K-k),   a = C1/(C1+C2), b = C2/(C1+C2)

which is paper Eq. (1).  The implemented measurement is therefore not the
binary ``Phi x`` but ``Phi_eff x`` with exponentially-graded weights; the
decay per extra share is ``b``, set by the capacitor ratio.  The
reconstructor must use ``Phi_eff`` -- it is known at design time because
``Phi`` and the capacitor ratio are known.

Analog non-idealities modelled here:

* **kT/C noise** -- every share redistributes charge through a switch,
  sampling ``kT/(C1+C2)`` of noise power onto the hold node (plus the
  initial ``kT/C1`` sample noise on the sampling capacitor).
* **Capacitor mismatch** -- each physical capacitor carries a static
  relative error drawn from the Pelgrom sigma of its size; the *true*
  sharing ratios then differ from the nominal ones the reconstructor
  assumes (a systematic, not random-per-sample, error).
* **Leakage droop** -- hold capacitors lose ``I_leak / C_hold`` volts per
  second between their last accumulation and readout.

Everything is vectorised across frames: encoding B frames costs one Python
loop over the N_phi columns, with numpy doing the (B, s) updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cs.matrices import SensingMatrix
from repro.util.constants import KT_ROOM
from repro.util.rng import make_rng
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ChargeSharingConfig:
    """Electrical configuration of the charge-sharing encoder.

    Attributes
    ----------
    c_sample:
        Sampling capacitance ``C1`` in farads.
    c_hold:
        Hold capacitance ``C2`` in farads.
    kt:
        Thermal energy in joules (0 disables kT/C noise).
    mismatch_sigma_sample / mismatch_sigma_hold:
        Relative sigma of the static capacitor errors.  0 disables mismatch.
    i_leak:
        Leakage current per hold node in amperes (0 disables droop).
    f_sample:
        Input sample rate in Hz; needed only for the leakage-droop timing.
    """

    c_sample: float
    c_hold: float
    kt: float = KT_ROOM
    mismatch_sigma_sample: float = 0.0
    mismatch_sigma_hold: float = 0.0
    i_leak: float = 0.0
    f_sample: float = 537.6

    def __post_init__(self) -> None:
        check_positive("c_sample", self.c_sample)
        check_positive("c_hold", self.c_hold)
        check_non_negative("kt", self.kt)
        check_non_negative("mismatch_sigma_sample", self.mismatch_sigma_sample)
        check_non_negative("mismatch_sigma_hold", self.mismatch_sigma_hold)
        check_non_negative("i_leak", self.i_leak)
        check_positive("f_sample", self.f_sample)

    @property
    def share_gain(self) -> float:
        """Nominal per-sample gain ``a = C1 / (C1 + C2)``."""
        return self.c_sample / (self.c_sample + self.c_hold)

    @property
    def retention(self) -> float:
        """Nominal per-share retention ``b = C2 / (C1 + C2)``."""
        return self.c_hold / (self.c_sample + self.c_hold)

    @property
    def share_noise_rms(self) -> float:
        """RMS kT/C noise added to the hold node per share event, volts."""
        if self.kt == 0:
            return 0.0
        return float(np.sqrt(self.kt / (self.c_sample + self.c_hold)))

    @property
    def sample_noise_rms(self) -> float:
        """RMS kT/C noise of the initial sampling onto C_sample, volts."""
        if self.kt == 0:
            return 0.0
        return float(np.sqrt(self.kt / self.c_sample))


def effective_matrix(
    matrix: SensingMatrix,
    share_gain: float,
    retention: float,
) -> np.ndarray:
    """The weighted sensing matrix ``Phi_eff`` actually implemented.

    For every nonzero ``Phi[i, j]`` the effective weight is
    ``a * b^(later_i(j))`` where ``later_i(j)`` counts the nonzeros of row
    ``i`` at columns > j (samples shared after j attenuate earlier charge).
    Zeros stay zero.  Computed vectorised via a reversed cumulative count.
    """
    check_positive("share_gain", share_gain)
    check_positive("retention", retention)
    phi = matrix.phi
    nonzero = phi != 0
    # later_count[i, j] = number of nonzeros of row i strictly right of j.
    later_count = np.flip(np.cumsum(np.flip(nonzero, axis=1), axis=1), axis=1) - nonzero
    weights = share_gain * np.power(retention, later_count)
    return np.where(nonzero, weights * np.sign(phi), 0.0)


@dataclass
class EncoderPerturbation:
    """Static mismatch realisation of one fabricated encoder instance.

    ``sample_errors`` has one relative error per sampling capacitor
    (length s); ``hold_errors`` one per hold capacitor (length M).  Drawn
    once per chip, not per frame -- mismatch is a systematic error.
    """

    sample_errors: np.ndarray
    hold_errors: np.ndarray

    @classmethod
    def draw(
        cls,
        sparsity: int,
        m: int,
        sigma_sample: float,
        sigma_hold: float,
        rng: np.random.Generator,
    ) -> "EncoderPerturbation":
        """Draw a mismatch realisation for an encoder with s sample caps."""
        return cls(
            sample_errors=rng.normal(0.0, sigma_sample, size=sparsity)
            if sigma_sample > 0
            else np.zeros(sparsity),
            hold_errors=rng.normal(0.0, sigma_hold, size=m) if sigma_hold > 0 else np.zeros(m),
        )

    @classmethod
    def none(cls, sparsity: int, m: int) -> "EncoderPerturbation":
        """The ideal (mismatch-free) realisation."""
        return cls(sample_errors=np.zeros(sparsity), hold_errors=np.zeros(m))


@dataclass
class ChargeSharingEncoder:
    """Behavioural model of the passive charge-sharing CS encoder (Fig. 5).

    Parameters
    ----------
    matrix:
        The s-SRBM routing matrix ``Phi`` (M x N_phi).
    config:
        Electrical configuration (capacitor sizes, noise, mismatch, leak).
    seed:
        Seed for the mismatch realisation and the noise stream.

    Usage
    -----
    >>> from repro.cs.matrices import srbm_balanced
    >>> enc = ChargeSharingEncoder(srbm_balanced(8, 32, 2, seed=1),
    ...                            ChargeSharingConfig(1e-14, 8e-14, kt=0.0))
    >>> import numpy as np
    >>> y = enc.encode(np.ones(32))
    >>> y.shape
    (8,)

    ``phi_effective`` is the nominal weighted matrix the reconstructor
    should use; ``encode`` simulates the physical accumulation including
    the configured non-idealities.
    """

    matrix: SensingMatrix
    config: ChargeSharingConfig
    seed: int | None = None
    _perturbation: EncoderPerturbation = field(init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.matrix.sparsity is None:
            raise ValueError(
                "charge-sharing encoder requires an s-SRBM routing matrix "
                f"(got kind={self.matrix.kind!r})"
            )
        self._rng = make_rng(self.seed)
        self._perturbation = EncoderPerturbation.draw(
            self.matrix.sparsity,
            self.matrix.m,
            self.config.mismatch_sigma_sample,
            self.config.mismatch_sigma_hold,
            self._rng,
        )
        # Pre-compute the routing table: for column j, the s destination
        # rows in a fixed order (which sampling capacitor serves which row).
        self._routes = np.stack(
            [np.flatnonzero(self.matrix.phi[:, j]) for j in range(self.matrix.n)]
        )

    # --- nominal algebra ----------------------------------------------------

    @property
    def phi_effective(self) -> np.ndarray:
        """Nominal effective sensing matrix (known to the reconstructor)."""
        return effective_matrix(self.matrix, self.config.share_gain, self.config.retention)

    @property
    def perturbation(self) -> EncoderPerturbation:
        """The drawn static mismatch realisation of this encoder instance."""
        return self._perturbation

    def phi_true(self) -> np.ndarray:
        """Effective matrix including this instance's capacitor mismatch.

        Exposed for diagnostics (model-error norm studies); the simulation
        itself never uses this matrix directly -- ``encode`` walks the
        physical accumulation, which is equivalent but also carries noise
        and droop.
        """
        m, n = self.matrix.m, self.matrix.n
        c_hold = self.config.c_hold * (1.0 + self._perturbation.hold_errors)
        c_sample = self.config.c_sample * (1.0 + self._perturbation.sample_errors)
        phi_true = np.zeros((m, n))
        # weight of sample j on row i: a_ij * prod of b over later shares.
        for i in range(m):
            cols = np.flatnonzero(self.matrix.phi[i])
            weight = 1.0
            # Walk backwards: later shares attenuate earlier ones.
            for rank, j in enumerate(reversed(cols)):
                slot = int(np.flatnonzero(self._routes[j] == i)[0])
                cs = c_sample[slot % len(c_sample)]
                a = cs / (cs + c_hold[i])
                b = c_hold[i] / (cs + c_hold[i])
                phi_true[i, j] = a * weight
                weight *= b
        return phi_true

    # --- physical simulation --------------------------------------------------

    def reset_noise(self) -> None:
        """Restart the noise stream (deterministic replay of ``encode``)."""
        self._rng = make_rng(self.seed)
        # Skip the mismatch draws so the replayed noise matches the first run.
        EncoderPerturbation.draw(
            self.matrix.sparsity,
            self.matrix.m,
            self.config.mismatch_sigma_sample,
            self.config.mismatch_sigma_hold,
            self._rng,
        )

    def encode(self, frames: np.ndarray) -> np.ndarray:
        """Simulate the passive accumulation of one or more frames.

        Parameters
        ----------
        frames:
            Input samples, shape (N_phi,) or (n_frames, N_phi), in volts at
            the encoder input (i.e. after the LNA).

        Returns
        -------
        Measurements of shape (M,) or (n_frames, M): the hold-capacitor
        voltages at readout, including kT/C noise, mismatch and droop as
        configured.
        """
        frames = np.asarray(frames, dtype=np.float64)
        single = frames.ndim == 1
        if single:
            frames = frames[None, :]
        if frames.shape[1] != self.matrix.n:
            raise ValueError(
                f"frame length {frames.shape[1]} does not match N_phi={self.matrix.n}"
            )
        n_frames = frames.shape[0]
        cfg = self.config
        pert = self._perturbation

        c_hold = cfg.c_hold * (1.0 + pert.hold_errors)  # (m,)
        c_sample = cfg.c_sample * (1.0 + pert.sample_errors)  # (s,)

        # Pre-draw the noise in the original per-column order (one
        # sample-noise draw, then one share-noise draw, per column) so
        # the RNG stream — and therefore seeded replay via
        # ``reset_noise`` — stays bit-identical no matter which kernel
        # backend runs the accumulation arithmetic below.
        sample_noise = cfg.sample_noise_rms
        s = self._routes.shape[1]
        n = self.matrix.n
        sample_draws = (
            np.empty((n, n_frames, s)) if sample_noise > 0 else None
        )
        share_draws = np.empty((n, n_frames, s)) if cfg.kt > 0 else None
        for j in range(n):
            if sample_draws is not None:
                sample_draws[j] = self._rng.normal(0.0, sample_noise, size=(n_frames, s))
            if share_draws is not None:
                share_draws[j] = self._rng.normal(0.0, 1.0, size=(n_frames, s))

        from repro.kernels import registry

        v_hold, last_touch = registry.call(
            "encoder_multiply",
            frames,
            self._routes,
            c_sample,
            c_hold,
            cfg.kt,
            sample_draws,
            share_draws,
        )
        if cfg.i_leak > 0:
            # Droop from last accumulation until frame readout at index N.
            hold_time = (self.matrix.n - last_touch) / cfg.f_sample
            droop = cfg.i_leak * hold_time / c_hold
            v_hold = v_hold - np.sign(v_hold) * np.minimum(np.abs(v_hold), droop)
        return v_hold[0] if single else v_hold


def encode_batch(encoders: "list[ChargeSharingEncoder]", frames: np.ndarray) -> np.ndarray:
    """Encode one frame block per encoder instance in a single column loop.

    ``frames`` has shape ``(n_encoders, n_frames, N_phi)``; row ``i`` is
    processed by ``encoders[i]`` exactly as
    :meth:`ChargeSharingEncoder.encode` would (same noise-stream call
    pattern against each instance's own ``_rng``, same arithmetic order),
    so per-instance outputs are bit-identical to scalar encoding.  The
    instances must share the matrix dimensions ``(M, N_phi, s)`` -- the
    grouping contract :class:`repro.core.batch.BatchCompiler` enforces --
    while capacitor sizing, mismatch and noise may differ per instance.

    Returns the stacked measurements, shape ``(n_encoders, n_frames, M)``.
    """
    frames = np.asarray(frames, dtype=np.float64)
    if frames.ndim != 3:
        raise ValueError(f"expected (n_encoders, n_frames, N_phi) frames, got {frames.shape}")
    if len(encoders) != frames.shape[0]:
        raise ValueError(f"{len(encoders)} encoders for {frames.shape[0]} frame blocks")
    first = encoders[0].matrix
    m, n, s = first.m, first.n, first.sparsity
    for encoder in encoders:
        if (encoder.matrix.m, encoder.matrix.n, encoder.matrix.sparsity) != (m, n, s):
            raise ValueError("encoders in one batch must share matrix dimensions")
    if frames.shape[2] != n:
        raise ValueError(f"frame length {frames.shape[2]} does not match N_phi={n}")
    n_enc, n_frames = frames.shape[0], frames.shape[1]

    routes = np.stack([encoder._routes for encoder in encoders])  # (P, n, s)
    c_hold = np.stack(
        [e.config.c_hold * (1.0 + e._perturbation.hold_errors) for e in encoders]
    )  # (P, m)
    c_sample = np.stack(
        [e.config.c_sample * (1.0 + e._perturbation.sample_errors) for e in encoders]
    )  # (P, s)
    sample_noise = np.array([e.config.sample_noise_rms for e in encoders])
    kts = np.array([e.config.kt for e in encoders])

    # Hold voltages transposed to (P, m, n_frames) so the per-column
    # scatter update is one advanced-indexing assignment per batch.
    v_hold_t = np.zeros((n_enc, m, n_frames))
    last_touch = np.zeros((n_enc, m))
    enc_idx = np.arange(n_enc)[:, None]  # pairs with (P, s) row indices
    for j in range(n):
        rows = routes[:, j, :]  # (P, s) destinations of sample j per encoder
        vin = np.broadcast_to(frames[:, None, :, j], (n_enc, s, n_frames))
        if np.any(sample_noise > 0):
            vin = vin.copy()
            for i, encoder in enumerate(encoders):
                if sample_noise[i] > 0:
                    # Scalar draw order/shape: normal(size=(n_frames, s)).
                    vin[i] += encoder._rng.normal(
                        0.0, sample_noise[i], size=(n_frames, s)
                    ).T
        cs = c_sample[:, :s]  # one sampling cap per route slot
        ch = np.take_along_axis(c_hold, rows, axis=1)  # (P, s)
        a = (cs / (cs + ch))[:, :, None]
        b = (ch / (cs + ch))[:, :, None]
        current = v_hold_t[enc_idx, rows]  # (P, s, n_frames)
        updated = b * current + a * vin
        if np.any(kts > 0):
            share = np.sqrt(np.maximum(kts[:, None], 0.0) / (cs + ch))  # (P, s)
            for i, encoder in enumerate(encoders):
                if kts[i] > 0:
                    updated[i] += (
                        encoder._rng.normal(0.0, 1.0, size=(n_frames, s)).T
                        * share[i][:, None]
                    )
        v_hold_t[enc_idx, rows] = updated
        last_touch[enc_idx, rows] = j
    measurements = v_hold_t.transpose(0, 2, 1)  # (P, n_frames, m)
    for i, encoder in enumerate(encoders):
        cfg = encoder.config
        if cfg.i_leak > 0:
            hold_time = (n - last_touch[i]) / cfg.f_sample
            droop = cfg.i_leak * hold_time / c_hold[i]
            v = measurements[i]
            measurements[i] = v - np.sign(v) * np.minimum(np.abs(v), droop)
    return measurements


def encoder_from_design(
    point,
    matrix: SensingMatrix,
    seed: int | None = None,
    include_droop: bool = False,
):
    """Build a :class:`ChargeSharingEncoder` from a ``DesignPoint``.

    Wires the capacitor sizing and mismatch sigmas (Pelgrom, from the
    technology) of the design point into the encoder config.  Accepts any
    object exposing the ``DesignPoint`` capacitor/clock properties (kept
    duck-typed to avoid a circular import with ``repro.power``).

    ``include_droop`` additionally applies the raw Table III leakage as
    hold-node droop; off by default because at 1 pA on femtofarad holds it
    is catastrophic within a frame -- circuit-level mitigations the
    behavioural model abstracts away (leakage still counts in the static
    power budget).
    """
    tech = point.technology
    c_hold = point.cs_hold_capacitance
    c_sample = point.cs_sample_capacitance
    config = ChargeSharingConfig(
        c_sample=c_sample,
        c_hold=c_hold,
        kt=tech.kt,
        mismatch_sigma_sample=tech.cap_mismatch_sigma(c_sample),
        mismatch_sigma_hold=tech.cap_mismatch_sigma(c_hold),
        i_leak=tech.i_leak if include_droop else 0.0,
        f_sample=point.f_sample,
    )
    return ChargeSharingEncoder(matrix=matrix, config=config, seed=seed)
