"""Sensing-matrix constructions for compressive sensing.

The paper's passive CS encoder uses **s-Sparse Random Binary Matrices**
(s-SRBM, after Zhao et al. [9]): every column of the M x N_phi matrix
contains exactly ``s`` ones at uniformly random rows.  Each input sample is
therefore added to exactly ``s`` of the M partial sums, which maps one-to-one
onto a charge-sharing network with ``s`` sampling capacitors.

Dense Gaussian and Bernoulli (+-1) matrices are provided as the classical
comparators (used by the digital-CS baselines of refs [2], [12] and by the
reconstruction diagnostics tests).

All constructions are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import make_rng
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class SensingMatrix:
    """A sensing matrix ``Phi`` (M x N) together with its provenance.

    Attributes
    ----------
    phi:
        The M x N matrix as float64.  For s-SRBM the entries are {0, 1}.
    kind:
        Construction name (``"srbm"``, ``"gaussian"``, ``"bernoulli"``).
    sparsity:
        Ones per column for s-SRBM; ``None`` for dense constructions.
    seed:
        Seed used for generation (reproducibility record).
    """

    phi: np.ndarray
    kind: str
    sparsity: int | None
    seed: int | None

    def __post_init__(self) -> None:
        if self.phi.ndim != 2:
            raise ValueError(f"phi must be 2-D, got shape {self.phi.shape}")
        m, n = self.phi.shape
        if m >= n:
            raise ValueError(f"sensing matrix must be wide (M < N), got {m}x{n}")

    @property
    def m(self) -> int:
        """Number of measurements per frame."""
        return self.phi.shape[0]

    @property
    def n(self) -> int:
        """Frame length (input samples per frame)."""
        return self.phi.shape[1]

    @property
    def compression_ratio(self) -> float:
        """N / M (> 1)."""
        return self.n / self.m

    def measure(self, x: np.ndarray) -> np.ndarray:
        """Ideal digital measurement ``y = Phi @ x``.

        ``x`` may be a single frame (N,) or a batch (n_frames, N); the
        result has the matching shape with N replaced by M.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            return self.phi @ x
        if x.ndim == 2:
            return x @ self.phi.T
        raise ValueError(f"x must be 1-D or 2-D, got shape {x.shape}")

    def row_degrees(self) -> np.ndarray:
        """Number of nonzeros per row (accumulations per hold capacitor)."""
        return np.count_nonzero(self.phi, axis=1)

    def column_support(self) -> list[np.ndarray]:
        """For each column, the row indices of its nonzeros (routing table).

        This is exactly the shift-register content that drives the
        charge-sharing switches in the paper's Fig. 5 architecture.
        """
        return [np.flatnonzero(self.phi[:, j]) for j in range(self.n)]

    def mutual_coherence(self, basis: np.ndarray | None = None) -> float:
        """Mutual coherence of ``Phi`` (optionally of ``Phi @ basis``).

        The maximum absolute normalised inner product between distinct
        columns of the effective dictionary -- the standard cheap proxy for
        RIP quality.  Lower is better; random dense matrices approach
        ``sqrt(log N / M)``.
        """
        a = self.phi if basis is None else self.phi @ basis
        norms = np.linalg.norm(a, axis=0)
        norms = np.where(norms == 0, 1.0, norms)
        gram = (a / norms).T @ (a / norms)
        np.fill_diagonal(gram, 0.0)
        return float(np.max(np.abs(gram)))


def srbm(m: int, n: int, sparsity: int = 2, seed: int | None = None) -> SensingMatrix:
    """Generate an s-SRBM sensing matrix (Zhao et al. [9]).

    Every column receives exactly ``sparsity`` ones at distinct uniformly
    random rows.  This guarantees each input sample contributes to exactly
    ``s`` measurements, matching the s sampling capacitors of the paper's
    encoder.

    Parameters
    ----------
    m, n:
        Matrix dimensions (M measurements, N-sample frames), M < N.
    sparsity:
        Ones per column, 1 <= s <= M.
    seed:
        RNG seed; ``None`` uses the library default (still deterministic).
    """
    m = check_positive_int("m", m)
    n = check_positive_int("n", n)
    sparsity = check_positive_int("sparsity", sparsity)
    if sparsity > m:
        raise ValueError(f"sparsity ({sparsity}) cannot exceed m ({m})")
    if m >= n:
        raise ValueError(f"need m < n for compression, got m={m}, n={n}")
    rng = make_rng(seed)
    phi = np.zeros((m, n), dtype=np.float64)
    for j in range(n):
        rows = rng.choice(m, size=sparsity, replace=False)
        phi[rows, j] = 1.0
    matrix = SensingMatrix(phi=phi, kind="srbm", sparsity=sparsity, seed=seed)
    return matrix


def srbm_balanced(m: int, n: int, sparsity: int = 2, seed: int | None = None) -> SensingMatrix:
    """s-SRBM with (near-)balanced row degrees.

    Plain column-wise sampling leaves the row degrees binomially
    distributed; some hold capacitors then accumulate many more samples
    than others, which worsens the dynamic range of the charge-sharing
    weights.  This variant assigns ones by cycling through a shuffled list
    in which every row appears ``ceil(n*s/m)`` times, so row degrees differ
    by at most one -- a practical refinement the encoder benefits from.
    """
    m = check_positive_int("m", m)
    n = check_positive_int("n", n)
    sparsity = check_positive_int("sparsity", sparsity)
    if sparsity > m:
        raise ValueError(f"sparsity ({sparsity}) cannot exceed m ({m})")
    if m >= n:
        raise ValueError(f"need m < n for compression, got m={m}, n={n}")
    rng = make_rng(seed)
    # Random permutation of an exactly balanced row multiset, followed by a
    # collision-repair pass.  A purely random shuffle keeps the placement
    # incoherent with any fixed basis (essential for CS -- deterministic
    # "balanced" schedules degenerate into regular subsampling, whose
    # coherence with smooth dictionaries is catastrophic); the repair pass
    # only swaps entries until no column holds the same row twice.
    total = n * sparsity
    base, remainder = divmod(total, m)
    pool = np.repeat(np.arange(m), base)
    if remainder:
        pool = np.concatenate([pool, rng.choice(m, size=remainder, replace=False)])
    rng.shuffle(pool)

    def column_ok(column: int) -> bool:
        segment = pool[column * sparsity : (column + 1) * sparsity]
        return len(set(segment.tolist())) == sparsity

    for j in range(n):
        guard = 0
        while not column_ok(j):
            guard += 1
            if guard > 10_000:  # pragma: no cover - statistically unreachable
                return srbm(m, n, sparsity=sparsity, seed=seed)
            # Find a duplicated entry in this column.
            rows = pool[j * sparsity : (j + 1) * sparsity]
            seen: set[int] = set()
            dup_offset = 0
            for offset, row in enumerate(rows.tolist()):
                if row in seen:
                    dup_offset = offset
                    break
                seen.add(row)
            # Swap it with a random pool position, accepting only swaps
            # that leave the other touched column duplicate-free (so
            # already-repaired columns stay valid).
            src = j * sparsity + dup_offset
            dst = int(rng.integers(0, total))
            other = dst // sparsity
            if other == j:
                continue
            pool[src], pool[dst] = pool[dst], pool[src]
            if not column_ok(other):
                pool[src], pool[dst] = pool[dst], pool[src]  # undo
    phi = np.zeros((m, n), dtype=np.float64)
    for j in range(n):
        phi[pool[j * sparsity : (j + 1) * sparsity], j] = 1.0
    return SensingMatrix(phi=phi, kind="srbm-balanced", sparsity=sparsity, seed=seed)


def gaussian(m: int, n: int, seed: int | None = None) -> SensingMatrix:
    """Dense i.i.d. Gaussian sensing matrix, entries ~ N(0, 1/M).

    The classical RIP-optimal construction; used as the reference
    comparator for reconstruction-quality diagnostics.
    """
    m = check_positive_int("m", m)
    n = check_positive_int("n", n)
    if m >= n:
        raise ValueError(f"need m < n for compression, got m={m}, n={n}")
    rng = make_rng(seed)
    phi = rng.normal(0.0, 1.0 / np.sqrt(m), size=(m, n))
    return SensingMatrix(phi=phi, kind="gaussian", sparsity=None, seed=seed)


def bernoulli(m: int, n: int, seed: int | None = None) -> SensingMatrix:
    """Dense random +-1/sqrt(M) Bernoulli sensing matrix.

    Hardware-friendlier than Gaussian (single-bit weights) and the matrix
    used by the digital-CS architectures of Chen et al. [2].
    """
    m = check_positive_int("m", m)
    n = check_positive_int("n", n)
    if m >= n:
        raise ValueError(f"need m < n for compression, got m={m}, n={n}")
    rng = make_rng(seed)
    phi = rng.choice([-1.0, 1.0], size=(m, n)) / np.sqrt(m)
    return SensingMatrix(phi=phi, kind="bernoulli", sparsity=None, seed=seed)


def make_sensing_matrix(
    kind: str,
    m: int,
    n: int,
    sparsity: int = 2,
    seed: int | None = None,
    balanced: bool = True,
) -> SensingMatrix:
    """Factory dispatching on ``kind`` (``srbm``/``gaussian``/``bernoulli``).

    ``balanced=True`` (default) selects the row-balanced s-SRBM variant,
    which is what the encoder model uses throughout the experiments.
    """
    if kind == "srbm":
        if balanced:
            return srbm_balanced(m, n, sparsity=sparsity, seed=seed)
        return srbm(m, n, sparsity=sparsity, seed=seed)
    if kind == "gaussian":
        return gaussian(m, n, seed=seed)
    if kind == "bernoulli":
        return bernoulli(m, n, seed=seed)
    raise ValueError(f"unknown sensing matrix kind {kind!r}")
