"""Sparsifying dictionaries (bases) for CS reconstruction.

CS reconstruction solves ``y = Phi Psi alpha`` for a sparse ``alpha``; the
choice of ``Psi`` encodes the prior that the signal class is compressible.
EEG is well represented in the DCT and in orthogonal wavelet bases, the two
families implemented here:

* :func:`dct_basis` -- orthonormal DCT-II synthesis matrix (the default for
  all experiments; EEG rhythms are narrowband, hence DCT-sparse).
* :func:`wavelet_basis` -- multi-level orthogonal wavelet synthesis matrix
  built from the filter cascade (Haar and Daubechies-4 filters included),
  implemented from scratch with periodic boundary handling.

All functions return an N x N orthonormal matrix ``Psi`` whose *columns*
are the basis vectors: ``x = Psi @ alpha``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.validation import check_positive_int

#: Analysis low-pass filters of the supported orthogonal wavelets.
WAVELET_FILTERS: dict[str, np.ndarray] = {
    "haar": np.array([1.0, 1.0]) / math.sqrt(2.0),
    "db2": np.array(
        [0.48296291314469025, 0.836516303737469, 0.22414386804185735, -0.12940952255092145]
    ),
    "db4": np.array(
        [
            0.23037781330885523,
            0.7148465705525415,
            0.6308807679295904,
            -0.02798376941698385,
            -0.18703481171888114,
            0.030841381835986965,
            0.032883011666982945,
            -0.010597401784997278,
        ]
    ),
}


def dct_basis(n: int) -> np.ndarray:
    """Orthonormal DCT-II synthesis matrix of size N x N.

    Column ``k`` is the k-th DCT basis vector
    ``c_k * cos(pi (2t+1) k / 2N)`` with the orthonormal scaling, so that
    ``Psi.T @ Psi = I`` and ``alpha = Psi.T @ x`` are the DCT coefficients.
    """
    n = check_positive_int("n", n)
    t = np.arange(n)
    k = np.arange(n)
    psi = np.cos(np.pi * (2.0 * t[:, None] + 1.0) * k[None, :] / (2.0 * n))
    psi *= np.sqrt(2.0 / n)
    psi[:, 0] /= math.sqrt(2.0)
    return psi


def identity_basis(n: int) -> np.ndarray:
    """The canonical basis (signals sparse in time, e.g. spike trains)."""
    n = check_positive_int("n", n)
    return np.eye(n)


def _wavelet_analysis_level(n: int, h: np.ndarray) -> np.ndarray:
    """One analysis level as an n x n orthogonal matrix (periodic wrap).

    The first n/2 rows compute the approximation (low-pass + downsample),
    the last n/2 rows the detail coefficients using the quadrature-mirror
    high-pass ``g[k] = (-1)^k h[L-1-k]``.
    """
    if n % 2 != 0:
        raise ValueError(f"wavelet level requires even length, got {n}")
    length = len(h)
    g = np.array([(-1) ** k * h[length - 1 - k] for k in range(length)])
    half = n // 2
    w = np.zeros((n, n))
    for i in range(half):
        for k in range(length):
            col = (2 * i + k) % n
            w[i, col] += h[k]
            w[half + i, col] += g[k]
    return w


def wavelet_basis(n: int, wavelet: str = "db4", levels: int | None = None) -> np.ndarray:
    """Multi-level orthogonal wavelet synthesis matrix of size N x N.

    Builds the analysis operator as a cascade of per-level orthogonal
    matrices acting on the running approximation band, then returns its
    transpose (synthesis).  ``levels=None`` uses the maximum depth allowed
    by N and the filter length.

    N must be divisible by ``2**levels``.
    """
    n = check_positive_int("n", n)
    if wavelet not in WAVELET_FILTERS:
        raise ValueError(f"unknown wavelet {wavelet!r}; available: {sorted(WAVELET_FILTERS)}")
    h = WAVELET_FILTERS[wavelet]
    max_levels = 0
    size = n
    while size % 2 == 0 and size >= 2 * len(h):
        max_levels += 1
        size //= 2
    if levels is None:
        levels = max(max_levels, 1)
    levels = check_positive_int("levels", levels)
    if levels > max_levels and not (levels == 1 and n % 2 == 0):
        raise ValueError(
            f"n={n} with wavelet {wavelet!r} supports at most {max_levels} levels, "
            f"requested {levels}"
        )
    analysis = np.eye(n)
    band = n
    for _ in range(levels):
        level = np.eye(n)
        level[:band, :band] = _wavelet_analysis_level(band, h)
        analysis = level @ analysis
        band //= 2
    return analysis.T  # orthogonal: synthesis = analysis^T


def make_basis(kind: str, n: int, **kwargs) -> np.ndarray:
    """Factory for the supported bases: ``dct``, ``identity``, wavelet names."""
    if kind == "dct":
        return dct_basis(n)
    if kind == "identity":
        return identity_basis(n)
    if kind in WAVELET_FILTERS:
        return wavelet_basis(n, wavelet=kind, **kwargs)
    raise ValueError(f"unknown basis kind {kind!r}")
