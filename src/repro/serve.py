"""Sweep-as-a-service: an asyncio HTTP/JSON API over the result store.

The pathfinding engine is evaluation-bound; its readers are not.  This
module puts a thin, stdlib-only HTTP layer between the two so millions
of read-mostly clients hit the content-addressed store
(:mod:`repro.store`) instead of the simulator:

* ``POST /v1/sweeps`` submits a sweep.  The request resolves to an
  evaluator + design-point grid (by experiment scale through
  :mod:`repro.experiments.runner`, or through an injected resolver), and
  runs via :class:`~repro.core.explorer.DesignSpaceExplorer` on a worker
  thread, composing the existing machinery: the store's blob directory
  *is* the evaluation cache, per-sweep telemetry streams structured
  events to a JSONL sink, and the finished result is persisted as a
  named, digest-stamped sweep.  A re-submitted sweep whose content is
  already stored completes instantly from the store -- no evaluator
  call, no worker thread.
* ``GET /v1/sweeps/<name>/events`` streams progress as newline-delimited
  JSON by tailing the sweep's JSONL event sink (the PR-5
  ``explore.progress`` events) until the run completes.
* ``GET /v1/sweeps/<name>`` (manifest), ``/evaluations`` (raw rows,
  paginated), ``/pareto`` (non-dominated front under caller-chosen
  objectives) and ``/breakdown`` (per-block power) serve query views.
  Every view of a finished sweep carries an ``ETag`` equal to the
  sweep's content digest; a conditional request with a matching
  ``If-None-Match`` is answered ``304 Not Modified`` with no store read
  beyond the manifest -- the revalidation path costs nothing and keeps
  repeat readers entirely off the simulator.

The HTTP layer is deliberately minimal (``asyncio.start_server`` plus a
hand-rolled HTTP/1.1 request parser): no third-party dependency, no
framework, every byte under test.  It is not a general-purpose web
server -- it serves JSON to cooperating clients and rejects everything
else with 4xx.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import threading
import time
from collections.abc import AsyncIterator, Callable
from dataclasses import dataclass, field
from pathlib import Path
from urllib.parse import parse_qs, unquote, urlsplit

from repro.core.execution import evaluation_key, evaluator_fingerprint
from repro.core.explorer import DesignSpaceExplorer
from repro.core.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    JsonlEventWriter,
    render_openmetrics,
)
from repro.core.pareto import Objective, pareto_front
from repro.core.telemetry import Telemetry, get_active
from repro.core.tracing import Tracer, chrome_trace
from repro.store import ResultStore, SweepManifest, check_sweep_name
from repro.power.technology import DesignPoint

log = logging.getLogger("repro.serve")

#: Largest accepted request body (sweep submissions are tiny JSON).
MAX_BODY_BYTES = 1 << 20

#: Pagination defaults/bounds shared by every collection view.
DEFAULT_PAGE_LIMIT = 100
MAX_PAGE_LIMIT = 1000

#: Poll interval of the progress tail (seconds).
EVENT_POLL_S = 0.05

#: Response-size histogram bucket upper bounds (bytes): log-spaced from a
#: health-check ping to the largest paginated evaluation page.
RESPONSE_BYTES_BUCKETS: tuple[float, ...] = (
    256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
)

#: Content type of the ``/metrics`` exposition body.
OPENMETRICS_CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


class SubmissionError(ValueError):
    """A sweep submission payload is invalid (HTTP 400)."""


class ServiceDraining(RuntimeError):
    """The service is shutting down and refuses new work (HTTP 503)."""


def default_resolver(payload: dict):
    """Resolve a submission payload against the experiment harness.

    Accepts ``{"scale": "smoke"|"small"|"paper", "name"?: str,
    "executor"?: str, "workers"?: int}`` and returns
    ``(name, evaluator, points, explore_kwargs)``.  Tests and embedders
    inject their own resolver with the same signature to serve custom
    evaluators.
    """
    from repro.core.execution import EXECUTORS
    from repro.experiments.runner import SCALES, make_harness, search_space_for

    if not isinstance(payload, dict):
        raise SubmissionError("submission body must be a JSON object")
    scale = payload.get("scale")
    if scale not in SCALES:
        raise SubmissionError(
            f"unknown scale {scale!r}; choose one of {sorted(SCALES)}"
        )
    executor = payload.get("executor", "serial")
    if executor not in EXECUTORS:
        raise SubmissionError(
            f"unknown executor {executor!r}; choose one of {EXECUTORS}"
        )
    workers = payload.get("workers")
    if workers is not None and (not isinstance(workers, int) or workers < 1):
        raise SubmissionError(f"workers must be a positive integer, got {workers!r}")
    name = payload.get("name") or f"fig7-{scale}"
    harness = make_harness(scale)
    points = list(search_space_for(scale).grid(None))
    return name, harness.evaluator, points, {"executor": executor, "n_workers": workers}


@dataclass
class SweepJob:
    """In-memory state of one submitted sweep."""

    name: str
    status: str = "running"  # running | done | failed
    error: str | None = None
    digest: str | None = None
    from_store: bool = False
    submitted_unix: float = field(default_factory=time.time)
    events_path: Path | None = None
    thread: threading.Thread | None = None

    def view(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "error": self.error,
            "digest": self.digest,
            "from_store": self.from_store,
            "submitted_unix": self.submitted_unix,
        }


class SweepService:
    """Submission/query engine behind the HTTP API (transport-agnostic).

    Parameters
    ----------
    store:
        The :class:`~repro.store.ResultStore` sweeps are persisted to and
        served from.
    resolver:
        ``f(payload) -> (name, evaluator, points, explore_kwargs)``;
        default resolves experiment scales
        (:func:`default_resolver`).  Raise :class:`SubmissionError` for
        invalid payloads.
    telemetry:
        Service-level sink for ``serve.*`` counters and the merged
        per-sweep exploration telemetry.  Defaults to the ambient sink.
    """

    def __init__(
        self,
        store: ResultStore,
        resolver: Callable | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.store = store
        self.resolver = resolver or default_resolver
        self.telemetry = telemetry if telemetry is not None else get_active()
        self.events_dir = store.root / "events"
        self.jobs: dict[str, SweepJob] = {}
        self.started_unix = time.time()
        self._lock = threading.Lock()
        self._draining = threading.Event()

    # --- shutdown -------------------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether the service has begun shutting down."""
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Refuse new submissions; running sweeps keep going.

        Idempotent.  Readers are unaffected -- query views keep serving
        from the store until the process exits.
        """
        if not self._draining.is_set():
            self._draining.set()
            self.telemetry.count("serve.drain")
            log.info("draining: refusing new sweep submissions")

    def drain(self, timeout_s: float = 30.0) -> list[str]:
        """Block until running sweeps settle; returns names still running.

        Sets the draining flag, then joins the worker threads of every
        running job for up to ``timeout_s`` total.  A job that outlives
        the timeout is reported (and logged) rather than killed: its
        thread is a daemon, and every point it has already finished is
        persisted in the store's content-addressed cache, so a
        re-submission after restart resumes from there instead of
        re-evaluating.  Jobs that do settle have flushed and closed
        their JSONL event sinks (the sink closes in the job thread's
        ``finally``).
        """
        self.begin_drain()
        deadline = time.monotonic() + timeout_s
        with self._lock:
            running = [
                (job.name, job.thread)
                for job in self.jobs.values()
                if job.status == "running" and job.thread is not None
            ]
        for _name, thread in running:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        unfinished = [name for name, thread in running if thread.is_alive()]
        for name in unfinished:
            log.warning(
                "sweep %s still running after %.0fs drain; its finished "
                "points are preserved in the store cache",
                name,
                timeout_s,
            )
        return unfinished

    # --- submission -----------------------------------------------------------

    def submit(self, payload: dict) -> tuple[SweepJob, bool]:
        """Submit one sweep; returns ``(job, accepted)``.

        ``accepted`` is ``False`` when an identically named sweep is
        already running (the existing job is returned instead of racing
        a duplicate).  A submission whose content-addressed entries are
        already stored completes synchronously from the store.
        """
        if self._draining.is_set():
            raise ServiceDraining("service is draining; not accepting new sweeps")
        name, evaluator, points, explore_kwargs = self.resolver(payload)
        check_sweep_name(name)
        if not points:
            raise SubmissionError("submission resolved to an empty design grid")
        fingerprint = evaluator_fingerprint(evaluator)
        with self._lock:
            existing = self.jobs.get(name)
            if existing is not None and existing.status == "running":
                return existing, False
            job = SweepJob(name=name, events_path=self.events_dir / f"{name}.jsonl")
            self.jobs[name] = job

        expected = [evaluation_key(fingerprint, point) for point in points]
        manifest = self.store.get_sweep(name)
        if (
            manifest is not None
            and manifest.fingerprint == fingerprint
            and manifest.keys == expected
            and manifest.n_failures == 0
        ):
            # Identical content already stored: served entirely from the
            # content-addressed store, no evaluator call at all.
            job.status = "done"
            job.digest = manifest.digest
            job.from_store = True
            self.telemetry.count("serve.store_hits")
            return job, True

        self.telemetry.count("serve.submitted")
        job.events_path.unlink(missing_ok=True)
        thread = threading.Thread(
            target=self._run_job,
            args=(job, evaluator, points, fingerprint, explore_kwargs),
            name=f"repro-serve-{name}",
            daemon=True,
        )
        job.thread = thread
        thread.start()
        return job, True

    def _run_job(
        self,
        job: SweepJob,
        evaluator,
        points: list[DesignPoint],
        fingerprint: str,
        explore_kwargs: dict,
    ) -> None:
        """Worker-thread body: run the sweep, persist it, settle the job."""
        sink = JsonlEventWriter(job.events_path)
        tel = Telemetry(
            logger=log, event_sink=sink, tracer=Tracer(label=f"sweep-{job.name}")
        )
        try:
            result = DesignSpaceExplorer(evaluator).explore(
                points,
                name=job.name,
                cache=self.store.cache,
                telemetry=tel,
                **explore_kwargs,
            )
            manifest = self.store.put_sweep(
                job.name,
                fingerprint,
                result,
                meta={"submitted_unix": job.submitted_unix, **explore_kwargs_meta(explore_kwargs)},
            )
            job.digest = manifest.digest
            job.status = "done"
            tel.event("serve.sweep_done", name=job.name, status="done",
                      digest=manifest.digest, n=manifest.n_evaluations)
            self.telemetry.count("serve.sweeps_completed")
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            job.error = f"{type(error).__name__}: {error}"
            job.status = "failed"
            tel.event("serve.sweep_done", name=job.name, status="failed", error=job.error)
            self.telemetry.count("serve.sweeps_failed")
            log.warning("sweep %s failed: %s", job.name, job.error, exc_info=True)
        finally:
            # Persist the sweep's Chrome trace next to its event sink
            # (``GET /v1/sweeps/<name>/trace`` serves it) *before* the
            # drain below empties the tracer's span buffer.
            try:
                self.trace_path(job.name).write_text(
                    json.dumps(chrome_trace(tel.tracer.snapshot()), indent=1) + "\n"
                )
            except OSError as error:  # pragma: no cover - disk full etc.
                log.warning("could not write trace for sweep %s: %s", job.name, error)
            # Fold the sweep's exploration telemetry (cache hit/miss
            # counters, point latencies) into the service sink so the
            # service's counters tell the whole story.
            if self.telemetry.enabled:
                self.telemetry.merge(tel.drain_snapshot(label=f"sweep-{job.name}"))
            sink.close()

    # --- queries --------------------------------------------------------------

    def trace_path(self, name: str) -> Path:
        """Where the Chrome trace of sweep ``name`` is persisted."""
        return self.events_dir / f"{name}.trace.json"

    def health_view(self) -> dict:
        """The enriched ``/healthz`` body: liveness plus capacity signals.

        Load balancers key on ``ok``/``draining``; operators read the
        rest -- uptime, how many sweeps are running/queued against done/
        failed, and how big the store behind the read paths has grown.
        """
        with self._lock:
            statuses = [job.status for job in self.jobs.values()]
        index = self.store.index()
        return {
            "ok": True,
            "draining": self.draining,
            "uptime_s": round(time.time() - self.started_unix, 3),
            "started_unix": self.started_unix,
            "sweeps": {
                "running": statuses.count("running"),
                "done": statuses.count("done"),
                "failed": statuses.count("failed"),
            },
            "store": {
                "sweeps": len(index.get("sweeps", {})),
                "cached_evaluations": len(self.store.cache),
            },
        }

    def job_or_stored(self, name: str) -> tuple[SweepJob | None, SweepManifest | None]:
        """Live job and/or stored manifest for ``name`` (either may be None)."""
        job = self.jobs.get(name)
        manifest = self.store.get_sweep(name)
        return job, manifest

    def manifest_view(self, name: str) -> dict | None:
        """The status/manifest view of one sweep, or ``None`` if unknown."""
        job, manifest = self.job_or_stored(name)
        if job is None and manifest is None:
            return None
        view: dict = {"name": name}
        if manifest is not None:
            view.update(manifest.summary_dict())
            view["status"] = "done"
        if job is not None:
            view.update(job.view())
            if job.status == "done" and manifest is not None:
                view["status"] = "done"
        return view

    def sweep_digest(self, name: str) -> str | None:
        """Content digest of a *finished* sweep (the ETag), else ``None``."""
        job, manifest = self.job_or_stored(name)
        if job is not None and job.status == "running":
            return None
        if manifest is not None:
            return manifest.digest
        return None


def explore_kwargs_meta(explore_kwargs: dict) -> dict:
    """The JSON-safe subset of explore kwargs recorded in sweep meta."""
    return {
        key: value
        for key, value in explore_kwargs.items()
        if isinstance(value, (str, int, float, bool)) and key != "telemetry"
    }


# --- minimal HTTP layer -------------------------------------------------------


@dataclass
class Request:
    method: str
    path: str
    query: dict[str, list[str]]
    headers: dict[str, str]
    body: bytes

    def json(self) -> dict:
        try:
            return json.loads(self.body.decode() or "{}")
        except (ValueError, UnicodeDecodeError) as error:
            raise HttpError(400, f"request body is not valid JSON: {error}") from error


@dataclass
class Response:
    status: int
    payload: dict | list | None = None
    headers: dict[str, str] = field(default_factory=dict)
    stream: AsyncIterator[str] | None = None
    #: Pre-rendered text body (e.g. the OpenMetrics exposition); wins over
    #: ``payload`` and defaults the Content-Type to plain text.
    text: str | None = None

    def encode_body(self) -> bytes:
        """The response body bytes (empty for streams/304/error-no-payload)."""
        if self.stream is not None:
            return b""
        if self.text is not None:
            return self.text.encode()
        if self.status == 304 or (self.payload is None and self.status != 200):
            return b""
        return (json.dumps(self.payload, indent=1) + "\n").encode()


class HttpError(Exception):
    """Maps to an error response: ``raise HttpError(404, "...")``."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {
    200: "OK", 202: "Accepted", 304: "Not Modified", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def etag_of(digest: str) -> str:
    return f'"{digest}"'


def if_none_match_hits(header: str | None, etag: str) -> bool:
    """RFC 7232 ``If-None-Match`` check (weak comparison, ``*`` wildcard)."""
    if header is None:
        return False
    header = header.strip()
    if header == "*":
        return True
    for candidate in header.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


def parse_page(query: dict[str, list[str]], total: int) -> tuple[int, int]:
    """Validated ``(offset, limit)`` pagination bounds (400 on nonsense)."""
    def one_int(name: str, default: int) -> int:
        values = query.get(name)
        if not values:
            return default
        try:
            return int(values[-1])
        except ValueError:
            raise HttpError(400, f"{name} must be an integer, got {values[-1]!r}") from None

    offset = one_int("offset", 0)
    limit = one_int("limit", DEFAULT_PAGE_LIMIT)
    if offset < 0:
        raise HttpError(400, f"offset must be >= 0, got {offset}")
    if not 1 <= limit <= MAX_PAGE_LIMIT:
        raise HttpError(400, f"limit must be in [1, {MAX_PAGE_LIMIT}], got {limit}")
    del total  # bounds are absolute, not clamped to the collection
    return offset, limit


class SweepApi:
    """Routes HTTP requests onto a :class:`SweepService`."""

    def __init__(self, service: SweepService):
        self.service = service

    @property
    def telemetry(self) -> Telemetry:
        return self.service.telemetry

    #: Recognised per-sweep views (route labels stay bounded: an unknown
    #: view or path instruments as ``other``, never as raw request text).
    SWEEP_VIEWS = ("manifest", "evaluations", "pareto", "breakdown", "events", "trace")

    @classmethod
    def route_label(cls, method: str, parts: list[str]) -> str:
        """Low-cardinality route label for per-route request metrics."""
        if parts == ["healthz"]:
            return "healthz"
        if parts == ["metrics"]:
            return "metrics"
        if parts == ["v1", "sweeps"]:
            return "sweeps.submit" if method == "POST" else "sweeps.list"
        if len(parts) in (3, 4) and parts[:2] == ["v1", "sweeps"]:
            view = parts[3] if len(parts) == 4 else "manifest"
            if view in cls.SWEEP_VIEWS:
                return f"sweep.{view}"
        return "other"

    async def dispatch(self, request: Request) -> Response:
        """Route one request; observe per-route latency and response size."""
        started = time.perf_counter()
        self.telemetry.count("serve.requests")
        parts = [unquote(p) for p in request.path.strip("/").split("/") if p]
        route = self.route_label(request.method, parts)
        try:
            response = self._route(request, parts)
        except HttpError as error:
            if error.status >= 500:  # pragma: no cover - no 5xx HttpErrors today
                self.telemetry.count("serve.errors")
            response = Response(error.status, {"error": error.message})
        except Exception as error:  # noqa: BLE001 - the server must answer
            self.telemetry.count("serve.errors")
            log.exception("unhandled error serving %s %s", request.method, request.path)
            response = Response(500, {"error": f"{type(error).__name__}: {error}"})
        self.telemetry.observe(
            f"serve.request_seconds.{route}",
            time.perf_counter() - started,
            bounds=DEFAULT_LATENCY_BUCKETS_S,
        )
        if response.stream is None:  # streamed bodies have no known size
            self.telemetry.observe(
                f"serve.response_bytes.{route}",
                len(response.encode_body()),
                bounds=RESPONSE_BYTES_BUCKETS,
            )
        return response

    def _route(self, request: Request, parts: list[str]) -> Response:
        if parts == ["healthz"]:
            return self._method(
                request, "GET", lambda: Response(200, self.service.health_view())
            )
        if parts == ["metrics"]:
            return self._method(request, "GET", self._metrics)
        if parts == ["v1", "sweeps"]:
            if request.method == "GET":
                return self._list_sweeps()
            if request.method == "POST":
                return self._submit(request)
            raise HttpError(405, f"{request.method} not allowed here")
        if len(parts) in (3, 4) and parts[:2] == ["v1", "sweeps"]:
            name = parts[2]
            view = parts[3] if len(parts) == 4 else "manifest"
            if view == "events":
                return self._method(request, "GET", lambda: self._events(name))
            handler = {
                "manifest": self._manifest,
                "evaluations": self._evaluations,
                "pareto": self._pareto,
                "breakdown": self._breakdown,
                "trace": self._trace,
            }.get(view)
            if handler is None:
                raise HttpError(404, f"unknown sweep view {view!r}")
            return self._method(request, "GET", lambda: handler(name, request))
        raise HttpError(404, f"no route for {request.path!r}")

    @staticmethod
    def _method(request: Request, allowed: str, handler: Callable[[], Response]) -> Response:
        if request.method != allowed:
            raise HttpError(405, f"{request.method} not allowed here (use {allowed})")
        return handler()

    # --- handlers -------------------------------------------------------------

    def _metrics(self) -> Response:
        """OpenMetrics exposition of the service telemetry.

        Includes the ``serve.*`` counters, the per-route request-latency
        and response-size histograms, any resource-sampler histograms,
        and everything merged from finished sweeps.  The body is also
        valid Prometheus exposition format, so plain scrapers work too.
        """
        return Response(
            200,
            text=render_openmetrics(self.telemetry),
            headers={"Content-Type": OPENMETRICS_CONTENT_TYPE},
        )

    def _trace(self, name: str, request: Request) -> Response:
        """The persisted Chrome trace of one finished (or failed) sweep."""
        del request  # no conditional handling: traces are write-once
        job, manifest = self.service.job_or_stored(name)
        path = self.service.trace_path(name)
        if job is None and manifest is None and not path.exists():
            raise HttpError(404, f"no sweep named {name!r}")
        if job is not None and job.status == "running":
            raise HttpError(404, f"sweep {name!r} is still running; no trace yet")
        try:
            payload = json.loads(path.read_text())
        except OSError:
            raise HttpError(
                404,
                f"no trace recorded for sweep {name!r} (stored sweeps served "
                f"from cache never ran, so they have no trace)",
            ) from None
        except ValueError as error:  # pragma: no cover - torn write
            raise HttpError(500, f"trace for {name!r} is unreadable: {error}") from None
        return Response(200, payload)

    def _list_sweeps(self) -> Response:
        index = self.service.store.index()
        running = [
            job.view()
            for job in self.service.jobs.values()
            if job.status == "running"
        ]
        return Response(200, {"sweeps": index.get("sweeps", {}), "running": running})

    def _submit(self, request: Request) -> Response:
        if len(request.body) > MAX_BODY_BYTES:
            raise HttpError(413, "submission body too large")
        try:
            job, accepted = self.service.submit(request.json())
        except ServiceDraining as error:
            raise HttpError(503, str(error)) from None
        except (SubmissionError, ValueError) as error:
            raise HttpError(400, str(error)) from None
        view = job.view()
        view["already_running"] = not accepted
        status = 200 if job.status == "done" else 202
        return Response(status, view)

    def _conditional(
        self, name: str, request: Request, build: Callable[[SweepManifest], dict]
    ) -> Response:
        """Shared ETag/304 wrapper of the finished-sweep query views."""
        job, manifest = self.service.job_or_stored(name)
        if job is None and manifest is None:
            raise HttpError(404, f"no sweep named {name!r}")
        if manifest is None:
            # Known job but nothing stored yet: still running or failed.
            assert job is not None
            if job.status == "failed":
                return Response(200, job.view())
            raise HttpError(404, f"sweep {name!r} is still running; no results yet")
        etag = etag_of(manifest.digest)
        if if_none_match_hits(request.headers.get("if-none-match"), etag):
            self.telemetry.count("serve.not_modified")
            return Response(304, None, headers={"ETag": etag})
        payload = build(manifest)
        return Response(200, payload, headers={"ETag": etag})

    def _manifest(self, name: str, request: Request) -> Response:
        view = self.service.manifest_view(name)
        if view is None:
            raise HttpError(404, f"no sweep named {name!r}")
        digest = self.service.sweep_digest(name)
        if digest is None:
            return Response(200, view)
        etag = etag_of(digest)
        if if_none_match_hits(request.headers.get("if-none-match"), etag):
            self.telemetry.count("serve.not_modified")
            return Response(304, None, headers={"ETag": etag})
        return Response(200, view, headers={"ETag": etag})

    def _evaluations(self, name: str, request: Request) -> Response:
        def build(manifest: SweepManifest) -> dict:
            from repro.core.serialization import evaluation_to_dict

            offset, limit = parse_page(request.query, manifest.n_evaluations)
            result = self.service.store.load_result(name)
            rows = [
                evaluation_to_dict(evaluation)
                for evaluation in list(result)[offset : offset + limit]
            ]
            return {
                "name": name,
                "total": len(result),
                "offset": offset,
                "limit": limit,
                "evaluations": rows,
            }

        return self._conditional(name, request, build)

    def _pareto(self, name: str, request: Request) -> Response:
        def build(manifest: SweepManifest) -> dict:
            objectives = self._objectives(request.query)
            result = self.service.store.load_result(name)
            front = pareto_front(
                [e for e in result if e.ok], objectives
            )
            offset, limit = parse_page(request.query, len(front))
            rows = ExplorationRows(front[offset : offset + limit])
            return {
                "name": name,
                "objectives": [
                    {"metric": o.metric, "maximize": o.maximize} for o in objectives
                ],
                "total": len(front),
                "offset": offset,
                "limit": limit,
                "front": rows.to_dicts(),
            }

        return self._conditional(name, request, build)

    def _breakdown(self, name: str, request: Request) -> Response:
        def build(manifest: SweepManifest) -> dict:
            result = self.service.store.load_result(name)
            evaluations = list(result)
            offset, limit = parse_page(request.query, len(evaluations))
            rows = [
                {
                    "point": e.point.describe(),
                    "power_uw": e.metrics.get("power_uw"),
                    "breakdown": dict(e.breakdown),
                }
                for e in evaluations[offset : offset + limit]
                if e.ok
            ]
            return {
                "name": name,
                "total": len(evaluations),
                "offset": offset,
                "limit": limit,
                "breakdown": rows,
            }

        return self._conditional(name, request, build)

    @staticmethod
    def _objectives(query: dict[str, list[str]]) -> tuple[Objective, ...]:
        """Objectives from ``minimize``/``maximize`` params (comma-splittable)."""
        def names(param: str) -> list[str]:
            collected: list[str] = []
            for value in query.get(param, []):
                collected.extend(n.strip() for n in value.split(",") if n.strip())
            return collected

        minimize, maximize = names("minimize"), names("maximize")
        if not minimize and not maximize:
            minimize, maximize = ["power_uw"], ["snr_db"]
        return tuple(
            [Objective(n, maximize=False) for n in minimize]
            + [Objective(n, maximize=True) for n in maximize]
        )

    def _events(self, name: str) -> Response:
        job, manifest = self.service.job_or_stored(name)
        if job is None and manifest is None:
            raise HttpError(404, f"no sweep named {name!r}")
        return Response(
            200,
            None,
            headers={"Content-Type": "application/x-ndjson"},
            stream=self._tail_events(name, job),
        )

    async def _tail_events(self, name: str, job: SweepJob | None) -> AsyncIterator[str]:
        """Tail the sweep's JSONL event sink until the job settles.

        Replays everything already written, then follows appends while
        the job is running; ends with one ``serve.stream_end`` line so
        clients need no out-of-band completion signal.
        """
        path = (
            job.events_path
            if job is not None and job.events_path is not None
            else self.service.events_dir / f"{name}.jsonl"
        )
        position = 0
        buffered = ""
        while True:
            running = job is not None and job.status == "running"
            try:
                with open(path, "r") as handle:
                    handle.seek(position)
                    chunk = handle.read()
                    position = handle.tell()
            except OSError:
                chunk = ""
            if chunk:
                buffered += chunk
                *lines, buffered = buffered.split("\n")
                for line in lines:
                    if line.strip():
                        yield line + "\n"
            if not running:
                break
            await asyncio.sleep(EVENT_POLL_S)
        if buffered.strip():
            yield buffered + "\n"
        status = job.status if job is not None else "done"
        yield json.dumps({"kind": "serve.stream_end", "name": name, "status": status}) + "\n"


# --- connection handling ------------------------------------------------------


async def _read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (ValueError, ConnectionError):  # oversized request line
        raise HttpError(400, "malformed request line") from None
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        try:
            raw = await reader.readline()
        except (ValueError, ConnectionError):
            raise HttpError(400, "malformed header block") from None
        if raw in (b"\r\n", b"\n", b""):
            break
        name, separator, value = raw.decode("latin-1").partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > 100:
            raise HttpError(400, "too many headers")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(400, "malformed Content-Length") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpError(413, f"body larger than {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    return Request(
        method=method.upper(),
        path=split.path,
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


def _head(status: int, headers: dict[str, str]) -> bytes:
    reason = _REASONS.get(status, "OK")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines += [f"{k}: {v}" for k, v in headers.items()]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def _write_response(
    writer: asyncio.StreamWriter, response: Response, keep_alive: bool
) -> bool:
    """Send ``response``; returns whether the connection stays open."""
    headers = {"Server": "repro-serve", **response.headers}
    if response.stream is not None:
        headers.setdefault("Content-Type", "application/x-ndjson")
        headers["Transfer-Encoding"] = "chunked"
        headers["Connection"] = "close"
        writer.write(_head(response.status, headers))
        await writer.drain()
        async for text in response.stream:
            data = text.encode()
            writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return False
    body = response.encode_body()
    if response.status != 304:
        content_type = (
            "text/plain; charset=utf-8" if response.text is not None
            else "application/json"
        )
        headers.setdefault("Content-Type", content_type)
    headers["Content-Length"] = str(len(body))
    headers["Connection"] = "keep-alive" if keep_alive else "close"
    writer.write(_head(response.status, headers) + body)
    await writer.drain()
    return keep_alive


async def handle_connection(
    api: SweepApi, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """Serve one client connection (sequential keep-alive requests)."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except HttpError as error:
                await _write_response(
                    writer, Response(error.status, {"error": error.message}), False
                )
                break
            except asyncio.IncompleteReadError:
                break
            if request is None:
                break
            keep_alive = request.headers.get("connection", "keep-alive") != "close"
            response = await api.dispatch(request)
            if not await _write_response(writer, response, keep_alive):
                break
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass  # peer vanished or server shutting down mid-close


async def start_server(
    service: SweepService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Bind the API server; returns the listening ``asyncio`` server."""
    api = SweepApi(service)

    async def _handler(reader, writer):
        await handle_connection(api, reader, writer)

    return await asyncio.start_server(_handler, host=host, port=port)


async def serve_forever(
    service: SweepService,
    host: str = "127.0.0.1",
    port: int = 8731,
    *,
    drain_timeout_s: float = 30.0,
) -> None:
    """Run the API server until SIGTERM/SIGINT, then drain and exit.

    Shutdown sequence (the ``repro serve`` body):

    1. the first SIGTERM or SIGINT flips the service to *draining* --
       new ``POST /v1/sweeps`` get 503, ``/healthz`` reports
       ``draining: true`` (so load balancers rotate the node out),
       readers are unaffected and keep connecting;
    2. running sweeps are joined for up to ``drain_timeout_s``; each one
       that settles has persisted its result to the store and flushed
       its JSONL event sink.  A sweep that outlives the timeout is
       abandoned to its daemon thread -- its finished points are in the
       store cache, so resubmitting after restart resumes, not restarts;
    3. the listener closes and the process exits.

    Signal handlers need the main thread; anywhere else (tests embed
    via :class:`ServerThread`) this degrades to plain serve-until-
    cancelled.
    """
    server = await start_server(service, host=host, port=port)
    sockets = server.sockets or []
    for sock in sockets:
        log.info("serving on http://%s:%s", *sock.getsockname()[:2])
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()

    def request_stop(signum: int) -> None:
        log.info("received %s; beginning graceful shutdown", signal.Signals(signum).name)
        service.begin_drain()
        stop.set()

    registered: list[int] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, request_stop, signum)
        except (NotImplementedError, RuntimeError, ValueError):
            break  # non-main thread or platform without signal support
        registered.append(signum)
    try:
        async with server:
            if not registered:
                await server.serve_forever()
                return
            serving = asyncio.ensure_future(server.serve_forever())
            stopping = asyncio.ensure_future(stop.wait())
            try:
                await asyncio.wait(
                    {serving, stopping}, return_when=asyncio.FIRST_COMPLETED
                )
                # Keep answering requests while draining: submissions
                # are already refused with 503, but readers and health
                # checks stay up until the last sweep settles.
                unfinished = await asyncio.to_thread(service.drain, drain_timeout_s)
            finally:
                serving.cancel()
                stopping.cancel()
            server.close()
            await server.wait_closed()
            if unfinished:
                log.warning("exiting with %d sweep(s) unfinished: %s",
                            len(unfinished), ", ".join(sorted(unfinished)))
            else:
                log.info("drained cleanly")
    finally:
        for signum in registered:
            loop.remove_signal_handler(signum)


class ServerThread:
    """Run the API server on a daemon thread (tests and embedding).

    ``with ServerThread(service) as server: ...`` binds an ephemeral port
    (``server.port``) on a private event loop and tears it down on exit.
    """

    def __init__(self, service: SweepService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10):  # pragma: no cover - startup hang
            raise RuntimeError("server thread failed to start within 10s")
        if self._error is not None:
            raise RuntimeError(f"server failed to bind: {self._error}")
        return self

    def _run(self) -> None:
        async def main() -> None:
            try:
                server = await start_server(self.service, host=self.host, port=self.port)
            except OSError as error:
                self._error = error
                self._started.set()
                return
            self.port = server.sockets[0].getsockname()[1]
            self._loop = asyncio.get_running_loop()
            self._started.set()
            async with server:
                try:
                    await server.serve_forever()
                except asyncio.CancelledError:
                    pass

        asyncio.run(main())

    def stop(self) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            for task in [t for t in asyncio.all_tasks(loop)]:
                try:
                    loop.call_soon_threadsafe(task.cancel)
                except RuntimeError:
                    # Cancelling the serve task ends asyncio.run(),
                    # which closes the loop while we are still walking
                    # the task list -- the goal state, not an error.
                    break
        if self._thread is not None:
            self._thread.join(timeout=10)

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ExplorationRows:
    """Tiny adapter reusing :meth:`ExplorationResult.to_dicts` on a slice."""

    def __init__(self, evaluations):
        from repro.core.results import ExplorationResult

        self._result = ExplorationResult(list(evaluations), name="view")

    def to_dicts(self) -> list[dict]:
        return self._result.to_dicts()
