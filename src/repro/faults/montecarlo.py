"""Monte-Carlo yield analysis: fault severity x chip realisations.

Answers the robustness question behind the paper's headline numbers: how
quickly does each architecture's detection accuracy degrade as physical
non-idealities grow, and what fraction of simulated chip instances still
meets spec ("yield") at each severity?

:class:`MonteCarloYield` sweeps a :class:`~repro.faults.FaultSuite`
scaled to each severity over ``n_realisations`` independent fault
realisations per (chain, severity) cell, evaluating through the same
:class:`~repro.core.explorer.FrontEndEvaluator` the Pareto sweeps use --
so "degradation" is measured on the actual application metric.  Severity
0 is evaluated once per chain as the clean reference (all fault hooks
are exact no-ops there, so it is bit-identical to an un-instrumented
evaluation).

Everything is deterministic: fault realisations derive from the
evaluator's master seed and the realisation index, never from wall-clock
or global RNG state, so re-running a yield analysis reproduces the table
bit-exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.execution import DEFAULT_POLICY, ExecutionPolicy, evaluate_one_timed
from repro.core.explorer import FrontEndEvaluator
from repro.core.telemetry import Telemetry, activate, get_active
from repro.faults.injection import FaultSuite
from repro.power.technology import DesignPoint


@dataclass(frozen=True)
class YieldRow:
    """One Monte-Carlo cell: (chain, severity, realisation) -> outcome."""

    chain: str
    severity: float
    realisation: int
    ok: bool
    metric: float | None
    degradation: float | None
    error: str | None
    elapsed_s: float


@dataclass
class YieldResult:
    """Collected yield sweep: per-cell rows plus the clean references."""

    metric: str
    max_degradation: float
    severities: tuple[float, ...]
    n_realisations: int
    clean: dict[str, float] = field(default_factory=dict)
    rows: list[YieldRow] = field(default_factory=list)

    def chains(self) -> list[str]:
        seen: list[str] = []
        for row in self.rows:
            if row.chain not in seen:
                seen.append(row.chain)
        return seen

    def cell(self, chain: str, severity: float) -> list[YieldRow]:
        return [
            r
            for r in self.rows
            if r.chain == chain and math.isclose(r.severity, severity)
        ]

    def yield_at(self, chain: str, severity: float) -> float:
        """Fraction of realisations meeting spec at this severity."""
        rows = self.cell(chain, severity)
        if not rows:
            return float("nan")
        return sum(r.ok for r in rows) / len(rows)

    def yield_curve(self, chain: str) -> list[tuple[float, float]]:
        """``(severity, yield)`` pairs, severity-ascending."""
        return [(s, self.yield_at(chain, s)) for s in self.severities]

    def degradation_stats(self, chain: str, severity: float) -> dict[str, float]:
        """Mean/worst metric degradation among *completed* realisations."""
        values = [
            r.degradation
            for r in self.cell(chain, severity)
            if r.degradation is not None and math.isfinite(r.degradation)
        ]
        if not values:
            return {"mean": float("nan"), "worst": float("nan"), "n": 0}
        return {
            "mean": sum(values) / len(values),
            "worst": max(values),
            "n": len(values),
        }

    def as_table(self) -> str:
        """Plain-text yield/degradation table (deterministic formatting)."""
        lines = [
            f"Monte-Carlo yield ({self.metric}; spec: degradation <= "
            f"{self.max_degradation:g}; {self.n_realisations} realisations/cell)",
            "",
            f"{'chain':<10} {'severity':>8} {'yield':>7} {'mean deg':>9} "
            f"{'worst deg':>9} {'failed':>6}",
        ]
        for chain in self.chains():
            clean = self.clean.get(chain)
            clean_note = f" (clean {self.metric} = {clean:.4f})" if clean is not None else ""
            lines.append(f"-- {chain}{clean_note}")
            for severity in self.severities:
                rows = self.cell(chain, severity)
                if not rows:
                    continue
                stats = self.degradation_stats(chain, severity)
                failed = sum(1 for r in rows if r.error is not None)
                lines.append(
                    f"{chain:<10} {severity:>8.3f} "
                    f"{self.yield_at(chain, severity):>6.1%} "
                    f"{stats['mean']:>9.4f} {stats['worst']:>9.4f} {failed:>6d}"
                )
        return "\n".join(lines)

    def summary(self) -> dict:
        """JSON-ready digest (feeds the run manifest)."""
        return {
            "metric": self.metric,
            "max_degradation": self.max_degradation,
            "severities": list(self.severities),
            "n_realisations": self.n_realisations,
            "clean": dict(self.clean),
            "yield_curves": {c: self.yield_curve(c) for c in self.chains()},
            "failures": sum(1 for r in self.rows if r.error is not None),
            "rows": len(self.rows),
        }


class MonteCarloYield:
    """Sweeps fault severity x chip realisations for one or more chains.

    Parameters
    ----------
    evaluators:
        Chain label -> :class:`FrontEndEvaluator` (typically
        ``{"baseline": ..., "cs": ...}`` sharing one corpus).
    points:
        Chain label -> the :class:`DesignPoint` to stress (typically the
        Fig. 7 b optima).  Keys must match ``evaluators``.
    suite:
        The fault plan; it is re-scaled to each severity via
        :meth:`FaultSuite.scaled`, so the models' own severities act as
        relative weights only insofar as their ``max_*`` parameters
        differ.
    severities:
        Severity grid.  0 need not be included -- the clean reference is
        always evaluated separately.
    n_realisations:
        Independent fault realisations per (chain, severity) cell.
    metric:
        Metric key the spec is written against (default ``accuracy``;
        falls back to ``snr_db`` when the evaluator has no detector).
    max_degradation:
        Spec: a realisation *yields* when it completes without error and
        ``clean_metric - metric <= max_degradation`` (metric NaN fails).
    policy:
        :class:`ExecutionPolicy` guarding each evaluation (timeout /
        retries), reusing the sweep engine's fault isolation so a
        diverging solve becomes a failed row, not a hung analysis.
    """

    def __init__(
        self,
        evaluators: dict[str, FrontEndEvaluator],
        points: dict[str, DesignPoint],
        suite: FaultSuite,
        severities: tuple[float, ...] | list[float] = (0.1, 0.25, 0.5, 1.0),
        n_realisations: int = 8,
        metric: str = "accuracy",
        max_degradation: float = 0.05,
        policy: ExecutionPolicy = DEFAULT_POLICY,
    ):
        missing = set(evaluators) - set(points)
        if missing:
            raise ValueError(f"no design point for chain(s): {sorted(missing)}")
        if not severities:
            raise ValueError("severities must be non-empty")
        for severity in severities:
            if not 0.0 <= severity <= 1.0:
                raise ValueError(f"severities must be in [0, 1], got {severity}")
        if n_realisations < 1:
            raise ValueError(f"n_realisations must be >= 1, got {n_realisations}")
        self.evaluators = dict(evaluators)
        self.points = dict(points)
        self.suite = suite
        self.severities = tuple(float(s) for s in severities)
        self.n_realisations = int(n_realisations)
        self.metric = metric
        self.max_degradation = float(max_degradation)
        self.policy = policy

    def _metric_of(self, evaluation) -> float | None:
        value = evaluation.metrics.get(self.metric)
        if value is None and self.metric == "accuracy":
            value = evaluation.metrics.get("snr_db")
        return None if value is None else float(value)

    def run(self, telemetry: Telemetry | None = None) -> YieldResult:
        """Run the full severity x realisation grid (serial, deterministic)."""
        tel = telemetry if telemetry is not None else get_active()
        result = YieldResult(
            metric=self.metric,
            max_degradation=self.max_degradation,
            severities=self.severities,
            n_realisations=self.n_realisations,
        )
        # Activate ``tel`` ambiently so in-chain counters (faults.applied,
        # solver spans) land in the same sink as the sweep counters.
        with activate(tel), tel.span("robustness.total"):
            for chain, evaluator in self.evaluators.items():
                point = self.points[chain]
                clean_eval, elapsed, stats = evaluate_one_timed(
                    evaluator, point, False, self.policy
                )
                self._count(tel, stats, clean_eval)
                if clean_eval.error is not None:
                    raise RuntimeError(
                        f"clean reference evaluation failed for chain "
                        f"{chain!r}: {clean_eval.error}"
                    )
                clean_metric = self._metric_of(clean_eval)
                if clean_metric is None:
                    raise ValueError(
                        f"evaluator for {chain!r} produced no {self.metric!r} "
                        f"metric (available: {sorted(clean_eval.metrics)})"
                    )
                result.clean[chain] = clean_metric
                for severity in self.severities:
                    for realisation in range(self.n_realisations):
                        suite = self.suite.scaled(severity).with_realisation(
                            realisation
                        )
                        faulty = evaluator.with_chain_transform(suite)
                        evaluation, elapsed, stats = evaluate_one_timed(
                            faulty, point, False, self.policy
                        )
                        self._count(tel, stats, evaluation)
                        tel.count("robustness.evaluations")
                        metric = (
                            None
                            if evaluation.error is not None
                            else self._metric_of(evaluation)
                        )
                        degradation = (
                            None if metric is None else clean_metric - metric
                        )
                        ok = (
                            evaluation.error is None
                            and metric is not None
                            and math.isfinite(metric)
                            and degradation <= self.max_degradation
                        )
                        result.rows.append(
                            YieldRow(
                                chain=chain,
                                severity=severity,
                                realisation=realisation,
                                ok=ok,
                                metric=metric,
                                degradation=degradation,
                                error=evaluation.error,
                                elapsed_s=elapsed,
                            )
                        )
        return result

    @staticmethod
    def _count(tel: Telemetry, stats: dict, evaluation) -> None:
        if stats.get("retries"):
            tel.count("robustness.retries", stats["retries"])
        if stats.get("timeouts"):
            tel.count("robustness.timeouts", stats["timeouts"])
        if evaluation.error is not None:
            tel.count("robustness.failures")
