"""Fault injection and yield analysis for the simulated front-ends.

Three layers:

* :mod:`repro.faults.models` -- :class:`FaultModel` and the concrete
  non-idealities (dropouts, ADC bit faults, saturation bursts, gain
  drift, packet loss, NaN glitches), each a frozen picklable dataclass
  scaled by one ``severity`` knob.
* :mod:`repro.faults.injection` -- :class:`FaultBlock` (wraps a victim
  block without modifying it), :func:`inject` (applies a plan to a
  chain) and :class:`FaultSuite` (the picklable plan that plugs into
  :class:`~repro.core.explorer.FrontEndEvaluator` as a chain transform).
* :mod:`repro.faults.montecarlo` -- :class:`MonteCarloYield`, sweeping
  fault severity x chip realisations into a yield/degradation table.
"""

from repro.faults.injection import FaultBlock, FaultSuite, inject
from repro.faults.models import (
    AdcBitFlip,
    AdcStuckBit,
    FaultModel,
    GainDrift,
    NanGlitch,
    PacketLoss,
    SampleDropout,
    SaturationBurst,
)
from repro.faults.montecarlo import MonteCarloYield, YieldResult, YieldRow

__all__ = [
    "AdcBitFlip",
    "AdcStuckBit",
    "FaultBlock",
    "FaultModel",
    "FaultSuite",
    "GainDrift",
    "MonteCarloYield",
    "NanGlitch",
    "PacketLoss",
    "SampleDropout",
    "SaturationBurst",
    "YieldResult",
    "YieldRow",
    "inject",
]
