"""Attaching fault models to chains without modifying the blocks.

:class:`FaultBlock` wraps a victim :class:`~repro.core.block.Block`,
applying each attached :class:`~repro.faults.models.FaultModel` around
the victim's ``process``.  The wrapper *keeps the victim's name*, so tap
records, power reports and -- crucially -- the victim's own seed stream
(``ctx.rng(name)``) are untouched: with every severity at zero the
wrapped chain is bit-identical to the bare one.

Fault randomness comes from separate named streams
(``fault.<block>.<i>.<kind>.<stage>.r<realisation>``) of the same seed
registry, so fault realisations are deterministic functions of the master
seed, reproducible across serial/process/thread sweeps, and the
``realisation`` index varies the drawn fault pattern *without* touching
the design point (one design point, many simulated chip instances).

:func:`inject` applies a fault plan to a chain; :class:`FaultSuite` is
the frozen, picklable form of a plan that plugs into
:class:`~repro.core.explorer.FrontEndEvaluator` as a ``chain_transform``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.block import Block, SimulationContext
from repro.core.signal import Signal
from repro.core.telemetry import get_active
from repro.faults.models import FaultModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import SystemModel
    from repro.power.technology import DesignPoint


class FaultBlock(Block):
    """Wraps a block, corrupting its input and/or output signals.

    The wrapper impersonates the victim (same ``name``) so the rest of
    the system -- taps, power breakdown, the victim's noise streams -- is
    oblivious to the injection.
    """

    def __init__(
        self,
        inner: Block,
        faults: list[FaultModel] | tuple[FaultModel, ...],
        realisation: int = 0,
    ):
        super().__init__(inner.name)
        if isinstance(inner, FaultBlock):
            # Flatten nested wrappers: injection plans compose by
            # concatenation, not by stacking impersonators.
            faults = list(inner.faults) + list(faults)
            inner = inner.inner
        self.inner = inner
        self.faults = tuple(faults)
        self.realisation = int(realisation)

    def _stream(self, index: int, fault: FaultModel, stage: str) -> str:
        return (
            f"fault.{self.name}.{index}.{fault.kind}.{stage}.r{self.realisation}"
        )

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        tel = get_active()
        for index, fault in enumerate(self.faults):
            if fault.severity > 0:
                rng = ctx.rng(self._stream(index, fault, "in"))
                signal = fault.apply_input(signal, rng, self.inner)
                tel.count("faults.applied")
        signal = self.inner.process(signal, ctx)
        for index, fault in enumerate(self.faults):
            if fault.severity > 0:
                rng = ctx.rng(self._stream(index, fault, "out"))
                signal = fault.apply_output(signal, rng, self.inner)
        return signal

    def power(self, point: "DesignPoint") -> dict[str, float]:
        return self.inner.power(point)

    def reset(self) -> None:
        self.inner.reset()

    def __repr__(self) -> str:
        kinds = ",".join(f.kind for f in self.faults)
        return (
            f"FaultBlock(name={self.name!r}, faults=[{kinds}], "
            f"realisation={self.realisation})"
        )


def inject(
    chain: "SystemModel",
    plan: dict[str, FaultModel | list[FaultModel]] | list[tuple[str, FaultModel]],
    realisation: int = 0,
    missing_ok: bool = True,
) -> "SystemModel":
    """Wrap the named blocks of ``chain`` with their planned faults.

    ``plan`` maps block name -> fault model(s) (or is a list of
    ``(block_name, fault)`` pairs, preserving order).  Block names absent
    from the chain are skipped when ``missing_ok`` -- the same plan then
    serves both architectures (e.g. a ``cs_encoder`` entry is a no-op on
    the baseline chain).  The chain is modified in place and returned.
    """
    if isinstance(plan, dict):
        pairs = [
            (name, fault)
            for name, faults in plan.items()
            for fault in (faults if isinstance(faults, (list, tuple)) else [faults])
        ]
    else:
        pairs = list(plan)
    grouped: dict[str, list[FaultModel]] = {}
    for name, fault in pairs:
        if not isinstance(fault, FaultModel):
            raise TypeError(f"plan entry for {name!r} is not a FaultModel: {fault!r}")
        grouped.setdefault(name, []).append(fault)
    names = set(chain.block_names())
    for name, faults in grouped.items():
        if name not in names:
            if missing_ok:
                continue
            raise KeyError(f"chain {chain.name!r} has no block named {name!r}")
        chain.replace(name, FaultBlock(chain.block(name), faults, realisation))
    return chain


@dataclass(frozen=True)
class FaultSuite:
    """A frozen, picklable fault plan usable as an evaluator chain transform.

    ``entries`` is a tuple of ``(block_name, fault)`` pairs.  Instances
    plug straight into
    :meth:`FrontEndEvaluator.with_chain_transform
    <repro.core.explorer.FrontEndEvaluator.with_chain_transform>`; being
    frozen dataclasses they pickle across process pools and contribute a
    stable :meth:`fingerprint` to the evaluator's cache key (so faulty
    and clean evaluations never collide in the on-disk cache).
    """

    entries: tuple[tuple[str, FaultModel], ...]
    realisation: int = 0

    def __call__(
        self, chain: "SystemModel", point: "DesignPoint", point_seed: int
    ) -> "SystemModel":
        del point, point_seed  # fault streams key off the simulation seed
        return inject(chain, list(self.entries), realisation=self.realisation)

    def scaled(self, severity: float) -> "FaultSuite":
        """Every model of the suite cloned at ``severity``."""
        return dataclasses.replace(
            self,
            entries=tuple(
                (name, fault.scaled(severity)) for name, fault in self.entries
            ),
        )

    def with_realisation(self, realisation: int) -> "FaultSuite":
        """Same plan, different simulated chip instance."""
        return dataclasses.replace(self, realisation=int(realisation))

    def describe(self) -> str:
        body = ";".join(f"{name}:{fault.describe()}" for name, fault in self.entries)
        return f"faultsuite[r{self.realisation}]({body})"

    def fingerprint(self) -> str:
        return self.describe()

    def __len__(self) -> int:
        return len(self.entries)
