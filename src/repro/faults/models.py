"""Composable fault models for the simulated front-end.

Each :class:`FaultModel` is a *frozen, picklable description* of one
non-ideality, parameterised by a single ``severity`` knob in [0, 1] so a
Monte-Carlo yield sweep can scale every model with one axis.  Models do
not modify the blocks they afflict: a
:class:`~repro.faults.injection.FaultBlock` wraps the victim block and
calls :meth:`FaultModel.apply_input` / :meth:`FaultModel.apply_output`
around its ``process``, drawing randomness from a dedicated named stream
of the simulation's seed registry.  Because the victim keeps its own
stream untouched, a chain with all severities at zero is *bit-identical*
to the unwrapped chain -- the invariant the determinism tests pin.

Severity semantics by model (all linear in ``severity`` unless noted):

========================  ====================================================
model                     ``severity`` scales ...
========================  ====================================================
:class:`SampleDropout`    fraction of samples dropped (up to ``max_rate``)
:class:`AdcBitFlip`       fraction of conversions with one flipped bit
:class:`AdcStuckBit`      probability this chip instance has a stuck bit
:class:`SaturationBurst`  fraction of samples inside saturation bursts, and
                          the supply-droop clip-level reduction
:class:`GainDrift`        peak relative gain drift over the record
:class:`PacketLoss`       fraction of TX packets/frames lost
:class:`NanGlitch`        probability the stream is hit by NaN glitches
========================  ====================================================
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from repro.core.signal import Signal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.block import Block


def _forward_fill(data: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Replace dropped samples with the last kept value (along last axis).

    A dropped leading sample holds the original first value -- there is
    nothing earlier to hold.  Vectorised: the index of the last kept
    sample at each position is a running maximum over kept indices.
    """
    n = data.shape[-1]
    positions = np.broadcast_to(np.arange(n), data.shape)
    held = np.maximum.accumulate(np.where(keep, positions, 0), axis=-1)
    return np.take_along_axis(data, held, axis=-1)


@dataclass(frozen=True)
class FaultModel(abc.ABC):
    """One injectable non-ideality; subclass and override an ``apply_*``.

    Frozen dataclass: instances are immutable, hashable, picklable (they
    cross process boundaries inside sweep evaluators) and cheap to clone
    at a different severity via :meth:`scaled`.

    ``severity`` is the single scaling knob, 0 (fault absent -- both
    hooks must be exact no-ops) to 1 (worst case the model describes).
    """

    severity: float = 0.1

    #: Short slug identifying the model kind in stream names/fingerprints.
    kind: ClassVar[str] = "fault"

    def __post_init__(self) -> None:
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError(f"severity must be in [0, 1], got {self.severity}")

    def apply_input(
        self, signal: Signal, rng: np.random.Generator, block: "Block"
    ) -> Signal:
        """Corrupt the signal *entering* the wrapped block (default no-op)."""
        del rng, block
        return signal

    def apply_output(
        self, signal: Signal, rng: np.random.Generator, block: "Block"
    ) -> Signal:
        """Corrupt the signal *leaving* the wrapped block (default no-op)."""
        del rng, block
        return signal

    def scaled(self, severity: float) -> "FaultModel":
        """Clone of this model at a different severity."""
        return dataclasses.replace(self, severity=severity)

    def describe(self) -> str:
        """Stable textual identity (feeds evaluator cache fingerprints)."""
        fields = ",".join(
            f"{f.name}={getattr(self, f.name)!r}"
            for f in dataclasses.fields(self)
        )
        return f"{self.kind}({fields})"


@dataclass(frozen=True)
class SampleDropout(FaultModel):
    """Random sample dropouts: the hold/readout chain misses conversions.

    A fraction ``severity * max_rate`` of output samples is replaced by
    the previous held value (``mode="hold"``, the S&H's natural failure)
    or by zero (``mode="zero"``).
    """

    max_rate: float = 0.1
    mode: str = "hold"

    kind: ClassVar[str] = "sample_dropout"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.max_rate <= 1.0:
            raise ValueError(f"max_rate must be in [0, 1], got {self.max_rate}")
        if self.mode not in ("hold", "zero"):
            raise ValueError(f"mode must be 'hold' or 'zero', got {self.mode!r}")

    def apply_output(
        self, signal: Signal, rng: np.random.Generator, block: "Block"
    ) -> Signal:
        del block
        p = self.severity * self.max_rate
        if p <= 0:
            return signal
        keep = rng.random(signal.data.shape) >= p
        if keep.all():
            return signal
        if self.mode == "zero":
            data = np.where(keep, signal.data, 0.0)
        else:
            data = _forward_fill(signal.data, keep)
        return signal.replaced(data=data)


@dataclass(frozen=True)
class AdcBitFlip(FaultModel):
    """Transient single-bit errors in ADC conversions.

    A fraction ``severity * max_rate`` of conversions has one uniformly
    chosen output bit flipped -- a metastable latch or an SEU in the SAR
    register.  Wraps the ADC block (needs ``n_bits``/``v_fs``, taken from
    the signal's ``adc_bits``/``adc_v_fs`` annotations).
    """

    max_rate: float = 0.02

    kind: ClassVar[str] = "adc_bit_flip"

    def apply_output(
        self, signal: Signal, rng: np.random.Generator, block: "Block"
    ) -> Signal:
        p = self.severity * self.max_rate
        if p <= 0:
            return signal
        n_bits = signal.annotations.get("adc_bits", getattr(block, "n_bits", None))
        v_fs = signal.annotations.get("adc_v_fs", getattr(block, "v_fs", None))
        if n_bits is None or v_fs is None:
            raise ValueError(
                f"{self.kind} needs adc_bits/adc_v_fs annotations (or an ADC "
                f"block); wrap the ADC, not {block.name!r}"
            )
        lsb = v_fs / 2.0**n_bits
        codes = np.round((signal.data + v_fs / 2.0 - lsb / 2.0) / lsb).astype(np.int64)
        hit = rng.random(codes.shape) < p
        if not hit.any():
            return signal
        bits = rng.integers(0, n_bits, size=codes.shape)
        flipped = np.where(hit, codes ^ (np.int64(1) << bits), codes)
        data = flipped * lsb - v_fs / 2.0 + lsb / 2.0
        return signal.replaced(data=data)


@dataclass(frozen=True)
class AdcStuckBit(FaultModel):
    """A manufacturing defect: one ADC output bit stuck at 0 or 1.

    Per *chip realisation* the defect either exists (probability
    ``severity``) or not; an afflicted instance has one uniformly chosen
    bit stuck at a uniformly chosen level for every conversion.  ``bit``
    pins the afflicted bit (LSB = 0) for targeted experiments.
    """

    bit: int | None = None

    kind: ClassVar[str] = "adc_stuck_bit"

    def apply_output(
        self, signal: Signal, rng: np.random.Generator, block: "Block"
    ) -> Signal:
        if self.severity <= 0 or rng.random() >= self.severity:
            return signal
        n_bits = signal.annotations.get("adc_bits", getattr(block, "n_bits", None))
        v_fs = signal.annotations.get("adc_v_fs", getattr(block, "v_fs", None))
        if n_bits is None or v_fs is None:
            raise ValueError(
                f"{self.kind} needs adc_bits/adc_v_fs annotations (or an ADC "
                f"block); wrap the ADC, not {block.name!r}"
            )
        bit = self.bit if self.bit is not None else int(rng.integers(0, n_bits))
        stuck_high = bool(rng.integers(0, 2))
        lsb = v_fs / 2.0**n_bits
        codes = np.round((signal.data + v_fs / 2.0 - lsb / 2.0) / lsb).astype(np.int64)
        mask = np.int64(1) << bit
        codes = (codes | mask) if stuck_high else (codes & ~mask)
        data = codes * lsb - v_fs / 2.0 + lsb / 2.0
        return signal.replaced(data=data)


@dataclass(frozen=True)
class SaturationBurst(FaultModel):
    """Supply-droop saturation bursts at the LNA output.

    Models interference/motion artefacts driving the amplifier into its
    rails: random bursts of ``burst_length`` samples, together covering a
    fraction ``severity * max_fraction`` of the record, are clipped to a
    droop-reduced level ``clip_level * (1 - droop * severity)``.
    """

    max_fraction: float = 0.25
    burst_length: int = 64
    droop: float = 0.6

    kind: ClassVar[str] = "saturation_burst"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.burst_length < 1:
            raise ValueError(f"burst_length must be >= 1, got {self.burst_length}")
        if not 0.0 < self.droop <= 1.0:
            raise ValueError(f"droop must be in (0, 1], got {self.droop}")

    def apply_output(
        self, signal: Signal, rng: np.random.Generator, block: "Block"
    ) -> Signal:
        fraction = self.severity * self.max_fraction
        if fraction <= 0:
            return signal
        data = signal.data
        flat = data.reshape(-1)
        n = flat.size
        n_bursts = max(1, int(round(fraction * n / self.burst_length)))
        starts = rng.integers(0, max(1, n - self.burst_length + 1), size=n_bursts)
        clip_level = getattr(block, "clip_level", None) or float(
            np.max(np.abs(flat)) or 1.0
        )
        level = clip_level * (1.0 - self.droop * self.severity)
        in_burst = np.zeros(n, dtype=bool)
        for start in starts:
            in_burst[start : start + self.burst_length] = True
        clipped = np.where(in_burst, np.clip(flat, -level, level), flat)
        return signal.replaced(data=clipped.reshape(data.shape))


@dataclass(frozen=True)
class GainDrift(FaultModel):
    """Slow multiplicative gain drift (supply/temperature wander).

    The block's output is scaled by ``1 + a sin(2 pi f t + phi)`` with
    peak deviation ``a = severity * max_drift``; the drift completes one
    to three cycles over the record (drawn per realisation, with random
    phase), so the error is strongly correlated in time -- unlike white
    noise, which the chains already model.
    """

    max_drift: float = 0.2

    kind: ClassVar[str] = "gain_drift"

    def apply_output(
        self, signal: Signal, rng: np.random.Generator, block: "Block"
    ) -> Signal:
        del block
        amplitude = self.severity * self.max_drift
        if amplitude <= 0:
            return signal
        data = signal.data
        n = data.reshape(-1).size
        cycles = rng.uniform(1.0, 3.0)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        t = np.arange(n) / n
        drift = 1.0 + amplitude * np.sin(2.0 * np.pi * cycles * t + phase)
        return signal.replaced(data=(data.reshape(-1) * drift).reshape(data.shape))


@dataclass(frozen=True)
class PacketLoss(FaultModel):
    """Lost transmitter packets.

    A fraction ``severity * max_rate`` of packets never reaches the
    receiver and is read as zeros.  On a framed (2-D) stream -- the CS
    chain's (n_frames, M) measurements -- a packet is a frame (row); on a
    1-D stream a packet is ``packet_samples`` consecutive samples.
    """

    max_rate: float = 0.3
    packet_samples: int = 64

    kind: ClassVar[str] = "packet_loss"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.packet_samples < 1:
            raise ValueError(
                f"packet_samples must be >= 1, got {self.packet_samples}"
            )

    def apply_output(
        self, signal: Signal, rng: np.random.Generator, block: "Block"
    ) -> Signal:
        del block
        p = self.severity * self.max_rate
        if p <= 0:
            return signal
        data = signal.data
        if data.ndim == 2:
            lost = rng.random(data.shape[0]) < p
            if not lost.any():
                return signal
            return signal.replaced(data=np.where(lost[:, None], 0.0, data))
        flat = data.reshape(-1)
        n_packets = -(-flat.size // self.packet_samples)
        lost = np.repeat(rng.random(n_packets) < p, self.packet_samples)[: flat.size]
        if not lost.any():
            return signal
        return signal.replaced(data=np.where(lost, 0.0, flat).reshape(data.shape))


@dataclass(frozen=True)
class NanGlitch(FaultModel):
    """Non-finite values entering the digital back-end.

    With probability ``severity`` the record suffers a glitch episode: a
    fraction ``max_rate`` of samples (at least one) becomes NaN --
    un-initialised buffer reads or radio CRC escapes.  This is the
    poison-pill fault: it validates that NaN propagates into *failed*
    yield rows (not silently optimistic metrics) and that the sweep
    machinery survives a solver chewing on NaN input.
    """

    max_rate: float = 0.005

    kind: ClassVar[str] = "nan_glitch"

    def apply_output(
        self, signal: Signal, rng: np.random.Generator, block: "Block"
    ) -> Signal:
        del block
        if self.severity <= 0 or rng.random() >= self.severity:
            return signal
        data = signal.data.astype(np.float64, copy=True)
        flat = data.reshape(-1)
        n_hit = max(1, int(round(self.max_rate * flat.size)))
        flat[rng.choice(flat.size, size=n_hit, replace=False)] = np.nan
        return signal.replaced(data=data)
