"""Raw-waveform frame-level seizure detector (the ref. [20] stand-in).

The paper scores front-ends with the CNN of Ullah et al. [20], which
consumes *raw EEG waveforms*.  This detector mirrors that interface: it
chops each record into fixed-length frames, feeds the raw samples into the
from-scratch MLP, and averages the frame probabilities into the
record-level decision.

Operating on raw samples (instead of spectral features) matters for the
pathfinding experiments: broadband front-end degradations -- LNA noise,
quantization error, reconstruction residue -- perturb every input
dimension directly, so detection accuracy responds smoothly and
monotonically to signal quality, exactly the behaviour the paper's
accuracy-vs-power sweeps rely on.  (Engineered band-power features are
largely blind to white noise: a 20 uV broadband floor adds only ~2 uV
inside the delta band.  A feature-based alternative is provided by
:class:`repro.detection.classifier.SeizureDetector`.)

Training applies continuum noise augmentation: each record is replicated
with white-noise levels drawn log-uniformly across the sweep range, so the
learned decision boundary is marginalised over noise levels rather than
anchored to a few discrete ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detection.mlp import Mlp, MlpConfig
from repro.util.rng import derive_seed, make_rng
from repro.util.validation import check_positive, check_positive_int


@dataclass
class FrameMlpDetector:
    """Record-level seizure classifier on raw waveform frames.

    Parameters
    ----------
    sample_rate:
        Rate of the records it will score, Hz.
    frame_length:
        Samples per frame (default 384 = the CS frame, so the detector's
        receptive field matches the reconstruction granularity).
    mlp_config:
        MLP hyper-parameters; the default (128, 48) hidden stack is sized
        for 384-sample inputs.
    augment_noise_range:
        (low, high) RMS bounds in volts of the log-uniform training noise
        augmentation; ``None`` disables augmentation.
    augment_copies:
        How many noise-augmented copies of the training set to add.
    seed:
        Master seed of augmentation and training.
    """

    sample_rate: float
    frame_length: int = 384
    mlp_config: MlpConfig = field(
        default_factory=lambda: MlpConfig(hidden_sizes=(128, 48), n_epochs=60, batch_size=64)
    )
    augment_noise_range: tuple[float, float] | None = (1e-6, 25e-6)
    augment_copies: int = 3
    seed: int = 11
    _mlp: Mlp | None = field(default=None, repr=False)
    _scale: float = field(default=1.0, repr=False)

    def __post_init__(self) -> None:
        check_positive("sample_rate", self.sample_rate)
        check_positive_int("frame_length", self.frame_length)
        if self.augment_noise_range is not None:
            lo, hi = self.augment_noise_range
            if not 0 < lo < hi:
                raise ValueError(f"invalid augment_noise_range {self.augment_noise_range}")

    # --- framing --------------------------------------------------------------

    def _frames(self, records: np.ndarray) -> np.ndarray:
        """(R, S) records -> (R, n_frames, frame_length), remainder dropped."""
        records = np.asarray(records, dtype=np.float64)
        if records.ndim != 2:
            raise ValueError(f"records must be (n_records, n_samples), got {records.shape}")
        n_frames = records.shape[1] // self.frame_length
        if n_frames == 0:
            raise ValueError(
                f"records of {records.shape[1]} samples are shorter than one frame "
                f"({self.frame_length})"
            )
        clipped = records[:, : n_frames * self.frame_length]
        return clipped.reshape(records.shape[0], n_frames, self.frame_length)

    # --- training ---------------------------------------------------------------

    def fit(self, records: np.ndarray, labels: np.ndarray) -> "FrameMlpDetector":
        """Train on clean records with continuum noise augmentation.

        The minority class is oversampled to balance before training.
        """
        labels = np.asarray(labels, dtype=int)
        frames = self._frames(records)
        rng = make_rng(derive_seed(self.seed, "augment"))

        variants = [records]
        if self.augment_noise_range is not None and self.augment_copies > 0:
            lo, hi = self.augment_noise_range
            for _ in range(self.augment_copies):
                levels = 10 ** rng.uniform(
                    np.log10(lo), np.log10(hi), size=(records.shape[0], 1)
                )
                variants.append(records + rng.normal(0.0, 1.0, records.shape) * levels)
        all_frames = np.concatenate([self._frames(v) for v in variants], axis=0)
        all_labels = np.tile(labels, len(variants))

        x = all_frames.reshape(-1, self.frame_length)
        y = np.repeat(all_labels, all_frames.shape[1])

        # Single global scale: preserves amplitude ratios between records
        # (ictal EEG is large -- that IS a feature), unlike per-frame
        # normalisation.
        self._scale = float(np.std(x))
        if self._scale == 0:
            raise ValueError("training records have zero variance")
        x = x / self._scale

        counts = np.bincount(y, minlength=2)
        if counts.min() > 0 and counts[0] != counts[1]:
            minority = int(np.argmin(counts))
            idx = np.flatnonzero(y == minority)
            reps = counts.max() // counts.min()
            extra = np.tile(idx, reps - 1)
            x = np.vstack([x, x[extra]])
            y = np.concatenate([y, y[extra]])

        config = MlpConfig(**{**self.mlp_config.__dict__, "seed": derive_seed(self.seed, "mlp")})
        self._mlp = Mlp(n_inputs=self.frame_length, n_classes=2, config=config).fit(x, y)
        return self

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._mlp is not None

    def _require_fitted(self) -> Mlp:
        if self._mlp is None:
            raise RuntimeError("detector is not fitted; call fit() first")
        return self._mlp

    # --- inference -----------------------------------------------------------------

    def predict_proba(self, records: np.ndarray) -> np.ndarray:
        """Record-level seizure probability = mean over frame probabilities."""
        mlp = self._require_fitted()
        frames = self._frames(records)
        flat = frames.reshape(-1, self.frame_length) / self._scale
        frame_probs = mlp.predict_proba(flat)[:, 1]
        return frame_probs.reshape(frames.shape[0], frames.shape[1]).mean(axis=1)

    def predict(self, records: np.ndarray) -> np.ndarray:
        """Hard 0/1 record decisions (probability threshold 0.5)."""
        return (self.predict_proba(records) >= 0.5).astype(int)

    def accuracy(self, records: np.ndarray, labels: np.ndarray) -> float:
        """Hard record-level classification accuracy."""
        return float(np.mean(self.predict(records) == np.asarray(labels, dtype=int)))

    def soft_accuracy(self, records: np.ndarray, labels: np.ndarray) -> float:
        """Mean probability assigned to the correct class.

        A continuous, low-variance estimator of the expected accuracy over
        the record population -- preferable to hard accuracy when the
        evaluation set is small (the quantisation of hard accuracy at
        1/n_records otherwise masks sub-percent effects the paper's
        500-record evaluation can resolve).
        """
        labels = np.asarray(labels, dtype=int)
        probs = self.predict_proba(records)
        correct = np.where(labels == 1, probs, 1.0 - probs)
        return float(np.mean(correct))

    def sensitivity_specificity(
        self, records: np.ndarray, labels: np.ndarray
    ) -> tuple[float, float]:
        """(sensitivity, specificity) of the hard decisions."""
        labels = np.asarray(labels, dtype=int)
        predictions = self.predict(records)
        tp = int(np.sum((labels == 1) & (predictions == 1)))
        fn = int(np.sum((labels == 1) & (predictions == 0)))
        tn = int(np.sum((labels == 0) & (predictions == 0)))
        fp = int(np.sum((labels == 0) & (predictions == 1)))
        sensitivity = tp / (tp + fn) if (tp + fn) else 0.0
        specificity = tn / (tn + fp) if (tn + fp) else 0.0
        return float(sensitivity), float(specificity)
