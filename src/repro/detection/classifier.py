"""Seizure detector: feature standardisation + MLP, trained once, reused.

The detector is the *goal-function oracle* of the accuracy experiments
(Figs. 7 b, 9, 10): it is trained once on the clean dataset and then
evaluates signals as they emerge from each candidate front-end, so a
front-end is graded by how much its degradation moves records across the
learned decision boundary -- exactly the paper's protocol with the CNN of
ref. [20].
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detection.features import FEATURE_NAMES, extract_feature_matrix
from repro.detection.mlp import Mlp, MlpConfig
from repro.eeg.dataset import EegDataset
from repro.util.validation import check_positive


@dataclass
class SeizureDetector:
    """Record-level seizure classifier.

    Parameters
    ----------
    sample_rate:
        Rate of the records it will score, Hz (features are extracted at
        this rate; train and inference must agree).
    mlp_config:
        Hyper-parameters of the MLP backend.
    """

    sample_rate: float
    mlp_config: MlpConfig = field(default_factory=MlpConfig)
    _mlp: Mlp | None = field(default=None, repr=False)
    _mean: np.ndarray | None = field(default=None, repr=False)
    _std: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        check_positive("sample_rate", self.sample_rate)

    # --- training -----------------------------------------------------------

    def fit_arrays(self, records: np.ndarray, labels: np.ndarray) -> "SeizureDetector":
        """Train on a (n_records, n_samples) matrix with 0/1 labels.

        The minority class is oversampled to balance (seizures are 1-in-5
        in the Bonn layout); otherwise the cross-entropy optimum trades
        sensitivity for specificity.
        """
        features = extract_feature_matrix(records, self.sample_rate)
        labels = np.asarray(labels, dtype=int)
        self._mean = features.mean(axis=0)
        std = features.std(axis=0)
        self._std = np.where(std > 0, std, 1.0)
        standardized = (features - self._mean) / self._std
        counts = np.bincount(labels, minlength=2)
        if counts.min() > 0 and counts[0] != counts[1]:
            minority = int(np.argmin(counts))
            idx = np.flatnonzero(labels == minority)
            reps = counts.max() // counts.min()
            extra = np.tile(idx, reps - 1)
            standardized = np.vstack([standardized, standardized[extra]])
            labels = np.concatenate([labels, labels[extra]])
        self._mlp = Mlp(
            n_inputs=len(FEATURE_NAMES), n_classes=2, config=self.mlp_config
        ).fit(standardized, labels)
        return self

    def fit(self, dataset: EegDataset) -> "SeizureDetector":
        """Train on a dataset (records must match ``sample_rate``)."""
        if abs(dataset.sample_rate - self.sample_rate) > 1e-9:
            raise ValueError(
                f"dataset rate {dataset.sample_rate} Hz differs from detector rate "
                f"{self.sample_rate} Hz; resample first"
            )
        return self.fit_arrays(dataset.stacked(), dataset.labels())

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._mlp is not None

    def _require_fitted(self) -> Mlp:
        if self._mlp is None:
            raise RuntimeError("detector is not fitted; call fit() first")
        return self._mlp

    # --- inference -------------------------------------------------------------

    def _standardize(self, records: np.ndarray) -> np.ndarray:
        features = extract_feature_matrix(records, self.sample_rate)
        return (features - self._mean) / self._std

    def predict(self, records: np.ndarray) -> np.ndarray:
        """0/1 predictions for a (n_records, n_samples) matrix."""
        return self._require_fitted().predict(self._standardize(records))

    def predict_proba(self, records: np.ndarray) -> np.ndarray:
        """Seizure probabilities, shape (n_records,)."""
        return self._require_fitted().predict_proba(self._standardize(records))[:, 1]

    def accuracy(self, records: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled batch."""
        predictions = self.predict(records)
        return float(np.mean(predictions == np.asarray(labels, dtype=int)))

    def soft_accuracy(self, records: np.ndarray, labels: np.ndarray) -> float:
        """Mean probability assigned to the correct class.

        A continuous, low-variance estimator of the expected accuracy over
        the record population; preferred at reduced evaluation scale where
        hard accuracy is quantised at 1/n_records (see
        :class:`repro.core.explorer.FrontEndEvaluator`).
        """
        labels = np.asarray(labels, dtype=int)
        probs = self.predict_proba(records)
        correct = np.where(labels == 1, probs, 1.0 - probs)
        return float(np.mean(correct))

    def confusion(self, records: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """2x2 confusion matrix [[TN, FP], [FN, TP]]."""
        predictions = self.predict(records)
        labels = np.asarray(labels, dtype=int)
        matrix = np.zeros((2, 2), dtype=int)
        for truth, predicted in zip(labels, predictions):
            matrix[truth, predicted] += 1
        return matrix

    def sensitivity_specificity(
        self, records: np.ndarray, labels: np.ndarray
    ) -> tuple[float, float]:
        """(sensitivity, specificity) -- the clinical reporting pair."""
        matrix = self.confusion(records, labels)
        tn, fp = matrix[0]
        fn, tp = matrix[1]
        sensitivity = tp / (tp + fn) if (tp + fn) > 0 else 0.0
        specificity = tn / (tn + fp) if (tn + fp) > 0 else 0.0
        return float(sensitivity), float(specificity)
