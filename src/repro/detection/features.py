"""Feature extraction for EEG seizure detection.

The paper scores front-ends by the accuracy of a neural detector (deep CNN
of Ullah et al. [20]) on the acquired signals.  This reproduction uses the
classic hand-crafted EEG feature set feeding a from-scratch MLP -- the
established pre-deep-learning pipeline, whose accuracy responds to signal
degradation the same way (it is a *goal-function oracle*, not the paper's
contribution).

Per record (or window) the extractor computes:

* relative band powers in delta/theta/alpha/beta/gamma (Welch PSD),
* log total power (amplitude information -- ictal EEG is large),
* line length (the workhorse seizure feature: mean absolute derivative),
* Hjorth mobility and complexity,
* zero-crossing rate, kurtosis, peak-to-RMS ratio,
* spectral edge frequency (95 % energy).

All features are amplitude-aware where clinically meaningful but
individually bounded, so a single saturated value cannot dominate.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.eeg.dataset import EegDataset
from repro.util.validation import check_positive

#: Feature bands in Hz (gamma capped at 45 Hz, below EEG mains filtering).
FEATURE_BANDS = (
    ("delta", 0.5, 4.0),
    ("theta", 4.0, 8.0),
    ("alpha", 8.0, 13.0),
    ("beta", 13.0, 30.0),
    ("gamma", 30.0, 45.0),
)

#: Ordered names of the extracted features.
FEATURE_NAMES = tuple(
    [f"relpow_{name}" for name, _, _ in FEATURE_BANDS]
    + [
        "log_power",
        "line_length",
        "hjorth_mobility",
        "hjorth_complexity",
        "zero_cross_rate",
        "kurtosis",
        "peak_to_rms",
        "spectral_edge",
    ]
)


def _band_powers(data: np.ndarray, fs: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Welch PSD and band powers; returns (freqs, psd, band power array)."""
    nperseg = min(data.size, int(fs * 2))
    freqs, psd = sp_signal.welch(data, fs=fs, nperseg=nperseg)
    powers = np.empty(len(FEATURE_BANDS))
    for i, (_, low, high) in enumerate(FEATURE_BANDS):
        mask = (freqs >= low) & (freqs < high)
        powers[i] = float(np.trapezoid(psd[mask], freqs[mask])) if np.any(mask) else 0.0
    return freqs, psd, powers


def extract_features(data: np.ndarray, fs: float) -> np.ndarray:
    """Feature vector of one record, ordered as :data:`FEATURE_NAMES`."""
    check_positive("fs", fs)
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 1:
        raise ValueError(f"expected 1-D record, got shape {data.shape}")
    if data.size < 16:
        raise ValueError(f"record too short for features ({data.size} samples)")
    data = data - np.mean(data)

    freqs, psd, band_powers = _band_powers(data, fs)
    total_band = float(band_powers.sum())
    rel_powers = band_powers / total_band if total_band > 0 else np.zeros_like(band_powers)

    variance = float(np.var(data))
    log_power = float(np.log10(variance + 1e-30))

    diff1 = np.diff(data)
    line_length = float(np.mean(np.abs(diff1))) * fs  # volts/second, rate-invariant
    # Express line length logarithmically: spans orders of magnitude.
    line_length = float(np.log10(line_length + 1e-30))

    var_d1 = float(np.var(diff1))
    mobility = np.sqrt(var_d1 / variance) if variance > 0 else 0.0
    diff2 = np.diff(diff1)
    var_d2 = float(np.var(diff2))
    mobility_d1 = np.sqrt(var_d2 / var_d1) if var_d1 > 0 else 0.0
    complexity = mobility_d1 / mobility if mobility > 0 else 0.0

    zero_cross = float(np.mean(np.abs(np.diff(np.signbit(data))))) if data.size > 1 else 0.0

    std = np.sqrt(variance)
    if std > 0:
        centred = data / std
        kurtosis = float(np.mean(centred**4)) - 3.0
        peak_to_rms = float(np.max(np.abs(centred)))
    else:
        kurtosis = 0.0
        peak_to_rms = 0.0
    kurtosis = float(np.clip(kurtosis, -10.0, 50.0))
    peak_to_rms = float(np.clip(peak_to_rms, 0.0, 50.0))

    cum = np.cumsum(psd)
    total = cum[-1]
    if total > 0:
        edge_idx = int(np.searchsorted(cum, 0.95 * total))
        spectral_edge = float(freqs[min(edge_idx, freqs.size - 1)])
    else:
        spectral_edge = 0.0

    return np.concatenate(
        [
            rel_powers,
            [
                log_power,
                line_length,
                mobility,
                complexity,
                zero_cross,
                kurtosis,
                peak_to_rms,
                spectral_edge,
            ],
        ]
    )


def extract_feature_matrix(records: np.ndarray, fs: float) -> np.ndarray:
    """Feature matrix for a (n_records, n_samples) batch."""
    records = np.asarray(records, dtype=np.float64)
    if records.ndim != 2:
        raise ValueError(f"expected (n_records, n_samples), got shape {records.shape}")
    return np.stack([extract_features(row, fs) for row in records])


def dataset_features(dataset: EegDataset) -> tuple[np.ndarray, np.ndarray]:
    """(features, labels) of a whole dataset."""
    features = np.stack(
        [extract_features(record.data, record.sample_rate) for record in dataset]
    )
    return features, dataset.labels()
