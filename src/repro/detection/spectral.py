"""Spectral-comb seizure detector: deterministic accuracy oracle.

Generalised spike-wave seizures are *rhythmic*: a 2.5-4.5 Hz discharge
with strong harmonics.  The classical detector family (Gotman-style
spectral detectors) therefore scores a record by how much of its power is
concentrated on a low-frequency harmonic comb.  This module implements
that detector with a two-feature logistic read-out:

* ``comb ratio`` -- the best fraction of in-band power sitting on a
  harmonic comb ``{f0, 2 f0, 3 f0, 4 f0}`` over the discharge-frequency
  grid, against the total 0.5-45 Hz power;
* ``gamma power`` -- power in the low-voltage-fast-activity band
  (35-45 Hz), the classical low-amplitude seizure-onset marker and the
  noise-critical feature: the 1/f background is weak there, so the
  front-end's microvolt noise floor competes with it directly;
* ``log power`` -- total in-band power (ictal EEG is large).

Why this oracle (rather than a learned network) drives the experiments:
its score is a *smooth, monotone* functional of signal quality.  Broadband
front-end noise lifts the off-comb floor and dilutes the comb ratio;
quantization does the same; CS reconstruction -- which preserves dominant
spectral lines while shrinking the broadband floor -- passes it almost
unharmed.  That is precisely the averaging-effect asymmetry the paper
reports, obtained here from first principles instead of from the training
noise of a small neural network.  (Learned alternatives are provided by
:class:`repro.detection.classifier.SeizureDetector` and
:class:`repro.detection.frame_detector.FrameMlpDetector`.)

The logistic calibration (2 weights + bias, deterministic Newton solve)
is fitted once on clean training records; accuracy and the soft accuracy
estimator then evaluate any processed records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import signal as sp_signal

from repro.util.validation import check_positive


def logistic_fit(
    features: np.ndarray,
    labels: np.ndarray,
    l2: float = 1e-3,
    n_iter: int = 50,
) -> np.ndarray:
    """L2-regularised logistic regression via Newton's method.

    Returns weights of shape (n_features + 1,) with the bias last.
    Deterministic: no initialisation randomness, convex objective.
    """
    x = np.hstack([features, np.ones((features.shape[0], 1))])
    y = np.asarray(labels, dtype=np.float64)
    w = np.zeros(x.shape[1])
    for _ in range(n_iter):
        z = x @ w
        p = 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
        gradient = x.T @ (p - y) + l2 * w
        hessian = (x * (p * (1 - p))[:, None]).T @ x + l2 * np.eye(x.shape[1])
        step = np.linalg.solve(hessian, gradient)
        w = w - step
        if np.max(np.abs(step)) < 1e-10:
            break
    return w


def logistic_predict(weights: np.ndarray, features: np.ndarray) -> np.ndarray:
    """Probabilities under a fitted logistic model."""
    x = np.hstack([features, np.ones((features.shape[0], 1))])
    z = np.clip(x @ weights, -30, 30)
    return 1.0 / (1.0 + np.exp(-z))


@dataclass
class SpectralCombDetector:
    """Deterministic rhythmic-discharge detector with logistic read-out.

    Parameters
    ----------
    sample_rate:
        Rate of the records it scores, Hz.
    f0_grid:
        Candidate discharge fundamentals, Hz (paper generator: 2.5-4.5 Hz).
    n_harmonics:
        Harmonics included in the comb (fundamental counts as the first).
    comb_halfwidth:
        Half-width of each comb tooth in Hz.
    band:
        (low, high) analysis band in Hz for the total-power reference.
    gamma_band:
        (low, high) LVFA band in Hz (matches the generator's marker).
    reference_band:
        (low, high) marker-free band in Hz used as the broadband-floor
        reference: the logistic read-out learns the gamma power *relative*
        to this floor, the standard normalisation of clinical spectral
        detectors.  It keeps the calibration valid when the front-end's
        noise floor rises (the decision degrades through estimator
        variance rather than collapsing through a shifted threshold).
    """

    sample_rate: float
    f0_grid: tuple[float, ...] = tuple(np.arange(2.2, 4.9, 0.1).round(2))
    n_harmonics: int = 4
    comb_halfwidth: float = 0.35
    band: tuple[float, float] = (0.5, 45.0)
    gamma_band: tuple[float, float] = (35.0, 45.0)
    reference_band: tuple[float, float] = (55.0, 85.0)
    _weights: np.ndarray | None = field(default=None, repr=False)
    _feature_mean: np.ndarray | None = field(default=None, repr=False)
    _feature_std: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        check_positive("sample_rate", self.sample_rate)
        if not self.f0_grid:
            raise ValueError("f0_grid must be non-empty")
        low, high = self.band
        if not 0 < low < high < self.sample_rate / 2:
            raise ValueError(f"invalid analysis band {self.band}")
        r_lo, r_hi = self.reference_band
        if not 0 < r_lo < r_hi <= self.sample_rate / 2:
            raise ValueError(f"invalid reference band {self.reference_band}")

    # --- score -----------------------------------------------------------------

    def _psd(self, records: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        nperseg = min(records.shape[1], int(self.sample_rate * 4))
        freqs, psd = sp_signal.welch(records, fs=self.sample_rate, nperseg=nperseg, axis=1)
        return freqs, psd

    def features(self, records: np.ndarray) -> np.ndarray:
        """(n_records, 3) features: [log comb ratio, log gamma power, log power]."""
        records = np.asarray(records, dtype=np.float64)
        if records.ndim != 2:
            raise ValueError(f"records must be (n_records, n_samples), got {records.shape}")
        freqs, psd = self._psd(records)
        low, high = self.band
        in_band = (freqs >= low) & (freqs <= high)
        total = np.trapezoid(psd[:, in_band], freqs[in_band], axis=1)
        total = np.where(total > 0, total, 1e-30)

        best = np.zeros(records.shape[0])
        for f0 in self.f0_grid:
            mask = np.zeros_like(freqs, dtype=bool)
            for k in range(1, self.n_harmonics + 1):
                center = k * f0
                mask |= (freqs >= center - self.comb_halfwidth) & (
                    freqs <= center + self.comb_halfwidth
                )
            mask &= in_band
            comb = np.trapezoid(psd[:, mask], freqs[mask], axis=1)
            best = np.maximum(best, comb / total)

        g_lo, g_hi = self.gamma_band
        gamma_mask = (freqs >= g_lo) & (freqs <= g_hi)
        gamma = np.trapezoid(psd[:, gamma_mask], freqs[gamma_mask], axis=1)

        r_lo, r_hi = self.reference_band
        ref_mask = (freqs >= r_lo) & (freqs <= r_hi)
        reference = np.trapezoid(psd[:, ref_mask], freqs[ref_mask], axis=1)
        # Floor-compensated gamma contrast: marker power over the local
        # broadband floor (scaled to the gamma bandwidth).
        bandwidth_ratio = (g_hi - g_lo) / (r_hi - r_lo)
        contrast = (gamma + 1e-30) / (reference * bandwidth_ratio + 1e-30)
        return np.column_stack(
            [
                np.log10(best + 1e-12),
                np.log10(contrast),
                np.log10(total),
            ]
        )

    # --- calibration -----------------------------------------------------------

    def fit(self, records: np.ndarray, labels: np.ndarray) -> "SpectralCombDetector":
        """Calibrate the logistic read-out on clean labelled records."""
        features = self.features(records)
        self._feature_mean = features.mean(axis=0)
        std = features.std(axis=0)
        self._feature_std = np.where(std > 0, std, 1.0)
        standardized = (features - self._feature_mean) / self._feature_std
        self._weights = logistic_fit(standardized, np.asarray(labels, dtype=int))
        return self

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._weights is not None

    # --- inference ------------------------------------------------------------

    def predict_proba(self, records: np.ndarray) -> np.ndarray:
        """Seizure probability per record."""
        if self._weights is None:
            raise RuntimeError("detector is not fitted; call fit() first")
        features = (self.features(records) - self._feature_mean) / self._feature_std
        return logistic_predict(self._weights, features)

    def predict(self, records: np.ndarray) -> np.ndarray:
        """Hard 0/1 decisions at probability 0.5."""
        return (self.predict_proba(records) >= 0.5).astype(int)

    def accuracy(self, records: np.ndarray, labels: np.ndarray) -> float:
        """Hard record-level accuracy."""
        return float(np.mean(self.predict(records) == np.asarray(labels, dtype=int)))

    def soft_accuracy(self, records: np.ndarray, labels: np.ndarray) -> float:
        """Mean correct-class probability (continuous accuracy estimator)."""
        labels = np.asarray(labels, dtype=int)
        probs = self.predict_proba(records)
        correct = np.where(labels == 1, probs, 1.0 - probs)
        return float(np.mean(correct))

    def sensitivity_specificity(
        self, records: np.ndarray, labels: np.ndarray
    ) -> tuple[float, float]:
        """(sensitivity, specificity) of the hard decisions."""
        labels = np.asarray(labels, dtype=int)
        predictions = self.predict(records)
        tp = int(np.sum((labels == 1) & (predictions == 1)))
        fn = int(np.sum((labels == 1) & (predictions == 0)))
        tn = int(np.sum((labels == 0) & (predictions == 0)))
        fp = int(np.sum((labels == 0) & (predictions == 1)))
        sensitivity = tp / (tp + fn) if (tp + fn) else 0.0
        specificity = tn / (tn + fp) if (tn + fp) else 0.0
        return float(sensitivity), float(specificity)
