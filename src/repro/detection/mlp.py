"""From-scratch numpy multilayer perceptron.

A compact, dependency-free MLP classifier (ReLU hidden layers, softmax
output, cross-entropy loss, Adam optimiser, mini-batching, optional early
stopping) standing in for the deep CNN of the paper's ref. [20].  Written
for deterministic, seed-reproducible training -- a requirement for the
explorer, whose accuracy goal must be a pure function of the design point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import make_rng
from repro.util.validation import check_positive, check_positive_int


def _one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    out = np.zeros((labels.size, n_classes))
    out[np.arange(labels.size), labels] = 1.0
    return out


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically-stable softmax."""
    shifted = logits - np.max(logits, axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=1, keepdims=True)


def cross_entropy(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of predicted ``probabilities`` against labels."""
    clipped = np.clip(probabilities[np.arange(labels.size), labels], 1e-12, 1.0)
    return float(-np.mean(np.log(clipped)))


@dataclass
class MlpConfig:
    """Hyper-parameters of the MLP trainer."""

    hidden_sizes: tuple[int, ...] = (32, 16)
    learning_rate: float = 3e-3
    n_epochs: int = 300
    batch_size: int = 32
    weight_decay: float = 1e-4
    early_stop_patience: int = 40
    validation_fraction: float = 0.15
    seed: int = 7

    def __post_init__(self) -> None:
        if not self.hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        for size in self.hidden_sizes:
            check_positive_int("hidden size", size)
        check_positive("learning_rate", self.learning_rate)
        check_positive_int("n_epochs", self.n_epochs)
        check_positive_int("batch_size", self.batch_size)
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")


@dataclass
class Mlp:
    """Trainable MLP.  Use :meth:`fit`, then :meth:`predict`/`predict_proba`.

    Weights are He-initialised from the config seed; Adam moments are kept
    per parameter.  ``history`` records (train_loss, val_accuracy) per
    epoch for diagnostics.
    """

    n_inputs: int
    n_classes: int = 2
    config: MlpConfig = field(default_factory=MlpConfig)

    def __post_init__(self) -> None:
        check_positive_int("n_inputs", self.n_inputs)
        check_positive_int("n_classes", self.n_classes)
        rng = make_rng(self.config.seed)
        sizes = [self.n_inputs, *self.config.hidden_sizes, self.n_classes]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self.history: list[tuple[float, float]] = []
        self._rng = rng

    # --- forward / backward ---------------------------------------------------

    def _forward(self, x: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        """Return (pre-activations per layer inputs, output probabilities)."""
        activations = [x]
        for w, b in zip(self.weights[:-1], self.biases[:-1]):
            x = np.maximum(x @ w + b, 0.0)
            activations.append(x)
        logits = x @ self.weights[-1] + self.biases[-1]
        return activations, softmax(logits)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities, shape (n, n_classes)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return self._forward(x)[1]

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return np.argmax(self.predict_proba(x), axis=1)

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of correct predictions."""
        return float(np.mean(self.predict(x) == np.asarray(labels)))

    # --- training ----------------------------------------------------------------

    def fit(self, x: np.ndarray, labels: np.ndarray) -> "Mlp":
        """Train with Adam + mini-batches; returns self.

        A stratification-free random validation split drives early
        stopping (restoring the best-validation weights) when
        ``early_stop_patience > 0`` and data suffices.
        """
        x = np.asarray(x, dtype=np.float64)
        labels = np.asarray(labels, dtype=int)
        if x.ndim != 2 or x.shape[0] != labels.size:
            raise ValueError(f"bad training shapes: x {x.shape}, labels {labels.shape}")
        cfg = self.config
        n = x.shape[0]
        order = self._rng.permutation(n)
        n_val = int(cfg.validation_fraction * n)
        use_early_stop = cfg.early_stop_patience > 0 and n_val >= 8
        if use_early_stop:
            val_idx, train_idx = order[:n_val], order[n_val:]
        else:
            val_idx, train_idx = order[:0], order
        x_train, y_train = x[train_idx], labels[train_idx]
        x_val, y_val = x[val_idx], labels[val_idx]

        # Adam state.
        m_w = [np.zeros_like(w) for w in self.weights]
        v_w = [np.zeros_like(w) for w in self.weights]
        m_b = [np.zeros_like(b) for b in self.biases]
        v_b = [np.zeros_like(b) for b in self.biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        best_val = -np.inf
        best_state: tuple[list[np.ndarray], list[np.ndarray]] | None = None
        stale = 0

        for epoch in range(cfg.n_epochs):
            perm = self._rng.permutation(x_train.shape[0])
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, x_train.shape[0], cfg.batch_size):
                batch = perm[start : start + cfg.batch_size]
                xb, yb = x_train[batch], y_train[batch]
                activations, probs = self._forward(xb)
                epoch_loss += cross_entropy(probs, yb)
                n_batches += 1
                # Backward pass.
                delta = (probs - _one_hot(yb, self.n_classes)) / xb.shape[0]
                grads_w: list[np.ndarray] = [np.empty(0)] * len(self.weights)
                grads_b: list[np.ndarray] = [np.empty(0)] * len(self.biases)
                for layer in range(len(self.weights) - 1, -1, -1):
                    grads_w[layer] = activations[layer].T @ delta + cfg.weight_decay * (
                        self.weights[layer]
                    )
                    grads_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self.weights[layer].T) * (activations[layer] > 0)
                # Adam update.
                step += 1
                for layer in range(len(self.weights)):
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grads_w[layer]
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * grads_w[layer] ** 2
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grads_b[layer]
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * grads_b[layer] ** 2
                    m_hat_w = m_w[layer] / (1 - beta1**step)
                    v_hat_w = v_w[layer] / (1 - beta2**step)
                    m_hat_b = m_b[layer] / (1 - beta1**step)
                    v_hat_b = v_b[layer] / (1 - beta2**step)
                    self.weights[layer] -= cfg.learning_rate * m_hat_w / (np.sqrt(v_hat_w) + eps)
                    self.biases[layer] -= cfg.learning_rate * m_hat_b / (np.sqrt(v_hat_b) + eps)

            val_acc = self.accuracy(x_val, y_val) if use_early_stop else np.nan
            self.history.append((epoch_loss / max(n_batches, 1), val_acc))
            if use_early_stop:
                if val_acc > best_val:
                    best_val = val_acc
                    best_state = (
                        [w.copy() for w in self.weights],
                        [b.copy() for b in self.biases],
                    )
                    stale = 0
                else:
                    stale += 1
                    if stale >= cfg.early_stop_patience:
                        break
        if best_state is not None:
            self.weights, self.biases = best_state
        return self
