"""Seizure detection: the accuracy oracles of the pathfinding experiments.

Three interchangeable detectors (all expose ``fit`` / ``predict`` /
``accuracy`` / ``soft_accuracy``):

* :class:`SpectralCombDetector` -- deterministic spectral detector
  (comb ratio + floor-compensated gamma contrast + power, logistic
  read-out).  The oracle used by the paper experiments.
* :class:`SeizureDetector` -- engineered EEG features + numpy MLP.
* :class:`FrameMlpDetector` -- raw-waveform frame MLP (closest in spirit
  to the CNN of the paper's ref. [20]).
"""

from repro.detection.classifier import SeizureDetector
from repro.detection.features import (
    FEATURE_BANDS,
    FEATURE_NAMES,
    dataset_features,
    extract_feature_matrix,
    extract_features,
)
from repro.detection.frame_detector import FrameMlpDetector
from repro.detection.mlp import Mlp, MlpConfig, cross_entropy, softmax
from repro.detection.spectral import SpectralCombDetector, logistic_fit, logistic_predict

__all__ = [
    "FEATURE_BANDS",
    "FEATURE_NAMES",
    "FrameMlpDetector",
    "Mlp",
    "MlpConfig",
    "SeizureDetector",
    "SpectralCombDetector",
    "cross_entropy",
    "dataset_features",
    "extract_feature_matrix",
    "extract_features",
    "logistic_fit",
    "logistic_predict",
    "softmax",
]
