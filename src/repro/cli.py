"""Command-line interface: ``python -m repro <command>``.

Gives the paper's workflow a shell entry point:

* ``tables`` -- print Tables I-III (capability matrix, evaluated power
  models, technology/design parameters);
* ``fig4`` -- run the LNA-noise demonstration sweep and print the series;
* ``sweep`` -- run the Fig. 7 search-space exploration at a chosen scale,
  print fronts/optima, and optionally save the raw sweep as JSON/CSV;
* ``report`` -- re-analyse a saved sweep (Figs. 7-10) without
  re-simulating;
* ``budget`` -- print the closed-form noise budget of a design point.

Every command prints plain text (ASCII charts included), suitable for
logs and CI artefacts.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.util.constants import MICRO


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments import render_table1, render_table2, render_table3

    print("== Table I: framework comparison ==\n")
    print(render_table1())
    print("\n== Table II: power models (evaluated) ==\n")
    print(render_table2())
    print("\n== Table III: technology & design parameters ==\n")
    print(render_table3())
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments import render_fig4, run_fig4
    from repro.util.textplot import scatter

    rows = run_fig4()
    print(render_fig4(rows))
    print()
    print(
        scatter(
            {
                "SNDR [dB]": ([r.noise_uv for r in rows], [r.sndr_db for r in rows]),
            },
            x_label="LNA noise [uVrms]",
            y_label="SNDR [dB]",
            title="Fig. 4: SNDR vs noise floor",
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.serialization import save_result
    from repro.experiments import analyze_fig7, render_front, run_search_space
    from repro.util.textplot import pareto_chart

    sweep = run_search_space(
        args.scale,
        executor=args.executor,
        n_workers=args.workers,
        checkpoint=args.checkpoint,
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    full_sweep = sweep
    failures = sweep.failures()
    print(f"evaluated {len(sweep)} design points at scale {args.scale!r}")
    if failures:
        print(f"WARNING: {len(failures)} design points failed:")
        for failed in failures:
            print(f"  {failed.point.describe()}: {failed.error}")
        sweep = sweep.successes()
    print()
    fig7 = analyze_fig7(sweep, min_accuracy=args.min_accuracy)
    print("baseline accuracy front:")
    print(render_front(fig7.accuracy_front_baseline, "accuracy"))
    print("\ncs accuracy front:")
    print(render_front(fig7.accuracy_front_cs, "accuracy"))
    print("\n" + fig7.summary())
    print()
    print(
        pareto_chart(
            {
                "baseline": fig7.accuracy_front_baseline,
                "cs": fig7.accuracy_front_cs,
            },
            title="Fig. 7b: accuracy vs power Pareto fronts",
        )
    )
    if args.save:
        save_result(full_sweep, args.save)
        print(f"\nsaved sweep to {args.save}")
    if args.csv:
        full_sweep.to_csv(args.csv)
        print(f"saved CSV to {args.csv}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.serialization import load_result
    from repro.experiments import analyze_fig7, analyze_fig8, analyze_fig9, analyze_fig10

    sweep = load_result(args.sweep_file)
    print(f"loaded {len(sweep)} evaluations from {args.sweep_file}\n")
    fig7 = analyze_fig7(sweep, min_accuracy=args.min_accuracy)
    print("== Fig. 7: optimal points ==")
    print(fig7.summary())
    try:
        fig8 = analyze_fig8(sweep, min_accuracy=args.min_accuracy)
        print("\n== Fig. 8: power breakdown of the optima ==")
        print(fig8.savings_table())
    except ValueError as error:
        print(f"\nFig. 8 skipped: {error}")
    fig9 = analyze_fig9(sweep)
    print("\n== Fig. 9: area ==")
    print(f"median area ratio (cs / baseline): {fig9.area_ratio():.2f}x")
    print("\n== Fig. 10: area-constrained fronts ==")
    print(analyze_fig10(sweep).render())
    return 0


def _cmd_budget(args: argparse.Namespace) -> int:
    from repro.power.noise_budget import noise_budget
    from repro.power.technology import DesignPoint

    point = DesignPoint(
        n_bits=args.bits,
        lna_noise_rms=args.noise_uv * MICRO,
        use_cs=args.cs,
        cs_m=args.m,
    )
    budget = noise_budget(point)
    print(f"design point: {point.describe()}\n")
    print(budget.as_table())
    signal_rms = args.signal_uv * MICRO
    print(f"\npredicted SNR for a {args.signal_uv:g} uVrms signal: "
          f"{budget.snr_db(signal_rms):.2f} dB")
    from repro.power.models import chain_power

    print(f"estimated power: {chain_power(point).total_uw:.3f} uW")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EffiCSense reproduction: pathfinding experiments from the shell.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables I-III").set_defaults(func=_cmd_tables)
    sub.add_parser("fig4", help="run the Fig. 4 noise sweep").set_defaults(func=_cmd_fig4)

    sweep = sub.add_parser("sweep", help="run the Fig. 7 search-space sweep")
    sweep.add_argument("--scale", default="smoke", choices=["smoke", "small", "paper"])
    sweep.add_argument("--min-accuracy", type=float, default=0.9)
    sweep.add_argument("--save", help="write the raw sweep as JSON")
    sweep.add_argument("--csv", help="write the sweep metrics as CSV")
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel workers (default: REPRO_WORKERS env var, else serial)",
    )
    sweep.add_argument(
        "--executor",
        choices=["serial", "process", "thread"],
        default=None,
        help="execution backend (default: process when --workers > 1)",
    )
    sweep.add_argument(
        "--checkpoint",
        help="JSONL checkpoint path; re-running with the same path resumes the sweep",
    )
    sweep.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="on-disk evaluation cache directory (repeat runs skip evaluated points)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk evaluation cache"
    )
    sweep.set_defaults(func=_cmd_sweep)

    report = sub.add_parser("report", help="re-analyse a saved sweep")
    report.add_argument("sweep_file")
    report.add_argument("--min-accuracy", type=float, default=0.98)
    report.set_defaults(func=_cmd_report)

    budget = sub.add_parser("budget", help="closed-form noise budget of a design point")
    budget.add_argument("--bits", type=int, default=8)
    budget.add_argument("--noise-uv", type=float, default=2.0)
    budget.add_argument("--signal-uv", type=float, default=700.0)
    budget.add_argument("--cs", action="store_true")
    budget.add_argument("--m", type=int, default=150)
    budget.set_defaults(func=_cmd_budget)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
