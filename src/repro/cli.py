"""Command-line interface: ``python -m repro <command>``.

Gives the paper's workflow a shell entry point:

* ``tables`` -- print Tables I-III (capability matrix, evaluated power
  models, technology/design parameters);
* ``fig4`` -- run the LNA-noise demonstration sweep and print the series;
* ``sweep`` -- run the Fig. 7 search-space exploration at a chosen scale,
  print fronts/optima, and optionally save the raw sweep as JSON/CSV;
  ``--adaptive`` (with ``--rungs``/``--keep-frac``) switches to the
  multi-fidelity successive-halving explorer and prints its promotion
  ledger;
* ``report`` -- re-analyse a saved sweep (Figs. 7-10) without
  re-simulating;
* ``budget`` -- print the closed-form noise budget of a design point;
* ``robustness`` -- Monte-Carlo fault-injection yield analysis of the two
  reference optima (accuracy degradation vs fault severity);
* ``worker`` -- join a fleet sweep as a remote worker
  (``repro worker --connect HOST:PORT``); the coordinator side is
  ``repro sweep --fleet`` (see :mod:`repro.fleet` and
  ``docs/distributed.md``);
* ``serve`` -- run the sweep-as-a-service HTTP API; always exposes a
  live ``GET /metrics`` OpenMetrics surface and an enriched
  ``/healthz`` (uptime, sweep counts, store size, drain state);
* ``trace merge`` -- combine Chrome-trace JSON files (e.g. per-host
  ``--trace`` outputs) into one multi-lane timeline; ``--align``
  compensates unsynchronised capture clocks.

Every command prints plain text (ASCII charts included), suitable for
logs and CI artefacts.

Observability flags (shared by every command):

* ``--profile`` activates a :class:`~repro.core.telemetry.Telemetry`
  sink for the whole command and prints its summary tables at the end;
  for ``sweep`` it also writes a :class:`~repro.core.telemetry.RunManifest`
  JSON next to the sweep outputs.  Result values are identical with and
  without profiling.
* ``--trace FILE`` records a hierarchical span timeline (sweep -> shard
  -> point -> block -> solver, one lane per worker process) and writes
  it as Chrome-trace/Perfetto JSON.
* ``--metrics-out FILE`` writes the final telemetry state as an
  OpenMetrics/Prometheus textfile.
* ``--events-out FILE`` streams every structured telemetry event to a
  JSONL file as it happens (crash-safe, unlike the bounded buffer).
* ``--log-level`` configures stdlib :mod:`logging` for the run.
* ``--no-progress`` suppresses the live per-point progress/ETA line that
  ``sweep`` prints to stderr.

Any of ``--trace``/``--metrics-out``/``--events-out`` (like
``--manifest``) implies ``--profile``.

``repro bench`` runs the tracked performance benchmarks (see
:mod:`repro.bench`), appends schema'd records to a dated
``BENCH_<date>.json`` ledger, and with ``--compare`` gates against a
baseline ledger (exit 1 on > ``--threshold`` regression).
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
import time
from collections.abc import Sequence

from repro.util.constants import MICRO

LOG_LEVELS = ("debug", "info", "warning", "error")


def _progress_printer(total: int, stream=None):
    """Live ``[done/total] ... eta`` line, rewritten in place on stderr.

    Completion order drives the line (parallel sweeps finish out of grid
    order); the ETA extrapolates the mean per-point rate so far.
    """
    if stream is None:
        stream = sys.stderr
    state = {"done": 0, "start": time.perf_counter()}

    def callback(index, evaluation) -> None:
        del index
        state["done"] += 1
        done = state["done"]
        elapsed = time.perf_counter() - state["start"]
        eta = (total - done) * elapsed / done if done else float("inf")
        status = "FAIL" if evaluation.error is not None else "ok"
        stream.write(
            f"\r[{done}/{total}] {100.0 * done / total:5.1f}%  "
            f"elapsed {elapsed:6.1f}s  eta {eta:6.1f}s  last: {status}   "
        )
        if done == total:
            stream.write("\n")
        stream.flush()

    return callback


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments import render_table1, render_table2, render_table3

    print("== Table I: framework comparison ==\n")
    print(render_table1())
    print("\n== Table II: power models (evaluated) ==\n")
    print(render_table2())
    print("\n== Table III: technology & design parameters ==\n")
    print(render_table3())
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments import render_fig4, run_fig4
    from repro.util.textplot import scatter

    rows = run_fig4()
    print(render_fig4(rows))
    print()
    print(
        scatter(
            {
                "SNDR [dB]": ([r.noise_uv for r in rows], [r.sndr_db for r in rows]),
            },
            x_label="LNA noise [uVrms]",
            y_label="SNDR [dB]",
            title="Fig. 4: SNDR vs noise floor",
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.serialization import save_result
    from repro.core.telemetry import get_active
    from repro.experiments import (
        analyze_fig7,
        build_run_manifest,
        render_front,
        run_adaptive_search_space,
        run_search_space,
        search_space_for,
    )
    from repro.util.textplot import pareto_chart

    telemetry = get_active()
    ledger = None
    if args.adaptive and args.fleet:
        print(
            "error: --fleet is not supported with --adaptive (the adaptive "
            "schedule re-plans between rungs; run each rung scale directly)",
            file=sys.stderr,
        )
        return 2
    if args.adaptive:
        # No live progress line: each rung is its own sweep with a
        # data-dependent total, so a single [done/total] ETA would lie.
        sweep = run_adaptive_search_space(
            args.scale,
            rungs=args.rungs,
            keep_frac=args.keep_frac,
            executor=args.executor,
            n_workers=args.workers,
            checkpoint=args.checkpoint,
            cache_dir=None if args.no_cache else args.cache_dir,
            telemetry=telemetry if telemetry.enabled else None,
            timeout_s=args.timeout,
            retries=args.retries,
        )
        ledger = sweep.ledger
        print("adaptive exploration (successive halving):")
        print(ledger.summary())
        print()
    else:
        fleet_options = None
        if args.fleet:
            from repro.fleet import FleetOptions

            if args.executor not in (None, "fleet"):
                print(
                    f"error: --fleet conflicts with --executor {args.executor}",
                    file=sys.stderr,
                )
                return 2
            fleet_kwargs = {}
            if args.fleet_lease_timeout is not None:
                fleet_kwargs["lease_timeout_s"] = args.fleet_lease_timeout
            fleet_options = FleetOptions(
                # Advertise the evaluator recipe so external workers
                # (repro worker --connect) can rebuild the same harness.
                spec={"kind": "scale", "scale": args.scale},
                host=args.fleet_host,
                port=args.fleet_port,
                spawn_workers=(
                    args.fleet_spawn
                    if args.fleet_spawn is not None
                    else (args.workers or 3)
                ),
                worker_cache_dir=None if args.no_cache else args.cache_dir,
                **fleet_kwargs,
            )
        progress = (
            None
            if args.no_progress
            else _progress_printer(search_space_for(args.scale).size)
        )
        sweep = run_search_space(
            args.scale,
            executor="fleet" if fleet_options is not None else args.executor,
            n_workers=args.workers,
            checkpoint=args.checkpoint,
            cache_dir=None if args.no_cache else args.cache_dir,
            progress=progress,
            telemetry=telemetry if telemetry.enabled else None,
            timeout_s=args.timeout,
            retries=args.retries,
            fleet=fleet_options,
        )
    full_sweep = sweep
    failures = sweep.failures()
    print(f"evaluated {len(sweep)} design points at scale {args.scale!r}")
    if failures:
        print(f"WARNING: {len(failures)} design points failed:")
        for failed in failures:
            print(f"  {failed.point.describe()}: {failed.error}")
        sweep = sweep.successes()
    print()
    fig7 = analyze_fig7(sweep, min_accuracy=args.min_accuracy)
    print("baseline accuracy front:")
    print(render_front(fig7.accuracy_front_baseline, "accuracy"))
    print("\ncs accuracy front:")
    print(render_front(fig7.accuracy_front_cs, "accuracy"))
    print("\n" + fig7.summary())
    print()
    print(
        pareto_chart(
            {
                "baseline": fig7.accuracy_front_baseline,
                "cs": fig7.accuracy_front_cs,
            },
            title="Fig. 7b: accuracy vs power Pareto fronts",
        )
    )
    if args.save:
        save_result(full_sweep, args.save)
        print(f"\nsaved sweep to {args.save}")
    if args.csv:
        full_sweep.to_csv(args.csv)
        print(f"saved CSV to {args.csv}")
    if telemetry.enabled:
        from pathlib import Path

        if args.manifest:
            manifest_path = Path(args.manifest)
        elif args.save:
            # "Next to the sweep outputs": sweep.json -> sweep.manifest.json.
            manifest_path = Path(args.save).with_suffix(".manifest.json")
        else:
            manifest_path = Path("repro-manifest.json")
        workers = args.workers
        if args.adaptive:
            executor = args.executor or "batched"
        elif args.fleet:
            executor = "fleet"
        else:
            executor = args.executor or ("process" if (workers or 1) > 1 else "serial")
        manifest = build_run_manifest(
            full_sweep,
            telemetry,
            args.scale,
            executor=executor,
            n_workers=workers,
            command="sweep --adaptive" if args.adaptive else "sweep",
            adaptive=ledger.to_dict() if ledger is not None else None,
        )
        manifest.save(manifest_path)
        print(f"wrote run manifest to {manifest_path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.serialization import load_result
    from repro.experiments import analyze_fig7, analyze_fig8, analyze_fig9, analyze_fig10

    sweep = load_result(args.sweep_file)
    print(f"loaded {len(sweep)} evaluations from {args.sweep_file}\n")
    fig7 = analyze_fig7(sweep, min_accuracy=args.min_accuracy)
    print("== Fig. 7: optimal points ==")
    print(fig7.summary())
    try:
        fig8 = analyze_fig8(sweep, min_accuracy=args.min_accuracy)
        print("\n== Fig. 8: power breakdown of the optima ==")
        print(fig8.savings_table())
    except ValueError as error:
        print(f"\nFig. 8 skipped: {error}")
    fig9 = analyze_fig9(sweep)
    print("\n== Fig. 9: area ==")
    print(f"median area ratio (cs / baseline): {fig9.area_ratio():.2f}x")
    print("\n== Fig. 10: area-constrained fronts ==")
    print(analyze_fig10(sweep).render())
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.telemetry import get_active
    from repro.experiments.robustness import (
        build_robustness_manifest,
        render_robustness,
        run_robustness,
    )

    telemetry = get_active()
    result = run_robustness(
        args.scale,
        severities=tuple(args.severities),
        n_realisations=args.realisations,
        max_degradation=args.max_degradation,
        timeout_s=args.timeout,
        retries=args.retries,
        telemetry=telemetry if telemetry.enabled else None,
    )
    print(f"robustness analysis at scale {args.scale!r}\n")
    print(render_robustness(result))
    if telemetry.enabled:
        manifest_path = Path(args.manifest or "repro-robustness-manifest.json")
        manifest = build_robustness_manifest(result, telemetry, args.scale)
        manifest.save(manifest_path)
        print(f"\nwrote run manifest to {manifest_path}")
    return 0


def _cmd_budget(args: argparse.Namespace) -> int:
    from repro.power.noise_budget import noise_budget
    from repro.power.technology import DesignPoint

    point = DesignPoint(
        n_bits=args.bits,
        lna_noise_rms=args.noise_uv * MICRO,
        use_cs=args.cs,
        cs_m=args.m,
    )
    budget = noise_budget(point)
    print(f"design point: {point.describe()}\n")
    print(budget.as_table())
    signal_rms = args.signal_uv * MICRO
    print(f"\npredicted SNR for a {args.signal_uv:g} uVrms signal: "
          f"{budget.snr_db(signal_rms):.2f} dB")
    from repro.power.models import chain_power

    print(f"estimated power: {chain_power(point).total_uw:.3f} uW")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import (
        append_records,
        compare_records,
        default_ledger_path,
        find_baseline,
        load_records,
        render_comparison,
        run_benchmarks,
    )

    out = Path(args.out) if args.out else default_ledger_path()
    if args.compare_only:
        if not out.exists():
            # A missing ledger used to compare an empty record list --
            # every benchmark "not run", exit 0 -- silently masking a
            # misconfigured CI gate.  Fail loudly instead.
            print(
                f"error: --compare-only needs an existing ledger at {out} "
                "(no benchmarks were run; pass --out to point at the ledger "
                "to compare)",
                file=sys.stderr,
            )
            return 2
        current = load_records(out)
    else:
        try:
            records = run_benchmarks(args.benchmarks)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        append_records(out, records)
        for record in records:
            print(
                f"{record.name}: best {record.wall_s * 1e3:.0f} ms over "
                f"{record.points} points ({record.points_per_s:.0f} points/s, "
                f"best of {record.reps})"
            )
        print(f"appended {len(records)} record(s) to {out}")
        current = load_records(out)

    if args.compare is None and not args.compare_only:
        return 0
    if args.compare not in (None, "auto"):
        baseline_path = Path(args.compare)
    else:
        baseline_path = find_baseline(out)
    if baseline_path is None or not baseline_path.exists():
        print(
            "no baseline ledger found; skipping comparison (first run "
            "establishes the baseline)"
        )
        return 0
    rows = compare_records(
        load_records(baseline_path), current, threshold=args.threshold
    )
    print(f"\ncomparing against {baseline_path}:")
    print(render_comparison(rows, args.threshold))
    return 1 if any(row["regressed"] for row in rows) else 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.fleet import FleetWorker, ProtocolError

    host, _, port_text = args.connect.rpartition(":")
    try:
        endpoint = (host, int(port_text))
        if not host:
            raise ValueError("missing host")
    except ValueError:
        print(
            f"error: --connect wants HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    worker = FleetWorker(
        endpoint,
        label=args.label,
        cache_dir=None if args.no_cache else args.cache_dir,
        connect_timeout_s=args.connect_timeout,
    )
    print(f"worker {worker.label} connecting to {endpoint[0]}:{endpoint[1]}")
    try:
        worker.run()
    except KeyboardInterrupt:
        print("\nworker interrupted")
        return 130
    except (ProtocolError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    stats = worker.stats
    print(
        f"worker {worker.label} done: {stats['chunks']} chunks, "
        f"{stats['points']} points ({stats['cache_hits']} cache hits, "
        f"{stats['evaluator_calls']} evaluator calls, "
        f"{stats['reconnects']} reconnects)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import logging as _logging

    from repro.core.resources import ResourceSampler
    from repro.core.telemetry import Telemetry, get_active
    from repro.serve import SweepService, serve_forever
    from repro.store import ResultStore

    # A service without telemetry has an empty /metrics surface, so the
    # server always runs with a live sink even when --profile is off
    # (the ambient one when profiling, a private one otherwise).
    telemetry = get_active()
    if not telemetry.enabled:
        telemetry = Telemetry(logger=_logging.getLogger("repro.serve"))
    store = ResultStore(args.store)
    service = SweepService(store, telemetry=telemetry)
    sampler = ResourceSampler(telemetry, label="serve")
    print(f"serving sweeps from {store.root} on http://{args.host}:{args.port}")
    try:
        with sampler:
            asyncio.run(
                serve_forever(
                    service,
                    host=args.host,
                    port=args.port,
                    drain_timeout_s=args.drain_timeout,
                )
            )
    except KeyboardInterrupt:
        # Platforms where asyncio signal handlers are unavailable fall
        # back to the raw interrupt; drain what we can before exiting.
        service.drain(args.drain_timeout)
    print("\nshut down")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    import json

    from repro.store import ResultStore, StoreError

    store = ResultStore(args.store)
    if args.action == "ls":
        index = store.index()
        sweeps = index.get("sweeps", {})
        if not sweeps:
            print(f"no sweeps stored in {store.root}")
            return 0
        print(f"{'name':24} {'digest':14} {'n':>5} {'fail':>5}  created")
        for name in sorted(sweeps):
            row = sweeps[name]
            created = time.strftime(
                "%Y-%m-%d %H:%M:%S", time.localtime(row.get("created_unix", 0))
            )
            print(
                f"{name:24} {row['digest'][:12] + '..':14} "
                f"{row['n_evaluations']:5d} {row['n_failures']:5d}  {created}"
            )
        return 0
    if args.action == "get":
        try:
            manifest = store.get_sweep(args.name)
        except (StoreError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if manifest is None:
            print(
                f"error: no sweep named {args.name!r} in {store.root} "
                f"(known: {store.sweep_names()})",
                file=sys.stderr,
            )
            return 2
        print(json.dumps(manifest.to_dict(), indent=1))
        return 0
    if args.action == "gc":
        removed = store.gc()
        print(f"removed {len(removed)} unreferenced evaluation blob(s)")
        return 0
    raise AssertionError(f"unhandled store action {args.action!r}")  # pragma: no cover


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.core.tracing import merge_chrome_traces

    if args.action == "merge":
        payloads = []
        for path in args.inputs:
            try:
                payloads.append(json.loads(Path(path).read_text()))
            except (OSError, ValueError) as error:
                print(f"error: cannot read trace {path}: {error}", file=sys.stderr)
                return 2
        try:
            merged = merge_chrome_traces(payloads, align=args.align)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(merged, indent=1) + "\n")
        events = merged["traceEvents"]
        lanes = {event["pid"] for event in events}
        print(
            f"merged {len(payloads)} trace(s) into {out}: "
            f"{len(events)} events across {len(lanes)} lane(s)"
        )
        return 0
    raise AssertionError(f"unhandled trace action {args.action!r}")  # pragma: no cover


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EffiCSense reproduction: pathfinding experiments from the shell.",
    )
    # Observability trio, shared by every subcommand (so it can be given
    # after the command name: ``repro sweep --profile``).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--profile",
        action="store_true",
        help="collect telemetry (timings, counters) and print its summary; "
        "sweep also writes a RunManifest JSON",
    )
    common.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default=None,
        help="configure stdlib logging for the run",
    )
    common.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress the live progress/ETA line on stderr",
    )
    common.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome-trace/Perfetto JSON span timeline (implies --profile)",
    )
    common.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write the final telemetry state as an OpenMetrics/Prometheus "
        "textfile (implies --profile)",
    )
    common.add_argument(
        "--events-out",
        metavar="FILE",
        help="stream structured telemetry events to a JSONL file as they "
        "happen (implies --profile)",
    )
    common.add_argument(
        "--kernel-backend",
        metavar="NAME",
        default=None,
        help="kernel backend for the hot numerical paths (numpy, numba, "
        "jax; default: $REPRO_KERNEL_BACKEND or numpy).  Unavailable "
        "backends auto-fall back to the numpy reference; the manifest "
        "'kernels' section records what actually ran",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables I-III", parents=[common]).set_defaults(
        func=_cmd_tables
    )
    sub.add_parser(
        "fig4", help="run the Fig. 4 noise sweep", parents=[common]
    ).set_defaults(func=_cmd_fig4)

    sweep = sub.add_parser(
        "sweep", help="run the Fig. 7 search-space sweep", parents=[common]
    )
    sweep.add_argument("--scale", default="smoke", choices=["smoke", "small", "paper"])
    sweep.add_argument("--min-accuracy", type=float, default=0.9)
    sweep.add_argument(
        "--adaptive",
        action="store_true",
        help="multi-fidelity successive-halving exploration: cheap "
        "low-fidelity rungs eliminate dominated points and only survivors "
        "reach the full-fidelity evaluator (prints the promotion ledger)",
    )
    sweep.add_argument(
        "--rungs",
        type=int,
        default=3,
        help="fidelity rungs of the adaptive schedule (with --adaptive)",
    )
    sweep.add_argument(
        "--keep-frac",
        type=float,
        default=1 / 3,
        help="per-rung survivor floor as a fraction of the rung's points "
        "(with --adaptive)",
    )
    sweep.add_argument("--save", help="write the raw sweep as JSON")
    sweep.add_argument("--csv", help="write the sweep metrics as CSV")
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel workers (default: REPRO_WORKERS env var, else serial)",
    )
    sweep.add_argument(
        "--executor",
        choices=["serial", "process", "thread", "batched", "fleet"],
        default=None,
        help="execution backend (default: process when --workers > 1); "
        "'batched' vectorises topology-sharing points through the blocks' "
        "process_batch kernels and shards over --workers when > 1; "
        "'fleet' distributes leased chunks to workers over TCP (see --fleet)",
    )
    sweep.add_argument(
        "--fleet",
        action="store_true",
        help="run the sweep through the fault-tolerant fleet coordinator: "
        "chunks are leased to workers over TCP, dead workers are recovered "
        "by lease expiry, and remote workers can join with "
        "'repro worker --connect HOST:PORT'",
    )
    sweep.add_argument(
        "--fleet-host",
        default="127.0.0.1",
        metavar="HOST",
        help="coordinator bind address (use 0.0.0.0 to accept remote workers)",
    )
    sweep.add_argument(
        "--fleet-port",
        type=int,
        default=0,
        metavar="PORT",
        help="coordinator bind port (default: an ephemeral port)",
    )
    sweep.add_argument(
        "--fleet-spawn",
        type=int,
        default=None,
        metavar="N",
        help="local worker processes to spawn (default: --workers, else 3; "
        "0 waits for external workers only)",
    )
    sweep.add_argument(
        "--fleet-lease-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="lease deadline: a worker silent this long loses its chunk "
        "and it is requeued (default: 30)",
    )
    sweep.add_argument(
        "--checkpoint",
        help="JSONL checkpoint path; re-running with the same path resumes the sweep",
    )
    sweep.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="on-disk evaluation cache directory (repeat runs skip evaluated points)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk evaluation cache"
    )
    sweep.add_argument(
        "--manifest",
        help="RunManifest JSON path (default: next to --save, else "
        "repro-manifest.json; written when profiling is on)",
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point wall-clock ceiling; a hung evaluation becomes a "
        "failed point instead of stalling the sweep",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=0,
        help="bounded retries (exponential backoff) for failing points",
    )
    sweep.set_defaults(func=_cmd_sweep)

    robustness = sub.add_parser(
        "robustness",
        help="Monte-Carlo fault-injection yield analysis of the two optima",
        parents=[common],
    )
    robustness.add_argument(
        "--scale", default="smoke", choices=["smoke", "small", "paper"]
    )
    robustness.add_argument(
        "--severities",
        type=float,
        nargs="+",
        default=[0.1, 0.25, 0.5, 1.0],
        help="fault severity grid in [0, 1] (0 = clean, run implicitly)",
    )
    robustness.add_argument(
        "--realisations",
        type=int,
        default=None,
        help="fault realisations per (chain, severity) cell "
        "(default: 3 at smoke scale, 8 otherwise)",
    )
    robustness.add_argument(
        "--max-degradation",
        type=float,
        default=0.05,
        help="yield spec: max tolerated accuracy degradation vs clean",
    )
    robustness.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-evaluation wall-clock ceiling",
    )
    robustness.add_argument(
        "--retries", type=int, default=0, help="bounded retries per evaluation"
    )
    robustness.add_argument(
        "--manifest",
        help="RunManifest JSON path (default: repro-robustness-manifest.json; "
        "written when profiling is on)",
    )
    robustness.set_defaults(func=_cmd_robustness)

    report = sub.add_parser("report", help="re-analyse a saved sweep", parents=[common])
    report.add_argument("sweep_file")
    report.add_argument("--min-accuracy", type=float, default=0.98)
    report.set_defaults(func=_cmd_report)

    budget = sub.add_parser(
        "budget", help="closed-form noise budget of a design point", parents=[common]
    )
    budget.add_argument("--bits", type=int, default=8)
    budget.add_argument("--noise-uv", type=float, default=2.0)
    budget.add_argument("--signal-uv", type=float, default=700.0)
    budget.add_argument("--cs", action="store_true")
    budget.add_argument("--m", type=int, default=150)
    budget.set_defaults(func=_cmd_budget)

    bench = sub.add_parser(
        "bench",
        help="run tracked performance benchmarks; gate regressions with --compare",
        parents=[common],
    )
    bench.add_argument(
        "--out",
        help="benchmark ledger path (default: BENCH_<YYYYMMDD>.json in the cwd)",
    )
    bench.add_argument(
        "--benchmarks",
        nargs="+",
        metavar="NAME",
        default=None,
        help="subset of registered benchmarks to run (default: all)",
    )
    bench.add_argument(
        "--compare",
        nargs="?",
        const="auto",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline ledger (default: the newest other "
        "BENCH_*.json next to --out); exit 1 on regression, warn-and-pass "
        "when no baseline exists yet",
    )
    bench.add_argument(
        "--compare-only",
        action="store_true",
        help="skip running benchmarks; compare the existing --out ledger "
        "against the baseline",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative wall-time growth that counts as a regression (0.20 = 20%%)",
    )
    bench.set_defaults(func=_cmd_bench)

    worker = sub.add_parser(
        "worker",
        help="join a fleet sweep as a worker (pair of 'repro sweep --fleet')",
        parents=[common],
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator endpoint printed by 'repro sweep --fleet'",
    )
    worker.add_argument(
        "--label",
        default=None,
        help="worker label for telemetry attribution (default: hostname:pid)",
    )
    worker.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="local on-disk evaluation cache directory",
    )
    worker.add_argument(
        "--no-cache", action="store_true", help="disable the local evaluation cache"
    )
    worker.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long to keep retrying the initial dial before giving up",
    )
    worker.set_defaults(func=_cmd_worker)

    serve = sub.add_parser(
        "serve",
        help="run the sweep-as-a-service HTTP API over a result store",
        parents=[common],
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8731, help="bind port")
    serve.add_argument(
        "--store",
        default=".repro-store",
        help="result store root (evaluation blobs + sweep manifests + index)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="on SIGTERM/SIGINT: refuse new submissions, then wait this "
        "long for running sweeps to finish before exiting",
    )
    serve.set_defaults(func=_cmd_serve)

    store = sub.add_parser(
        "store",
        help="inspect and maintain the content-addressed result store",
        parents=[common],
    )
    store_sub = store.add_subparsers(dest="action", required=True)
    store_common = argparse.ArgumentParser(add_help=False)
    store_common.add_argument(
        "--store", default=".repro-store", help="result store root"
    )
    store_sub.add_parser(
        "ls", help="list stored sweeps (name, digest, counts)", parents=[store_common]
    )
    store_get = store_sub.add_parser(
        "get", help="print one sweep manifest as JSON", parents=[store_common]
    )
    store_get.add_argument("name", help="sweep name")
    store_sub.add_parser(
        "gc",
        help="remove evaluation blobs not referenced by any stored sweep",
        parents=[store_common],
    )
    store.set_defaults(func=_cmd_store)

    trace = sub.add_parser(
        "trace",
        help="work with Chrome-trace/Perfetto JSON trace artifacts",
        parents=[common],
    )
    trace_sub = trace.add_subparsers(dest="action", required=True)
    trace_merge = trace_sub.add_parser(
        "merge",
        help="merge Chrome-trace JSON files into one multi-lane timeline",
    )
    trace_merge.add_argument(
        "inputs", nargs="+", metavar="TRACE", help="input Chrome-trace JSON files"
    )
    trace_merge.add_argument(
        "-o", "--output", required=True, metavar="FILE", help="merged trace path"
    )
    trace_merge.add_argument(
        "--align",
        action="store_true",
        help="shift each input so its earliest event lines up with the "
        "first input's (for traces captured on unsynchronised clocks)",
    )
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.core.telemetry import Telemetry, activate

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None:
        logging.basicConfig(
            level=getattr(logging, args.log_level.upper()),
            format="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
        )
    if getattr(args, "kernel_backend", None):
        from repro.kernels import ENV_VAR, UnknownBackendError, registry

        try:
            registry.select(args.kernel_backend)
        except UnknownBackendError as exc:
            parser.error(str(exc))
        # Pool/fleet workers inherit the selection through the
        # environment (works under both fork and spawn start methods).
        os.environ[ENV_VAR] = args.kernel_backend
    # Artifact flags imply profiling: each names a telemetry artifact.
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)
    events_path = getattr(args, "events_out", None)
    if (
        args.profile
        or getattr(args, "manifest", None)
        or trace_path
        or metrics_path
        or events_path
    ):
        tracer = None
        if trace_path:
            from repro.core.tracing import Tracer

            tracer = Tracer(label="driver")
        event_sink = None
        if events_path:
            from repro.core.metrics import JsonlEventWriter

            event_sink = JsonlEventWriter(events_path)
        telemetry = Telemetry(
            logger=logging.getLogger("repro.telemetry"),
            tracer=tracer,
            event_sink=event_sink,
        )
        try:
            with activate(telemetry):
                code = args.func(args)
        finally:
            if event_sink is not None:
                event_sink.close()
        if trace_path:
            from repro.core.tracing import write_chrome_trace

            write_chrome_trace(trace_path, tracer)
            print(f"wrote trace to {trace_path}")
        if metrics_path:
            from repro.core.metrics import write_openmetrics

            write_openmetrics(metrics_path, telemetry)
            print(f"wrote metrics to {metrics_path}")
        print()
        print(telemetry.summary())
        return code
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
