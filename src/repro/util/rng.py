"""Deterministic random-number management.

Every stochastic element in EffiCSense (noise injection, sensing-matrix
generation, capacitor mismatch, synthetic EEG) draws from a
``numpy.random.Generator`` that is derived from an explicit seed.  This makes
entire design-space sweeps bit-reproducible: the same seed always yields the
same Pareto front.

The helpers here implement *seed spawning*: a parent seed plus a string tag
deterministically produces an independent child generator, so that e.g. the
LNA noise stream does not change when the ADC model adds a new random draw.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Seed used when the caller does not provide one.  Fixed (not entropy-based)
#: so that examples and benchmarks are reproducible out of the box.
DEFAULT_SEED = 0xEFF1C5


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts an integer seed, an existing generator (returned unchanged), or
    ``None`` (uses :data:`DEFAULT_SEED`).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_seed(parent_seed: int, tag: str) -> int:
    """Derive a child seed from ``parent_seed`` and a string ``tag``.

    Uses SHA-256 so that distinct tags give statistically independent
    streams and the mapping is stable across Python/numpy versions
    (``hash()`` is salted per process and unsuitable here).
    """
    digest = hashlib.sha256(f"{parent_seed}:{tag}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def spawn_rng(parent_seed: int, tag: str) -> np.random.Generator:
    """Return an independent generator for ``tag`` under ``parent_seed``."""
    return np.random.default_rng(derive_seed(parent_seed, tag))


class SeedSequenceRegistry:
    """Hands out independent generators for named subsystems of a simulation.

    A simulation run creates one registry from its master seed; each block
    requests its stream by name.  Requesting the same name twice returns a
    *fresh* generator seeded identically, which is what block ``reset()``
    semantics require (re-running a simulation reproduces the same noise).
    """

    def __init__(self, master_seed: int = DEFAULT_SEED):
        self.master_seed = int(master_seed)
        self._issued: dict[str, int] = {}

    def rng(self, name: str) -> np.random.Generator:
        """Return a generator for subsystem ``name``.

        Repeated calls with the same name restart the stream from the same
        seed (deterministic replay).
        """
        seed = derive_seed(self.master_seed, name)
        self._issued[name] = seed
        return np.random.default_rng(seed)

    def issued(self) -> dict[str, int]:
        """Mapping of subsystem name -> seed, for logging/debugging."""
        return dict(self._issued)

    def child(self, name: str) -> "SeedSequenceRegistry":
        """A registry whose master seed is derived from this one.

        Used when a sweep evaluates many design points: each point gets a
        child registry so its noise realisations are independent of, but
        reproducible within, the sweep.
        """
        return SeedSequenceRegistry(derive_seed(self.master_seed, f"child:{name}"))
