"""Physical constants and SI unit prefixes used throughout EffiCSense.

All internal computation uses base SI units (volts, farads, hertz, watts,
seconds).  The prefix constants below exist so that model code and tests can
write ``2 * MILLI`` or ``1 * FEMTO`` instead of raw exponents, which keeps
the power-model equations visually close to Table II/III of the paper.
"""

from __future__ import annotations

import math

# --- fundamental constants -------------------------------------------------

#: Boltzmann constant in J/K.
BOLTZMANN_K = 1.380649e-23

#: Default simulation temperature in kelvin (27 degC, standard for circuit
#: simulation and the operating point assumed by the paper's power bounds).
ROOM_TEMPERATURE_K = 300.15

#: Thermal energy kT at the default temperature, in joules.
KT_ROOM = BOLTZMANN_K * ROOM_TEMPERATURE_K

#: Elementary charge in coulombs (used for leakage/shot-noise estimates).
ELEMENTARY_CHARGE = 1.602176634e-19

# --- SI prefixes -----------------------------------------------------------

TERA = 1e12
GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18


def thermal_energy(temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Return kT in joules at ``temperature_k``.

    >>> round(thermal_energy() / 1e-21, 2)
    4.14
    """
    if temperature_k <= 0:
        raise ValueError(f"temperature must be positive, got {temperature_k}")
    return BOLTZMANN_K * temperature_k


def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Return the thermal voltage kT/q in volts.

    The paper's Table III lists V_T = 25.27 mV, which corresponds to
    approximately 20 degC; we keep the extracted value in
    :class:`repro.power.technology.Technology` and provide this helper for
    consistency checks.
    """
    return thermal_energy(temperature_k) / ELEMENTARY_CHARGE


def db(ratio: float) -> float:
    """Convert a power ratio to decibels."""
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def db_amplitude(ratio: float) -> float:
    """Convert an amplitude ratio to decibels (20*log10)."""
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 20.0 * math.log10(ratio)


def from_db(value_db: float) -> float:
    """Convert decibels to a power ratio."""
    return 10.0 ** (value_db / 10.0)


def from_db_amplitude(value_db: float) -> float:
    """Convert decibels to an amplitude ratio."""
    return 10.0 ** (value_db / 20.0)


def enob_from_sndr(sndr_db: float) -> float:
    """Effective number of bits from an SNDR in dB.

    Standard conversion ENOB = (SNDR - 1.76) / 6.02 used when relating a
    measured mixed-signal chain back to an ideal quantizer.
    """
    return (sndr_db - 1.76) / 6.02


def sndr_from_enob(enob: float) -> float:
    """Ideal SNDR in dB achieved by an ``enob``-bit quantizer."""
    return 6.02 * enob + 1.76
