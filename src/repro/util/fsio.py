"""Durable file I/O primitives: atomic replace and advisory locking.

Several subsystems persist artefacts that must survive a crash mid-write:
the evaluation cache, sweep result files, the benchmark ledger, and the
content-addressed result store.  They all need the same two disciplines:

* **Atomic replacement** (:func:`atomic_write_text`) -- write the new
  content to a temporary file *in the destination directory* (same
  filesystem, so the rename cannot degrade to a copy) and ``os.replace``
  it over the target.  A reader either sees the old complete file or the
  new complete file, never a truncated hybrid; a crash between the two
  steps leaves the old file untouched.
* **Advisory locking** (:class:`FileLock`) -- serialise read-modify-write
  cycles (the bench ledger append, the store index rebuild) across
  processes.  On POSIX the guard is ``flock``, which the kernel releases
  even when the holder is SIGKILLed, so there are no stale locks to
  clean up; on platforms without ``fcntl`` it degrades to a best-effort
  no-op (single-writer usage remains correct thanks to the atomic
  replace).

:class:`~repro.core.execution.EvaluationCache.put` pioneered this
discipline inside ``core``; this module lifts it into a utility both
``core`` and the higher layers (``repro.bench``, ``repro.store``) can
share without import cycles.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

try:  # POSIX advisory locking; see FileLock for the fallback semantics.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]


def atomic_write_text(path: str | Path, text: str, *, fsync: bool = False) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file lives next to the destination so the final rename
    stays within one filesystem.  On any failure the temporary file is
    removed and the destination keeps its previous content.  ``fsync``
    additionally flushes the data to stable storage before the rename,
    for files whose loss is more expensive than one extra disk round-trip
    (hours-long sweep results, the CI bench ledger).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", dir=path.parent, prefix=f".{path.name}.", suffix=".tmp", delete=False
    )
    try:
        with handle:
            handle.write(text)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        Path(handle.name).unlink(missing_ok=True)
        raise
    return path


def atomic_write_json(path: str | Path, payload, *, indent: int | None = 1,
                      sort_keys: bool = False, fsync: bool = False) -> Path:
    """:func:`atomic_write_text` of ``json.dumps(payload)`` + newline."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    return atomic_write_text(path, text + "\n", fsync=fsync)


class FileLock:
    """Advisory inter-process lock around a sidecar ``.lock`` file.

    Context manager: ``with FileLock(path): ...`` blocks until the lock
    is free (unlike :class:`~repro.core.execution.SweepCheckpoint`'s
    fail-fast guard -- ledger appends *want* to queue, not to abort).
    Reentrant within one instance; distinct instances in one process
    still exclude each other through the kernel lock, so thread races on
    separate instances are covered too.
    """

    def __init__(self, target: str | Path):
        self.lock_path = Path(str(target) + ".lock")
        self._handle = None
        self._depth = 0

    def acquire(self) -> None:
        if self._depth:
            self._depth += 1
            return
        self.lock_path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(self.lock_path, "a+")
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        self._handle = handle
        self._depth = 1

    def release(self) -> None:
        if not self._depth:
            return
        self._depth -= 1
        if self._depth:
            return
        handle, self._handle = self._handle, None
        # The lock file is deliberately left in place: unlinking it would
        # reopen the locked-a-ghost-inode race for waiting acquirers.
        handle.close()

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
