"""Lightweight argument-validation helpers.

Model code in EffiCSense is parameter heavy (Table III of the paper alone
has a dozen knobs); these helpers keep the constructors readable while still
failing fast with messages that name the offending parameter.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if >= 0, else raise ``ValueError``."""
    value = float(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Return ``value`` if within [0, 1], else raise ``ValueError``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_positive_int(name: str, value: int) -> int:
    """Return ``value`` as int if a strictly positive integer."""
    ivalue = int(value)
    if ivalue != value or ivalue <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return ivalue


def check_in(name: str, value: object, allowed: Sequence[object]) -> object:
    """Return ``value`` if contained in ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {list(allowed)!r}, got {value!r}")
    return value


def check_range(name: str, value: float, low: float, high: float) -> float:
    """Return ``value`` if within [low, high] inclusive."""
    value = float(value)
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def as_1d_array(name: str, values: object, dtype=np.float64) -> np.ndarray:
    """Coerce ``values`` to a 1-D numpy array, raising on higher rank."""
    arr = np.asarray(values, dtype=dtype)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def check_finite(name: str, values: np.ndarray) -> np.ndarray:
    """Raise ``ValueError`` if any entry of ``values`` is NaN or infinite."""
    arr = np.asarray(values)
    if not np.all(np.isfinite(arr)):
        bad = int(np.count_nonzero(~np.isfinite(arr)))
        raise ValueError(f"{name} contains {bad} non-finite values")
    return arr
