"""Terminal plotting: ASCII scatter and line charts.

The reproduction runs in headless environments, so the examples and
experiment renders draw their figures as text.  Minimal but correct:
linear axis scaling, multiple labelled series, axis tick labels, and
stable output (no randomness) so the plots can be asserted in tests.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import check_positive_int

#: Glyphs assigned to series in order.
SERIES_GLYPHS = "ox+*#@%&"


@dataclass
class Series:
    """One named point set of a chart."""

    name: str
    x: np.ndarray
    y: np.ndarray
    glyph: str = ""

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64).ravel()
        self.y = np.asarray(self.y, dtype=np.float64).ravel()
        if self.x.size != self.y.size:
            raise ValueError(
                f"series {self.name!r}: x has {self.x.size} points, y has {self.y.size}"
            )
        if self.x.size == 0:
            raise ValueError(f"series {self.name!r} is empty")


@dataclass
class TextChart:
    """ASCII chart builder.

    >>> chart = TextChart(width=40, height=10, x_label="power", y_label="acc")
    >>> chart.add("baseline", [1, 2, 3], [0.5, 0.7, 0.9])   # doctest: +ELLIPSIS
    TextChart(...)
    >>> print(chart.render())                                # doctest: +SKIP
    """

    width: int = 64
    height: int = 18
    x_label: str = "x"
    y_label: str = "y"
    title: str = ""
    series: list[Series] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive_int("width", self.width)
        check_positive_int("height", self.height)
        if self.width < 16 or self.height < 4:
            raise ValueError("chart needs width >= 16 and height >= 4")

    def add(self, name: str, x: Sequence[float], y: Sequence[float]) -> "TextChart":
        """Add a series (fluent)."""
        glyph = SERIES_GLYPHS[len(self.series) % len(SERIES_GLYPHS)]
        self.series.append(Series(name=name, x=np.asarray(x), y=np.asarray(y), glyph=glyph))
        return self

    def _bounds(self) -> tuple[float, float, float, float]:
        xs = np.concatenate([s.x for s in self.series])
        ys = np.concatenate([s.y for s in self.series])
        x_lo, x_hi = float(xs.min()), float(xs.max())
        y_lo, y_hi = float(ys.min()), float(ys.max())
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        return x_lo, x_hi, y_lo, y_hi

    def render(self) -> str:
        """Render the chart to a multi-line string."""
        if not self.series:
            raise ValueError("chart has no series")
        x_lo, x_hi, y_lo, y_hi = self._bounds()
        grid = [[" "] * self.width for _ in range(self.height)]
        for series in self.series:
            cols = np.clip(
                np.round((series.x - x_lo) / (x_hi - x_lo) * (self.width - 1)).astype(int),
                0,
                self.width - 1,
            )
            rows = np.clip(
                np.round((series.y - y_lo) / (y_hi - y_lo) * (self.height - 1)).astype(int),
                0,
                self.height - 1,
            )
            for col, row in zip(cols, rows):
                grid[self.height - 1 - row][col] = series.glyph

        margin = 11
        lines: list[str] = []
        if self.title:
            lines.append(" " * margin + self.title)
        for i, row in enumerate(grid):
            if i == 0:
                tick = f"{y_hi:>9.3g} "
            elif i == self.height - 1:
                tick = f"{y_lo:>9.3g} "
            elif i == self.height // 2:
                tick = f"{(y_lo + y_hi) / 2:>9.3g} "
            else:
                tick = " " * 10
            lines.append(f"{tick}|{''.join(row)}")
        lines.append(" " * 10 + "+" + "-" * self.width)
        x_ticks = f"{x_lo:<12.4g}{(x_lo + x_hi) / 2:^{max(self.width - 24, 1)}.4g}{x_hi:>12.4g}"
        lines.append(" " * 11 + x_ticks)
        lines.append(" " * 11 + f"{self.x_label}  (y: {self.y_label})")
        legend = "   ".join(f"{s.glyph} {s.name}" for s in self.series)
        lines.append(" " * 11 + legend)
        return "\n".join(lines)


def scatter(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
    width: int = 64,
    height: int = 18,
) -> str:
    """One-call scatter chart: ``{name: (xs, ys)}`` -> rendered string."""
    chart = TextChart(
        width=width, height=height, x_label=x_label, y_label=y_label, title=title
    )
    for name, (xs, ys) in series.items():
        chart.add(name, xs, ys)
    return chart.render()


def pareto_chart(
    fronts: dict[str, Sequence],
    x_metric: str = "power_uw",
    y_metric: str = "accuracy",
    title: str = "",
    width: int = 64,
    height: int = 18,
) -> str:
    """Scatter chart of Pareto fronts (sequences of ``Evaluation``)."""
    series = {
        name: (
            [e.metric(x_metric) for e in front],
            [e.metric(y_metric) for e in front],
        )
        for name, front in fronts.items()
        if front
    }
    if not series:
        raise ValueError("no non-empty fronts to plot")
    return scatter(
        series, x_label=x_metric, y_label=y_metric, title=title, width=width, height=height
    )
