"""EffiCSense -- architectural pathfinding for energy-constrained sensors.

A faithful Python reproduction of *"EffiCSense: an Architectural
Pathfinding Framework for Energy-Constrained Sensor Applications"*
(Van Assche, Helsen, Gielen -- DATE 2022), built on numpy/scipy instead of
MATLAB Simulink.

Package map
-----------
``repro.core``
    Block/dataflow simulation engine, parameter spaces, goal functions,
    Pareto extraction, the design-space explorer.
``repro.blocks``
    Functional + power coupled block library: sources, LNA, S&H, SAR ADC,
    passive charge-sharing CS encoder, DSP, transmitter, and pre-wired
    chains for the paper's two architectures.
``repro.power``
    Table II analytical power models, Table III technology constants,
    the Fig. 9 capacitor-area model.
``repro.cs``
    CS mathematics: s-SRBM matrices, charge-sharing algebra (Eq. 1),
    DCT/wavelet dictionaries, OMP/ISTA/FISTA reconstruction.
``repro.eeg``
    Synthetic Bonn-like EEG corpus and preprocessing (Step 4 substitute).
``repro.detection``
    EEG features + numpy MLP seizure detector (the accuracy goal oracle).
``repro.metrics``
    SNR/SNDR/ENOB, NMSE/PRD.
``repro.faults``
    Composable fault injection (dropouts, ADC bit faults, saturation
    bursts, drift, packet loss, NaN glitches) and Monte-Carlo yield
    analysis.
``repro.experiments``
    One module per paper table/figure, plus the scaled experiment harness.

Quickstart
----------
>>> from repro.power import DesignPoint
>>> from repro.blocks import build_baseline_chain, sine
>>> from repro.core import Simulator
>>> point = DesignPoint(n_bits=8, lna_noise_rms=2e-6)
>>> src = sine(frequency=40.0, amplitude=0.9e-3,
...            sample_rate=point.f_sample, n_samples=4096)
>>> result = Simulator(build_baseline_chain(point), point, seed=1).run(src)
>>> result.power.total_uw  # doctest: +SKIP
8.34
"""

__version__ = "1.0.0"

from repro.power.technology import GPDK045, DesignPoint, Technology

__all__ = ["DesignPoint", "GPDK045", "Technology", "__version__"]
